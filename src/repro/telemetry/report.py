"""Summary tables over recorded telemetry.

Turns a :class:`~repro.telemetry.recorder.MetricsRecorder` into the compact
plain-text report the experiments CLI prints after a ``--telemetry`` run:
per-metric summary statistics, phase timings with shares, and counters.
"""

from __future__ import annotations

import numpy as np

from repro.utils.tables import format_table

__all__ = ["metric_summary", "summarize"]


def metric_summary(recorder, name: str) -> dict[str, float]:
    """Count / mean / min / max / last of one scalar series."""
    values = recorder.values(name)
    if not values:
        raise KeyError(f"no series named {name!r} recorded")
    arr = np.asarray(values, dtype=np.float64)
    finite = arr[np.isfinite(arr)]
    stats = finite if finite.size else arr
    return {
        "count": float(arr.size),
        "mean": float(stats.mean()),
        "min": float(stats.min()),
        "max": float(stats.max()),
        "last": float(arr[-1]),
    }


def summarize(recorder, *, title: str | None = None) -> str:
    """Render a recorder's series, timers and counters as text tables."""
    sections: list[str] = []
    if recorder.series:
        rows = []
        for name in sorted(recorder.series):
            stats = metric_summary(recorder, name)
            rows.append(
                [name, int(stats["count"]), stats["mean"], stats["min"], stats["max"], stats["last"]]
            )
        sections.append(
            format_table(
                ["metric", "n", "mean", "min", "max", "last"], rows, title=title
            )
        )
    if recorder.timers:
        # Only top-level shares are meaningful (spans nest), so report raw
        # totals and the share of the largest accumulated span.
        largest = max(recorder.timers.values())
        rows = [
            [name, total, (total / largest if largest > 0 else 0.0)]
            for name, total in sorted(
                recorder.timers.items(), key=lambda kv: -kv[1]
            )
        ]
        sections.append(format_table(["span", "seconds", "vs longest"], rows))
    if recorder.counters:
        rows = [[name, value] for name, value in sorted(recorder.counters.items())]
        sections.append(format_table(["counter", "total"], rows))
    if not sections:
        return "(no telemetry recorded)"
    return "\n\n".join(sections)
