"""Summary tables and run reports over recorded telemetry.

Two layers:

* :func:`metric_summary` / :func:`summarize` turn a
  :class:`~repro.telemetry.recorder.MetricsRecorder` into the compact
  plain-text tables the experiments CLI prints after a ``--telemetry`` run;
* :func:`build_report` / :func:`render_report` turn the
  :class:`~repro.telemetry.export.RunBundle`\\ s of an exported trace file
  (recorder + span tree + DP release ledger) into the full run report the
  ``repro report`` subcommand emits — phase-time breakdown, clip/noise
  diagnostics, ε trajectory, and ledger verification status — as a plain
  data dict (JSON mode) or rendered markdown.
"""

from __future__ import annotations

import json

import numpy as np

from repro.utils.tables import format_table

__all__ = [
    "metric_summary",
    "summarize",
    "build_report",
    "render_report",
    "render_budget_report",
    "alerts_from_ledger",
]


def metric_summary(recorder, name: str) -> dict[str, float]:
    """Count / mean / min / max / last of one scalar series."""
    values = recorder.values(name)
    if not values:
        raise KeyError(f"no series named {name!r} recorded")
    arr = np.asarray(values, dtype=np.float64)
    finite = arr[np.isfinite(arr)]
    stats = finite if finite.size else arr
    return {
        "count": float(arr.size),
        "mean": float(stats.mean()),
        "min": float(stats.min()),
        "max": float(stats.max()),
        "last": float(arr[-1]),
    }


def summarize(recorder, *, title: str | None = None) -> str:
    """Render a recorder's series, timers and counters as text tables."""
    sections: list[str] = []
    if recorder.series:
        rows = []
        for name in sorted(recorder.series):
            stats = metric_summary(recorder, name)
            rows.append(
                [name, int(stats["count"]), stats["mean"], stats["min"], stats["max"], stats["last"]]
            )
        sections.append(
            format_table(
                ["metric", "n", "mean", "min", "max", "last"], rows, title=title
            )
        )
    if recorder.timers:
        # Only top-level shares are meaningful (spans nest), so report raw
        # totals and the share of the largest accumulated span.
        largest = max(recorder.timers.values())
        rows = [
            [name, total, (total / largest if largest > 0 else 0.0)]
            for name, total in sorted(
                recorder.timers.items(), key=lambda kv: -kv[1]
            )
        ]
        sections.append(format_table(["span", "seconds", "vs longest"], rows))
    if recorder.counters:
        rows = [[name, value] for name, value in sorted(recorder.counters.items())]
        sections.append(format_table(["counter", "total"], rows))
    if not sections:
        return "(no telemetry recorded)"
    return "\n\n".join(sections)


# --------------------------------------------------------------- run reports

#: Clip/noise diagnostic series summarised in run reports, when present.
_DIAGNOSTIC_SERIES = (
    "pre_clip_norm_mean",
    "pre_clip_norm_max",
    "clipped_fraction",
    "post_clip_norm",
    "noise_norm",
    "noise_to_signal",
    "cos_similarity",
    "angular_deviation",
    "sigma",
    "sensitivity",
)


def _ledger_section(ledger) -> dict | None:
    """Ledger summary + replay verification for one run bundle."""
    if ledger is None:
        return None
    from repro.privacy.ledger import verify_ledger

    verification = verify_ledger(ledger, strict=False)
    return {
        "entries": len(ledger.entries),
        "delta": ledger.delta,
        "head": ledger.head,
        "mechanisms": sorted({record.mechanism for record in ledger.entries}),
        "epsilon_trajectory": [
            [int(steps), float(eps)] for steps, eps in ledger.epsilon_trajectory()
        ],
        "verified": verification.ok,
        "verification": str(verification),
        "replayed_epsilon": verification.replayed_epsilon,
    }


def alerts_from_ledger(ledger) -> list[dict]:
    """Alert annotations chained into a ledger, as JSON-safe dicts.

    Fired :class:`~repro.telemetry.live.HealthMonitor` alerts are
    recorded as non-spending ``annotation.alert`` entries, so they
    survive export/restart with the rest of the chain and are extracted
    here for the report's ``alerts`` section.
    """
    if ledger is None:
        return []
    alerts = []
    for record in ledger.entries:
        if record.mechanism != "annotation.alert":
            continue
        entry = {
            "index": record.index,
            "epsilon_at_alert": record.epsilon,
            "namespace": record.namespace,
        }
        entry.update(record.meta)
        alerts.append(entry)
    return alerts


def _render_alerts(alerts: list[dict]) -> list[str]:
    lines = ["### Alerts", ""]
    if not alerts:
        lines.append("(no alerts fired)")
        lines.append("")
        return lines
    lines.append("| alert | severity | value | threshold | epsilon at alert |")
    lines.append("| --- | --- | ---: | ---: | ---: |")
    for alert in alerts:
        value = alert.get("value")
        threshold = alert.get("threshold")
        eps = alert.get("epsilon_at_alert")
        lines.append(
            f"| {alert.get('alert', '?')} "
            f"| {alert.get('severity', '?')} "
            f"| {'n/a' if value is None else format(value, '.6g')} "
            f"| {'n/a' if threshold is None else format(threshold, '.6g')} "
            f"| {'n/a' if eps is None else format(eps, '.6g')} |"
        )
    lines.append("")
    return lines


def _tracing_section(tracer) -> dict | None:
    """Phase-time breakdown + peak memory for one run bundle."""
    if tracer is None:
        return None
    phase_seconds = tracer.phase_totals(level="phase")
    peaks = [s.peak_bytes for s in tracer.spans if s.peak_bytes is not None]
    return {
        "spans": len(tracer.spans),
        "granularity": tracer.granularity,
        "run_seconds": tracer.phase_totals(level="run").get("run"),
        "lot_seconds": tracer.phase_totals(level="lot").get("lot"),
        "phase_seconds": {k: float(v) for k, v in sorted(phase_seconds.items())},
        "peak_bytes": max(peaks) if peaks else None,
    }


def build_report(bundles: dict) -> dict:
    """Assemble the ``repro report`` payload from loaded run bundles.

    ``bundles`` maps run labels to
    :class:`~repro.telemetry.export.RunBundle` instances (as returned by
    :func:`~repro.telemetry.export.load_run_bundles`).  The result is a
    JSON-serialisable dict: per run, the phase-time breakdown from the span
    tree, summary statistics of the clip/noise diagnostic series, the ε
    trajectory from the ledger, and the ledger's replay-verification
    status.
    """
    runs = {}
    for run, bundle in bundles.items():
        recorder = bundle.recorder
        diagnostics = {
            name: metric_summary(recorder, name)
            for name in _DIAGNOSTIC_SERIES
            if name in recorder.series
        }
        runs[run] = {
            "iterations": len(recorder.events),
            "tracing": _tracing_section(bundle.tracer),
            "diagnostics": diagnostics,
            "timers": {k: float(v) for k, v in sorted(recorder.timers.items())},
            "counters": {k: float(v) for k, v in sorted(recorder.counters.items())},
            "ledger": _ledger_section(bundle.ledger),
            "alerts": alerts_from_ledger(bundle.ledger),
        }
    return {"runs": runs}


def _render_run(run: str, payload: dict) -> str:
    lines = [f"## Run `{run}`", ""]
    lines.append(f"- iterations: {payload['iterations']}")
    tracing = payload["tracing"]
    ledger = payload["ledger"]
    if ledger is not None:
        status = "PASS" if ledger["verified"] else "FAIL"
        lines.append(
            f"- ledger: {ledger['entries']} releases, verification **{status}**"
            f" ({ledger['verification']})"
        )
        if ledger["epsilon_trajectory"]:
            steps, eps = ledger["epsilon_trajectory"][-1]
            lines.append(
                f"- privacy: epsilon = {eps:.6g} at delta = {ledger['delta']:.3g}"
                f" after {steps} releases"
            )
    if tracing is not None and tracing["peak_bytes"] is not None:
        lines.append(f"- peak traced memory: {tracing['peak_bytes']:,} bytes")
    lines.append("")

    if tracing is not None and tracing["phase_seconds"]:
        lines.append("### Phase time")
        lines.append("")
        lines.append("| phase | seconds |")
        lines.append("| --- | ---: |")
        for name, seconds in sorted(
            tracing["phase_seconds"].items(), key=lambda kv: -kv[1]
        ):
            lines.append(f"| {name} | {seconds:.6f} |")
        if tracing["lot_seconds"] is not None:
            lines.append(f"| (all lots) | {tracing['lot_seconds']:.6f} |")
        if tracing["run_seconds"] is not None:
            lines.append(f"| (run total) | {tracing['run_seconds']:.6f} |")
        lines.append("")

    if payload["diagnostics"]:
        lines.append("### Clip / noise diagnostics")
        lines.append("")
        lines.append("| series | n | mean | min | max | last |")
        lines.append("| --- | ---: | ---: | ---: | ---: | ---: |")
        for name, stats in payload["diagnostics"].items():
            lines.append(
                f"| {name} | {int(stats['count'])} | {stats['mean']:.6g} "
                f"| {stats['min']:.6g} | {stats['max']:.6g} | {stats['last']:.6g} |"
            )
        lines.append("")

    if ledger is not None and ledger["epsilon_trajectory"]:
        lines.append("### Epsilon trajectory")
        lines.append("")
        trajectory = ledger["epsilon_trajectory"]
        shown = (
            trajectory
            if len(trajectory) <= 12
            else trajectory[:6] + [None] + trajectory[-6:]
        )
        lines.append("| releases | epsilon |")
        lines.append("| ---: | ---: |")
        for point in shown:
            if point is None:
                lines.append("| ... | ... |")
            else:
                lines.append(f"| {point[0]} | {point[1]:.6g} |")
        lines.append("")

    if payload.get("alerts"):
        lines.extend(_render_alerts(payload["alerts"]))

    if payload["counters"]:
        lines.append("### Counters")
        lines.append("")
        lines.append("| counter | total |")
        lines.append("| --- | ---: |")
        for name, value in payload["counters"].items():
            lines.append(f"| {name} | {value:g} |")
        lines.append("")
    return "\n".join(lines)


def _render_tenant(name: str, payload: dict) -> str:
    ledger = payload["ledger"]
    status = "PASS" if ledger["verified"] else "FAIL"
    lines = [f"## Tenant `{name}`", ""]
    lines.append(
        f"- budget: epsilon = {payload['epsilon_budget']:.6g} at "
        f"delta = {payload['delta']:.3g} (on overspend: {payload['on_overspend']})"
    )
    lines.append(
        f"- spent: {payload['spent_epsilon']:.6g} "
        f"({payload['utilization']:.1%} of budget, "
        f"{payload['remaining_epsilon']:.6g} remaining)"
    )
    rate = payload.get("burn_rate")
    if rate is not None:
        exhaustion = payload.get("steps_to_exhaustion")
        horizon = (
            "budget not shrinking"
            if exhaustion is None
            else f"~{exhaustion:.0f} accounted steps to exhaustion"
        )
        lines.append(f"- burn rate: {rate:.6g} epsilon/step ({horizon})")
    lines.append(
        f"- ledger: {ledger['entries']} entries, head `{ledger['head'][:12]}...`, "
        f"verification **{status}** ({ledger['verification']})"
    )
    lines.append("")
    lines.append("| job state | count |")
    lines.append("| --- | ---: |")
    for state, count in sorted(payload["jobs"].items()):
        lines.append(f"| {state} | {count} |")
    lines.append("")
    if payload["refusals"]:
        lines.append("### Refusals (non-spending annotations)")
        lines.append("")
        lines.append("| job | projected epsilon | epsilon at refusal |")
        lines.append("| --- | ---: | ---: |")
        for refusal in payload["refusals"]:
            projected = refusal["projected_epsilon"]
            at = refusal["epsilon_at_refusal"]
            lines.append(
                f"| {refusal['job_id']} "
                f"| {'n/a' if projected is None else format(projected, '.6g')} "
                f"| {'n/a' if at is None else format(at, '.6g')} |"
            )
        lines.append("")
    if payload.get("alerts"):
        lines.extend(_render_alerts(payload["alerts"]))
    return "\n".join(lines)


def render_budget_report(report: dict, *, fmt: str = "markdown") -> str:
    """Render a per-tenant budget report payload as markdown or JSON.

    ``report`` is the output of
    :func:`repro.service.report.build_budget_report`; this renderer lives
    with the other report formatting so every human-facing surface (run
    reports, budget reports) shares one home.
    """
    if fmt == "json":
        return json.dumps(report, indent=2, sort_keys=True)
    if fmt != "markdown":
        raise ValueError(f"fmt must be 'markdown' or 'json', got {fmt!r}")
    sections = ["# Tenant budget report", ""]
    totals = report.get("jobs", {})
    if totals:
        summary = ", ".join(f"{state}: {count}" for state, count in sorted(totals.items()))
        sections.append(f"Jobs — {summary}")
        sections.append("")
    for name in sorted(report["tenants"]):
        sections.append(_render_tenant(name, report["tenants"][name]))
    return "\n".join(sections).rstrip() + "\n"


def render_report(
    report: dict, *, fmt: str = "markdown", alerts_only: bool = False
) -> str:
    """Render a :func:`build_report` payload as markdown or JSON text.

    ``alerts_only`` restricts the output to each run's ``alerts``
    section (the ``repro report --alerts-only`` surface).
    """
    if alerts_only:
        report = {
            "runs": {
                run: {"alerts": payload.get("alerts", [])}
                for run, payload in report["runs"].items()
            }
        }
    if fmt == "json":
        return json.dumps(report, indent=2, sort_keys=True)
    if fmt != "markdown":
        raise ValueError(f"fmt must be 'markdown' or 'json', got {fmt!r}")
    if alerts_only:
        sections = ["# Run report (alerts)", ""]
        for run in sorted(report["runs"]):
            sections.append(f"## Run `{run}`")
            sections.append("")
            sections.extend(_render_alerts(report["runs"][run]["alerts"]))
        return "\n".join(sections).rstrip() + "\n"
    sections = ["# Run report", ""]
    for run in sorted(report["runs"]):
        sections.append(_render_run(run, report["runs"][run]))
    return "\n".join(sections).rstrip() + "\n"
