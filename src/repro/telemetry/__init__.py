"""Telemetry for DP training runs: metrics, step traces, JSONL export.

The paper's analysis is geometric — what matters per step is not just the
loss but *where the released gradient points* relative to the true one.
This package gives the trainer and the DP optimizers a shared, optional
recorder so those per-step quantities (pre/post-clip norms, clipped
fraction, noise-to-signal ratio, angular deviation, GeoDP's noise split)
become first-class observable series, exportable to JSONL and assertable in
tests.  Telemetry is strictly opt-in: nothing is recorded (and no overhead
is paid) unless a :class:`MetricsRecorder` is passed in.

:mod:`repro.telemetry.live` adds the *operational* layer on top: a
scrapeable :class:`~repro.telemetry.live.MetricsRegistry` (bind one with
``recorder.bind_registry``), DP health alerting, a sampling profiler,
and the ``repro monitor`` CLI.
"""

from repro.telemetry.diagnostics import (
    clip_diagnostics,
    record_clipping,
    record_release,
    release_diagnostics,
)
from repro.telemetry.events import StepTrace
from repro.telemetry.export import (
    RunBundle,
    export_trace,
    load_run_bundles,
    load_trace,
    load_traces,
)
from repro.telemetry.live import (
    AlertRule,
    HealthMonitor,
    JsonlTimeSeries,
    MetricsExporter,
    MetricsRegistry,
    SamplingProfiler,
    default_training_rules,
    render_prometheus,
    rule_from_dict,
)
from repro.telemetry.recorder import MetricsRecorder
from repro.telemetry.report import (
    build_report,
    metric_summary,
    render_budget_report,
    render_report,
    summarize,
)
from repro.telemetry.tracing import Span, Tracer, joint_span, maybe_span

__all__ = [
    "MetricsRecorder",
    "StepTrace",
    "Span",
    "Tracer",
    "joint_span",
    "maybe_span",
    "clip_diagnostics",
    "release_diagnostics",
    "record_clipping",
    "record_release",
    "export_trace",
    "load_trace",
    "load_traces",
    "load_run_bundles",
    "RunBundle",
    "metric_summary",
    "summarize",
    "build_report",
    "render_budget_report",
    "render_report",
    "MetricsRegistry",
    "MetricsExporter",
    "JsonlTimeSeries",
    "render_prometheus",
    "AlertRule",
    "HealthMonitor",
    "default_training_rules",
    "rule_from_dict",
    "SamplingProfiler",
]
