"""Lightweight metrics recorder for training runs.

A :class:`MetricsRecorder` collects three kinds of telemetry:

* **scalar series** — ``record(name, value)`` appends ``(step, value)``
  points, e.g. per-iteration loss or noise-to-signal ratio;
* **counters** — ``increment(name)`` for monotone event counts;
* **timers** — ``with recorder.span(name):`` accumulates wall-clock seconds
  per phase; spans may nest (outer spans include inner time).

While a step is open (:meth:`start_step` / :meth:`end_step`) every recorded
scalar and span is additionally attached to that step's
:class:`~repro.telemetry.events.StepTrace`, giving a per-iteration event
stream alongside the flat series.

The recorder never touches any random state, so an instrumented run is
bit-identical to an uninstrumented one; telemetry is off unless a recorder
is explicitly passed to the trainer/optimizers.
"""

from __future__ import annotations

import time
from contextlib import contextmanager

from repro.telemetry.events import StepTrace

__all__ = ["MetricsRecorder"]


class MetricsRecorder:
    """In-memory telemetry sink for one training run."""

    def __init__(self):
        #: ``name -> [(step, value), ...]`` scalar series.
        self.series: dict[str, list[tuple[int, float]]] = {}
        #: ``name -> count`` monotone counters.
        self.counters: dict[str, float] = {}
        #: ``name -> accumulated seconds`` wall-clock timers.
        self.timers: dict[str, float] = {}
        #: Closed per-iteration events, in order.
        self.events: list[StepTrace] = []
        self._open_step: StepTrace | None = None
        #: Optional live :class:`~repro.telemetry.live.MetricsRegistry`
        #: mirror (see :meth:`bind_registry`).
        self._registry = None
        #: Callables invoked with each closed :class:`StepTrace` (used by
        #: :meth:`repro.telemetry.live.HealthMonitor.watch`).
        self._end_step_hooks: list = []

    # ------------------------------------------------------------- registry
    def bind_registry(self, registry) -> None:
        """Mirror this recorder into a live ``MetricsRegistry``.

        Existing contents are replayed into the registry so binding after
        a partial run (or a checkpoint restore) is safe; afterwards every
        :meth:`record`, :meth:`increment`, and :meth:`merge_state` is
        mirrored incrementally.  The registry is deliberately excluded
        from :meth:`state_dict` — it is process-local scrape state, not
        run telemetry.
        """
        self._registry = registry
        if registry is None:
            return
        for name, points in self.series.items():
            for step, value in points:
                registry.observe_series(name, value, step=step)
        for name, value in self.counters.items():
            registry.inc(name, value)

    def add_end_step_hook(self, hook) -> None:
        """Call ``hook(step_trace)`` after every :meth:`end_step`."""
        self._end_step_hooks.append(hook)

    # ------------------------------------------------------------- scalars
    def record(self, name: str, value, *, step: int | None = None) -> None:
        """Append one ``(step, value)`` point to the series ``name``.

        ``step`` defaults to the open step's iteration, or to the series
        length when no step is open.  While a step is open the value is also
        stored in that step's ``metrics`` (last write wins within a step).
        """
        value = float(value)
        if self._open_step is not None:
            self._open_step.metrics[name] = value
            if step is None:
                step = self._open_step.iteration
        points = self.series.setdefault(name, [])
        if step is None:
            step = len(points)
        points.append((int(step), value))
        if self._registry is not None:
            self._registry.observe_series(name, value, step=int(step))

    def values(self, name: str) -> list[float]:
        """The values of series ``name`` (empty list if never recorded)."""
        return [v for _, v in self.series.get(name, [])]

    def increment(self, name: str, amount: float = 1) -> None:
        """Add ``amount`` to counter ``name`` (created at 0)."""
        self.counters[name] = self.counters.get(name, 0) + amount
        if self._registry is not None:
            self._registry.inc(name, amount)

    # -------------------------------------------------------------- timers
    @contextmanager
    def span(self, name: str):
        """Context manager timing one phase; accumulates into ``timers``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.timers[name] = self.timers.get(name, 0.0) + elapsed
            if self._open_step is not None:
                step = self._open_step
                step.timings[name] = step.timings.get(name, 0.0) + elapsed

    # --------------------------------------------------------------- steps
    def start_step(self, iteration: int) -> StepTrace:
        """Open the :class:`StepTrace` for ``iteration``."""
        if self._open_step is not None:
            raise RuntimeError(
                f"step {self._open_step.iteration} is still open; "
                "call end_step() first"
            )
        self._open_step = StepTrace(int(iteration))
        return self._open_step

    def end_step(self) -> StepTrace:
        """Close the open step and append it to ``events``."""
        if self._open_step is None:
            raise RuntimeError("no step is open; call start_step() first")
        step, self._open_step = self._open_step, None
        self.events.append(step)
        for hook in self._end_step_hooks:
            hook(step)
        return step

    # --------------------------------------------------------- checkpointing
    def state_dict(self) -> dict:
        """Full recorder contents for checkpointing (no step may be open)."""
        if self._open_step is not None:
            raise RuntimeError(
                f"step {self._open_step.iteration} is still open; "
                "close it before checkpointing"
            )
        return {
            "series": {
                name: [[int(s), float(v)] for s, v in points]
                for name, points in self.series.items()
            },
            "counters": {k: float(v) for k, v in self.counters.items()},
            "timers": {k: float(v) for k, v in self.timers.items()},
            "events": [event.to_dict() for event in self.events],
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore recorder contents captured by :meth:`state_dict`."""
        self.series = {
            name: [(int(s), float(v)) for s, v in points]
            for name, points in state["series"].items()
        }
        self.counters = {k: float(v) for k, v in state["counters"].items()}
        self.timers = {k: float(v) for k, v in state["timers"].items()}
        self.events = [StepTrace.from_dict(payload) for payload in state["events"]]
        self._open_step = None
        if self._registry is not None:
            self.bind_registry(self._registry)

    # -------------------------------------------------------------- merging
    def merge_state(self, state: dict) -> None:
        """Fold another recorder's captured state into this one.

        Series points and step events are appended, counters and timers are
        summed.  Applied in a fixed order (job index, regardless of which
        worker ran which job — see :mod:`repro.runtime.shipback`) the merged
        recorder is independent of worker count.
        """
        for name, points in state["series"].items():
            series = self.series.setdefault(name, [])
            for s, v in points:
                series.append((int(s), float(v)))
                if self._registry is not None:
                    self._registry.observe_series(name, float(v), step=int(s))
        for name, value in state["counters"].items():
            self.counters[name] = self.counters.get(name, 0) + float(value)
            if self._registry is not None:
                self._registry.inc(name, float(value))
        for name, value in state["timers"].items():
            self.timers[name] = self.timers.get(name, 0.0) + float(value)
        self.events.extend(StepTrace.from_dict(payload) for payload in state["events"])

    def deterministic_state(self) -> dict:
        """The recorder's contents with every wall-clock quantity removed.

        Timers, per-step ``timings``, and series whose names end in
        ``_seconds`` (the project convention for wall-clock series, e.g.
        ``runtime_job_seconds``) measure elapsed time and legitimately vary
        between runs.  Everything else — metric series, counters, per-step
        metrics — is a pure function of the computation, so this projection
        is bit-identical across reruns and across worker counts.
        """
        state = self.state_dict()
        state.pop("timers")
        state["series"] = {
            name: points
            for name, points in state["series"].items()
            if not name.endswith("_seconds")
        }
        for event in state["events"]:
            event.pop("timings", None)
        return state

    def __repr__(self) -> str:
        return (
            f"MetricsRecorder(series={len(self.series)}, "
            f"counters={len(self.counters)}, timers={len(self.timers)}, "
            f"events={len(self.events)})"
        )
