"""Event model for per-iteration training telemetry.

A :class:`StepTrace` is one training iteration's worth of telemetry: the
scalar diagnostics recorded while the step was open (loss, gradient norms,
noise-to-signal ratio, angular deviation, ...) and the wall-clock timings of
the step's phases (sample / forward_backward / clip / noise / step).  Traces
serialise to plain dicts so they can travel through the JSONL exporter
without any custom encoding.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["StepTrace"]


@dataclass
class StepTrace:
    """Telemetry for a single training iteration.

    Attributes
    ----------
    iteration:
        1-based iteration index (matches ``TrainingHistory.iterations``).
    metrics:
        Scalar diagnostics recorded during this step, keyed by metric name.
    timings:
        Accumulated wall-clock seconds per span name.  Spans nest, so e.g.
        ``timings["step"]`` includes the time of the inner ``clip`` and
        ``noise`` spans.
    """

    iteration: int
    metrics: dict[str, float] = field(default_factory=dict)
    timings: dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> dict:
        """Plain-dict form used by the JSONL exporter."""
        return {
            "iteration": int(self.iteration),
            "metrics": {k: float(v) for k, v in self.metrics.items()},
            "timings": {k: float(v) for k, v in self.timings.items()},
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "StepTrace":
        """Inverse of :meth:`to_dict`."""
        return cls(
            iteration=int(payload["iteration"]),
            metrics={k: float(v) for k, v in payload.get("metrics", {}).items()},
            timings={k: float(v) for k, v in payload.get("timings", {}).items()},
        )
