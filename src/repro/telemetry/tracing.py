"""Hierarchical span tracing for training runs.

A :class:`Tracer` records a tree of timed *spans* — run → epoch → lot →
phase (``forward_backward`` / ``clip`` / ``spherical`` / ``noise`` /
``step``, plus ``ghost`` and ``checkpoint``) — so a training run's time can
be broken down structurally ("where did this lot's milliseconds go?")
instead of only as flat per-phase totals.  Each span captures wall-clock
duration and, optionally, the ``tracemalloc`` peak allocation inside the
span.  Spans nest through an ordinary context-manager stack::

    tracer = Tracer()
    with tracer.span("run", level="run"):
        with tracer.span("lot", level="lot"):
            with tracer.span("clip"):
                ...

The recorded tree exports two ways:

* through the JSONL telemetry exporter (:func:`repro.telemetry.export_trace`
  writes one ``span`` line per record, loadable back into a tracer), and
* as Chrome trace-event JSON (:meth:`Tracer.chrome_trace`), loadable in
  ``chrome://tracing`` or `Perfetto <https://ui.perfetto.dev>`_.

``granularity`` bounds the recorded depth so tracing can stay on in
production at negligible cost: at ``"lot"`` granularity the per-phase spans
inside each iteration become no-ops (asserted <15% overhead in
``benchmarks/bench_telemetry.py``; with no tracer attached the trainer's
disabled path stays <5%).  Like the :class:`~repro.telemetry.MetricsRecorder`,
a tracer never touches random state — traced runs are bit-identical to
untraced ones.
"""

from __future__ import annotations

import time
import tracemalloc
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass, field

__all__ = [
    "SPAN_LEVELS",
    "Span",
    "Tracer",
    "joint_span",
    "maybe_span",
]

#: Hierarchy levels, outermost first.  ``granularity`` keeps every level up
#: to and including the named one; deeper spans are skipped.
SPAN_LEVELS = ("run", "epoch", "lot", "phase")
_LEVEL_DEPTH = {name: depth for depth, name in enumerate(SPAN_LEVELS)}


@dataclass
class Span:
    """One closed (or still-open) node of the span tree.

    ``start`` is seconds since the tracer's epoch (its construction time),
    ``parent`` an index into the tracer's ``spans`` list (``None`` for
    roots), and ``peak_bytes`` the ``tracemalloc`` peak inside the span
    (``None`` when memory tracing is off).  ``track`` labels the execution
    lane — ``"main"`` in-process, a job key for spans merged back from pool
    workers.
    """

    name: str
    level: str
    start: float
    duration: float = 0.0
    parent: int | None = None
    depth: int = 0
    peak_bytes: int | None = None
    track: str = "main"
    #: Free-form numeric annotations (rendered into Chrome trace ``args``).
    meta: dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> dict:
        """Plain-dict form used by the JSONL exporter."""
        out = {
            "name": self.name,
            "level": self.level,
            "start": float(self.start),
            "duration": float(self.duration),
            "parent": None if self.parent is None else int(self.parent),
            "depth": int(self.depth),
            "peak_bytes": None if self.peak_bytes is None else int(self.peak_bytes),
            "track": self.track,
        }
        if self.meta:
            out["meta"] = {k: float(v) for k, v in self.meta.items()}
        return out

    @classmethod
    def from_dict(cls, payload: dict) -> "Span":
        """Inverse of :meth:`to_dict`."""
        peak = payload.get("peak_bytes")
        parent = payload.get("parent")
        return cls(
            name=str(payload["name"]),
            level=str(payload["level"]),
            start=float(payload["start"]),
            duration=float(payload["duration"]),
            parent=None if parent is None else int(parent),
            depth=int(payload.get("depth", 0)),
            peak_bytes=None if peak is None else int(peak),
            track=str(payload.get("track", "main")),
            meta={k: float(v) for k, v in payload.get("meta", {}).items()},
        )


class Tracer:
    """Collects a hierarchical span tree for one training run.

    Parameters
    ----------
    granularity:
        Deepest :data:`SPAN_LEVELS` entry to record (default ``"phase"``:
        everything).  ``"lot"`` keeps run/epoch/lot spans but skips the
        per-phase spans inside each iteration — the cheap production
        setting.
    trace_memory:
        When true, each recorded span also captures its ``tracemalloc``
        peak.  The tracer starts ``tracemalloc`` itself if it is not
        already tracing (and stops it again in :meth:`close`).  Memory
        tracing is accurate but slow — leave it off on hot paths.
    """

    def __init__(self, *, granularity: str = "phase", trace_memory: bool = False):
        if granularity not in _LEVEL_DEPTH:
            raise ValueError(
                f"granularity must be one of {SPAN_LEVELS}, got {granularity!r}"
            )
        self.granularity = granularity
        self.trace_memory = bool(trace_memory)
        #: Closed and open spans, in span-open order.
        self.spans: list[Span] = []
        self._stack: list[int] = []
        #: Peak bytes observed so far inside each open span (memory mode).
        self._peak_accum: list[int] = []
        self._epoch = time.perf_counter()
        self._owns_tracemalloc = False
        if self.trace_memory and not tracemalloc.is_tracing():
            tracemalloc.start()
            self._owns_tracemalloc = True

    # ------------------------------------------------------------- recording
    def enabled(self, level: str = "phase") -> bool:
        """Whether spans at ``level`` are being recorded."""
        return _LEVEL_DEPTH[level] <= _LEVEL_DEPTH[self.granularity]

    @contextmanager
    def span(self, name: str, level: str = "phase"):
        """Record one span; nested calls build the tree.

        Spans deeper than the tracer's granularity cost one dict lookup and
        nothing else.  Yields the :class:`Span` (or ``None`` when skipped).
        """
        if _LEVEL_DEPTH[level] > _LEVEL_DEPTH[self.granularity]:
            yield None
            return
        index = len(self.spans)
        record = Span(
            name=name,
            level=level,
            start=time.perf_counter() - self._epoch,
            parent=self._stack[-1] if self._stack else None,
            depth=len(self._stack),
        )
        self.spans.append(record)
        self._stack.append(index)
        memory = self.trace_memory and tracemalloc.is_tracing()
        if memory:
            if self._peak_accum:
                # Bank the enclosing span's peak before the child resets it.
                self._peak_accum[-1] = max(
                    self._peak_accum[-1], tracemalloc.get_traced_memory()[1]
                )
            tracemalloc.reset_peak()
            self._peak_accum.append(0)
        try:
            yield record
        finally:
            record.duration = time.perf_counter() - self._epoch - record.start
            self._stack.pop()
            if memory:
                peak = max(self._peak_accum.pop(), tracemalloc.get_traced_memory()[1])
                record.peak_bytes = int(peak)
                if self._peak_accum:
                    # A child's peak is also its parent's; restart the
                    # parent's measurement window for the code that follows.
                    self._peak_accum[-1] = max(self._peak_accum[-1], peak)
                    tracemalloc.reset_peak()

    def close(self) -> None:
        """Stop ``tracemalloc`` if this tracer started it."""
        if self._owns_tracemalloc and tracemalloc.is_tracing():
            tracemalloc.stop()
        self._owns_tracemalloc = False

    # ------------------------------------------------------------ inspection
    def phase_totals(self, level: str | None = None) -> dict[str, float]:
        """Accumulated seconds per span name (optionally one level only)."""
        totals: dict[str, float] = {}
        for span in self.spans:
            if level is not None and span.level != level:
                continue
            totals[span.name] = totals.get(span.name, 0.0) + span.duration
        return totals

    def __len__(self) -> int:
        return len(self.spans)

    def __repr__(self) -> str:
        return (
            f"Tracer(spans={len(self.spans)}, granularity={self.granularity!r}, "
            f"trace_memory={self.trace_memory})"
        )

    # ---------------------------------------------------------- serialisation
    def state_dict(self) -> dict:
        """Full tracer contents for export / cross-process shipping.

        No span may be open: a half-open tree cannot be merged or resumed
        meaningfully.
        """
        if self._stack:
            open_span = self.spans[self._stack[-1]]
            raise RuntimeError(
                f"span {open_span.name!r} is still open; close it before "
                "serialising the tracer"
            )
        return {
            "granularity": self.granularity,
            "trace_memory": self.trace_memory,
            "spans": [span.to_dict() for span in self.spans],
        }

    def load_state_dict(self, state: dict) -> None:
        """Replace this tracer's contents with a captured state."""
        self.granularity = str(state.get("granularity", "phase"))
        self.trace_memory = bool(state.get("trace_memory", False))
        self.spans = [Span.from_dict(payload) for payload in state["spans"]]
        self._stack = []
        self._peak_accum = []

    def merge_state(self, state: dict, *, track: str) -> None:
        """Append another tracer's spans under the execution lane ``track``.

        Parent indices are re-based onto this tracer's span list, so the
        merged tree stays self-consistent.  Applied in job-index order
        (see :mod:`repro.runtime.shipback`) the merged result is
        independent of how many workers produced the states.  Start times
        stay relative to the *source* tracer's epoch — each track renders
        from its own zero in the Chrome trace view.
        """
        offset = len(self.spans)
        for payload in state["spans"]:
            span = Span.from_dict(payload)
            if span.parent is not None:
                span.parent += offset
            span.track = track
            self.spans.append(span)

    # -------------------------------------------------------- chrome export
    def chrome_trace(self) -> dict:
        """The span tree as Chrome trace-event JSON (Perfetto-loadable).

        Every span becomes one complete event (``"ph": "X"``) with
        microsecond timestamps; tracks map to thread ids with matching
        ``thread_name`` metadata events, so worker lanes show up as named
        threads alongside ``main``.
        """
        tracks = sorted({span.track for span in self.spans})
        # "main" first, then worker tracks in sorted (deterministic) order.
        if "main" in tracks:
            tracks.remove("main")
            tracks.insert(0, "main")
        tid = {track: i for i, track in enumerate(tracks)}
        events: list[dict] = [
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": tid[track],
                "args": {"name": track},
            }
            for track in tracks
        ]
        for span in self.spans:
            args: dict = {"level": span.level}
            if span.peak_bytes is not None:
                args["peak_bytes"] = span.peak_bytes
            args.update(span.meta)
            events.append(
                {
                    "name": span.name,
                    "cat": span.level,
                    "ph": "X",
                    "ts": span.start * 1e6,
                    "dur": span.duration * 1e6,
                    "pid": 0,
                    "tid": tid.get(span.track, 0),
                    "args": args,
                }
            )
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def save_chrome_trace(self, path) -> None:
        """Write :meth:`chrome_trace` to ``path`` as JSON (atomically)."""
        import json

        from repro.utils.serialization import atomic_write_bytes

        atomic_write_bytes(
            path, (json.dumps(self.chrome_trace(), indent=1) + "\n").encode("utf-8")
        )


# ------------------------------------------------------------------ helpers
def maybe_span(tracer: Tracer | None, name: str, level: str = "phase"):
    """``tracer.span(...)`` or a no-op context when ``tracer`` is ``None``."""
    if tracer is None:
        return nullcontext()
    return tracer.span(name, level)


@contextmanager
def _nested(outer, inner):
    with outer, inner:
        yield


def joint_span(recorder, tracer: Tracer | None, name: str, level: str = "phase"):
    """One context manager timing a phase into both telemetry sinks.

    ``recorder`` is a :class:`~repro.telemetry.MetricsRecorder` (flat timer
    accumulation + per-step timings) and ``tracer`` a :class:`Tracer`
    (hierarchical span); either may be ``None``.  With both absent this is a
    shared ``nullcontext`` — the disabled hot path allocates nothing.
    """
    if recorder is None:
        return maybe_span(tracer, name, level)
    if tracer is None:
        return recorder.span(name)
    return _nested(recorder.span(name), tracer.span(name, level))
