"""Declarative DP health monitoring over the live metrics registry.

A :class:`HealthMonitor` evaluates a set of :class:`AlertRule` objects
against sliding windows of registry gauges (and deltas of registry
counters) each time :meth:`HealthMonitor.evaluate` runs — per step for a
watched trainer recorder, per service cycle for a
:class:`~repro.service.BudgetServer`.

Built-in DP-native rules (all constructible from plain dicts, so rule
sets can live in JSON files — see ``docs/observability.md``):

* ``epsilon_burn_rate`` — linear projection of the ε-spend gauge window
  exceeds the budget within ``horizon_steps``;
* ``clip_saturation`` — windowed mean of ``clipped_fraction`` above a
  threshold (the Gaussian mechanism's sensitivity bound is doing all the
  work; the learning signal is being truncated);
* ``noise_floor`` — windowed mean of ``noise_to_signal`` above a
  ceiling (noise dominates signal, utility collapse);
* ``angular_regression`` — GeoDP's windowed mean ``angular_deviation``
  above a DP-SGD baseline (the geometric advantage has inverted);
* ``retry_spike`` / ``fallback_storm`` — counter increase between
  consecutive evaluations above a limit (runtime stragglers, backend
  degradation).

Rising edges are *annotated into the release ledger* via
``record_annotation(kind="alert")``: alert records ride the existing
hash chain, making them tamper-evident, replayable, and automatically
persisted/restored wherever the ledger is (report extraction and the
restart-surviving acceptance path both read them back from there).
"""

from __future__ import annotations

import statistics

__all__ = [
    "AlertRule",
    "HealthMonitor",
    "alert_meta",
    "rule_from_dict",
    "default_training_rules",
]


class AlertRule:
    """One declarative health predicate over the registry.

    ``kind`` selects the evaluation strategy; thresholds and metric
    names are plain data, so rules round-trip through ``to_dict`` /
    :func:`rule_from_dict`.
    """

    WINDOW_KINDS = ("clip_saturation", "noise_floor", "angular_regression", "window_mean")
    COUNTER_KINDS = ("retry_spike", "fallback_storm", "counter_rate")
    KINDS = ("epsilon_burn_rate",) + WINDOW_KINDS + COUNTER_KINDS

    #: Default gauge/counter per built-in kind.
    DEFAULT_METRICS = {
        "clip_saturation": "clipped_fraction",
        "noise_floor": "noise_to_signal",
        "angular_regression": "angular_deviation",
        "epsilon_burn_rate": "service_tenant_epsilon_spent",
        "retry_spike": "runtime_retries",
        "fallback_storm": "backend_fallbacks",
    }

    def __init__(
        self,
        kind: str,
        *,
        name: str | None = None,
        metric: str | None = None,
        labels: dict[str, str] | None = None,
        threshold: float | None = None,
        budget: float | None = None,
        horizon_steps: int = 100,
        window: int = 16,
        min_samples: int = 4,
        severity: str = "warning",
        description: str = "",
    ):
        if kind not in self.KINDS:
            raise ValueError(f"unknown alert rule kind {kind!r} (known: {self.KINDS})")
        self.kind = kind
        self.metric = metric or self.DEFAULT_METRICS.get(kind)
        if self.metric is None:
            raise ValueError(f"rule kind {kind!r} requires an explicit metric=")
        self.labels = dict(labels or {})
        self.name = name or (
            self.kind
            + ("[" + ",".join(f"{k}={v}" for k, v in sorted(self.labels.items())) + "]"
               if self.labels else "")
        )
        self.threshold = None if threshold is None else float(threshold)
        self.budget = None if budget is None else float(budget)
        self.horizon_steps = int(horizon_steps)
        self.window = int(window)
        self.min_samples = max(1, int(min_samples))
        self.severity = severity
        self.description = description
        if kind == "epsilon_burn_rate" and self.budget is None:
            raise ValueError("epsilon_burn_rate requires budget=")
        if kind in self.WINDOW_KINDS and self.threshold is None:
            raise ValueError(f"{kind} requires threshold=")
        if kind in self.COUNTER_KINDS and self.threshold is None:
            raise ValueError(f"{kind} requires threshold= (max increase per cycle)")

    # --------------------------------------------------------------- config
    def to_dict(self) -> dict:
        out = {
            "kind": self.kind,
            "name": self.name,
            "metric": self.metric,
            "severity": self.severity,
            "window": self.window,
            "min_samples": self.min_samples,
            "horizon_steps": self.horizon_steps,
        }
        if self.labels:
            out["labels"] = dict(self.labels)
        if self.threshold is not None:
            out["threshold"] = self.threshold
        if self.budget is not None:
            out["budget"] = self.budget
        if self.description:
            out["description"] = self.description
        return out

    # ----------------------------------------------------------- evaluation
    def evaluate(self, registry, last_counters: dict) -> dict:
        """One evaluation → a JSON-safe verdict.

        ``last_counters`` is the monitor's per-rule memory of counter
        values at the previous evaluation (for the delta rules).
        """
        if self.kind in self.COUNTER_KINDS:
            return self._evaluate_counter(registry, last_counters)
        samples = registry.gauge(self.metric, self.labels).samples()
        samples = samples[-self.window:]
        verdict = {
            "rule": self.name,
            "kind": self.kind,
            "metric": self.metric,
            "labels": dict(self.labels),
            "severity": self.severity,
            "firing": False,
            "value": None,
            "threshold": self.threshold,
            "step": samples[-1][0] if samples else None,
        }
        if len(samples) < self.min_samples:
            return verdict
        if self.kind == "epsilon_burn_rate":
            return self._evaluate_burn_rate(samples, verdict)
        mean = statistics.fmean(v for _, v in samples)
        verdict["value"] = mean
        verdict["firing"] = mean > self.threshold
        return verdict

    def _evaluate_burn_rate(self, samples, verdict: dict) -> dict:
        (s0, v0), (s1, v1) = samples[0], samples[-1]
        verdict["threshold"] = self.budget
        verdict["value"] = v1
        if s1 <= s0:
            return verdict
        rate = (v1 - v0) / (s1 - s0)
        projected = v1 + rate * self.horizon_steps
        verdict["burn_rate"] = rate
        verdict["projected"] = projected
        verdict["horizon_steps"] = self.horizon_steps
        verdict["firing"] = rate > 0 and projected > self.budget
        return verdict

    def _evaluate_counter(self, registry, last_counters: dict) -> dict:
        current = registry.counter(self.metric, self.labels).value
        previous = last_counters.get(self.name)
        last_counters[self.name] = current
        delta = 0.0 if previous is None else current - previous
        return {
            "rule": self.name,
            "kind": self.kind,
            "metric": self.metric,
            "labels": dict(self.labels),
            "severity": self.severity,
            "firing": previous is not None and delta > self.threshold,
            "value": delta,
            "threshold": self.threshold,
            "step": None,
        }


def rule_from_dict(spec: dict) -> AlertRule:
    """Build a rule from its declarative dict form (JSON rule files)."""
    spec = dict(spec)
    kind = spec.pop("kind")
    return AlertRule(kind, **spec)


def default_training_rules(
    *,
    clip_threshold: float = 0.95,
    noise_ceiling: float = 8.0,
    angular_baseline: float | None = None,
    retry_limit: float = 4,
    fallback_limit: float = 0,
    window: int = 16,
) -> list[AlertRule]:
    """The standard rule set for a single training run.

    ``angular_baseline`` defaults to ``pi/2`` (noise at right angles to
    the signal — the DP-SGD expectation in high dimension); pass the
    measured DP-SGD mean to alert on GeoDP regressing past its baseline.
    """
    import math

    if angular_baseline is None:
        angular_baseline = math.pi / 2
    return [
        AlertRule("clip_saturation", threshold=clip_threshold, window=window),
        AlertRule("noise_floor", threshold=noise_ceiling, window=window),
        AlertRule("angular_regression", threshold=angular_baseline, window=window),
        AlertRule("retry_spike", threshold=retry_limit),
        AlertRule("fallback_storm", threshold=fallback_limit),
    ]


class HealthMonitor:
    """Evaluates alert rules against a registry; annotates rising edges.

    The monitor keeps edge state per rule so an alert fires once per
    transition (quiet → firing), not once per evaluation.  On a rising
    edge it:

    * increments the ``alerts_fired`` counter (labelled by rule),
    * calls ``annotator(verdict)`` when provided, else annotates
      ``ledger`` directly via ``record_annotation(kind="alert")``.

    ``alert_firing{rule=...}`` gauges track the *current* state (1/0) on
    every evaluation, so a scrape always shows what is firing now.
    """

    def __init__(
        self,
        registry,
        rules=(),
        *,
        ledger=None,
        accountant=None,
        annotator=None,
    ):
        self.registry = registry
        self.rules: list[AlertRule] = list(rules)
        self.ledger = ledger
        self.accountant = accountant
        self.annotator = annotator
        self._was_firing: dict[str, bool] = {}
        self._last_counters: dict[str, float] = {}
        self._active: dict[str, dict] = {}
        self.fired: list[dict] = []

    def add_rule(self, rule: AlertRule) -> None:
        self.rules.append(rule)

    def set_rules(self, rules) -> None:
        self.rules = list(rules)
        for name in list(self._was_firing):
            if not any(r.name == name for r in self.rules):
                del self._was_firing[name]
                self._active.pop(name, None)

    # ----------------------------------------------------------- evaluation
    def evaluate(self, *, step: int | None = None) -> list[dict]:
        """Run every rule once; returns the newly-fired verdicts."""
        self.registry.run_collectors()
        fired_now: list[dict] = []
        for rule in self.rules:
            verdict = rule.evaluate(self.registry, self._last_counters)
            if step is not None:
                verdict["evaluated_at_step"] = int(step)
            firing = bool(verdict["firing"])
            self.registry.set_gauge(
                "alert_firing",
                1.0 if firing else 0.0,
                step=step,
                labels={"rule": rule.name},
            )
            was = self._was_firing.get(rule.name, False)
            self._was_firing[rule.name] = firing
            if firing:
                self._active[rule.name] = verdict
                if not was:
                    self.registry.inc("alerts_fired", labels={"rule": rule.name})
                    self.fired.append(verdict)
                    fired_now.append(verdict)
                    self._annotate(verdict)
            else:
                self._active.pop(rule.name, None)
        return fired_now

    def _annotate(self, verdict: dict) -> None:
        if self.annotator is not None:
            self.annotator(verdict)
        elif self.ledger is not None:
            self.ledger.record_annotation(
                kind="alert",
                accountant=self.accountant,
                meta=alert_meta(verdict),
            )

    # -------------------------------------------------------------- reading
    def firing(self) -> list[dict]:
        """Currently-active verdicts, sorted by rule name."""
        return [self._active[name] for name in sorted(self._active)]

    def state(self) -> dict:
        """JSON-safe monitor state for ``/alerts.json`` and snapshots."""
        return {
            "active": self.firing(),
            "fired_total": len(self.fired),
            "rules": [rule.to_dict() for rule in self.rules],
        }

    def watch(self, recorder) -> None:
        """Evaluate after every closed step of ``recorder``.

        Binds the registry to the recorder if not already bound, so a
        single call wires a Trainer run for live monitoring.
        """
        if getattr(recorder, "_registry", None) is not self.registry:
            recorder.bind_registry(self.registry)
        recorder.add_end_step_hook(
            lambda trace: self.evaluate(step=trace.iteration)
        )


def alert_meta(verdict: dict) -> dict:
    """The ledger-annotation payload for one fired verdict."""
    meta = {"alert": verdict["rule"], "kind": verdict["kind"]}
    for key in (
        "metric", "labels", "severity", "value", "threshold",
        "burn_rate", "projected", "horizon_steps", "step", "evaluated_at_step",
    ):
        if verdict.get(key) is not None:
            meta[key] = verdict[key]
    return meta
