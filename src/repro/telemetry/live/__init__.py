"""Live operational observability: registry, exporters, health, profiler.

See ``docs/observability.md`` ("Live operations") for the operator view:

* :class:`MetricsRegistry` — thread-safe counters / windowed gauges /
  fixed-bucket histograms every subsystem publishes into;
* :func:`render_prometheus`, :class:`MetricsExporter`,
  :class:`JsonlTimeSeries` — scrapeable endpoint and bounded headless
  stream;
* :class:`AlertRule`, :class:`HealthMonitor` — declarative DP-native
  alerting annotated into the hash-chained release ledger;
* :class:`SamplingProfiler` — SIGPROF sampling with collapsed-stack and
  Chrome-trace output;
* ``repro monitor`` (:mod:`repro.telemetry.live.monitor`) — live
  terminal view over either transport.
"""

from repro.telemetry.live.exporter import (
    JsonlTimeSeries,
    MetricsExporter,
    render_prometheus,
)
from repro.telemetry.live.health import (
    AlertRule,
    HealthMonitor,
    default_training_rules,
    rule_from_dict,
)
from repro.telemetry.live.profiler import SamplingProfiler
from repro.telemetry.live.registry import (
    DEFAULT_LATENCY_BUCKETS,
    HISTOGRAM_SERIES,
    MetricsRegistry,
)

__all__ = [
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
    "HISTOGRAM_SERIES",
    "MetricsExporter",
    "JsonlTimeSeries",
    "render_prometheus",
    "AlertRule",
    "HealthMonitor",
    "default_training_rules",
    "rule_from_dict",
    "SamplingProfiler",
]
