"""Thread-safe metrics registry for live export.

The :class:`MetricsRegistry` is the aggregation point the live
observability layer scrapes.  It holds three metric kinds:

* **counters** — monotone event counts (``inc``);
* **gauges** — last-value samples with a bounded ``(step, value)``
  window so alert rules can evaluate sliding-window statistics;
* **histograms** — value distributions over **fixed bucket
  boundaries**.  Because the boundaries are fixed per metric name (not
  derived from observed data), bucket counts are plain sums and merging
  per-worker registries is commutative and associative: applied in job
  index order the merged output is independent of worker count, exactly
  like :meth:`repro.telemetry.MetricsRecorder.merge_state`.

Publishers do not talk to the registry directly; they publish through a
:class:`~repro.telemetry.MetricsRecorder` bound with
``recorder.bind_registry(registry)`` (optimizers, trainer, runtime
shipback) or through registered *collectors* — callbacks invoked at
scrape/evaluation time that read live subsystem state (backend arena,
thread pool, service queues) and set gauges.

Everything here is pure stdlib and never touches random state: binding
a registry to an instrumented run keeps the run bit-identical.
"""

from __future__ import annotations

import bisect
import math
import threading
from collections import deque
from collections.abc import Callable, Iterable

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
    "HISTOGRAM_SERIES",
]

#: Power-of-ten-ish latency boundaries (seconds).  Applied to every
#: series whose name ends in ``_seconds`` (the repo-wide wall-clock
#: naming convention).
DEFAULT_LATENCY_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

_FRACTION_BUCKETS = tuple(round(k / 10.0, 1) for k in range(1, 11))
_RATIO_BUCKETS = (0.05, 0.1, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0)
_ANGLE_BUCKETS = tuple(round(math.pi * k / 16.0, 9) for k in range(1, 17))

#: Diagnostic series that additionally feed a histogram when observed
#: through :meth:`MetricsRegistry.observe_series`.  Boundaries are part
#: of the public contract: changing them changes merged output.
HISTOGRAM_SERIES: dict[str, tuple[float, ...]] = {
    "clipped_fraction": _FRACTION_BUCKETS,
    "noise_to_signal": _RATIO_BUCKETS,
    "angular_deviation": _ANGLE_BUCKETS,
    "pre_clip_norm_mean": (0.1, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0),
}

#: Default number of ``(step, value)`` samples a gauge retains for
#: sliding-window alert rules.
DEFAULT_WINDOW = 256


def _label_key(labels: dict[str, str] | None) -> tuple[tuple[str, str], ...]:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """Monotone float counter."""

    kind = "counter"
    __slots__ = ("name", "labels", "value", "_lock")

    def __init__(self, name: str, labels: tuple, lock: threading.RLock):
        self.name = name
        self.labels = labels
        self.value = 0.0
        self._lock = lock

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += float(amount)


class Gauge:
    """Last-value sample plus a bounded ``(step, value)`` window."""

    kind = "gauge"
    __slots__ = ("name", "labels", "value", "step", "window", "_lock")

    def __init__(
        self,
        name: str,
        labels: tuple,
        lock: threading.RLock,
        window: int = DEFAULT_WINDOW,
    ):
        self.name = name
        self.labels = labels
        self.value: float | None = None
        self.step: int | None = None
        self.window: deque[tuple[int, float]] = deque(maxlen=window)
        self._lock = lock

    def set(self, value: float, *, step: int | None = None) -> None:
        with self._lock:
            value = float(value)
            if step is None:
                step = self.step + 1 if self.step is not None else 0
            step = int(step)
            if self.step is None or step >= self.step:
                self.value = value
                self.step = step
            if not self.window or step > self.window[-1][0]:
                self.window.append((step, value))
            elif self.window[-1][0] == step:
                self.window[-1] = (step, value)
            else:
                # Out-of-order publish (worker states merged shard by
                # shard): keep the window sorted by step so the merged
                # window is independent of merge order; the window is
                # then always the newest ``maxlen`` points by step.
                items = list(self.window)
                steps = [s for s, _ in items]
                i = bisect.bisect_left(steps, step)
                if i < len(items) and items[i][0] == step:
                    items[i] = (step, value)
                else:
                    items.insert(i, (step, value))
                maxlen = self.window.maxlen
                if maxlen is not None and len(items) > maxlen:
                    items = items[-maxlen:]
                self.window = deque(items, maxlen=maxlen)

    def samples(self) -> list[tuple[int, float]]:
        with self._lock:
            return list(self.window)


class Histogram:
    """Fixed-boundary histogram (cumulative rendering happens at export)."""

    kind = "histogram"
    __slots__ = ("name", "labels", "bounds", "bucket_counts", "sum", "count", "_lock")

    def __init__(
        self, name: str, labels: tuple, bounds: Iterable[float], lock: threading.RLock
    ):
        bounds = tuple(float(b) for b in bounds)
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError(f"histogram bounds must be strictly increasing: {bounds}")
        self.name = name
        self.labels = labels
        self.bounds = bounds
        #: Per-interval counts; one extra slot for the +Inf overflow.
        self.bucket_counts = [0] * (len(bounds) + 1)
        self.sum = 0.0
        self.count = 0
        self._lock = lock

    def observe(self, value: float) -> None:
        with self._lock:
            value = float(value)
            lo, hi = 0, len(self.bounds)
            while lo < hi:
                mid = (lo + hi) // 2
                if value <= self.bounds[mid]:
                    hi = mid
                else:
                    lo = mid + 1
            self.bucket_counts[lo] += 1
            self.sum += value
            self.count += 1

    def cumulative(self) -> list[int]:
        """Cumulative bucket counts including the ``+Inf`` bucket."""
        with self._lock:
            out, running = [], 0
            for c in self.bucket_counts:
                running += c
                out.append(running)
            return out


class MetricsRegistry:
    """Thread-safe registry of counters, gauges, and histograms.

    One registry serves one process (a trainer run or a
    :class:`~repro.service.BudgetServer`); workers ship recorder state
    back to the parent, whose bound registry mirrors the merge, so the
    registry itself never crosses process boundaries.
    """

    def __init__(self, *, gauge_window: int = DEFAULT_WINDOW):
        self._lock = threading.RLock()
        self._counters: dict[tuple, Counter] = {}
        self._gauges: dict[tuple, Gauge] = {}
        self._histograms: dict[tuple, Histogram] = {}
        self._collectors: list[Callable[[MetricsRegistry], None]] = []
        self._gauge_window = int(gauge_window)

    # ----------------------------------------------------------- accessors
    def counter(self, name: str, labels: dict[str, str] | None = None) -> Counter:
        key = (name, _label_key(labels))
        with self._lock:
            metric = self._counters.get(key)
            if metric is None:
                metric = self._counters[key] = Counter(name, key[1], self._lock)
            return metric

    def gauge(self, name: str, labels: dict[str, str] | None = None) -> Gauge:
        key = (name, _label_key(labels))
        with self._lock:
            metric = self._gauges.get(key)
            if metric is None:
                metric = self._gauges[key] = Gauge(
                    name, key[1], self._lock, window=self._gauge_window
                )
            return metric

    def histogram(
        self,
        name: str,
        bounds: Iterable[float],
        labels: dict[str, str] | None = None,
    ) -> Histogram:
        key = (name, _label_key(labels))
        with self._lock:
            metric = self._histograms.get(key)
            if metric is None:
                metric = self._histograms[key] = Histogram(
                    name, key[1], bounds, self._lock
                )
            elif metric.bounds != tuple(float(b) for b in bounds):
                raise ValueError(
                    f"histogram {name!r} re-registered with different bounds"
                )
            return metric

    # ----------------------------------------------------------- publishing
    def inc(
        self, name: str, amount: float = 1.0, labels: dict[str, str] | None = None
    ) -> None:
        self.counter(name, labels).inc(amount)

    def set_gauge(
        self,
        name: str,
        value: float,
        *,
        step: int | None = None,
        labels: dict[str, str] | None = None,
    ) -> None:
        self.gauge(name, labels).set(value, step=step)

    def observe_series(
        self,
        name: str,
        value: float,
        *,
        step: int | None = None,
        labels: dict[str, str] | None = None,
    ) -> None:
        """Route one recorder series point into the registry.

        Every series becomes a windowed gauge; series with registered
        fixed boundaries (:data:`HISTOGRAM_SERIES`, plus the
        ``*_seconds`` latency convention) additionally feed a histogram.
        """
        self.gauge(name, labels).set(value, step=step)
        bounds = HISTOGRAM_SERIES.get(name)
        if bounds is None and name.endswith("_seconds"):
            bounds = DEFAULT_LATENCY_BUCKETS
        if bounds is not None:
            self.histogram(name, bounds, labels).observe(value)

    def register_collector(self, fn: Callable[[MetricsRegistry], None]) -> None:
        """Register a callback run at scrape/evaluation time."""
        with self._lock:
            self._collectors.append(fn)

    def run_collectors(self) -> None:
        with self._lock:
            collectors = list(self._collectors)
        for fn in collectors:
            fn(self)

    # ------------------------------------------------------------- snapshot
    def collect(self, *, run_collectors: bool = True) -> dict:
        """A JSON-safe snapshot of every metric, deterministically sorted."""
        if run_collectors:
            self.run_collectors()
        with self._lock:
            counters = [
                {"name": m.name, "labels": dict(m.labels), "value": m.value}
                for _, m in sorted(self._counters.items())
            ]
            gauges = [
                {
                    "name": m.name,
                    "labels": dict(m.labels),
                    "value": m.value,
                    "step": m.step,
                    "window": [[s, v] for s, v in m.window],
                }
                for _, m in sorted(self._gauges.items())
                if m.value is not None
            ]
            histograms = [
                {
                    "name": m.name,
                    "labels": dict(m.labels),
                    "bounds": list(m.bounds),
                    "bucket_counts": list(m.bucket_counts),
                    "sum": m.sum,
                    "count": m.count,
                }
                for _, m in sorted(self._histograms.items())
            ]
        return {"counters": counters, "gauges": gauges, "histograms": histograms}

    # -------------------------------------------------------- merge/restore
    def state_dict(self) -> dict:
        """Mergeable registry contents (collectors are not run)."""
        return self.collect(run_collectors=False)

    def load_state_dict(self, state: dict) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
        self.merge_state(state)

    def merge_state(self, state: dict) -> None:
        """Fold another registry's snapshot into this one.

        Counter values and histogram bucket counts are summed (both
        commutative); gauge windows merge by step (out-of-order points
        are inserted in place), so the merged snapshot is independent of
        worker count and of the order worker states arrive in.
        """
        for entry in state.get("counters", ()):
            self.inc(entry["name"], entry["value"], labels=entry.get("labels"))
        for entry in state.get("gauges", ()):
            gauge = self.gauge(entry["name"], entry.get("labels"))
            for step, value in entry.get("window", ()):
                gauge.set(value, step=step)
            if entry.get("value") is not None and not entry.get("window"):
                gauge.set(entry["value"], step=entry.get("step"))
        for entry in state.get("histograms", ()):
            hist = self.histogram(entry["name"], entry["bounds"], entry.get("labels"))
            with hist._lock:
                for i, c in enumerate(entry["bucket_counts"]):
                    hist.bucket_counts[i] += int(c)
                hist.sum += float(entry["sum"])
                hist.count += int(entry["count"])

    def deterministic_state(self) -> dict:
        """Snapshot with wall-clock metrics removed (cf. recorder).

        Drops ``*_seconds`` gauges/histograms so the projection is
        bit-identical across reruns and worker counts.
        """
        state = self.collect(run_collectors=False)
        for kind in ("gauges", "histograms"):
            state[kind] = [
                entry
                for entry in state[kind]
                if not entry["name"].endswith("_seconds")
            ]
        return state

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"MetricsRegistry(counters={len(self._counters)}, "
                f"gauges={len(self._gauges)}, histograms={len(self._histograms)})"
            )
