"""Exporters for the live metrics registry.

Two transports cover the two operational modes:

* :class:`MetricsExporter` — a stdlib :mod:`http.server` endpoint
  serving the registry in Prometheus text exposition format 0.0.4 at
  ``/metrics`` plus JSON snapshots at ``/state.json`` and
  ``/alerts.json``.  Opt-in: constructed only when a port is given
  (``BudgetServer(metrics_port=...)`` / ``--metrics-port``); ``port=0``
  binds an ephemeral port (useful for tests).
* :class:`JsonlTimeSeries` — a bounded-size JSONL appender for headless
  runs with no scraper: each ``append`` writes one snapshot line and the
  file is compacted down to its newest half whenever it exceeds
  ``max_bytes``, so long-horizon runs cannot fill the disk.

Rendering is split out as :func:`render_prometheus` so tests and the
JSONL path can use it without a socket.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path

from repro.telemetry.live.registry import MetricsRegistry
from repro.utils.serialization import atomic_write_bytes

__all__ = ["render_prometheus", "MetricsExporter", "JsonlTimeSeries"]

#: HELP strings for well-known metric families; anything else gets a
#: generic line (HELP is optional in the format but nice for operators).
METRIC_HELP = {
    "clipped_fraction": "Fraction of per-example gradients clipped this step.",
    "noise_to_signal": "Injected noise norm over post-clip gradient norm.",
    "angular_deviation": "Angle (radians) between noisy and clean gradient.",
    "service_tenant_epsilon_spent": "Replay-derived cumulative epsilon per tenant.",
    "service_tenant_epsilon_remaining": "Budget minus spent epsilon per tenant.",
    "alert_firing": "1 while the named alert rule is firing, else 0.",
}


def _sanitize(name: str) -> str:
    out = []
    for i, ch in enumerate(name):
        if ch.isascii() and (ch.isalpha() or ch == "_" or ch == ":" or (ch.isdigit() and i > 0)):
            out.append(ch)
        else:
            out.append("_")
    return "".join(out)


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _labels_text(labels: dict[str, str], extra: str = "") -> str:
    parts = [f'{_sanitize(k)}="{_escape_label(str(v))}"' for k, v in sorted(labels.items())]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    return repr(float(value))


def render_prometheus(registry: MetricsRegistry) -> str:
    """The registry in Prometheus text exposition format 0.0.4.

    Collectors run first, so scrapes see live subsystem state.  Families
    are emitted in sorted order with one ``# HELP``/``# TYPE`` header
    each; histograms expand to cumulative ``_bucket`` series plus
    ``_sum``/``_count``.
    """
    snapshot = registry.collect()
    lines: list[str] = []
    families: dict[str, tuple[str, list[str]]] = {}

    def family(name: str, kind: str) -> list[str]:
        entry = families.get(name)
        if entry is None:
            entry = families[name] = (kind, [])
        return entry[1]

    histogram_names = {_sanitize(e["name"]) for e in snapshot["histograms"]}

    for entry in snapshot["counters"]:
        name = _sanitize(entry["name"])
        family(name, "counter").append(
            f"{name}{_labels_text(entry['labels'])} {_format_value(entry['value'])}"
        )
    for entry in snapshot["gauges"]:
        name = _sanitize(entry["name"])
        if name in histogram_names:
            # A series that feeds a histogram also keeps a last-value
            # gauge; one Prometheus family cannot have two types, so the
            # gauge view is exported under a ``_last`` suffix.
            name += "_last"
        family(name, "gauge").append(
            f"{name}{_labels_text(entry['labels'])} {_format_value(entry['value'])}"
        )
    for entry in snapshot["histograms"]:
        name = _sanitize(entry["name"])
        rows = family(name, "histogram")
        running = 0
        for bound, count in zip(
            list(entry["bounds"]) + [float("inf")], entry["bucket_counts"]
        ):
            running += int(count)
            le = "+Inf" if bound == float("inf") else _format_value(bound)
            labels = _labels_text(entry["labels"], 'le="' + le + '"')
            rows.append(f"{name}_bucket{labels} {running}")
        rows.append(
            f"{name}_sum{_labels_text(entry['labels'])} {_format_value(entry['sum'])}"
        )
        rows.append(f"{name}_count{_labels_text(entry['labels'])} {int(entry['count'])}")

    for name in sorted(families):
        kind, rows = families[name]
        help_text = METRIC_HELP.get(name, f"repro {kind} {name}.")
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kind}")
        lines.extend(rows)
    return "\n".join(lines) + "\n"


class _Handler(BaseHTTPRequestHandler):
    exporter: "MetricsExporter"  # set on the subclass per server

    def _send(self, status: int, content_type: str, body: bytes) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self):  # noqa: N802 - http.server API
        exporter = self.exporter
        try:
            if self.path in ("/metrics", "/"):
                body = render_prometheus(exporter.registry).encode()
                self._send(200, "text/plain; version=0.0.4; charset=utf-8", body)
            elif self.path == "/state.json":
                body = json.dumps(exporter.snapshot()).encode()
                self._send(200, "application/json", body)
            elif self.path == "/alerts.json":
                body = json.dumps(exporter.alerts()).encode()
                self._send(200, "application/json", body)
            else:
                self._send(404, "text/plain", b"not found\n")
        except BrokenPipeError:  # scraper went away mid-response
            pass

    def log_message(self, fmt, *args):  # silence per-request stderr noise
        pass


class MetricsExporter:
    """Background HTTP endpoint serving one registry (and its alerts)."""

    def __init__(
        self,
        registry: MetricsRegistry,
        *,
        port: int = 0,
        host: str = "127.0.0.1",
        monitor=None,
        snapshot_extra=None,
    ):
        self.registry = registry
        self.monitor = monitor
        self._snapshot_extra = snapshot_extra
        handler = type("BoundHandler", (_Handler,), {"exporter": self})
        self._server = ThreadingHTTPServer((host, int(port)), handler)
        self._server.daemon_threads = True
        self._thread: threading.Thread | None = None

    @property
    def port(self) -> int:
        return self._server.server_address[1]

    @property
    def address(self) -> str:
        host, port = self._server.server_address[:2]
        return f"http://{host}:{port}"

    def snapshot(self) -> dict:
        payload = {"metrics": self.registry.collect()}
        if self.monitor is not None:
            payload["alerts"] = self.monitor.state()
        if self._snapshot_extra is not None:
            payload.update(self._snapshot_extra())
        return payload

    def alerts(self) -> dict:
        if self.monitor is None:
            return {"active": [], "counts": {}}
        return self.monitor.state()

    def start(self) -> "MetricsExporter":
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._server.serve_forever,
                name="repro-metrics-exporter",
                daemon=True,
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is not None:
            self._server.shutdown()
            self._thread.join(timeout=5)
            self._thread = None
        self._server.server_close()

    def __enter__(self):
        return self.start()

    def __exit__(self, *exc):
        self.stop()


class JsonlTimeSeries:
    """Bounded-size JSONL snapshot appender for headless runs.

    Each :meth:`append` writes one compact JSON line.  When the file
    grows past ``max_bytes`` it is atomically compacted to its newest
    half, so the tail of the time series is always preserved and the
    file size stays bounded.
    """

    def __init__(self, path, *, max_bytes: int = 4 * 2**20):
        self.path = Path(path)
        self.max_bytes = int(max_bytes)
        self._lock = threading.Lock()
        self.path.parent.mkdir(parents=True, exist_ok=True)

    def append(self, snapshot: dict) -> None:
        line = json.dumps(snapshot, separators=(",", ":")) + "\n"
        with self._lock:
            with open(self.path, "a", encoding="utf-8") as fh:
                fh.write(line)
            if self.path.stat().st_size > self.max_bytes:
                self._compact()

    def _compact(self) -> None:
        lines = self.path.read_text(encoding="utf-8").splitlines(keepends=True)
        keep = lines[len(lines) // 2:]
        atomic_write_bytes(self.path, "".join(keep).encode("utf-8"))

    def tail(self, n: int = 1) -> list[dict]:
        """The newest ``n`` snapshots (empty list if the file is absent)."""
        if not self.path.exists():
            return []
        lines = self.path.read_text(encoding="utf-8").splitlines()
        out = []
        for line in lines[-n:]:
            line = line.strip()
            if line:
                out.append(json.loads(line))
        return out
