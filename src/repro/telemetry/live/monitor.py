"""``repro monitor`` — live terminal view of a running server or run.

Reads snapshots either from a :class:`~repro.telemetry.live.exporter.
MetricsExporter` endpoint (``--endpoint http://host:port``, fetching
``/state.json``) or from a :class:`JsonlTimeSeries` file written by a
headless run (``--jsonl path``), and renders tenants, ε trajectories,
phase times, and firing alerts.  ``--once`` prints a single frame (used
by tests and for piping); otherwise the view refreshes every
``--interval`` seconds until interrupted.

Rendering is a pure function of the snapshot dict
(:func:`render_monitor`), so the view is testable without sockets.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import urllib.request

__all__ = ["render_monitor", "fetch_snapshot", "main"]

_SPARK = "▁▂▃▄▅▆▇█"


def _sparkline(values, width: int = 24) -> str:
    values = list(values)[-width:]
    if not values:
        return ""
    lo, hi = min(values), max(values)
    if hi <= lo:
        return _SPARK[0] * len(values)
    span = hi - lo
    return "".join(_SPARK[int((v - lo) / span * (len(_SPARK) - 1))] for v in values)


def _gauge_map(snapshot: dict, name: str) -> dict[str, dict]:
    """``label-value -> gauge entry`` for single-label gauge families."""
    out = {}
    for entry in snapshot.get("metrics", {}).get("gauges", ()):
        if entry["name"] != name:
            continue
        labels = entry.get("labels", {})
        key = next(iter(labels.values()), "")
        out[key] = entry
    return out


def _counter_value(snapshot: dict, name: str) -> float | None:
    for entry in snapshot.get("metrics", {}).get("counters", ()):
        if entry["name"] == name and not entry.get("labels"):
            return entry["value"]
    return None


def render_monitor(snapshot: dict, *, width: int = 72) -> str:
    """One monitor frame (plain text) from a ``/state.json`` snapshot."""
    lines: list[str] = []
    rule = "─" * width
    service = snapshot.get("service", {})
    header = "repro monitor"
    if service.get("seq") is not None:
        header += f" · seq {service['seq']}"
    counts = []
    for name, label in (
        ("service_jobs_admitted", "admitted"),
        ("service_jobs_refused", "refused"),
        ("service_jobs_done", "done"),
    ):
        value = _counter_value(snapshot, name)
        if value is not None:
            counts.append(f"{label} {value:g}")
    if counts:
        header += " · " + ", ".join(counts)
    lines.append(header)
    lines.append(rule)

    spent = _gauge_map(snapshot, "service_tenant_epsilon_spent")
    remaining = _gauge_map(snapshot, "service_tenant_epsilon_remaining")
    if spent:
        lines.append("tenants:")
        lines.append(
            f"  {'tenant':<14} {'ε spent':>10} {'ε left':>10}  trajectory"
        )
        for tenant in sorted(spent):
            entry = spent[tenant]
            left = remaining.get(tenant, {}).get("value")
            left_text = f"{left:10.4f}" if left is not None else " " * 10
            spark = _sparkline([v for _, v in entry.get("window", ())])
            lines.append(
                f"  {tenant:<14} {entry['value']:10.4f} {left_text}  {spark}"
            )
        lines.append(rule)

    phases = _gauge_map(snapshot, "service_phase_seconds")
    if phases:
        lines.append("phase times (cumulative seconds):")
        for phase in sorted(phases):
            lines.append(f"  {phase:<24} {phases[phase]['value']:10.4f}")
        lines.append(rule)

    alerts = snapshot.get("alerts", {})
    active = alerts.get("active", [])
    if active:
        lines.append(f"FIRING ALERTS ({len(active)}):")
        for verdict in active:
            value = verdict.get("value")
            threshold = verdict.get("threshold")
            detail = ""
            if value is not None and threshold is not None:
                detail = f"  value={value:.4g} threshold={threshold:.4g}"
            if verdict.get("projected") is not None:
                detail += f" projected={verdict['projected']:.4g}"
            lines.append(f"  !! {verdict['rule']} [{verdict.get('severity', '?')}]{detail}")
    else:
        lines.append("alerts: none firing")
    lines.append(rule)
    return "\n".join(lines) + "\n"


def fetch_snapshot(endpoint: str, timeout: float = 5.0) -> dict:
    """GET ``<endpoint>/state.json`` and parse it."""
    url = endpoint.rstrip("/") + "/state.json"
    with urllib.request.urlopen(url, timeout=timeout) as resp:
        return json.loads(resp.read().decode("utf-8"))


def _read_jsonl(path: str) -> dict:
    from repro.telemetry.live.exporter import JsonlTimeSeries

    snapshots = JsonlTimeSeries(path).tail(1)
    if not snapshots:
        raise FileNotFoundError(f"no snapshots in {path}")
    return snapshots[0]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro monitor",
        description="Live terminal view of a metrics endpoint or JSONL stream.",
    )
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument(
        "--endpoint",
        help="metrics endpoint base URL (e.g. http://127.0.0.1:9464)",
    )
    source.add_argument(
        "--jsonl", help="JSONL time-series file written by a headless run"
    )
    parser.add_argument(
        "--interval", type=float, default=2.0, help="refresh period in seconds"
    )
    parser.add_argument(
        "--once", action="store_true", help="print one frame and exit"
    )
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    while True:
        try:
            snapshot = (
                fetch_snapshot(args.endpoint)
                if args.endpoint
                else _read_jsonl(args.jsonl)
            )
        except (OSError, ValueError) as exc:
            print(f"monitor: cannot read snapshot: {exc}", file=sys.stderr)
            if args.once:
                return 1
            time.sleep(args.interval)
            continue
        frame = render_monitor(snapshot)
        if args.once:
            sys.stdout.write(frame)
            return 0
        # Clear-and-home keeps the view stable without curses.
        sys.stdout.write("\x1b[2J\x1b[H" + frame)
        sys.stdout.flush()
        try:
            time.sleep(args.interval)
        except KeyboardInterrupt:
            return 0


if __name__ == "__main__":
    raise SystemExit(main())
