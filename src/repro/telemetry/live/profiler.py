"""Signal-based sampling profiler with flamegraph-compatible output.

:class:`SamplingProfiler` installs a ``SIGPROF`` handler and arms an
interval timer (:func:`signal.setitimer`) at a configurable frequency;
each tick walks the interrupted frame's call stack and accumulates it
into a folded-stack table.  Because sampling rides the OS timer there is
no per-call instrumentation: steady-state overhead is the handler cost
times the frequency, and an un-profiled run is untouched.

Output formats:

* :meth:`save_collapsed` — Brendan Gregg collapsed/folded format
  (``frame;frame;frame count`` per line), directly consumable by
  ``flamegraph.pl`` / ``inferno`` / speedscope;
* :meth:`chrome_events` / :meth:`merge_into_chrome_trace` — trace-event
  JSON that folds the samples into an existing
  :meth:`repro.telemetry.Tracer.chrome_trace` payload, so one Perfetto
  view shows spans and stacks together.

Timer choice: ``timer="prof"`` (default) counts CPU time — ideal for the
numeric hot path; ``timer="real"`` counts wall clock — use it to catch
blocking I/O or lock waits.  Signals are delivered to the main thread
only; attaching from a non-main thread raises at ``start()``.
"""

from __future__ import annotations

import signal
import threading
import time
from pathlib import Path

from repro.utils.serialization import atomic_write_bytes

__all__ = ["SamplingProfiler"]

_TIMERS = {
    "prof": (signal.ITIMER_PROF, signal.SIGPROF),
    "real": (signal.ITIMER_REAL, signal.SIGALRM),
}


class SamplingProfiler:
    """Collects folded call stacks from a periodic profiling signal."""

    def __init__(
        self,
        hz: float = 97.0,
        *,
        timer: str = "prof",
        max_depth: int = 64,
        max_raw_samples: int = 20_000,
        skip_frames: int = 1,
    ):
        if timer not in _TIMERS:
            raise ValueError(f"timer must be one of {sorted(_TIMERS)}, got {timer!r}")
        if hz <= 0:
            raise ValueError("hz must be positive")
        self.hz = float(hz)
        self.timer = timer
        self.max_depth = int(max_depth)
        self.max_raw_samples = int(max_raw_samples)
        #: Handler frames to drop from the top of each stack (the handler
        #: itself); raise when wrapping the profiler in more layers.
        self.skip_frames = int(skip_frames)
        #: ``"frame;frame;..." -> count`` folded stacks (leaf last).
        self.folded: dict[str, int] = {}
        self.sample_count = 0
        self.dropped = 0
        #: Bounded ring of raw ``(t_seconds, (frame, ...))`` samples kept
        #: for the Chrome-trace export.
        self._raw: list[tuple[float, tuple[str, ...]]] = []
        self._active = False
        self._prev_handler = None
        self._t0 = 0.0

    # ------------------------------------------------------------- sampling
    def _handle(self, signum, frame) -> None:
        stack: list[str] = []
        depth = 0
        while frame is not None and depth < self.max_depth + self.skip_frames:
            if depth >= self.skip_frames or frame.f_code.co_name != "_handle":
                code = frame.f_code
                stack.append(f"{code.co_name} ({code.co_filename}:{code.co_firstlineno})")
            frame = frame.f_back
            depth += 1
        stack.reverse()
        key = ";".join(stack) if stack else "<no stack>"
        self.folded[key] = self.folded.get(key, 0) + 1
        self.sample_count += 1
        if len(self._raw) < self.max_raw_samples:
            self._raw.append((time.perf_counter() - self._t0, tuple(stack)))
        else:
            self.dropped += 1

    # ------------------------------------------------------------ lifecycle
    def start(self) -> "SamplingProfiler":
        if self._active:
            raise RuntimeError("profiler already running")
        if threading.current_thread() is not threading.main_thread():
            raise RuntimeError(
                "SamplingProfiler must be started from the main thread "
                "(signal delivery is main-thread only)"
            )
        itimer, signum = _TIMERS[self.timer]
        self._t0 = time.perf_counter()
        self._prev_handler = signal.signal(signum, self._handle)
        signal.setitimer(itimer, 1.0 / self.hz, 1.0 / self.hz)
        self._active = True
        return self

    def stop(self) -> "SamplingProfiler":
        if not self._active:
            return self
        itimer, signum = _TIMERS[self.timer]
        signal.setitimer(itimer, 0.0)
        signal.signal(signum, self._prev_handler or signal.SIG_DFL)
        self._prev_handler = None
        self._active = False
        return self

    def __enter__(self):
        return self.start()

    def __exit__(self, *exc):
        self.stop()

    # -------------------------------------------------------------- outputs
    def collapsed(self) -> str:
        """Folded-stack text: ``frame;frame;frame count`` per line."""
        lines = [f"{stack} {count}" for stack, count in sorted(self.folded.items())]
        return "\n".join(lines) + ("\n" if lines else "")

    def save_collapsed(self, path) -> Path:
        path = Path(path)
        atomic_write_bytes(path, self.collapsed().encode("utf-8"))
        return path

    def chrome_events(self, *, pid: int = 0, tid: int = 9999) -> dict:
        """Trace-event ``sample`` ("P") events plus a ``stackFrames`` table."""
        frames: dict[tuple[str, ...], int] = {}
        stack_frames: dict[str, dict] = {}

        def frame_id(prefix: tuple[str, ...]) -> int:
            fid = frames.get(prefix)
            if fid is None:
                fid = frames[prefix] = len(frames) + 1
                entry = {"name": prefix[-1]}
                if len(prefix) > 1:
                    entry["parent"] = str(frame_id(prefix[:-1]))
                stack_frames[str(fid)] = entry
            return fid

        events = [
            {
                "name": "sample",
                "ph": "P",
                "ts": round(t * 1e6, 3),
                "pid": pid,
                "tid": tid,
                "sf": str(frame_id(stack)),
            }
            for t, stack in self._raw
            if stack
        ]
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": f"profiler ({self.timer}, {self.hz:g} Hz)"},
            }
        )
        return {"traceEvents": events, "stackFrames": stack_frames}

    def merge_into_chrome_trace(self, trace: dict) -> dict:
        """Fold the samples into an existing Chrome-trace payload."""
        extra = self.chrome_events()
        merged = dict(trace)
        merged["traceEvents"] = list(trace.get("traceEvents", ())) + extra["traceEvents"]
        stack_frames = dict(trace.get("stackFrames", {}))
        stack_frames.update(extra["stackFrames"])
        merged["stackFrames"] = stack_frames
        return merged

    def summary(self) -> dict:
        """Hot leaves and totals, JSON-safe (for reports/snapshots)."""
        leaves: dict[str, int] = {}
        for stack, count in self.folded.items():
            leaf = stack.rsplit(";", 1)[-1]
            leaves[leaf] = leaves.get(leaf, 0) + count
        top = sorted(leaves.items(), key=lambda kv: (-kv[1], kv[0]))[:10]
        return {
            "samples": self.sample_count,
            "dropped_raw": self.dropped,
            "hz": self.hz,
            "timer": self.timer,
            "top_leaves": [
                {"frame": frame, "samples": count} for frame, count in top
            ],
        }

    def __repr__(self) -> str:
        state = "running" if self._active else "stopped"
        return (
            f"SamplingProfiler({self.hz:g} Hz, timer={self.timer!r}, "
            f"samples={self.sample_count}, {state})"
        )
