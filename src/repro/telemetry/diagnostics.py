"""Geometric diagnostics of DP gradient releases.

These helpers compute the per-step quantities the paper reasons about —
how much clipping bit, how large the injected noise is relative to the
signal, and most importantly the *angular deviation* between the true
(clipped, averaged) gradient and the released noisy gradient.  The paper's
central claim (Theorem 1 / Fig. 1) is that GeoDP's released direction stays
closer to the true direction than classic DP-SGD's at equal budget; with
these diagnostics attached to a recorder that claim becomes a measurable,
testable per-step signal instead of something inferred from final accuracy.
"""

from __future__ import annotations

import numpy as np

from repro.backend import note_backend

__all__ = [
    "clip_diagnostics",
    "release_diagnostics",
    "record_clipping",
    "record_release",
]


def clip_diagnostics(
    per_sample_grads, threshold: float, *, norms=None
) -> dict[str, float]:
    """Clipping statistics of one batch of per-sample gradients.

    Returns the mean and max pre-clip L2 norm and the fraction of samples
    whose norm exceeded ``threshold`` (and were therefore scaled down by
    flat clipping).  An empty batch (Poisson sampling) yields zeros.

    ``norms`` takes precomputed per-sample L2 norms (as returned by
    :meth:`~repro.privacy.clipping.ClippingStrategy.clip_with_norms`) so the
    hot path never walks the ``(B, d)`` matrix twice; without it the norms
    are computed here from ``per_sample_grads``.
    """
    if norms is None:
        grads = np.asarray(per_sample_grads, dtype=np.float64)
        if grads.ndim != 2 or grads.shape[0] == 0:
            return {
                "pre_clip_norm_mean": 0.0,
                "pre_clip_norm_max": 0.0,
                "clipped_fraction": 0.0,
            }
        # Single-pass einsum norms: same values as np.linalg.norm(axis=1)
        # at a fraction of the overhead.
        norms = np.sqrt(np.einsum("ij,ij->i", grads, grads))
    else:
        norms = np.asarray(norms, dtype=np.float64)
        if norms.size == 0:
            return {
                "pre_clip_norm_mean": 0.0,
                "pre_clip_norm_max": 0.0,
                "clipped_fraction": 0.0,
            }
    return {
        "pre_clip_norm_mean": float(norms.mean()),
        "pre_clip_norm_max": float(norms.max()),
        "clipped_fraction": float(np.mean(norms > threshold * (1 + 1e-12))),
    }


def release_diagnostics(clean, noisy) -> dict[str, float]:
    """Geometric statistics of one DP release versus its clean input.

    ``clean`` is the averaged clipped gradient before noise, ``noisy`` the
    released vector.  Returns signal/noise norms plus — when both vectors
    carry a direction — the noise-to-signal ratio, cosine similarity and
    angular deviation (radians) between the two.
    """
    clean = np.asarray(clean, dtype=np.float64).ravel()
    noisy = np.asarray(noisy, dtype=np.float64).ravel()
    diff = noisy - clean
    signal_norm = float(clean @ clean) ** 0.5
    out = {
        "post_clip_norm": signal_norm,
        "noise_norm": float(diff @ diff) ** 0.5,
    }
    if signal_norm > 0.0:
        out["noise_to_signal"] = out["noise_norm"] / signal_norm
        noisy_norm = float(noisy @ noisy) ** 0.5
        if noisy_norm > 0.0:
            # Hot path: inline dot-product cosine, numerically identical to
            # repro.geometry.metrics.cosine_similarity (asserted by tests)
            # but without the matrix lifting and validation overhead.
            cos = float(clean @ noisy) / (signal_norm * noisy_norm)
            cos = min(1.0, max(-1.0, cos))
            out["cos_similarity"] = cos
            out["angular_deviation"] = float(np.arccos(cos))
    return out


def record_clipping(recorder, per_sample_grads, threshold: float, *, norms=None) -> None:
    """Record :func:`clip_diagnostics` into ``recorder`` (no-op when None)."""
    if recorder is None:
        return
    note_backend(recorder)
    for name, value in clip_diagnostics(per_sample_grads, threshold, norms=norms).items():
        recorder.record(name, value)


def record_release(
    recorder,
    clean,
    noisy,
    *,
    sigma: float,
    sensitivity: float,
    extras: dict[str, float] | None = None,
) -> None:
    """Record :func:`release_diagnostics` plus mechanism parameters.

    ``extras`` lets optimizers attach scheme-specific quantities (e.g.
    GeoDP's magnitude/direction noise split).  No-op when ``recorder`` is
    ``None`` so call sites stay branch-free.
    """
    if recorder is None:
        return
    note_backend(recorder)
    for name, value in release_diagnostics(clean, noisy).items():
        recorder.record(name, value)
    recorder.record("sigma", sigma)
    recorder.record("sensitivity", sensitivity)
    for name, value in (extras or {}).items():
        recorder.record(name, value)
    recorder.increment("releases")
