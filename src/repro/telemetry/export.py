"""JSONL export/import of telemetry traces.

One exported run becomes a block of lines, each a JSON object with a
``kind`` discriminator and a ``run`` label (so several runs — e.g. a DP-SGD
and a GeoDP training at equal budget — can share one file):

``{"kind": "meta", "version": 2, "run": "dpsgd", ...}``
    header of one run's block; carries the tracer's configuration when the
    run was traced;
``{"kind": "step", "run": ..., "iteration": ..., "metrics": {...}, "timings": {...}}``
    one :class:`~repro.telemetry.events.StepTrace` per training iteration;
``{"kind": "series", "run": ..., "name": ..., "points": [[step, value], ...]}``
    one line per scalar series;
``{"kind": "counters"|"timers", "run": ..., "values": {...}}``
    the run's counters and accumulated span times;
``{"kind": "span", "run": ..., ...}``
    one line per :class:`~repro.telemetry.tracing.Span` (format version 2);
``{"kind": "ledger", "run": ..., "state": {...}}``
    the run's DP release ledger (format version 2).

The loaders rebuild the original objects exactly:
:func:`load_trace`/:func:`load_traces` return
:class:`~repro.telemetry.recorder.MetricsRecorder` instances (ignoring span
and ledger lines, for backward compatibility), while
:func:`load_run_bundles` returns a :class:`RunBundle` per run with the
recorder, the rebuilt :class:`~repro.telemetry.tracing.Tracer`, and the
rebuilt :class:`~repro.privacy.ledger.ReleaseLedger` — everything the
``repro report`` subcommand needs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.telemetry.events import StepTrace
from repro.telemetry.recorder import MetricsRecorder
from repro.telemetry.tracing import Span, Tracer
from repro.utils.serialization import load_jsonl, save_jsonl

__all__ = [
    "export_trace",
    "load_trace",
    "load_traces",
    "load_run_bundles",
    "RunBundle",
    "FORMAT_VERSION",
]

FORMAT_VERSION = 2
#: Versions the loaders accept.  Version 1 files (no span/ledger lines)
#: still load; version 2 adds the observability kinds.
SUPPORTED_VERSIONS = frozenset({1, 2})


@dataclass
class RunBundle:
    """Everything one run block of a trace file can carry.

    ``tracer`` and ``ledger`` are ``None`` when the run was exported
    without them (e.g. a version-1 file).
    """

    recorder: MetricsRecorder
    tracer: Tracer | None = None
    ledger: object | None = None


def _lines(recorder: MetricsRecorder, run: str, tracer, ledger):
    meta = {"kind": "meta", "version": FORMAT_VERSION, "run": run}
    if tracer is not None:
        meta["tracer"] = {
            "granularity": tracer.granularity,
            "trace_memory": tracer.trace_memory,
        }
    yield meta
    for event in recorder.events:
        yield {"kind": "step", "run": run, **event.to_dict()}
    for name, points in recorder.series.items():
        yield {
            "kind": "series",
            "run": run,
            "name": name,
            "points": [[int(s), float(v)] for s, v in points],
        }
    yield {"kind": "counters", "run": run, "values": dict(recorder.counters)}
    yield {"kind": "timers", "run": run, "values": dict(recorder.timers)}
    if tracer is not None:
        for span in tracer.spans:
            yield {"kind": "span", "run": run, **span.to_dict()}
    if ledger is not None:
        yield {"kind": "ledger", "run": run, "state": ledger.state_dict()}


def export_trace(
    path,
    recorder: MetricsRecorder,
    *,
    run: str = "default",
    append: bool = False,
    tracer: Tracer | None = None,
    ledger=None,
) -> None:
    """Write one run's telemetry to ``path`` as a JSONL block labelled ``run``.

    ``tracer`` and ``ledger`` add the run's span tree and DP release ledger
    to the block.  ``append=True`` adds another run's block to an existing
    trace file; labels within one file must be unique for the loaders to
    keep them apart.
    """
    save_jsonl(path, _lines(recorder, run, tracer, ledger), append=append)


def _parse(path):
    """Yield ``(run, kind, record, meta)`` for every line of a trace file."""
    metas: dict[str, dict] = {}
    for record in load_jsonl(path):
        kind = record.get("kind")
        run = record.get("run", "default")
        if kind == "meta":
            version = record.get("version")
            if version not in SUPPORTED_VERSIONS:
                raise ValueError(f"unsupported trace format version {version!r}")
            if run in metas:
                raise ValueError(f"duplicate run label {run!r} in {path}")
            metas[run] = record
        elif run not in metas:
            raise ValueError(f"line of kind {kind!r} before meta line for run {run!r}")
        yield run, kind, record, metas[run]


def load_run_bundles(path) -> dict[str, RunBundle]:
    """Load every run block in a trace file as a :class:`RunBundle`."""
    from repro.privacy.ledger import ReleaseLedger

    bundles: dict[str, RunBundle] = {}
    for run, kind, record, meta in _parse(path):
        if kind == "meta":
            bundles[run] = RunBundle(MetricsRecorder())
            continue
        bundle = bundles[run]
        recorder = bundle.recorder
        if kind == "step":
            recorder.events.append(StepTrace.from_dict(record))
        elif kind == "series":
            recorder.series[record["name"]] = [
                (int(s), float(v)) for s, v in record["points"]
            ]
        elif kind == "counters":
            recorder.counters.update(record["values"])
        elif kind == "timers":
            recorder.timers.update(
                {k: float(v) for k, v in record["values"].items()}
            )
        elif kind == "span":
            if bundle.tracer is None:
                config = meta.get("tracer", {})
                bundle.tracer = Tracer(
                    granularity=config.get("granularity", "phase"),
                    trace_memory=False,
                )
                bundle.tracer.trace_memory = bool(config.get("trace_memory", False))
            bundle.tracer.spans.append(Span.from_dict(record))
        elif kind == "ledger":
            bundle.ledger = ReleaseLedger()
            bundle.ledger.load_state_dict(record["state"])
        else:
            raise ValueError(f"unknown trace line kind {kind!r}")
    return bundles


def load_traces(path) -> dict[str, MetricsRecorder]:
    """Load every run block in a trace file, keyed by run label.

    Returns only the recorders; span and ledger lines are parsed (and
    validated) but not returned — use :func:`load_run_bundles` for those.
    """
    return {run: bundle.recorder for run, bundle in load_run_bundles(path).items()}


def load_trace(path, run: str | None = None) -> MetricsRecorder:
    """Load a single run from a trace file.

    With ``run=None`` the file must contain exactly one run; otherwise the
    requested label is selected.
    """
    recorders = load_traces(path)
    if not recorders:
        raise ValueError(f"no trace blocks found in {path}")
    if run is None:
        if len(recorders) != 1:
            raise ValueError(
                f"{path} holds runs {sorted(recorders)}; pass run=... to pick one"
            )
        return next(iter(recorders.values()))
    if run not in recorders:
        raise ValueError(f"run {run!r} not in {path} (has {sorted(recorders)})")
    return recorders[run]
