"""JSONL export/import of telemetry traces.

One exported recorder becomes a block of lines, each a JSON object with a
``kind`` discriminator and a ``run`` label (so several runs — e.g. a DP-SGD
and a GeoDP training at equal budget — can share one file):

``{"kind": "meta", "version": 1, "run": "dpsgd"}``
    header of one run's block;
``{"kind": "step", "run": ..., "iteration": ..., "metrics": {...}, "timings": {...}}``
    one :class:`~repro.telemetry.events.StepTrace` per training iteration;
``{"kind": "series", "run": ..., "name": ..., "points": [[step, value], ...]}``
    one line per scalar series;
``{"kind": "counters"|"timers", "run": ..., "values": {...}}``
    the run's counters and accumulated span times.

The loader rebuilds :class:`~repro.telemetry.recorder.MetricsRecorder`
instances exactly, so ``load_trace(export_trace(...))`` round-trips.
"""

from __future__ import annotations

from repro.telemetry.events import StepTrace
from repro.telemetry.recorder import MetricsRecorder
from repro.utils.serialization import load_jsonl, save_jsonl

__all__ = ["export_trace", "load_trace", "load_traces", "FORMAT_VERSION"]

FORMAT_VERSION = 1


def _lines(recorder: MetricsRecorder, run: str):
    yield {"kind": "meta", "version": FORMAT_VERSION, "run": run}
    for event in recorder.events:
        yield {"kind": "step", "run": run, **event.to_dict()}
    for name, points in recorder.series.items():
        yield {
            "kind": "series",
            "run": run,
            "name": name,
            "points": [[int(s), float(v)] for s, v in points],
        }
    yield {"kind": "counters", "run": run, "values": dict(recorder.counters)}
    yield {"kind": "timers", "run": run, "values": dict(recorder.timers)}


def export_trace(path, recorder: MetricsRecorder, *, run: str = "default", append: bool = False) -> None:
    """Write ``recorder`` to ``path`` as one JSONL block labelled ``run``.

    ``append=True`` adds another run's block to an existing trace file;
    labels within one file must be unique for :func:`load_traces` to keep
    them apart.
    """
    save_jsonl(path, _lines(recorder, run), append=append)


def load_traces(path) -> dict[str, MetricsRecorder]:
    """Load every run block in a trace file, keyed by run label."""
    recorders: dict[str, MetricsRecorder] = {}
    for record in load_jsonl(path):
        kind = record.get("kind")
        run = record.get("run", "default")
        if kind == "meta":
            version = record.get("version")
            if version != FORMAT_VERSION:
                raise ValueError(f"unsupported trace format version {version!r}")
            if run in recorders:
                raise ValueError(f"duplicate run label {run!r} in {path}")
            recorders[run] = MetricsRecorder()
            continue
        if run not in recorders:
            raise ValueError(f"line of kind {kind!r} before meta line for run {run!r}")
        recorder = recorders[run]
        if kind == "step":
            recorder.events.append(StepTrace.from_dict(record))
        elif kind == "series":
            recorder.series[record["name"]] = [
                (int(s), float(v)) for s, v in record["points"]
            ]
        elif kind == "counters":
            recorder.counters.update(record["values"])
        elif kind == "timers":
            recorder.timers.update(
                {k: float(v) for k, v in record["values"].items()}
            )
        else:
            raise ValueError(f"unknown trace line kind {kind!r}")
    return recorders


def load_trace(path, run: str | None = None) -> MetricsRecorder:
    """Load a single run from a trace file.

    With ``run=None`` the file must contain exactly one run; otherwise the
    requested label is selected.
    """
    recorders = load_traces(path)
    if not recorders:
        raise ValueError(f"no trace blocks found in {path}")
    if run is None:
        if len(recorders) != 1:
            raise ValueError(
                f"{path} holds runs {sorted(recorders)}; pass run=... to pick one"
            )
        return next(iter(recorders.values()))
    if run not in recorders:
        raise ValueError(f"run {run!r} not in {path} (has {sorted(recorders)})")
    return recorders[run]
