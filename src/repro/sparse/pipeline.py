"""Sparse clip-and-sum pass: ghost norms for dense layers, sparse rows for
the embedding.

One backward pass accumulates exact per-sample gradient norms — dense
layers through their ``backward_norm_sq`` ghost hooks, the embedding from
its compacted sparse per-sample gradients (:meth:`Embedding.
backward_sparse`), which are *the same numbers* the dense Gram computes —
then clip factors scale-and-merge both halves: dense layers through
``accumulate_clipped``, the embedding through a sparse row reduction.
The ``(B, P)`` matrix and the ``(B, vocab, dim)`` scatter never exist.
"""

from __future__ import annotations

import numpy as np

from repro.nn.embedding import Embedding
from repro.telemetry.diagnostics import record_clipping
from repro.telemetry.tracing import joint_span

__all__ = [
    "find_embedding",
    "dense_param_slices",
    "get_dense_params",
    "set_dense_params",
    "sparse_loss_and_clipped_grads",
    "sparse_clipped_sums",
]


def find_embedding(model) -> int:
    """Index of the model's single :class:`Embedding` layer (or raise)."""
    indices = [
        i for i, layer in enumerate(model.layers) if isinstance(layer, Embedding)
    ]
    if len(indices) != 1:
        raise ValueError(
            f"sparse training requires exactly one Embedding layer, "
            f"found {len(indices)}"
        )
    return indices[0]


def dense_param_slices(model, emb_index: int) -> list[tuple[int, str, tuple, slice]]:
    """``(layer, name, shape, slice)`` of every non-embedding parameter.

    Slices address the *dense* flat vector — the model's parameter vector
    with the embedding table removed.  This is the vector the optimizers'
    ``step_sparse`` descends on; the table itself is updated in place, row
    by row, so step cost never scales with ``vocab``.
    """
    out = []
    offset = 0
    for i, name, shape, size in model._index:
        if i == emb_index:
            continue
        out.append((i, name, shape, slice(offset, offset + size)))
        offset += size
    return out


def get_dense_params(model, emb_index: int) -> np.ndarray:
    """Flat vector of all non-embedding parameters."""
    chunks = [
        model.layers[i].params()[name].ravel()
        for i, name, _, _ in dense_param_slices(model, emb_index)
    ]
    return np.concatenate(chunks) if chunks else np.zeros(0)


def set_dense_params(model, emb_index: int, flat: np.ndarray) -> None:
    """Write a dense flat vector back into the non-embedding layers."""
    for i, name, shape, sl in dense_param_slices(model, emb_index):
        model.layers[i].set_param(name, flat[sl].reshape(shape))


def sparse_loss_and_clipped_grads(model, emb_index: int, x, y, clipping):
    """Sparse ghost pass over one lot.

    Returns ``(losses (B,), dense_sum (P_dense,), rows (R,), row_sum
    (R, dim), norms (B,))`` where ``rows`` are the sorted unique embedding
    rows the lot touched and ``row_sum = sum_i c_i dw_i`` restricted to
    them.  ``clipping.clip_factors`` observes the exact per-sample norms
    (dense ghost norm² + sparse norm²), so adaptive thresholds follow the
    same trajectory as on the dense paths.
    """
    embedding = model.layers[emb_index]
    dense_size = sum(size for i, _, _, size in model._index if i != emb_index)
    if len(x) == 0:
        # Empty Poisson lot: zero sums, no touched rows, no observation.
        return (
            np.zeros(0),
            np.zeros(dense_size),
            np.zeros(0, dtype=np.int64),
            np.zeros((0, embedding.dim)),
            np.zeros(0),
        )
    outputs = model.forward(x, train=True)
    losses = model.loss.per_sample(outputs, y)
    grad_out = model.loss.gradient(outputs, y)

    # Pass #1: norms — ghost hooks for dense layers, sparse compaction for
    # the embedding (cached for pass #2; its norm contribution is exact).
    norm_sq = np.zeros(grad_out.shape[0])
    upstream: list[np.ndarray | None] = [None] * len(model.layers)
    sparse_grads = None
    grad = grad_out
    for i in reversed(range(len(model.layers))):
        layer = model.layers[i]
        if i == emb_index:
            sparse_grads = layer.backward_sparse(grad)
            norm_sq += sparse_grads.norm_sq()
            grad = np.zeros(layer._tokens.shape)
            continue
        if layer.params():
            upstream[i] = grad
        grad, layer_norm_sq = layer.backward_norm_sq(grad)
        norm_sq += layer_norm_sq
    norms = np.sqrt(norm_sq)

    factors = np.asarray(clipping.clip_factors(norms), dtype=np.float64)

    # Pass #2: clip-scaled accumulation — dense layers from their cached
    # upstream gradients, the embedding from its sparse triples.
    chunks = []
    per_layer: dict[int, dict] = {}
    for i, name, _, size in model._index:
        if i == emb_index:
            continue
        if i not in per_layer:
            per_layer[i] = model.layers[i].accumulate_clipped(upstream[i], factors)
        chunks.append(per_layer[i][name].reshape(size))
    dense_sum = np.concatenate(chunks) if chunks else np.zeros(0)
    rows, row_sum = sparse_grads.clipped_row_sum(factors)
    return losses, dense_sum, rows, row_sum, norms


def sparse_clipped_sums(optimizer, model, emb_index: int, x, y):
    """:func:`sparse_loss_and_clipped_grads` with the optimizer's telemetry.

    Mirrors :func:`repro.core.ghost.ghost_clipped_sum`: the clip span,
    clipping diagnostics from the exact norms, and ``sparse_*`` counters.
    """
    recorder = getattr(optimizer, "recorder", None)
    tracer = getattr(optimizer, "tracer", None)
    if recorder is None and tracer is None:
        losses, dense_sum, rows, row_sum, _ = sparse_loss_and_clipped_grads(
            model, emb_index, x, y, optimizer.clipping
        )
        return losses, dense_sum, rows, row_sum
    with joint_span(recorder, tracer, "sparse_clip"):
        losses, dense_sum, rows, row_sum, norms = sparse_loss_and_clipped_grads(
            model, emb_index, x, y, optimizer.clipping
        )
    if recorder is not None:
        record_clipping(recorder, None, optimizer.clipping.sensitivity(), norms=norms)
        recorder.increment("sparse_clipped_sums")
        recorder.increment("sparse_samples", len(norms))
        recorder.increment("sparse_touched_rows", len(rows))
    return losses, dense_sum, rows, row_sum
