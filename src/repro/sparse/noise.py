"""Deferred per-row Gaussian noise with deterministic counter streams.

DP noise densifies sparse updates: every release must perturb *every*
embedding row, touched or not, or the noise itself would leak the access
pattern.  The LazyDP observation is that an untouched row's pending noise
is never *read* until the row is next touched (or the table is released at
a checkpoint / finalize), so its application can be deferred — and because
the sum of ``k`` iid ``N(0, sigma^2)`` draws is ``N(0, k sigma^2)``, the
deferred sum can even be drawn in one shot.

To make deferral *exact* (not merely distribution-preserving), every
``(row, step, coordinate)`` noise value comes from a counter-based
generator — a splitmix64-style hash of ``(seed, row, step, coordinate)``
fed through Box-Muller — i.e. it is a pure function of its key, drawable
at any time in any order.  Two modes:

* ``"replay"`` — materialization re-draws each pending step's value and
  sums.  A lazy run applies *bit-identical* noise to an eager run (which
  materializes every row every step), just later; final parameters match
  to floating-point summation order.  Cost: amortized one draw per row per
  step — exactness, not asymptotic speed.
* ``"aggregate"`` — materialization draws once, keyed by the current step,
  scaled by ``sqrt(pending)``.  Same distribution, O(touched) work per
  step; this is the mode whose step cost scales with touched rows.

Neither mode touches ``numpy.random`` stream state: the optimizer's RNG
consumption is identical whether rows are noised eagerly, lazily, or not
at all, which keeps dense-block noise and GeoDP draws reproducible across
modes.
"""

from __future__ import annotations

import numpy as np

__all__ = ["LazyRowNoise", "row_step_noise"]

_GAMMA = np.uint64(0x9E3779B97F4A7C15)
_M1 = np.uint64(0xBF58476D1CE4E5B9)
_M2 = np.uint64(0x94D049BB133111EB)
_SALT_U1 = np.uint64(0xA5A5A5A5A5A5A5A5)
_SALT_U2 = np.uint64(0x5A5A5A5A5A5A5A5A)

#: Recognized materialization modes.
NOISE_MODES = ("replay", "aggregate")


def _mix64(x: np.ndarray) -> np.ndarray:
    """splitmix64 finalizer on uint64 arrays (wrapping arithmetic)."""
    x = (x ^ (x >> np.uint64(30))) * _M1
    x = (x ^ (x >> np.uint64(27))) * _M2
    return x ^ (x >> np.uint64(31))


def row_step_noise(seed: int, rows, steps, dim: int) -> np.ndarray:
    """Standard-normal noise for ``(row, step)`` pairs: ``(N, dim)``.

    A pure function of ``(seed, row, step, coordinate)`` — no stream
    state — via a splitmix64-style key hash and Box-Muller.  ``rows`` and
    ``steps`` are parallel integer arrays.
    """
    rows = np.asarray(rows, dtype=np.uint64)
    steps = np.asarray(steps, dtype=np.uint64)
    # All arithmetic on arrays: numpy integer *array* ops wrap silently
    # (the intended splitmix64 semantics), scalar ops would warn.
    base = np.full(rows.shape, np.uint64(int(seed) & 0xFFFFFFFFFFFFFFFF))
    base = _mix64(base + _GAMMA)
    base = _mix64(base ^ (rows * _GAMMA + _GAMMA))
    base = _mix64(base ^ (steps * _GAMMA + _GAMMA))
    coords = np.arange(dim, dtype=np.uint64) * _GAMMA
    counters = base[:, None] + coords[None, :]
    z1 = _mix64(counters ^ _SALT_U1)
    z2 = _mix64(counters ^ _SALT_U2)
    # 53-bit mantissas; u1 in (0, 1] so log never sees zero.
    u1 = ((z1 >> np.uint64(11)).astype(np.float64) + 1.0) * 2.0**-53
    u2 = (z2 >> np.uint64(11)).astype(np.float64) * 2.0**-53
    return np.sqrt(-2.0 * np.log(u1)) * np.cos(2.0 * np.pi * u2)


class LazyRowNoise:
    """Per-row deferred unit-variance Gaussian noise over release steps.

    Tracks, for each of ``num_rows`` rows, the last release step whose
    noise has been applied.  :meth:`materialize` returns the unit-scale
    noise owed to a set of rows through the current step (callers scale by
    ``sigma * sensitivity / denominator`` and apply); :meth:`mark` records
    rows whose current-step noise came from another mechanism (GeoDP's
    geometric perturbation of the active subvector).  Steps are counted by
    :meth:`advance`, one per DP release.
    """

    def __init__(self, num_rows: int, dim: int, *, seed: int, mode: str = "replay"):
        if num_rows < 1 or dim < 1:
            raise ValueError("num_rows and dim must be >= 1")
        if mode not in NOISE_MODES:
            raise ValueError(f"mode must be one of {NOISE_MODES}, got {mode!r}")
        self.num_rows = int(num_rows)
        self.dim = int(dim)
        self.seed = int(seed)
        self.mode = mode
        #: Current release step (0 = before the first release).
        self.step = 0
        self._last = np.zeros(self.num_rows, dtype=np.int64)

    def advance(self) -> None:
        """Start a new release step."""
        self.step += 1

    def pending(self, rows=None) -> np.ndarray:
        """Steps of noise owed per row (through the current step)."""
        last = self._last if rows is None else self._last[np.asarray(rows)]
        return self.step - last

    def mark(self, rows) -> None:
        """Record rows as noised through the current step without drawing."""
        self._last[np.asarray(rows)] = self.step

    def materialize(self, rows) -> np.ndarray:
        """Unit-scale noise sum owed to ``rows`` through the current step.

        Returns ``(len(rows), dim)`` — zeros for rows with nothing pending —
        and advances their bookkeeping to the current step.
        """
        rows = np.asarray(rows, dtype=np.int64)
        k = self.step - self._last[rows]
        out = np.zeros((rows.size, self.dim))
        owed = k > 0
        if owed.any():
            if self.mode == "aggregate":
                draws = row_step_noise(
                    self.seed,
                    rows[owed],
                    np.full(int(owed.sum()), self.step, dtype=np.int64),
                    self.dim,
                )
                out[owed] = draws * np.sqrt(k[owed].astype(np.float64))[:, None]
            else:
                out[owed] = self._replay_sum(rows[owed], k[owed])
            self._last[rows] = self.step
        return out

    def _replay_sum(self, rows: np.ndarray, k: np.ndarray) -> np.ndarray:
        """Re-draw each pending step's noise and sum — bit-identical to eager."""
        total = int(k.sum())
        seg = np.repeat(np.arange(rows.size), k)
        row_rep = np.repeat(rows, k)
        starts = np.repeat(self.step - k + 1, k)
        block_starts = np.repeat(np.concatenate(([0], np.cumsum(k)[:-1])), k)
        step_rep = starts + (np.arange(total) - block_starts)
        draws = row_step_noise(self.seed, row_rep, step_rep, self.dim)
        out = np.zeros((rows.size, self.dim))
        np.add.at(out, seg, draws)
        return out

    def flush(self) -> tuple[np.ndarray, np.ndarray]:
        """Materialize every row with pending noise: ``(rows, noise)``.

        The checkpoint / finalize barrier: after a flush the table carries
        all noise through the current step, exactly as an eager run would.
        """
        rows = np.nonzero(self._last < self.step)[0]
        return rows, self.materialize(rows)

    def state_dict(self) -> dict:
        return {
            "seed": self.seed,
            "mode": self.mode,
            "step": self.step,
            "last": self._last.copy(),
        }

    def load_state_dict(self, state: dict) -> None:
        if int(state["seed"]) != self.seed or state["mode"] != self.mode:
            raise ValueError(
                "lazy-noise snapshot was produced with a different seed or mode"
            )
        self.step = int(state["step"])
        last = np.asarray(state["last"], dtype=np.int64)
        if last.shape != self._last.shape:
            raise ValueError("lazy-noise snapshot covers a different table size")
        self._last = last.copy()

    def __repr__(self) -> str:
        return (
            f"LazyRowNoise(rows={self.num_rows}, dim={self.dim}, "
            f"mode={self.mode!r}, step={self.step})"
        )
