"""Sparse embedding-scale DP training: touched rows only, noise deferred.

Per-sample embedding gradients live as compacted ``(sample, row, value)``
triples (:class:`SparseBatchGrads`) instead of ``(B, vocab, dim)`` scatters;
untouched rows' DP cover noise is deferred through counter-based streams
(:class:`LazyRowNoise`) and materialized only when a row is next touched or
at a barrier.  :class:`SparseTrainer` drives the whole pipeline with step
cost proportional to the rows a lot actually touches.  See ``docs/sparse.md``.
"""

from repro.sparse.grads import SparseBatchGrads
from repro.sparse.noise import NOISE_MODES, LazyRowNoise, row_step_noise
from repro.sparse.pipeline import (
    dense_param_slices,
    find_embedding,
    get_dense_params,
    set_dense_params,
    sparse_clipped_sums,
    sparse_loss_and_clipped_grads,
)
from repro.sparse.release import (
    SparseRelease,
    gaussian_sparse_release,
    geodp_sparse_release,
)
from repro.sparse.trainer import SparseTrainer

__all__ = [
    "NOISE_MODES",
    "LazyRowNoise",
    "SparseBatchGrads",
    "SparseRelease",
    "SparseTrainer",
    "dense_param_slices",
    "find_embedding",
    "gaussian_sparse_release",
    "geodp_sparse_release",
    "get_dense_params",
    "row_step_noise",
    "set_dense_params",
    "sparse_clipped_sums",
    "sparse_loss_and_clipped_grads",
]
