"""Sparse DP releases: touched-row updates plus deferred cover noise.

One sparse release perturbs and applies, per step:

* the **dense block** (every non-embedding parameter) — exactly the dense
  mechanism (Gaussian for DP-SGD, geometric for GeoDP), drawn from the
  optimizer's own RNG;
* the **touched rows** — DP-SGD adds Gaussian noise from the
  counter-based row streams (:mod:`repro.sparse.noise`); GeoDP perturbs
  the *active subvector* ``[dense, touched rows]`` geometrically as one
  averaged gradient (:func:`repro.core.perturbation.perturb_geodp_active`);
* the **untouched rows** — nothing now; their Gaussian cover noise
  (scale ``sigma * C / denominator`` per coordinate per step) is owed in
  the :class:`~repro.sparse.noise.LazyRowNoise` bookkeeping and
  materialized when the row is next touched or at checkpoint / finalize.

Accounting is untouched: each sparse step is one subsampled release with
the same ``(sigma, sensitivity, sample_rate)`` as its dense counterpart,
so the optimizer's ``_account_release`` records a ledger entry identical
to the dense path and :func:`~repro.privacy.ledger.verify_ledger` replays
to the same epsilon.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.perturbation import perturb_geodp_active
from repro.sparse.noise import LazyRowNoise
from repro.telemetry.diagnostics import record_release
from repro.telemetry.tracing import joint_span

__all__ = ["SparseRelease", "gaussian_sparse_release", "geodp_sparse_release"]


@dataclass
class SparseRelease:
    """Everything an optimizer's ``step_sparse`` needs about the table."""

    #: Sorted unique embedding rows touched by this lot, ``(R,)``.
    rows: np.ndarray
    #: Clip-scaled gradient sum restricted to those rows, ``(R, dim)``.
    row_sum: np.ndarray
    #: Deferred-noise bookkeeping for the whole table.
    lazy: LazyRowNoise
    #: The ``(vocab, dim)`` embedding table, updated *in place* row by row.
    table: np.ndarray


def gaussian_sparse_release(optimizer, sparse: SparseRelease, denominator: int) -> None:
    """DP-SGD's touched-row update: row-stream noise + in-place row step.

    ``table[rows] -= lr * (row_sum + sigma*C*noise) / denominator``.  The
    noise comes from the deterministic per-row counter streams, never the
    optimizer's RNG, so the dense block's draws are identical with or
    without the sparse path.  ``materialize`` also folds in any noise the
    rows were still owed from untouched steps — same constants, one fused
    application.  Rows bypass momentum (they have no persistent velocity;
    documented in ``docs/sparse.md``).
    """
    sparse.lazy.advance()
    scale = optimizer.noise_multiplier * optimizer.clipping.sensitivity()
    if sparse.rows.size == 0:
        return
    if scale > 0:
        noise = sparse.lazy.materialize(sparse.rows)
        noisy_rows = (sparse.row_sum + scale * noise) / denominator
    else:
        sparse.lazy.mark(sparse.rows)
        noisy_rows = sparse.row_sum / denominator
    sparse.table[sparse.rows] -= optimizer.learning_rate * noisy_rows


def geodp_sparse_release(
    optimizer, dense_sum: np.ndarray, sparse: SparseRelease, denominator: int
) -> np.ndarray:
    """GeoDP's sparse release: geometric noise on the active subvector.

    The dense average and the touched-row averages are perturbed *jointly*
    (magnitude + direction, Algorithm 1) — geometrically they are one
    averaged gradient whose untouched coordinates are exactly zero.  The
    touched rows are then applied in place and marked noised-through-now;
    untouched rows accrue deferred Gaussian cover noise as usual.  Returns
    the noisy dense average for the caller's descent.  Draws from the
    optimizer's RNG exactly once per release, like the dense path.
    """
    dense_avg = dense_sum / denominator
    row_avg = sparse.row_sum / denominator
    recorder = getattr(optimizer, "recorder", None)
    tracer = getattr(optimizer, "tracer", None)
    with joint_span(recorder, tracer, "noise"):
        noisy_dense, noisy_rows = perturb_geodp_active(
            dense_avg,
            row_avg,
            optimizer.clipping.sensitivity(),
            optimizer.noise_multiplier,
            denominator,
            optimizer.beta,
            optimizer.rng,
            sensitivity_mode=optimizer.sensitivity_mode,
            tracer=tracer,
        )
    sparse.lazy.advance()
    sparse.lazy.mark(sparse.rows)
    if sparse.rows.size:
        sparse.table[sparse.rows] -= optimizer.learning_rate * noisy_rows
    if recorder is not None:
        record_release(
            recorder,
            np.concatenate([dense_avg, row_avg.ravel()]),
            np.concatenate([noisy_dense, noisy_rows.ravel()]),
            sigma=optimizer.noise_multiplier,
            sensitivity=optimizer.clipping.sensitivity(),
            extras={"sparse_touched_rows": float(sparse.rows.size)},
        )
    return noisy_dense
