"""Embedding-scale DP training driver: touched rows only, noise deferred.

The core :class:`repro.core.Trainer` round-trips the *full* flat parameter
vector every step, which is O(vocab * dim) no matter how few embedding
rows a lot touches.  :class:`SparseTrainer` instead keeps the table out of
the optimizer's parameter vector entirely:

* the **dense block** (every non-embedding parameter) goes through the
  optimizer's ``step_sparse`` exactly like a dense DP step — same noise
  draws from the optimizer's RNG, same accountant update, same ledger
  entry;
* **touched rows** are clipped, summed, noised and updated *in place* on
  ``embedding.weight``;
* **untouched rows** owe Gaussian cover noise (every row must be perturbed
  every release or the noise pattern leaks which rows were accessed); the
  :class:`~repro.sparse.noise.LazyRowNoise` bookkeeping defers it until
  the row is next touched or a barrier (``flush`` / ``evaluate`` /
  ``state_dict`` / ``finalize``) materializes it.

Before each forward pass the lot's rows are *caught up*: any noise they
were owed from steps where they sat untouched is applied first, so the
forward pass reads the same weights an eager run (``lazy=False``, which
flushes every step) would see.  In ``"replay"`` noise mode the deferred
values are bit-identical to the eager run's, so lazy and eager trajectories
match to floating-point summation order.

Constraints (validated at construction): the clipping strategy must
support ghost norms and have constant sensitivity — deferred noise drawn
at step ``t + k`` must use the same ``sigma * C`` the release at step
``t`` promised — and the aggregation denominator must be fixed across
steps (``lot_size`` or the fixed batch size).
"""

from __future__ import annotations

import numpy as np

from repro.core.trainer import TrainingHistory
from repro.data.sampling import minibatch_indices
from repro.sparse.noise import LazyRowNoise
from repro.sparse.pipeline import (
    find_embedding,
    get_dense_params,
    set_dense_params,
    sparse_clipped_sums,
)
from repro.sparse.release import SparseRelease
from repro.telemetry.tracing import joint_span
from repro.utils.rng import as_rng

__all__ = ["SparseTrainer"]


class SparseTrainer:
    """Iteration-driven sparse DP trainer for embedding-scale models.

    Parameters
    ----------
    model:
        A :class:`repro.nn.Sequential` containing exactly one
        :class:`repro.nn.Embedding` layer.
    optimizer:
        A DP optimizer with a ``step_sparse`` method
        (:class:`~repro.core.dpsgd.DpSgdOptimizer`,
        :class:`~repro.core.geodp.GeoDpSgdOptimizer` or
        :class:`~repro.core.geodp_adam.GeoDpAdamOptimizer`).
    lazy:
        ``True`` (default) defers untouched-row noise; ``False`` flushes
        every step — the eager reference the lazy path must match.
    noise_mode:
        ``"replay"`` (exact, bit-identical to eager) or ``"aggregate"``
        (one draw per touched row per step — the fast mode).
    noise_seed:
        Seed of the counter-based row noise streams.  Drawn from ``rng``
        when omitted; must be shared for eager-vs-lazy comparisons.
    """

    def __init__(
        self,
        model,
        optimizer,
        train_data,
        *,
        batch_size: int,
        test_data=None,
        rng=None,
        lazy: bool = True,
        noise_mode: str = "replay",
        noise_seed: int | None = None,
        telemetry=None,
        tracer=None,
    ):
        if batch_size < 1 or batch_size > len(train_data):
            raise ValueError(
                f"batch_size must be in [1, {len(train_data)}], got {batch_size}"
            )
        if not hasattr(optimizer, "step_sparse"):
            raise ValueError(
                f"{type(optimizer).__name__} has no step_sparse; sparse training "
                "supports DpSgdOptimizer, GeoDpSgdOptimizer and GeoDpAdamOptimizer"
            )
        clipping = optimizer.clipping
        if not getattr(clipping, "supports_ghost", False):
            raise ValueError(
                f"{type(clipping).__name__} does not support ghost norms, "
                "which the sparse clip pass is built on"
            )
        if not getattr(clipping, "has_constant_sensitivity", False):
            raise ValueError(
                f"{type(clipping).__name__} adapts its sensitivity between "
                "steps; deferred row noise requires a constant sigma * C"
            )
        self.model = model
        self.optimizer = optimizer
        self.train_data = train_data
        self.test_data = test_data
        self.batch_size = batch_size
        self.rng = as_rng(rng)
        self.telemetry = telemetry
        self.tracer = tracer
        self.emb_index = find_embedding(model)
        self.embedding = model.layers[self.emb_index]
        # The deferred-noise scale must be a per-run constant, so the
        # denominator is pinned at construction: an explicit lot_size if the
        # optimizer has one, else the fixed minibatch size.
        lot_size = getattr(optimizer, "lot_size", None)
        self.denominator = int(lot_size) if lot_size is not None else int(batch_size)
        self.lazy = bool(lazy)
        if noise_seed is None:
            noise_seed = int(self.rng.integers(0, 2**63 - 1))
        self.lazy_noise = LazyRowNoise(
            self.embedding.vocab_size,
            self.embedding.dim,
            seed=noise_seed,
            mode=noise_mode,
        )
        self.history = TrainingHistory()

    # ------------------------------------------------------------------
    # noise plumbing

    def _cover_scale(self) -> float:
        """Weight-space scale of one step of deferred row noise."""
        return (
            self.optimizer.learning_rate
            * self.optimizer.noise_multiplier
            * self.optimizer.clipping.sensitivity()
            / self.denominator
        )

    def _batch_rows(self, x) -> np.ndarray:
        """Sorted unique embedding rows a batch will read in its forward."""
        tokens = np.round(np.asarray(x)).astype(np.int64)
        if tokens.size and (tokens.min() < 0 or tokens.max() >= self.embedding.vocab_size):
            raise ValueError(
                f"token ids must be in [0, {self.embedding.vocab_size}), "
                f"got range [{tokens.min()}, {tokens.max()}]"
            )
        return np.unique(tokens.ravel())

    def _catch_up(self, rows: np.ndarray) -> None:
        """Apply noise owed to ``rows`` so the forward sees eager weights."""
        scale = self._cover_scale()
        if scale == 0.0 or rows.size == 0:
            return
        noise = self.lazy_noise.materialize(rows)
        self.embedding.weight[rows] -= scale * noise

    def flush(self) -> None:
        """Materialize all deferred noise (the checkpoint / finalize barrier).

        After a flush the table is noised through the current step exactly
        as an eager run's would be.  In ``"replay"`` mode a flush never
        changes later noise values (each ``(row, step)`` draw is a pure
        function of its key); in ``"aggregate"`` mode it re-keys future
        deferred draws, which is distribution-preserving but not
        replay-stable.
        """
        scale = self._cover_scale()
        if scale == 0.0:
            self.lazy_noise.mark(np.arange(self.lazy_noise.num_rows))
            return
        rows, noise = self.lazy_noise.flush()
        if rows.size:
            self.embedding.weight[rows] -= scale * noise

    # ------------------------------------------------------------------
    # training

    def _span(self, name: str):
        return joint_span(self.telemetry, self.tracer, name)

    def _step(self, x, y) -> float:
        rows = self._batch_rows(x)
        self._catch_up(rows)
        losses, dense_sum, srows, row_sum = sparse_clipped_sums(
            self.optimizer, self.model, self.emb_index, x, y
        )
        release = SparseRelease(
            rows=srows,
            row_sum=row_sum,
            lazy=self.lazy_noise,
            table=self.embedding.weight,
        )
        with self._span("step"):
            dense = get_dense_params(self.model, self.emb_index)
            new_dense = self.optimizer.step_sparse(
                dense, dense_sum, len(losses), release
            )
            set_dense_params(self.model, self.emb_index, new_dense)
        if not self.lazy:
            self.flush()
        return float(np.mean(losses)) if losses.size else float("nan")

    def train(self, num_iterations: int, *, eval_every: int = 0) -> TrainingHistory:
        """Run ``num_iterations`` sparse DP steps; returns the history.

        Deferred noise is *not* flushed at the end — call :meth:`finalize`
        (or :meth:`evaluate` / :meth:`state_dict`, which flush first) when
        the table is about to be read.
        """
        if num_iterations < 1:
            raise ValueError(f"num_iterations must be >= 1, got {num_iterations}")
        n = len(self.train_data)
        for _ in range(num_iterations):
            with self._span("sample"):
                idx = minibatch_indices(n, self.batch_size, self.rng)
                x, y = self.train_data.x[idx], self.train_data.y[idx]
            self.history.losses.append(self._step(x, y))
            self.history.iterations += 1
            if eval_every and self.history.iterations % eval_every == 0:
                self.history.test_accuracy.append(
                    (self.history.iterations, self.evaluate())
                )
        return self.history

    # ------------------------------------------------------------------
    # barriers

    def evaluate(self, *, max_samples: int | None = None, chunk: int = 512) -> float:
        """Test accuracy on the fully-noised table (flushes first)."""
        if self.test_data is None:
            raise ValueError("no test_data attached")
        self.flush()
        x, y = self.test_data.x, self.test_data.y
        if max_samples is not None:
            x, y = x[:max_samples], y[:max_samples]
        correct = 0
        for start in range(0, len(y), chunk):
            preds = self.model.predict(x[start : start + chunk])
            correct += int(np.sum(preds == y[start : start + chunk]))
        return correct / len(y)

    def finalize(self):
        """Flush deferred noise and return the model, ready for release."""
        self.flush()
        return self.model

    def state_dict(self) -> dict:
        """Checkpoint: flushes first so the snapshot is an eager table."""
        from repro.utils.rng import get_rng_state

        self.flush()
        return {
            "model": self.model.get_params(),
            "optimizer": self.optimizer.state_dict(),
            "lazy": self.lazy_noise.state_dict(),
            "rng": get_rng_state(self.rng),
            "iterations": self.history.iterations,
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a snapshot captured by :meth:`state_dict`."""
        from repro.utils.rng import set_rng_state

        self.model.set_params(np.asarray(state["model"]))
        self.optimizer.load_state_dict(state["optimizer"])
        self.lazy_noise.load_state_dict(state["lazy"])
        set_rng_state(self.rng, state["rng"])
        self.history.iterations = int(state["iterations"])

    def __repr__(self) -> str:
        return (
            f"SparseTrainer(batch_size={self.batch_size}, "
            f"lazy={self.lazy}, noise={self.lazy_noise.mode!r}, "
            f"table={self.embedding.vocab_size}x{self.embedding.dim})"
        )
