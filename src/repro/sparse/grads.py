"""Sparse per-sample embedding gradients.

A lot of ``B`` samples over an ``(vocab, dim)`` embedding table touches at
most ``B * L`` rows — for click-log workloads a vanishing fraction of the
table.  :class:`SparseBatchGrads` stores the per-sample gradients as one
``(sample_id, row, value)`` triple per touched ``(sample, row)`` pair
(compacted within each sample, sorted by ``(sample, row)``), never the
``(B, vocab, dim)`` dense scatter.

The representation is *lossless*: scattering the triples back reproduces
the dense per-sample gradients exactly, so the per-sample norms computed
here equal the dense reference norms (and the ghost-norm Gram) to
floating-point accumulation order.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.backend import get_backend

__all__ = ["SparseBatchGrads"]


@dataclass
class SparseBatchGrads:
    """Per-sample embedding gradients restricted to touched rows."""

    #: Number of samples in the lot (some may touch no rows, e.g. all-pad).
    batch_size: int
    #: Embedding dimension.
    dim: int
    #: Sample index of each nonzero, ``(NNZ,)``, nondecreasing.
    sample_ids: np.ndarray
    #: Embedding row of each nonzero, ``(NNZ,)``, sorted within each sample.
    rows: np.ndarray
    #: Summed positional gradient of each nonzero, ``(NNZ, dim)``.
    vals: np.ndarray

    @property
    def nnz(self) -> int:
        return int(self.rows.size)

    def touched_rows(self) -> np.ndarray:
        """Sorted unique rows touched by any sample in the lot."""
        return np.unique(self.rows)

    def norm_sq(self) -> np.ndarray:
        """Exact per-sample squared gradient norms ``(B,)``.

        Because compaction sums positional gradients per ``(sample, row)``
        without dropping anything, ``sum_r ||vals_r||^2`` over a sample's
        nonzeros equals the dense per-sample gradient's squared norm.
        """
        if self.nnz == 0:
            return np.zeros(self.batch_size)
        per_nnz = np.einsum("nd,nd->n", self.vals, self.vals)
        return np.bincount(
            self.sample_ids, weights=per_nnz, minlength=self.batch_size
        )

    def clipped_row_sum(self, factors: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Clip-scale and merge across the lot: ``(unique_rows, row_sum)``.

        The sparse counterpart of ``embedding_clip_accumulate``:
        ``row_sum[k] = sum_i c_i dw_i[rows[k]]`` for the sorted unique
        touched rows.  Dispatches to the active backend kernel.
        """
        if self.nnz == 0:
            return np.zeros(0, dtype=np.int64), np.zeros((0, self.dim))
        return get_backend().sparse_row_reduce(
            self.sample_ids, self.rows, self.vals, np.asarray(factors, dtype=np.float64)
        )

    def to_dense(self, vocab_size: int) -> np.ndarray:
        """Materialize ``(B, vocab, dim)`` — for tests and parity checks only."""
        dense = np.zeros((self.batch_size, vocab_size, self.dim))
        np.add.at(dense, (self.sample_ids, self.rows), self.vals)
        return dense
