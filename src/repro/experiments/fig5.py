"""Figure 5: GeoDP vs DP on logistic regression (MNIST-like).

Three panels of training-loss curves:

* (a) sigma = 1, beta = 1: GeoDP tracks noise-free SGD; DP lags; increasing
  B helps GeoDP but barely moves DP.
* (b) sigma = 10 (large noise): GeoDP with beta = 1 is hurt, shrinking beta
  to 0.5 rescues it past DP.
* (c) small multipliers (sigma in {0.01, 0.1}), beta = 1, small B: GeoDP
  approaches noise-free efficiency as sigma shrinks; DP's improvement
  saturates.

Training experiments use GeoDP's ``per_angle`` sensitivity mode with the
paper's beta values (the paper's reported results are only consistent with
that calibration; see EXPERIMENTS.md).
"""

from __future__ import annotations

import numpy as np

from repro.core.dpsgd import DpSgdOptimizer
from repro.core.geodp import GeoDpSgdOptimizer
from repro.core.sgd import SgdOptimizer
from repro.core.trainer import Trainer
from repro.data.datasets import train_test_split
from repro.data.mnist_like import make_mnist_like
from repro.experiments.common import check_scale
from repro.models.logistic import build_logistic_regression
from repro.utils.rng import as_rng, spawn_rngs
from repro.utils.tables import format_table

__all__ = ["run_fig5", "format_fig5"]

_PRESETS = {
    # n: dataset size; size: image side (d = size^2 * 10 + 10 must stay small
    # enough that B >> sqrt(d), the regime the paper's panel (a) runs in);
    # batches_a: the two batch sizes of panel (a); batch_c: panel (c)'s batch;
    # betas_b: panel (b)'s (loose, tight) bounding factors.  The paper uses
    # (1, 0.5) at its own (d, B); at smaller scales those are rescaled so the
    # per-step angular noise beta*pi*sigma*sqrt(d/2)/B matches the paper's
    # regime (see EXPERIMENTS.md).
    "smoke": {
        "n": 1200, "size": 16, "iters": 300,
        "batches_a": (256, 512), "batch_c": 128, "betas_b": (0.1, 0.035),
        "lr": 4.0,
    },
    "ci": {
        "n": 4000, "size": 28, "iters": 350,
        "batches_a": (1024, 2048), "batch_c": 256, "betas_b": (0.2, 0.08),
        "lr": 4.0,
    },
    "paper": {
        "n": 60000, "size": 28, "iters": 350,
        "batches_a": (2048, 4096), "batch_c": 256, "betas_b": (1.0, 0.5),
        "lr": 2.0,
    },
}

_CLIP = 0.1  # the paper fixes C = 0.1 throughout (§VI-A)


def _train_curve(
    optimizer, train, batch_size: int, iters: int, rng, size: int
) -> list[float]:
    model = build_logistic_regression((1, size, size), rng=0)
    trainer = Trainer(model, optimizer, train, batch_size=batch_size, rng=rng)
    return trainer.train(iters).losses


def run_fig5(scale: str = "smoke", rng=None) -> dict:
    """Run all three Figure 5 panels; returns loss curves per configuration."""
    check_scale(scale)
    cfg = _PRESETS[scale]
    rng = as_rng(rng)
    data = make_mnist_like(cfg["n"], rng, size=cfg["size"])
    train, _ = train_test_split(data, rng=rng)
    iters, lr = cfg["iters"], cfg["lr"]
    b_small, b_large = cfg["batches_a"]

    def geo(sigma, beta, seed):
        return GeoDpSgdOptimizer(
            lr, _CLIP, sigma, beta=beta, rng=seed, sensitivity_mode="per_angle"
        )

    def dp(sigma, seed):
        return DpSgdOptimizer(lr, _CLIP, sigma, rng=seed)

    size = cfg["size"]
    seeds = iter(spawn_rngs(rng, 32))

    def curve(optimizer, batch_size):
        return _train_curve(optimizer, train, batch_size, iters, next(seeds), size)

    curves_a = {
        "no-noise": curve(SgdOptimizer(lr), b_large),
        f"dp B={b_small}": curve(dp(1.0, next(seeds)), b_small),
        f"dp B={b_large}": curve(dp(1.0, next(seeds)), b_large),
        f"geodp B={b_small}": curve(geo(1.0, 1.0, next(seeds)), b_small),
        f"geodp B={b_large}": curve(geo(1.0, 1.0, next(seeds)), b_large),
    }

    beta_loose, beta_tight = cfg["betas_b"]
    curves_b = {
        "no-noise": curve(SgdOptimizer(lr), b_small),
        "clipped-sgd": curve(dp(0.0, next(seeds)), b_small),
        "dp sigma=10": curve(dp(10.0, next(seeds)), b_small),
        f"geodp beta={beta_loose}": curve(geo(10.0, beta_loose, next(seeds)), b_small),
        f"geodp beta={beta_tight}": curve(geo(10.0, beta_tight, next(seeds)), b_small),
    }

    b_c = cfg["batch_c"]
    curves_c = {
        "no-noise": curve(SgdOptimizer(lr), b_c),
        "clipped-sgd": curve(dp(0.0, next(seeds)), b_c),
        "dp sigma=0.1": curve(dp(0.1, next(seeds)), b_c),
        "dp sigma=0.01": curve(dp(0.01, next(seeds)), b_c),
        "geodp sigma=0.1": curve(geo(0.1, 1.0, next(seeds)), b_c),
        "geodp sigma=0.01": curve(geo(0.01, 1.0, next(seeds)), b_c),
    }

    return {
        "scale": scale,
        "iterations": iters,
        "betas_b": cfg["betas_b"],
        "panels": {"a": curves_a, "b": curves_b, "c": curves_c},
    }


def _tail_mean(curve: list[float], frac: float = 0.2) -> float:
    tail = curve[max(1, int(len(curve) * (1 - frac))) :]
    return float(np.mean(tail))


def format_fig5(result: dict) -> str:
    """Summarise each panel's curves as first/final/tail-mean loss rows."""
    blocks = []
    for panel, curves in result["panels"].items():
        headers = ["method", "initial loss", "final loss", "tail-mean loss"]
        rows = [
            [name, curve[0], curve[-1], _tail_mean(curve)]
            for name, curve in curves.items()
        ]
        blocks.append(
            format_table(
                headers,
                rows,
                title=f"Figure 5({panel}) (scale={result['scale']}, "
                f"{result['iterations']} iterations)",
            )
        )
    return "\n\n".join(blocks)
