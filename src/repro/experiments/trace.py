"""Telemetry trace demo: instrumented DP-SGD vs GeoDP training runs.

Trains the paper's logistic-regression workload twice at equal privacy
budget — once with classic DP-SGD, once with GeoDP — with a
:class:`~repro.telemetry.MetricsRecorder` attached to each run, then
reports the per-step geometric diagnostics side by side: clipped fraction,
noise-to-signal ratio and, centrally, the mean angular deviation between
the true averaged gradient and the released noisy gradient.  This is the
paper's Fig. 1 / Theorem 2 claim made directly observable on a live
training run rather than inferred from final loss.

Each run carries the full observability stack of ``docs/observability.md``:
a span :class:`~repro.telemetry.Tracer`, an
:class:`~repro.privacy.RdpAccountant` and a hash-chained
:class:`~repro.privacy.ReleaseLedger`, so the comparison also reports the
spent ε and the ledger's replay-verification verdict.  With a
``telemetry=`` path (CLI: ``--telemetry out.jsonl``) both runs are
exported to one JSONL trace file (run labels ``dpsgd`` and ``geodp``) that
round-trips through :func:`repro.telemetry.load_run_bundles` and feeds the
``repro report`` subcommand.
"""

from __future__ import annotations

import numpy as np

from repro.core.dpsgd import DpSgdOptimizer
from repro.core.geodp import GeoDpSgdOptimizer
from repro.core.trainer import Trainer
from repro.data.datasets import train_test_split
from repro.data.mnist_like import make_mnist_like
from repro.experiments.common import check_scale
from repro.models.logistic import build_logistic_regression
from repro.privacy.accountant import RdpAccountant
from repro.privacy.ledger import ReleaseLedger, verify_ledger
from repro.telemetry import (
    MetricsRecorder,
    RunBundle,
    Tracer,
    export_trace,
    metric_summary,
    summarize,
)
from repro.utils.rng import as_rng, spawn_rngs
from repro.utils.tables import format_table

__all__ = ["run_trace", "format_trace"]

# Training experiments use GeoDP's per_angle calibration with rescaled beta,
# matching fig5 (see EXPERIMENTS.md on the sensitivity-mode discrepancy).
_PRESETS = {
    "smoke": {"n": 800, "size": 12, "iters": 60, "batch": 128, "beta": 0.1},
    "ci": {"n": 2000, "size": 16, "iters": 150, "batch": 256, "beta": 0.1},
    "paper": {"n": 60000, "size": 28, "iters": 350, "batch": 2048, "beta": 1.0},
}

_CLIP = 0.1  # the paper fixes C = 0.1 throughout (§VI-A)
_SIGMA = 1.0
_LR = 4.0

#: Diagnostics compared across schemes in the report table.
_COMPARED = ("loss", "clipped_fraction", "noise_to_signal", "angular_deviation")


def run_trace(scale: str = "smoke", rng=None, telemetry=None) -> dict:
    """Run both instrumented trainings; optionally export a JSONL trace.

    Returns the two run bundles (recorder + tracer + ledger each) plus the
    configuration used; ``result["recorders"]`` keeps the recorder-only
    view.  ``telemetry`` is a destination path for the combined JSONL
    trace (or ``None``).  Instrumentation never touches a random stream,
    so the training trajectories are identical to the uninstrumented runs.
    """
    check_scale(scale)
    cfg = _PRESETS[scale]
    rng = as_rng(rng)
    data_rng, opt_rng, train_rng = spawn_rngs(rng, 3)
    data = make_mnist_like(cfg["n"], data_rng, size=cfg["size"])
    train, test = train_test_split(data, rng=data_rng)
    sample_rate = min(cfg["batch"], len(train)) / len(train)

    # Both optimizers consume identical seed material so the comparison is
    # equal-budget *and* equal-randomness (same batches, fresh noise).
    opt_seed = int(opt_rng.integers(2**31))
    train_seed = int(train_rng.integers(2**31))

    def _run(make_optimizer) -> RunBundle:
        recorder = MetricsRecorder()
        tracer = Tracer(granularity="phase")
        ledger = ReleaseLedger()
        optimizer = make_optimizer(
            accountant=RdpAccountant(),
            sample_rate=sample_rate,
            ledger=ledger,
        )
        model = build_logistic_regression((1, cfg["size"], cfg["size"]), rng=0)
        trainer = Trainer(
            model,
            optimizer,
            train,
            test_data=test,
            batch_size=cfg["batch"],
            rng=train_seed,
            telemetry=recorder,
            tracer=tracer,
        )
        trainer.train(cfg["iters"], eval_every=cfg["iters"])
        tracer.close()
        return RunBundle(recorder, tracer=tracer, ledger=ledger)

    bundles = {
        "dpsgd": _run(
            lambda **dp: DpSgdOptimizer(_LR, _CLIP, _SIGMA, rng=opt_seed, **dp)
        ),
        "geodp": _run(
            lambda **dp: GeoDpSgdOptimizer(
                _LR,
                _CLIP,
                _SIGMA,
                beta=cfg["beta"],
                rng=opt_seed,
                sensitivity_mode="per_angle",
                **dp,
            )
        ),
    }
    if telemetry is not None:
        for position, (run, bundle) in enumerate(bundles.items()):
            export_trace(
                telemetry,
                bundle.recorder,
                run=run,
                append=position > 0,
                tracer=bundle.tracer,
                ledger=bundle.ledger,
            )
    verifications = {
        run: verify_ledger(bundle.ledger, strict=False)
        for run, bundle in bundles.items()
    }
    return {
        "scale": scale,
        "config": dict(cfg, clip=_CLIP, sigma=_SIGMA, lr=_LR),
        "bundles": bundles,
        "recorders": {run: bundle.recorder for run, bundle in bundles.items()},
        "verifications": verifications,
        "telemetry_path": None if telemetry is None else str(telemetry),
    }


def format_trace(result: dict) -> str:
    """Comparison table plus one telemetry summary per scheme."""
    recorders = result["recorders"]
    rows = []
    for name, recorder in recorders.items():
        row = [name]
        for metric in _COMPARED:
            try:
                row.append(metric_summary(recorder, metric)["mean"])
            except KeyError:
                row.append(float("nan"))
        acc = recorder.values("test_accuracy")
        row.append(acc[-1] if acc else float("nan"))
        rows.append(row)
    cfg = result["config"]
    sections = [
        format_table(
            ["scheme", *(f"mean {m}" for m in _COMPARED), "final acc"],
            rows,
            title=(
                "Telemetry trace: DP-SGD vs GeoDP "
                f"(sigma={cfg['sigma']}, C={cfg['clip']}, B={cfg['batch']}, "
                f"beta={cfg['beta']}, {cfg['iters']} iters)"
            ),
        )
    ]
    dp = np.mean(recorders["dpsgd"].values("angular_deviation"))
    geo = np.mean(recorders["geodp"].values("angular_deviation"))
    sections.append(
        f"mean angular deviation: dpsgd={dp:.4f} rad, geodp={geo:.4f} rad "
        f"({'GeoDP preserves direction better' if geo <= dp else 'DP-SGD ahead'})"
    )
    for name, verification in result.get("verifications", {}).items():
        ledger = result["bundles"][name].ledger
        eps = verification.replayed_epsilon
        eps_text = "n/a" if eps is None else f"{eps:.4f}"
        sections.append(
            f"[{name}] privacy ledger: {len(ledger.entries)} releases, "
            f"epsilon={eps_text} at delta={ledger.delta:g} — {verification}"
        )
    if result["telemetry_path"]:
        sections.append(f"JSONL trace written to {result['telemetry_path']}")
    for name, recorder in recorders.items():
        sections.append(summarize(recorder, title=f"[{name}] telemetry summary"))
    return "\n\n".join(sections)
