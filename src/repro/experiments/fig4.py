"""Figure 4: effectiveness of the bounding factor beta.

The paper sweeps beta in {0.1, 0.2, 0.4, 0.6, 0.8, 1.0} at three
dimensionalities (sigma = 8, B = 4096) and shows that there always exists a
beta below which GeoDP beats DP on *both* direction and gradient MSE
(Lemma 1 / Theorem 4).  Our measured crossover lies at smaller beta than the
paper's figures (see EXPERIMENTS.md), so the sweep extends below 0.1.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import check_scale, gradient_workload, mse_comparison
from repro.utils.rng import as_rng
from repro.utils.tables import format_table

__all__ = ["run_fig4", "format_fig4", "crossover_beta"]

_PRESETS = {
    # (num, dims, betas, sigma, batch, repeats, gradient source)
    "smoke": (
        30,
        (200, 500),
        (0.003, 0.01, 0.03, 0.1, 0.4, 1.0),
        8.0,
        4096,
        2,
        "synthetic",
    ),
    "ci": (
        120,
        (1000, 2000, 5000),
        (0.001, 0.003, 0.01, 0.03, 0.1, 0.2, 0.4, 1.0),
        8.0,
        4096,
        3,
        "collected",
    ),
    "paper": (
        1000,
        (5000, 10000, 20000),
        (0.001, 0.003, 0.01, 0.03, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0),
        8.0,
        4096,
        5,
        "collected",
    ),
}


def run_fig4(scale: str = "smoke", rng=None, *, clip_norm: float = 0.1) -> dict:
    """Sweep beta at each dimensionality; returns MSE series per (d, beta)."""
    check_scale(scale)
    num, dims, betas, sigma, batch, repeats, source = _PRESETS[scale]
    rng = as_rng(rng)

    rows = []
    for dim in dims:
        grads = gradient_workload(num, dim, rng, source=source)
        for beta in betas:
            mses = mse_comparison(
                grads, clip_norm, sigma, batch, beta, rng, repeats=repeats
            )
            rows.append({"dim": dim, "beta": beta, **mses})
    return {
        "scale": scale,
        "sigma": sigma,
        "batch_size": batch,
        "dims": dims,
        "betas": betas,
        "rows": rows,
    }


def crossover_beta(result: dict, dim: int) -> float | None:
    """Largest swept beta at which GeoDP beats DP on *both* MSEs for ``dim``.

    Returns ``None`` when no swept beta achieves the double win.
    """
    winning = [
        r["beta"]
        for r in result["rows"]
        if r["dim"] == dim and r["geo_theta"] < r["dp_theta"] and r["geo_g"] < r["dp_g"]
    ]
    return max(winning) if winning else None


def format_fig4(result: dict) -> str:
    """Render the beta sweep, flagging double wins for GeoDP."""
    headers = [
        "d",
        "beta",
        "DP MSE(theta)",
        "GeoDP MSE(theta)",
        "DP MSE(g)",
        "GeoDP MSE(g)",
        "GeoDP wins both",
    ]
    rows = [
        [
            r["dim"],
            r["beta"],
            r["dp_theta"],
            r["geo_theta"],
            r["dp_g"],
            r["geo_g"],
            "yes" if (r["geo_theta"] < r["dp_theta"] and r["geo_g"] < r["dp_g"]) else "no",
        ]
        for r in result["rows"]
    ]
    title = (
        f"Figure 4 (scale={result['scale']}): bounding-factor effectiveness, "
        f"sigma={result['sigma']}, B={result['batch_size']}"
    )
    table = format_table(headers, rows, title=title)
    notes = []
    for dim in result["dims"]:
        beta = crossover_beta(result, dim)
        label = f"{beta}" if beta is not None else "none in sweep"
        notes.append(f"d={dim}: largest double-win beta = {label}")
    return table + "\n" + "; ".join(notes)
