"""Privacy-utility frontier: accuracy at equal (epsilon, delta) budgets.

An extension experiment beyond the paper's tables: instead of fixing the
noise multiplier, fix the *privacy budget*.  For each target epsilon we
calibrate sigma with :func:`repro.privacy.find_noise_multiplier` (same
sample rate and step count for every method) and train DP-SGD and
GeoDP-SGD with that sigma.  This is the apples-to-apples comparison a
deployment would make; the paper's claim translates to "GeoDP sits above
DP on the frontier" (modulo GeoDP's delta' relaxation, which is reported
alongside).
"""

from __future__ import annotations

from repro.core.dpsgd import DpSgdOptimizer
from repro.core.geodp import GeoDpSgdOptimizer
from repro.core.trainer import Trainer
from repro.data.datasets import train_test_split
from repro.data.mnist_like import make_mnist_like
from repro.experiments.common import check_scale
from repro.geometry.bounding import delta_prime_upper_bound
from repro.models.logistic import build_logistic_regression
from repro.privacy.curves import find_noise_multiplier
from repro.utils.rng import as_rng, spawn_rngs
from repro.utils.tables import format_table

__all__ = ["run_privacy_utility", "format_privacy_utility"]

_PRESETS = {
    # n, image size, batch, iterations, lr, beta, target epsilons
    "smoke": {
        "n": 1200, "size": 16, "batch": 128, "iters": 200, "lr": 4.0,
        "beta": 0.05, "epsilons": (0.5, 2.0, 8.0),
    },
    "ci": {
        "n": 4000, "size": 28, "batch": 512, "iters": 400, "lr": 4.0,
        "beta": 0.05, "epsilons": (0.25, 0.5, 1.0, 2.0, 4.0, 8.0),
    },
    "paper": {
        "n": 60000, "size": 28, "batch": 2048, "iters": 1000, "lr": 2.0,
        "beta": 0.1, "epsilons": (0.25, 0.5, 1.0, 2.0, 4.0, 8.0),
    },
}

_CLIP = 0.1
_DELTA = 1e-5


def run_privacy_utility(scale: str = "smoke", rng=None) -> dict:
    """Accuracy of DP vs GeoDP at calibrated equal-epsilon budgets."""
    check_scale(scale)
    cfg = _PRESETS[scale]
    rng = as_rng(rng)
    data = make_mnist_like(cfg["n"], rng, size=cfg["size"])
    train, test = train_test_split(data, rng=rng)
    sample_rate = cfg["batch"] / len(train)
    seeds = iter(spawn_rngs(rng, 4 * len(cfg["epsilons"])))

    def train_with(optimizer):
        model = build_logistic_regression((1, cfg["size"], cfg["size"]), rng=0)
        trainer = Trainer(
            model, optimizer, train, test_data=test,
            batch_size=cfg["batch"], rng=next(seeds),
        )
        return trainer.train(cfg["iters"], eval_every=cfg["iters"]).final_accuracy

    rows = []
    for eps in cfg["epsilons"]:
        sigma = find_noise_multiplier(eps, _DELTA, sample_rate, cfg["iters"])
        acc_dp = train_with(DpSgdOptimizer(cfg["lr"], _CLIP, sigma, rng=next(seeds)))
        acc_geo = train_with(
            GeoDpSgdOptimizer(
                cfg["lr"], _CLIP, sigma, beta=cfg["beta"], rng=next(seeds),
                sensitivity_mode="per_angle",
            )
        )
        rows.append(
            {"epsilon": eps, "sigma": sigma, "dp": acc_dp, "geodp": acc_geo}
        )
    return {
        "scale": scale,
        "delta": _DELTA,
        "beta": cfg["beta"],
        "delta_prime": delta_prime_upper_bound(cfg["beta"]),
        "rows": rows,
    }


def format_privacy_utility(result: dict) -> str:
    """Render the frontier table."""
    headers = ["epsilon", "calibrated sigma", "DP-SGD acc", "GeoDP acc"]
    rows = [
        [r["epsilon"], r["sigma"], r["dp"], r["geodp"]] for r in result["rows"]
    ]
    title = (
        f"Privacy-utility frontier (scale={result['scale']}, "
        f"delta={result['delta']}, GeoDP beta={result['beta']}, "
        f"delta' <= {result['delta_prime']:.2f})"
    )
    return format_table(headers, rows, title=title)
