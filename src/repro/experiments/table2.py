"""Table II: GeoDP vs DP on CNN / MNIST-like — test accuracy grid.

The paper's grid crosses {DP, GeoDP} x {two batch sizes, good/bad beta} x
{IS, SUR, AUTO-S, PSAC, SUR+PSAC} at sigma in {10, 1}.  The headline shape:
GeoDP(beta=0.1) > DP at both batch sizes; batch size helps GeoDP more than
DP; a too-large beta (0.5) collapses GeoDP; the optimisation techniques
stack on GeoDP exactly as they stack on DP.
"""

from __future__ import annotations

from repro.data.datasets import train_test_split
from repro.data.mnist_like import make_mnist_like
from repro.experiments.common import check_scale
from repro.experiments.training_grid import run_grid, standard_method_grid
from repro.models.cnn import build_cnn
from repro.utils.rng import as_rng
from repro.utils.tables import format_table

__all__ = ["run_table2", "format_table2"]

_PRESETS = {
    "smoke": {
        "n": 800,
        "size": 16,
        "channels": (2, 4),
        "batches": (32, 64),
        "iters": 150,
        "sigmas": (10.0, 1.0),
        "lr": 4.0,
    },
    "ci": {
        "n": 4000,
        "size": 28,
        "channels": (4, 8),
        "batches": (256, 512),
        "iters": 250,
        "sigmas": (10.0, 1.0),
        "lr": 4.0,
    },
    "paper": {
        "n": 60000,
        "size": 28,
        "channels": (8, 16),
        "batches": (8192, 16384),
        "iters": 400,
        "sigmas": (10.0, 1.0),
        "lr": 1.0,
    },
}

_CLIP = 0.1
_BETA_GOOD = 0.1
_BETA_BAD = 0.5


def run_table2(
    scale: str = "smoke",
    rng=None,
    *,
    checkpoint_dir=None,
    resume: bool = True,
    workers=1,
    grad_mode: str = "materialize",
) -> dict:
    """Run the Table II accuracy grid at the requested scale.

    ``checkpoint_dir`` enables fault-tolerant training: every grid cell
    snapshots its state there (one sub-directory per cell) and, with
    ``resume=True``, an interrupted grid picks up from the latest valid
    snapshots with bit-identical results (see :mod:`repro.checkpoint`).
    ``workers > 1`` trains the grid cells concurrently with bit-identical
    results (see :mod:`repro.runtime`); combined with ``checkpoint_dir`` a
    killed parallel run resumes only its unfinished cells.
    ``grad_mode="ghost"`` routes every non-IS cell through the
    ghost-clipping fast path (see :mod:`repro.core.ghost`).
    """
    check_scale(scale)
    cfg = _PRESETS[scale]
    rng = as_rng(rng)

    data = make_mnist_like(cfg["n"], rng, size=cfg["size"])
    train, test = train_test_split(data, rng=rng)

    def builder():
        return build_cnn(
            input_shape=(1, cfg["size"], cfg["size"]), channels=cfg["channels"], rng=0
        )

    methods = standard_method_grid(cfg["batches"][0], cfg["batches"][1], _BETA_GOOD, _BETA_BAD)
    result = run_grid(
        methods,
        builder,
        train,
        test,
        sigmas=cfg["sigmas"],
        iterations=cfg["iters"],
        learning_rate=cfg["lr"],
        clip_norm=_CLIP,
        rng=rng,
        checkpoint_dir=checkpoint_dir,
        resume=resume,
        workers=workers,
        grad_mode=grad_mode,
    )
    result["scale"] = scale
    result["dataset"] = "MNIST-like"
    result["model"] = "CNN"
    return result


def format_table2(result: dict) -> str:
    """Render the accuracy grid in the paper's table layout."""
    sigmas = result["sigmas"]
    headers = ["Method"] + [f"sigma={s:g}" for s in sigmas]
    rows = [
        [r["label"]] + [f"{r['accuracies'][s] * 100:.2f}%" for s in sigmas]
        for r in result["rows"]
    ]
    title = (
        f"Table II (scale={result['scale']}): {result['model']} on "
        f"{result['dataset']} (noise-free {result['noise_free'] * 100:.2f}%)"
    )
    return format_table(headers, rows, title=title)
