"""Gradient-direction concentration on real training gradients (Theorem 3).

The justification for GeoDP's bounding factor is Theorem 3: averaged
gradient directions concentrate in a small sub-space instead of covering
the sphere, so protecting the whole direction space is overprotective.
This experiment verifies the premise on *real* gradients: collect per-step
gradients from non-private CNN training (the paper's §VI-A protocol),
average them at several batch sizes, and measure direction concentration
(mean resultant length / implied vMF kappa) against a uniform-sphere
baseline.
"""

from __future__ import annotations

import numpy as np

from repro.data.cifar_like import make_cifar_like
from repro.data.gradients import collect_training_gradients
from repro.experiments.common import check_scale
from repro.geometry.sampling import sample_uniform_sphere
from repro.geometry.statistics import estimate_vmf_kappa, resultant_length
from repro.models.cnn import build_cnn
from repro.utils.rng import as_rng
from repro.utils.tables import format_table

__all__ = ["run_concentration", "format_concentration"]

_PRESETS = {
    # dataset size, image size, collected gradients, projected dim, batch sizes
    "smoke": {"n": 200, "size": 16, "grads": 240, "dim": 100, "batches": (1, 4, 16)},
    "ci": {"n": 800, "size": 16, "grads": 1200, "dim": 500, "batches": (1, 4, 16, 64)},
    "paper": {"n": 50000, "size": 32, "grads": 45000, "dim": 20000, "batches": (1, 16, 256)},
}


def run_concentration(scale: str = "smoke", rng=None) -> dict:
    """Measure direction concentration of batch-averaged real gradients.

    Theorem 3 concerns gradients of *one* model state: we first warm the
    model up briefly (the paper's B=1 collection protocol), then freeze the
    weights and compute per-sample gradients over the dataset, so averaging
    groups of them is exactly the theorem's setting.
    """
    check_scale(scale)
    cfg = _PRESETS[scale]
    rng = as_rng(rng)

    dataset = make_cifar_like(cfg["n"], rng, size=cfg["size"])
    model = build_cnn(
        input_shape=(3, cfg["size"], cfg["size"]), channels=(2, 4), rng=0
    )
    # Warm-up: a short stretch of the §VI-A B=1 collection run.
    collect_training_gradients(model, dataset, min(50, cfg["grads"]), rng)

    # Frozen-model per-sample gradients (Theorem 3's i.i.d. setting).
    total = model.num_params
    dim = min(cfg["dim"], total)
    keep = np.sort(rng.choice(total, size=dim, replace=False))
    chunks = []
    needed = cfg["grads"]
    indices = rng.choice(len(dataset), size=needed, replace=True)
    for start in range(0, needed, 64):
        x, y = dataset.batch(indices[start : start + 64])
        _, per_sample = model.loss_and_per_sample_gradients(x, y)
        chunks.append(per_sample[:, keep])
    grads = np.concatenate(chunks)
    norms = np.linalg.norm(grads, axis=1)
    grads = grads[norms > 1e-12]

    rows = []
    for batch in cfg["batches"]:
        groups = len(grads) // batch
        if groups < 2:
            continue
        averaged = grads[: groups * batch].reshape(groups, batch, -1).mean(axis=1)
        averaged = averaged[np.linalg.norm(averaged, axis=1) > 1e-12]
        rows.append(
            {
                "batch": batch,
                "resultant_length": resultant_length(averaged),
                "kappa": estimate_vmf_kappa(averaged),
            }
        )

    uniform = sample_uniform_sphere(len(grads), dim, rng)
    baseline = {
        "resultant_length": resultant_length(uniform),
        "kappa": estimate_vmf_kappa(uniform),
    }
    return {"scale": scale, "dim": dim, "rows": rows, "uniform": baseline}


def format_concentration(result: dict) -> str:
    """Render the concentration table with the uniform baseline."""
    headers = ["directions", "mean resultant length", "implied vMF kappa"]
    rows = [
        [f"avg of B={r['batch']} real gradients", r["resultant_length"], r["kappa"]]
        for r in result["rows"]
    ]
    rows.append(
        [
            "uniform sphere (baseline)",
            result["uniform"]["resultant_length"],
            result["uniform"]["kappa"],
        ]
    )
    return format_table(
        headers,
        rows,
        title=(
            f"Theorem 3 on real gradients (scale={result['scale']}, "
            f"d={result['dim']})"
        ),
    )
