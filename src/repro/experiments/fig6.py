"""Figure 6: runtime of GeoDP vs DP perturbation vs batch size and dimension.

The paper measures the average wall time to perturb batches of gradients
under both schemes, varying batch size and dimensionality, and finds that
both factors increase runtime but dimensionality dominates GeoDP's extra
cost (the coordinate conversions are O(d) per gradient).  We time the full
per-iteration perturbation pipeline: per-sample clip of a ``(B, d)``
gradient matrix, aggregation, and noising (plus the two conversions for
GeoDP).
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.dpsgd import DpSgdOptimizer
from repro.core.geodp import GeoDpSgdOptimizer
from repro.experiments.common import check_scale
from repro.utils.rng import as_rng
from repro.utils.tables import format_table

__all__ = ["run_fig6", "format_fig6"]

_PRESETS = {
    # (batch sizes, dims, repeats)
    "smoke": ((64, 256), (500, 2000), 3),
    "ci": ((128, 512, 2048), (1250, 5000, 20000), 5),
    "paper": ((512, 2048, 8192), (1250, 20000, 80000, 320000), 10),
}


def _time_pipeline(optimizer, grads: np.ndarray, repeats: int) -> float:
    params = np.zeros(grads.shape[1])
    optimizer.step(params, grads)  # warm-up
    start = time.perf_counter()
    for _ in range(repeats):
        optimizer.step(params, grads)
    return (time.perf_counter() - start) / repeats


def run_fig6(scale: str = "smoke", rng=None) -> dict:
    """Time DP vs GeoDP perturbation across (batch size, dimension) grids."""
    check_scale(scale)
    batches, dims, repeats = _PRESETS[scale]
    rng = as_rng(rng)

    rows = []
    for dim in dims:
        for batch in batches:
            grads = rng.normal(size=(batch, dim)) * 0.01
            dp = DpSgdOptimizer(0.1, 0.1, 1.0, rng=rng)
            geo = GeoDpSgdOptimizer(0.1, 0.1, 1.0, beta=0.1, rng=rng)
            rows.append(
                {
                    "dim": dim,
                    "batch": batch,
                    "dp_seconds": _time_pipeline(dp, grads, repeats),
                    "geodp_seconds": _time_pipeline(geo, grads, repeats),
                }
            )
    return {"scale": scale, "rows": rows}


def format_fig6(result: dict) -> str:
    """Render the runtime grid with the GeoDP/DP ratio."""
    headers = ["d", "B", "DP (s/iter)", "GeoDP (s/iter)", "GeoDP/DP"]
    rows = [
        [
            r["dim"],
            r["batch"],
            r["dp_seconds"],
            r["geodp_seconds"],
            r["geodp_seconds"] / max(r["dp_seconds"], 1e-12),
        ]
        for r in result["rows"]
    ]
    return format_table(
        headers, rows, title=f"Figure 6 (scale={result['scale']}): perturbation runtime"
    )
