"""Experiment harness: one module per table/figure of the paper's evaluation.

Every experiment exposes ``run_*(scale=..., rng=...)`` returning a plain
dict of series/rows plus a ``format_*`` function rendering the same table
the paper reports.  ``scale`` selects parameter presets:

* ``"smoke"`` — seconds; used by the benchmark suite's default run.
* ``"ci"`` — minutes; closer to the paper's parameter ranges.
* ``"paper"`` — the paper's sizes (hours on CPU; provided for completeness).

EXPERIMENTS.md records paper-vs-measured for each experiment at the scale
actually run.
"""

from repro.experiments.fig1 import run_fig1, format_fig1
from repro.experiments.fig3 import run_fig3, format_fig3
from repro.experiments.fig4 import run_fig4, format_fig4
from repro.experiments.fig5 import run_fig5, format_fig5
from repro.experiments.fig6 import run_fig6, format_fig6
from repro.experiments.table2 import run_table2, format_table2
from repro.experiments.table3 import run_table3, format_table3
from repro.experiments.theory_validation import (
    run_theory_validation,
    format_theory_validation,
)
from repro.experiments.privacy_utility import run_privacy_utility, format_privacy_utility
from repro.experiments.mia import run_mia, format_mia
from repro.experiments.concentration import run_concentration, format_concentration
from repro.experiments.trace import run_trace, format_trace
from repro.experiments.sparse_scale import run_sparse_scale, format_sparse_scale

__all__ = [
    "run_fig1",
    "format_fig1",
    "run_fig3",
    "format_fig3",
    "run_fig4",
    "format_fig4",
    "run_fig5",
    "format_fig5",
    "run_fig6",
    "format_fig6",
    "run_table2",
    "format_table2",
    "run_table3",
    "format_table3",
    "run_theory_validation",
    "format_theory_validation",
    "run_privacy_utility",
    "format_privacy_utility",
    "run_mia",
    "format_mia",
    "run_concentration",
    "format_concentration",
    "run_trace",
    "format_trace",
    "run_sparse_scale",
    "format_sparse_scale",
]
