"""Embedding-scale sparse DP training versus the dense pipeline.

Trains the same bag-of-embeddings classifier on a Zipfian click log two
ways — the core :class:`~repro.core.Trainer` on the ghost path (the best
dense baseline: per-sample gradients never materialize, but every step
still round-trips and noises the full table) and the
:class:`~repro.sparse.SparseTrainer` (touched rows only, untouched-row
noise deferred) — for both perturbation schemes (DP and GeoDP).  Reports
per-step wall time, test accuracy, the touched-row fraction, and the
accountant's epsilon for each side; the sparse path must spend *exactly*
the same privacy as the dense one.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.dpsgd import DpSgdOptimizer
from repro.core.geodp import GeoDpSgdOptimizer
from repro.core.trainer import Trainer
from repro.data.clicklog import make_click_log
from repro.data.datasets import train_test_split
from repro.experiments.common import check_scale
from repro.privacy.accountant import RdpAccountant
from repro.sparse import SparseTrainer
from repro.utils.rng import as_rng
from repro.utils.tables import format_table

__all__ = ["run_sparse_scale", "format_sparse_scale"]

_PRESETS = {
    # (vocab, dim, samples, seq_length, touch_rate, batch, steps)
    "smoke": (2_000, 8, 300, 12, 0.02, 30, 30),
    "ci": (20_000, 16, 600, 16, 0.01, 60, 60),
    "paper": (100_000, 16, 2_000, 20, 0.01, 100, 100),
}

_DELTA = 1e-5


def _make_optimizer(scheme: str, sample_rate: float, rng, *, grad_mode: str):
    kwargs = dict(
        learning_rate=0.5,
        clipping=1.0,
        noise_multiplier=0.7,
        rng=rng,
        accountant=RdpAccountant(),
        sample_rate=sample_rate,
        grad_mode=grad_mode,
    )
    if scheme == "geodp":
        return GeoDpSgdOptimizer(beta=0.02, **kwargs)
    return DpSgdOptimizer(**kwargs)


def run_sparse_scale(scale: str = "smoke", rng=None) -> dict:
    """Dense-ghost vs sparse DP training on a click log, both schemes."""
    check_scale(scale)
    vocab, dim, samples, seq_length, touch_rate, batch, steps = _PRESETS[scale]
    rng = as_rng(rng)
    data = make_click_log(
        samples,
        rng=rng,
        vocab_size=vocab,
        seq_length=seq_length,
        touch_rate=touch_rate,
        padding_idx=0,
    )
    train, test = train_test_split(data, rng=rng)
    sample_rate = batch / len(train)

    def build_model(seed):
        from repro.models.text import build_text_classifier

        return build_text_classifier(
            vocab, data.num_classes, embedding_dim=dim,
            padding_idx=0, rng=np.random.default_rng(seed),
        )

    rows = []
    for scheme in ("dp", "geodp"):
        # Dense baseline: ghost path, full-table release every step.
        model = build_model(0)
        opt = _make_optimizer(scheme, sample_rate, np.random.default_rng(1), grad_mode="ghost")
        trainer = Trainer(
            model, opt, train, batch_size=batch,
            test_data=test, rng=np.random.default_rng(2),
        )
        start = time.perf_counter()
        trainer.train(steps)
        dense_seconds = (time.perf_counter() - start) / steps
        dense_acc = trainer.evaluate()
        dense_eps = opt.accountant.get_epsilon(_DELTA)

        # Sparse path: touched rows only, aggregate deferred noise.
        model = build_model(0)
        opt = _make_optimizer(scheme, sample_rate, np.random.default_rng(1), grad_mode="sparse")
        sparse = SparseTrainer(
            model, opt, train, batch_size=batch,
            test_data=test, rng=np.random.default_rng(2),
            noise_mode="aggregate", noise_seed=3,
        )
        start = time.perf_counter()
        sparse.train(steps)
        sparse_seconds = (time.perf_counter() - start) / steps
        sparse_acc = sparse.evaluate()
        sparse_eps = opt.accountant.get_epsilon(_DELTA)

        rows.append(
            {
                "scheme": scheme,
                "dense_seconds": dense_seconds,
                "sparse_seconds": sparse_seconds,
                "speedup": dense_seconds / max(sparse_seconds, 1e-12),
                "dense_accuracy": dense_acc,
                "sparse_accuracy": sparse_acc,
                "dense_epsilon": dense_eps,
                "sparse_epsilon": sparse_eps,
                "epsilon_gap": abs(dense_eps - sparse_eps),
            }
        )
    return {
        "scale": scale,
        "vocab_size": vocab,
        "embedding_dim": dim,
        "touch_rate": touch_rate,
        "batch_size": batch,
        "steps": steps,
        "rows": rows,
    }


def format_sparse_scale(result: dict) -> str:
    """Render the dense-vs-sparse comparison table."""
    headers = [
        "scheme", "dense s/it", "sparse s/it", "speedup",
        "dense acc", "sparse acc", "eps gap",
    ]
    rows = [
        [
            r["scheme"],
            f"{r['dense_seconds']:.4f}",
            f"{r['sparse_seconds']:.4f}",
            f"{r['speedup']:.1f}x",
            f"{r['dense_accuracy']:.3f}",
            f"{r['sparse_accuracy']:.3f}",
            f"{r['epsilon_gap']:.2e}",
        ]
        for r in result["rows"]
    ]
    title = (
        f"Sparse vs dense DP training (vocab={result['vocab_size']}, "
        f"dim={result['embedding_dim']}, touch={result['touch_rate']:.0%}, "
        f"{result['steps']} steps)"
    )
    return title + "\n" + format_table(headers, rows)
