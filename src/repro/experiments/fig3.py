"""Figure 3: MSE of GeoDP vs DP under varying sigma, dimension and batch size.

Nine panels in the paper: each of three sweeps (noise multiplier sigma,
dimensionality d, batch size B) at three bounding factors beta.  The headline
shapes: at beta = 1 GeoDP loses on directions once sigma or d is large;
shrinking beta restores (and extends) GeoDP's advantage on *both* direction
and gradient MSE; batch size reduces GeoDP's direction error strongly.
"""

from __future__ import annotations

from repro.experiments.common import check_scale, gradient_workload, mse_comparison
from repro.utils.rng import as_rng
from repro.utils.tables import format_table

__all__ = ["run_fig3", "format_fig3"]

_PRESETS = {
    "smoke": {
        "num": 30,
        "betas": (1.0, 0.1, 0.01),
        "sigma_sweep": {"d": 300, "B": 2048, "sigmas": (1e-3, 1e-1, 1.0)},
        "dim_sweep": {"sigma": 8.0, "B": 4096, "dims": (100, 300, 1000)},
        "batch_sweep": {"d": 500, "sigma": 8.0, "batches": (512, 2048, 8192)},
        "repeats": 2,
        "source": "synthetic",
    },
    "ci": {
        "num": 120,
        "betas": (1.0, 0.1, 0.01),
        "sigma_sweep": {
            "d": 2000,
            "B": 2048,
            "sigmas": (1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0),
        },
        "dim_sweep": {
            "sigma": 8.0,
            "B": 4096,
            "dims": (200, 500, 1000, 2000, 5000),
        },
        "batch_sweep": {
            "d": 2000,
            "sigma": 8.0,
            "batches": (512, 1024, 2048, 4096, 8192, 16384),
        },
        "repeats": 3,
        "source": "collected",
    },
    "paper": {
        "num": 1000,
        "betas": (1.0, 0.1, 0.01),
        "sigma_sweep": {
            "d": 5000,
            "B": 2048,
            "sigmas": (1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0),
        },
        "dim_sweep": {
            "sigma": 8.0,
            "B": 4096,
            "dims": (500, 1000, 2000, 5000, 10000, 20000),
        },
        "batch_sweep": {
            "d": 10000,
            "sigma": 8.0,
            "batches": (512, 1024, 2048, 4096, 8192, 16384),
        },
        "repeats": 5,
        "source": "collected",
    },
}


def run_fig3(scale: str = "smoke", rng=None, *, clip_norm: float = 0.1) -> dict:
    """Run all three Figure 3 sweeps at every bounding factor."""
    check_scale(scale)
    preset = _PRESETS[scale]
    rng = as_rng(rng)
    num = preset["num"]
    repeats = preset["repeats"]
    out: dict = {"scale": scale, "betas": preset["betas"], "panels": {}}

    # (a-c): sigma sweep at fixed d, B.
    cfg = preset["sigma_sweep"]
    grads = gradient_workload(num, cfg["d"], rng, source=preset["source"])
    panel = []
    for beta in preset["betas"]:
        for sigma in cfg["sigmas"]:
            mses = mse_comparison(
                grads, clip_norm, sigma, cfg["B"], beta, rng, repeats=repeats
            )
            panel.append({"beta": beta, "x": sigma, **mses})
    out["panels"]["sigma"] = {"config": cfg, "rows": panel}

    # (d-f): dimension sweep at fixed sigma, B.
    cfg = preset["dim_sweep"]
    panel = []
    for dim in cfg["dims"]:
        grads = gradient_workload(num, dim, rng, source=preset["source"])
        for beta in preset["betas"]:
            mses = mse_comparison(
                grads, clip_norm, cfg["sigma"], cfg["B"], beta, rng, repeats=repeats
            )
            panel.append({"beta": beta, "x": dim, **mses})
    out["panels"]["dim"] = {"config": cfg, "rows": panel}

    # (g-i): batch-size sweep at fixed d, sigma.
    cfg = preset["batch_sweep"]
    grads = gradient_workload(num, cfg["d"], rng, source=preset["source"])
    panel = []
    for beta in preset["betas"]:
        for batch in cfg["batches"]:
            mses = mse_comparison(
                grads, clip_norm, cfg["sigma"], batch, beta, rng, repeats=repeats
            )
            panel.append({"beta": beta, "x": batch, **mses})
    out["panels"]["batch"] = {"config": cfg, "rows": panel}
    return out


def format_fig3(result: dict) -> str:
    """Render the three sweeps as stacked tables."""
    blocks = []
    names = {"sigma": "(a-c) vs sigma", "dim": "(d-f) vs dimension", "batch": "(g-i) vs batch size"}
    for key, label in names.items():
        panel = result["panels"][key]
        headers = ["beta", key, "DP MSE(theta)", "GeoDP MSE(theta)", "DP MSE(g)", "GeoDP MSE(g)"]
        rows = [
            [r["beta"], r["x"], r["dp_theta"], r["geo_theta"], r["dp_g"], r["geo_g"]]
            for r in panel["rows"]
        ]
        blocks.append(
            format_table(headers, rows, title=f"Figure 3 {label} (scale={result['scale']})")
        )
    return "\n\n".join(blocks)
