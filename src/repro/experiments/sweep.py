"""Generic parameter-sweep harness.

Runs a user-supplied measurement function over the cartesian product of a
parameter grid, with seeded repetitions, and renders the result grid — the
machinery behind "how does X vary with (beta, sigma)?" questions that don't
warrant a dedicated experiment module.

Each metric is reported as its mean across the repeats plus a
``<metric>_std`` column (population standard deviation), and repeats can be
spread over worker processes (``run(workers=N)``) — every ``(point,
repeat)`` cell owns a generator spawned by index, so results are
bit-identical for any worker count.

Example::

    from repro.experiments.sweep import ParameterSweep

    def measure(beta, sigma, rng):
        ...
        return {"direction_mse": ..., "gradient_mse": ...}

    sweep = ParameterSweep(measure, {"beta": [0.01, 0.1], "sigma": [1, 10]})
    result = sweep.run(rng=0, repeats=3, workers=4)
    print(sweep.format(result, metric="direction_mse", std=True))
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.utils.rng import as_rng
from repro.utils.tables import format_table

__all__ = ["ParameterSweep"]


class ParameterSweep:
    """Cartesian-product sweep of a measurement function.

    Parameters
    ----------
    measure:
        Callable invoked as ``measure(**point, rng=generator)``; must return
        a dict of scalar metrics.
    grid:
        Mapping of parameter name to the values to sweep.
    """

    def __init__(self, measure, grid: dict):
        if not grid:
            raise ValueError("grid must have at least one parameter")
        for name, values in grid.items():
            if not list(values):
                raise ValueError(f"parameter {name!r} has no values")
        self.measure = measure
        self.grid = {name: list(values) for name, values in grid.items()}

    def points(self) -> list[dict]:
        """All grid points in deterministic order."""
        names = list(self.grid)
        return [
            dict(zip(names, combo))
            for combo in itertools.product(*(self.grid[n] for n in names))
        ]

    def run(
        self, rng=None, *, repeats: int = 1, workers=1, telemetry=None
    ) -> list[dict]:
        """Evaluate every point; metrics are aggregated over ``repeats`` seeds.

        Returns one dict per point: the parameters, the mean of each metric
        the measurement returned, and a ``<metric>_std`` entry with the
        population standard deviation across the repeats (0 when
        ``repeats=1``).

        ``workers > 1`` distributes the ``len(points) * repeats``
        measurement cells over that many processes through
        :func:`repro.runtime.run_cells`.  Cell generators are spawned from
        ``rng`` by cell index, so the results (means *and* stds) are
        bit-identical to ``workers=1`` — parallelism changes wall-clock
        time, never numbers.  ``telemetry`` optionally receives the pool's
        ``runtime_*`` progress events.
        """
        from repro.runtime.scheduler import make_cells, run_cells

        if repeats < 1:
            raise ValueError(f"repeats must be >= 1, got {repeats}")
        rng = as_rng(rng)
        points = self.points()
        payloads = [
            (point_index, repeat_index)
            for point_index in range(len(points))
            for repeat_index in range(repeats)
        ]
        keys = [f"point{pi}/rep{ri}" for pi, ri in payloads]
        cells = make_cells(payloads, keys=keys, rng=rng)

        def measure_cell(cell):
            point_index, _ = cell.payload
            return self.measure(**points[point_index], rng=cell.rng)

        raw = run_cells(measure_cell, cells, workers=workers, telemetry=telemetry)

        rows = []
        for point_index, point in enumerate(points):
            totals: dict[str, float] = {}
            samples: dict[str, list[float]] = {}
            for repeat_index in range(repeats):
                metrics = raw[point_index * repeats + repeat_index]
                if not isinstance(metrics, dict) or not metrics:
                    raise ValueError("measure must return a non-empty dict of metrics")
                for key, value in metrics.items():
                    totals[key] = totals.get(key, 0.0) + float(value)
                    samples.setdefault(key, []).append(float(value))
            means = {k: v / repeats for k, v in totals.items()}
            stds = {f"{k}_std": float(np.std(samples[k])) for k in samples}
            clash = set(means) & set(stds)
            if clash:
                raise ValueError(
                    f"metric name(s) {sorted(clash)} collide with the "
                    "reserved '<metric>_std' aggregate columns"
                )
            rows.append({**point, **means, **stds})
        return rows

    def format(
        self,
        rows: list[dict],
        *,
        metric: str,
        title: str | None = None,
        std: bool = False,
    ) -> str:
        """Render one metric of a completed sweep as a table.

        With exactly two swept parameters the table is a 2-D grid (first
        parameter as rows, second as columns); otherwise one row per point.
        ``std=True`` renders each cell as ``mean±std`` using the metric's
        ``<metric>_std`` column.
        """
        if not rows:
            raise ValueError("no rows to format")
        if metric not in rows[0]:
            raise KeyError(f"metric {metric!r} not in sweep results")
        std_key = f"{metric}_std"
        if std and std_key not in rows[0]:
            raise KeyError(f"metric {std_key!r} not in sweep results")

        def cell(row: dict):
            if not std:
                return row[metric]
            return f"{row[metric]:g}±{row[std_key]:g}"

        names = list(self.grid)
        if len(names) == 2:
            row_name, col_name = names
            col_values = self.grid[col_name]
            headers = [f"{row_name} \\ {col_name}"] + [str(v) for v in col_values]
            lookup = {(r[row_name], r[col_name]): cell(r) for r in rows}
            table_rows = [
                [rv] + [lookup[(rv, cv)] for cv in col_values]
                for rv in self.grid[row_name]
            ]
            return format_table(headers, table_rows, title=title or metric)
        headers = names + [metric]
        table_rows = [[r[n] for n in names] + [cell(r)] for r in rows]
        return format_table(headers, table_rows, title=title or metric)
