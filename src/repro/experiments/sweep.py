"""Generic parameter-sweep harness.

Runs a user-supplied measurement function over the cartesian product of a
parameter grid, with seeded repetitions, and renders the result grid — the
machinery behind "how does X vary with (beta, sigma)?" questions that don't
warrant a dedicated experiment module.

Example::

    from repro.experiments.sweep import ParameterSweep

    def measure(beta, sigma, rng):
        ...
        return {"direction_mse": ..., "gradient_mse": ...}

    sweep = ParameterSweep(measure, {"beta": [0.01, 0.1], "sigma": [1, 10]})
    result = sweep.run(rng=0, repeats=3)
    print(sweep.format(result, metric="direction_mse"))
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.utils.rng import as_rng, spawn_rngs
from repro.utils.tables import format_table

__all__ = ["ParameterSweep"]


class ParameterSweep:
    """Cartesian-product sweep of a measurement function.

    Parameters
    ----------
    measure:
        Callable invoked as ``measure(**point, rng=generator)``; must return
        a dict of scalar metrics.
    grid:
        Mapping of parameter name to the values to sweep.
    """

    def __init__(self, measure, grid: dict):
        if not grid:
            raise ValueError("grid must have at least one parameter")
        for name, values in grid.items():
            if not list(values):
                raise ValueError(f"parameter {name!r} has no values")
        self.measure = measure
        self.grid = {name: list(values) for name, values in grid.items()}

    def points(self) -> list[dict]:
        """All grid points in deterministic order."""
        names = list(self.grid)
        return [
            dict(zip(names, combo))
            for combo in itertools.product(*(self.grid[n] for n in names))
        ]

    def run(self, rng=None, *, repeats: int = 1) -> list[dict]:
        """Evaluate every point; metrics are averaged over ``repeats`` seeds.

        Returns one dict per point: the parameters plus the mean of each
        metric the measurement returned.
        """
        if repeats < 1:
            raise ValueError(f"repeats must be >= 1, got {repeats}")
        rng = as_rng(rng)
        points = self.points()
        seeds = spawn_rngs(rng, len(points) * repeats)
        seed_iter = iter(seeds)

        rows = []
        for point in points:
            totals: dict[str, float] = {}
            for _ in range(repeats):
                metrics = self.measure(**point, rng=next(seed_iter))
                if not isinstance(metrics, dict) or not metrics:
                    raise ValueError("measure must return a non-empty dict of metrics")
                for key, value in metrics.items():
                    totals[key] = totals.get(key, 0.0) + float(value)
            rows.append({**point, **{k: v / repeats for k, v in totals.items()}})
        return rows

    def format(self, rows: list[dict], *, metric: str, title: str | None = None) -> str:
        """Render one metric of a completed sweep as a table.

        With exactly two swept parameters the table is a 2-D grid (first
        parameter as rows, second as columns); otherwise one row per point.
        """
        if not rows:
            raise ValueError("no rows to format")
        if metric not in rows[0]:
            raise KeyError(f"metric {metric!r} not in sweep results")
        names = list(self.grid)
        if len(names) == 2:
            row_name, col_name = names
            col_values = self.grid[col_name]
            headers = [f"{row_name} \\ {col_name}"] + [str(v) for v in col_values]
            lookup = {
                (r[row_name], r[col_name]): r[metric] for r in rows
            }
            table_rows = [
                [rv] + [lookup[(rv, cv)] for cv in col_values]
                for rv in self.grid[row_name]
            ]
            return format_table(headers, table_rows, title=title or metric)
        headers = names + [metric]
        table_rows = [[r[n] for n in names] + [r[metric]] for r in rows]
        return format_table(headers, table_rows, title=title or metric)
