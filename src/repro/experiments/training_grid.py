"""Shared harness for the Table II / Table III training grids.

Each table row is a :class:`MethodSpec` — a perturbation scheme (DP or
GeoDP), a batch size, a bounding factor, a clipping rule, and the optional
IS / SUR techniques.  :func:`run_grid` trains one model per (row, sigma)
cell and reports test accuracy, which is exactly the paper's table format.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from pathlib import Path

from repro.core.dpsgd import DpSgdOptimizer
from repro.core.geodp import GeoDpSgdOptimizer
from repro.core.techniques import ImportanceSampling, SelectiveUpdateRelease
from repro.core.trainer import Trainer
from repro.privacy.clipping import AutoSClipping, FlatClipping, PsacClipping

__all__ = ["MethodSpec", "cell_checkpoint_dir", "run_grid", "run_method", "standard_method_grid"]


@dataclass(frozen=True)
class MethodSpec:
    """One table row: perturbation scheme + batch size + techniques."""

    label: str
    scheme: str  # "dp" | "geodp"
    batch_size: int
    beta: float | None = None
    clipping: str = "flat"  # "flat" | "autos" | "psac"
    use_is: bool = False
    use_sur: bool = False

    def __post_init__(self):
        if self.scheme not in ("dp", "geodp"):
            raise ValueError(f"scheme must be 'dp' or 'geodp', got {self.scheme!r}")
        if self.scheme == "geodp" and self.beta is None:
            raise ValueError("geodp rows require beta")
        if self.clipping not in ("flat", "autos", "psac"):
            raise ValueError(f"unknown clipping {self.clipping!r}")


def _make_clipping(kind: str, clip_norm: float):
    if kind == "flat":
        return FlatClipping(clip_norm)
    if kind == "autos":
        return AutoSClipping(clip_norm)
    return PsacClipping(clip_norm)


def _make_optimizer(spec: MethodSpec, sigma: float, lr: float, clip_norm: float, rng):
    clipping = _make_clipping(spec.clipping, clip_norm)
    if spec.scheme == "dp":
        return DpSgdOptimizer(lr, clipping, sigma, rng=rng)
    return GeoDpSgdOptimizer(
        lr, clipping, sigma, beta=spec.beta, rng=rng, sensitivity_mode="per_angle"
    )


def cell_checkpoint_dir(checkpoint_dir, label: str, sigma: float) -> Path:
    """Per-cell snapshot directory: one sub-directory per (method, sigma)."""
    slug = re.sub(r"[^A-Za-z0-9.=+-]+", "_", label).strip("_")
    return Path(checkpoint_dir) / f"{slug}-sigma{sigma:g}"


def run_method(
    spec: MethodSpec,
    model_builder,
    train,
    test,
    *,
    sigma: float,
    iterations: int,
    learning_rate: float,
    clip_norm: float,
    rng,
    checkpoint_dir=None,
    checkpoint_every: int = 0,
    resume: bool = True,
    grad_mode: str = "materialize",
    telemetry=None,
    tracer=None,
) -> float:
    """Train one model under ``spec``; returns final test accuracy.

    ``grad_mode="ghost"`` routes the DP gradient computation through the
    ghost-clipping fast path; rows using importance sampling need the
    materialized per-sample gradients and stay on ``"materialize"``.
    ``telemetry`` / ``tracer`` instrument the training run (per-iteration
    diagnostics and the span tree of ``docs/observability.md``); neither
    touches any random stream, so instrumented accuracies are unchanged.
    """
    model = model_builder()
    optimizer = _make_optimizer(spec, sigma, learning_rate, clip_norm, rng)
    importance = ImportanceSampling(clip_norm) if spec.use_is else None
    sur = SelectiveUpdateRelease(threshold=0.0, noise_std=0.01, rng=rng) if spec.use_sur else None
    trainer = Trainer(
        model,
        optimizer,
        train,
        test_data=test,
        batch_size=min(spec.batch_size, len(train)),
        rng=rng,
        importance_sampling=importance,
        sur=sur,
        grad_mode="materialize" if spec.use_is else grad_mode,
        telemetry=telemetry,
        tracer=tracer,
    )
    history = trainer.train(
        iterations,
        eval_every=iterations,
        checkpoint_every=checkpoint_every if checkpoint_dir is not None else 0,
        checkpoint_dir=checkpoint_dir,
        resume=resume,
    )
    return history.final_accuracy


def standard_method_grid(
    batch_small: int, batch_large: int, beta_good: float, beta_bad: float
) -> list[MethodSpec]:
    """The 15-row method grid of Tables II and III."""
    bl = batch_large
    return [
        MethodSpec(f"DP (B={batch_small})", "dp", batch_small),
        MethodSpec(f"DP (B={bl})", "dp", bl),
        MethodSpec(f"DP+IS (B={bl})", "dp", bl, use_is=True),
        MethodSpec(f"DP+SUR (B={bl})", "dp", bl, use_sur=True),
        MethodSpec(f"DP+AUTO-S (B={bl})", "dp", bl, clipping="autos"),
        MethodSpec(f"DP+PSAC (B={bl})", "dp", bl, clipping="psac"),
        MethodSpec(f"DP+SUR+PSAC (B={bl})", "dp", bl, clipping="psac", use_sur=True),
        MethodSpec(f"GeoDP (B={batch_small},beta={beta_good})", "geodp", batch_small, beta_good),
        MethodSpec(f"GeoDP (B={bl},beta={beta_good})", "geodp", bl, beta_good),
        MethodSpec(f"GeoDP (B={batch_small},beta={beta_bad})", "geodp", batch_small, beta_bad),
        MethodSpec(f"GeoDP+IS (B={bl},beta={beta_good})", "geodp", bl, beta_good, use_is=True),
        MethodSpec(f"GeoDP+SUR (B={bl},beta={beta_good})", "geodp", bl, beta_good, use_sur=True),
        MethodSpec(
            f"GeoDP+AUTO-S (B={bl},beta={beta_good})", "geodp", bl, beta_good, clipping="autos"
        ),
        MethodSpec(
            f"GeoDP+PSAC (B={bl},beta={beta_good})", "geodp", bl, beta_good, clipping="psac"
        ),
        MethodSpec(
            f"GeoDP+SUR+PSAC (B={bl},beta={beta_good})",
            "geodp",
            bl,
            beta_good,
            clipping="psac",
            use_sur=True,
        ),
    ]


def run_grid(
    methods: list[MethodSpec],
    model_builder,
    train,
    test,
    *,
    sigmas: tuple[float, ...],
    iterations: int,
    learning_rate: float,
    clip_norm: float,
    rng,
    checkpoint_dir=None,
    checkpoint_every: int = 50,
    resume: bool = True,
    workers=1,
    telemetry=None,
    tracer=None,
    ship_telemetry: bool = False,
    grad_mode: str = "materialize",
) -> dict:
    """Run every (method, sigma) cell plus the noise-free reference.

    With ``checkpoint_dir`` set, every cell checkpoints its training state
    into its own sub-directory every ``checkpoint_every`` iterations, and
    (unless ``resume=False``) resumes from the latest valid snapshot — an
    interrupted grid re-run skips finished work inside each cell and
    produces bit-identical accuracies.  The per-cell RNGs are spawned
    deterministically from the master seed, so re-running with the same
    seed reconstructs each cell exactly as the interrupted run built it.

    ``workers > 1`` trains the cells concurrently in forked worker
    processes (:func:`repro.runtime.run_cells`).  Cell seeds are assigned
    by cell index before anything runs, so the grid is bit-identical for
    any worker count; combined with ``checkpoint_dir`` the per-cell
    snapshot directories make a killed parallel run resume only its
    unfinished cells.  ``telemetry`` optionally receives the pool's
    ``runtime_*`` progress events.

    ``ship_telemetry=True`` additionally instruments every cell's training
    with fresh per-cell recorders/tracers that travel back from the
    workers and merge into ``telemetry`` / ``tracer`` in cell order
    (:mod:`repro.runtime.shipback`): the merged telemetry is identical for
    any worker count (in its deterministic projection), and each cell's
    spans land on a track named after the cell key.

    ``grad_mode="ghost"`` runs every cell's DP training through the
    ghost-clipping fast path (results are equal to the default within
    floating-point tolerance, not bit-identical; IS rows stay
    materialized).
    """
    from repro.core.ghost import check_grad_mode
    from repro.runtime.scheduler import make_cells, run_cells
    from repro.runtime.shipback import job_recorder, job_tracer

    check_grad_mode(grad_mode)

    def cell_dir(label: str, sigma: float):
        if checkpoint_dir is None:
            return None
        return cell_checkpoint_dir(checkpoint_dir, label, sigma)

    # Cell 0 is the noise-free reference (the paper quotes it in the table
    # caption); the private (method, sigma) cells follow in row-major
    # order.  Seeds attach to this fixed ordering, never to completion
    # order — the invariant behind workers-independent results.
    payloads = [(None, 0.0)] + [(spec, sigma) for spec in methods for sigma in sigmas]
    keys = ["noise-free-reference"] + [
        f"{spec.label}@sigma={sigma:g}" for spec in methods for sigma in sigmas
    ]
    cells = make_cells(payloads, keys=keys, rng=rng)
    ref_batch = min(max(spec.batch_size for spec in methods), len(train))

    def execute(cell):
        spec, sigma = cell.payload
        # Under ship_telemetry the scheduler installs fresh per-cell
        # instruments around this call; otherwise both are None and the
        # cell trains unobserved, exactly as before.
        cell_telemetry, cell_tracer = job_recorder(), job_tracer()
        if spec is None:
            # The private rows are clipping-limited, so the fair reference
            # is clipped SGD at the same learning rate — DP-SGD, sigma = 0.
            model = model_builder()
            ref_dir = cell_dir("noise-free-reference", 0.0)
            trainer = Trainer(
                model,
                DpSgdOptimizer(learning_rate, clip_norm, 0.0, rng=cell.rng),
                train,
                test_data=test,
                batch_size=ref_batch,
                rng=cell.rng,
                telemetry=cell_telemetry,
                tracer=cell_tracer,
            )
            return trainer.train(
                iterations,
                eval_every=iterations,
                checkpoint_every=checkpoint_every if ref_dir is not None else 0,
                checkpoint_dir=ref_dir,
                resume=resume,
            ).final_accuracy
        return run_method(
            spec,
            model_builder,
            train,
            test,
            sigma=sigma,
            iterations=iterations,
            learning_rate=learning_rate,
            clip_norm=clip_norm,
            rng=cell.rng,
            checkpoint_dir=cell_dir(spec.label, sigma),
            checkpoint_every=checkpoint_every,
            resume=resume,
            grad_mode=grad_mode,
            telemetry=cell_telemetry,
            tracer=cell_tracer,
        )

    accuracies = run_cells(
        execute,
        cells,
        workers=workers,
        telemetry=telemetry,
        tracer=tracer,
        ship_telemetry=ship_telemetry,
    )
    noise_free = accuracies[0]
    rows = []
    position = 1
    for spec in methods:
        accs = {}
        for sigma in sigmas:
            accs[sigma] = accuracies[position]
            position += 1
        rows.append({"label": spec.label, "accuracies": accs})
    return {"noise_free": noise_free, "sigmas": sigmas, "rows": rows}
