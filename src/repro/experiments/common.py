"""Shared helpers for the experiment modules."""

from __future__ import annotations

import numpy as np

from repro.core.perturbation import (
    clip_gradients,
    perturb_dp_batch,
    perturb_geodp_batch,
)
from repro.geometry.metrics import direction_mse, gradient_mse
from repro.geometry.spherical import to_spherical_batch

__all__ = ["SCALES", "check_scale", "gradient_workload", "mse_comparison"]

SCALES = ("smoke", "ci", "paper")


def check_scale(scale: str) -> str:
    """Validate an experiment scale name."""
    if scale not in SCALES:
        raise ValueError(f"scale must be one of {SCALES}, got {scale!r}")
    return scale


def gradient_workload(num: int, dim: int, rng, *, source: str = "synthetic") -> np.ndarray:
    """Gradient batch for the MSE experiments.

    ``source="synthetic"`` draws from the concentrated-direction generator
    (fast; used at smoke scale).  ``source="collected"`` follows the paper's
    §VI-A protocol exactly: gradients recorded from non-private CNN training
    at B = 1 on the CIFAR-like data, with ``dim`` randomly chosen
    coordinates kept.
    """
    if source == "synthetic":
        from repro.data.gradients import synthetic_gradient_batch

        return synthetic_gradient_batch(num, dim, rng)
    if source == "collected":
        from repro.data.cifar_like import make_cifar_like
        from repro.data.gradients import collect_training_gradients
        from repro.models.cnn import build_cnn

        # Pick the smallest collector CNN whose parameter count covers dim.
        for size, channels in ((16, (4, 8)), (28, (8, 16)), (32, (16, 32))):
            model = build_cnn(input_shape=(3, size, size), channels=channels, rng=0)
            if model.num_params >= dim:
                break
        else:
            raise ValueError(
                f"dim={dim} exceeds the largest collector model "
                f"({model.num_params} parameters)"
            )
        dataset = make_cifar_like(max(200, num // 2), rng, size=size)
        grads = collect_training_gradients(model, dataset, num, rng)

        # Real gradients contain dead (always ~0) coordinates — e.g. weights
        # behind permanently inactive ReLUs.  Their angles are numerically
        # degenerate (arctan2 of two near-zeros), which floors the direction
        # MSE for *both* schemes and drowns the comparison; we therefore
        # sample the kept coordinates among the active ones.  Documented in
        # EXPERIMENTS.md ("ill-conditioned angles on sparse gradients").
        activity = np.abs(grads).mean(axis=0)
        threshold = 1e-4 * activity.max()
        active = np.flatnonzero(activity > threshold)
        if len(active) < dim:
            active = np.argsort(activity)[-dim:]
        keep = np.sort(rng.choice(active, size=dim, replace=False))
        return grads[:, keep]
    raise ValueError(f"source must be 'synthetic' or 'collected', got {source!r}")


def mse_comparison(
    grads: np.ndarray,
    clip_norm: float,
    noise_multiplier: float,
    batch_size: int,
    beta: float,
    rng,
    *,
    repeats: int = 1,
    sensitivity_mode: str = "total",
) -> dict[str, float]:
    """MSEs of DP vs GeoDP on one gradient batch (the Fig. 1/3/4 measurement).

    Gradients are clipped once; both schemes perturb the *same* clipped
    gradients.  Direction MSE follows Definition 4 (angle vectors); gradient
    MSE is the plain squared error.  Results are averaged over ``repeats``
    independent noise draws.
    """
    clipped = clip_gradients(grads, clip_norm)
    _, theta_true = to_spherical_batch(clipped)

    keys = ("dp_theta", "geo_theta", "dp_g", "geo_g")
    acc = dict.fromkeys(keys, 0.0)
    for _ in range(repeats):
        dp = perturb_dp_batch(
            clipped, clip_norm, noise_multiplier, batch_size, rng, clip=False
        )
        geo = perturb_geodp_batch(
            clipped,
            clip_norm,
            noise_multiplier,
            batch_size,
            beta,
            rng,
            clip=False,
            sensitivity_mode=sensitivity_mode,
        )
        _, theta_dp = to_spherical_batch(dp)
        _, theta_geo = to_spherical_batch(geo)
        acc["dp_theta"] += direction_mse(theta_dp, theta_true)
        acc["geo_theta"] += direction_mse(theta_geo, theta_true)
        acc["dp_g"] += gradient_mse(dp, clipped)
        acc["geo_g"] += gradient_mse(geo, clipped)
    return {k: v / repeats for k, v in acc.items()}
