"""Figure 1: MSE of GeoDP vs DP on directions and gradients vs noise multiplier.

The paper's Figure 1 compares, on the synthetic gradient dataset, the MSE of
perturbed *directions* (theta) and perturbed *gradients* (g) for GeoDP and
traditional DP across noise multipliers, showing that GeoDP better preserves
directions while DP better preserves raw gradient values.
"""

from __future__ import annotations

from repro.experiments.common import check_scale, gradient_workload, mse_comparison
from repro.utils.rng import as_rng
from repro.utils.tables import format_table

__all__ = ["run_fig1", "format_fig1"]

_PRESETS = {
    # (num gradients, dim, batch size, beta, sigmas, repeats, gradient source)
    "smoke": (40, 200, 2048, 0.05, (1e-3, 1e-2, 1e-1, 1.0), 2, "synthetic"),
    "ci": (200, 2000, 2048, 0.02, (1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0), 3, "collected"),
    "paper": (2000, 20000, 2048, 0.01, (1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0), 5, "collected"),
}


def run_fig1(scale: str = "smoke", rng=None, *, clip_norm: float = 0.1) -> dict:
    """Run the Figure 1 MSE sweep; returns per-sigma MSE series."""
    check_scale(scale)
    num, dim, batch_size, beta, sigmas, repeats, source = _PRESETS[scale]
    rng = as_rng(rng)
    grads = gradient_workload(num, dim, rng, source=source)

    rows = []
    for sigma in sigmas:
        mses = mse_comparison(
            grads, clip_norm, sigma, batch_size, beta, rng, repeats=repeats
        )
        rows.append({"sigma": sigma, **mses})
    return {
        "scale": scale,
        "dim": dim,
        "batch_size": batch_size,
        "beta": beta,
        "source": source,
        "rows": rows,
    }


def format_fig1(result: dict) -> str:
    """Render the Figure 1 series as a table."""
    headers = ["sigma", "DP MSE(theta)", "GeoDP MSE(theta)", "DP MSE(g)", "GeoDP MSE(g)"]
    rows = [
        [r["sigma"], r["dp_theta"], r["geo_theta"], r["dp_g"], r["geo_g"]]
        for r in result["rows"]
    ]
    title = (
        f"Figure 1 (scale={result['scale']}): GeoDP vs DP MSEs, "
        f"d={result['dim']}, B={result['batch_size']}, beta={result['beta']}"
    )
    return format_table(headers, rows, title=title)
