"""Numeric validation of the paper's theory (Theorems 1-3, Lemma 1, Cor. 1-2).

Not a table/figure of the paper, but the analysis section *is* the paper's
first contribution; this experiment verifies each claim by Monte Carlo on
real gradient batches:

* Theorem 1 — the ED decomposition equals the directly computed gap.
* Corollary 1 — E[Item A] > 0 at the optimum: DP-SGD cannot stay there.
* Corollary 2 — clipping reduces Item A but leaves the perturbed-direction
  distribution unchanged (Example 1's invariance).
* Lemma 1 — DP's direction noise is biased; GeoDP's is unbiased.
* Theorem 2/3 — averaged gradients and averaged directions concentrate as
  batch size grows (std shrinks like 1/sqrt(B)).
"""

from __future__ import annotations

import numpy as np

from repro.core.perturbation import clip_gradients, perturb_dp, perturb_geodp
from repro.core.theory import efficiency_difference, expected_item_a
from repro.data.gradients import synthetic_gradient_batch
from repro.experiments.common import check_scale
from repro.geometry.spherical import to_spherical_batch
from repro.utils.rng import as_rng
from repro.utils.tables import format_table

__all__ = ["run_theory_validation", "format_theory_validation"]

_PRESETS = {
    # (dim, monte-carlo trials)
    "smoke": (60, 2000),
    "ci": (200, 8000),
    "paper": (1000, 20000),
}


def _theorem1_check(rng, dim: int, trials: int) -> dict:
    """Max relative error between the decomposition and the direct gap."""
    worst = 0.0
    for _ in range(50):
        w_t = rng.normal(size=dim)
        w_star = rng.normal(size=dim)
        g = rng.normal(size=dim)
        g_noisy = g + rng.normal(size=dim) * 0.3
        out = efficiency_difference(w_t, w_star, g, g_noisy, 0.5)
        denom = max(abs(out["direct"]), 1e-12)
        worst = max(worst, abs(out["total"] - out["direct"]) / denom)
    return {"claim": "Thm 1: eta^2*A + 2*eta*B == direct gap", "value": worst, "holds": worst < 1e-6}


def _corollary1_check(rng, dim: int, trials: int) -> dict:
    """E[Item A] at the optimum is positive and matches the closed form."""
    clip, sigma, batch = 0.1, 1.0, 64
    g = rng.normal(size=dim) * 0.001
    items = []
    for _ in range(trials):
        noisy = perturb_dp(g, clip, sigma, batch, rng, clip=False)
        items.append(float(np.sum(noisy**2) - np.sum(g**2)))
    measured = float(np.mean(items))
    expected = expected_item_a(sigma, clip, batch, dim)
    rel = abs(measured - expected) / expected
    return {
        "claim": "Cor 1: E[Item A] = d*(C*sigma/B)^2 > 0",
        "value": rel,
        "holds": measured > 0 and rel < 0.15,
    }


def _corollary2_check(rng, dim: int, trials: int) -> dict:
    """Example 1: halving C leaves the perturbed direction distribution fixed."""
    sigma, batch = 1.0, 32
    g = rng.normal(size=dim)
    g = g / np.linalg.norm(g) * 5.0  # above both thresholds
    diffs = []
    for _ in range(200):
        seed = int(rng.integers(2**32))
        g1 = perturb_dp(clip_gradients(g[None], 2.0)[0], 2.0, sigma, batch, seed)
        g2 = perturb_dp(clip_gradients(g[None], 1.0)[0], 1.0, sigma, batch, seed)
        _, t1 = to_spherical_batch(g1[None])
        _, t2 = to_spherical_batch(g2[None])
        diffs.append(float(np.abs(t1 - t2).max()))
    worst = max(diffs)
    return {
        "claim": "Cor 2: clipping rescales noise but not perturbed directions",
        "value": worst,
        "holds": worst < 1e-9,
    }


def _lemma1_check(rng, dim: int, trials: int) -> dict:
    """DP direction bias vs GeoDP direction bias on the same gradient."""
    clip, sigma, batch, beta = 0.1, 2.0, 32, 0.05
    g = clip_gradients(synthetic_gradient_batch(1, dim, rng), clip)[0]
    _, theta0 = to_spherical_batch(g[None])
    dp_thetas, geo_thetas = [], []
    for _ in range(trials):
        _, td = to_spherical_batch(perturb_dp(g, clip, sigma, batch, rng, clip=False)[None])
        _, tg = to_spherical_batch(
            perturb_geodp(g, clip, sigma, batch, beta, rng, clip=False)[None]
        )
        dp_thetas.append(td[0])
        geo_thetas.append(tg[0])
    dp_bias = float(np.linalg.norm(np.mean(dp_thetas, axis=0) - theta0[0]))
    geo_bias = float(np.linalg.norm(np.mean(geo_thetas, axis=0) - theta0[0]))
    return {
        "claim": "Lemma 1: DP direction bias >> GeoDP direction bias",
        "value": dp_bias / max(geo_bias, 1e-12),
        "holds": dp_bias > 3 * geo_bias,
    }


def _theorem23_check(rng, dim: int, trials: int) -> dict:
    """Averaged directions concentrate ~1/sqrt(B) (Theorems 2-3)."""
    repeats = 40

    def angle_std(batch):
        # One population (one shared mean direction), split into `repeats`
        # disjoint batches; the std of the batch-mean angles across the
        # batches is what Theorem 3 says shrinks like 1/sqrt(B).
        pop_rng = np.random.default_rng(12345)  # same population for both B
        grads = synthetic_gradient_batch(
            repeats * batch, dim, pop_rng, concentration=5.0
        )
        _, thetas = to_spherical_batch(grads)
        means = thetas.reshape(repeats, batch, -1).mean(axis=1)
        return float(np.std(means, axis=0).mean())

    small, large = angle_std(16), angle_std(256)
    ratio = small / max(large, 1e-12)
    return {
        "claim": "Thm 2/3: averaged direction std shrinks ~ sqrt(B) (x4 at 16->256)",
        "value": ratio,
        "holds": 2.0 < ratio < 8.0,
    }


def run_theory_validation(scale: str = "smoke", rng=None) -> dict:
    """Run all theory checks; returns one row per claim."""
    check_scale(scale)
    dim, trials = _PRESETS[scale]
    rng = as_rng(rng)
    rows = [
        _theorem1_check(rng, dim, trials),
        _corollary1_check(rng, dim, trials),
        _corollary2_check(rng, dim, trials),
        _lemma1_check(rng, dim, trials),
        _theorem23_check(rng, dim, trials),
    ]
    return {"scale": scale, "dim": dim, "rows": rows}


def format_theory_validation(result: dict) -> str:
    """Render the claim/evidence table."""
    headers = ["claim", "measured statistic", "holds"]
    rows = [
        [r["claim"], r["value"], "yes" if r["holds"] else "NO"]
        for r in result["rows"]
    ]
    return format_table(
        headers,
        rows,
        title=f"Theory validation (scale={result['scale']}, d={result['dim']})",
    )
