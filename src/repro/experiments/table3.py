"""Table III: GeoDP vs DP on ResNet / CIFAR-like — test accuracy grid.

Same 15-row method grid as Table II, at the paper's sigma in {0.1, 0.01}
and beta in {1, 0.1}.  Expected shape: GeoDP >= DP even at beta = 1 under
these small multipliers (the unbiased-direction effect), with beta = 0.1
strictly better; techniques stack as in Table II.
"""

from __future__ import annotations

from repro.data.cifar_like import make_cifar_like
from repro.data.datasets import train_test_split
from repro.experiments.common import check_scale
from repro.experiments.training_grid import run_grid, standard_method_grid
from repro.models.resnet import build_resnet
from repro.utils.rng import as_rng
from repro.utils.tables import format_table

__all__ = ["run_table3", "format_table3"]

_PRESETS = {
    "smoke": {
        "n": 800,
        "size": 16,
        "base_channels": 4,
        "batches": (32, 64),
        "iters": 150,
        "sigmas": (0.1, 0.01),
        "lr": 2.0,
    },
    "ci": {
        "n": 3000,
        "size": 32,
        "base_channels": 8,
        "batches": (256, 512),
        "iters": 250,
        "sigmas": (0.1, 0.01),
        "lr": 2.0,
    },
    "paper": {
        "n": 50000,
        "size": 32,
        "base_channels": 16,
        "batches": (8192, 16384),
        "iters": 400,
        "sigmas": (0.1, 0.01),
        "lr": 0.5,
    },
}

_CLIP = 0.1
_BETA_GOOD = 0.1
_BETA_BAD = 1.0  # Table III's second beta column is beta = 1


def run_table3(
    scale: str = "smoke",
    rng=None,
    *,
    checkpoint_dir=None,
    resume: bool = True,
    workers=1,
    grad_mode: str = "materialize",
) -> dict:
    """Run the Table III accuracy grid at the requested scale.

    ``checkpoint_dir`` enables fault-tolerant training: every grid cell
    snapshots its state there (one sub-directory per cell) and, with
    ``resume=True``, an interrupted grid picks up from the latest valid
    snapshots with bit-identical results (see :mod:`repro.checkpoint`).
    ``workers > 1`` trains the grid cells concurrently with bit-identical
    results (see :mod:`repro.runtime`); combined with ``checkpoint_dir`` a
    killed parallel run resumes only its unfinished cells.
    ``grad_mode="ghost"`` routes every non-IS cell through the
    ghost-clipping fast path (see :mod:`repro.core.ghost`).
    """
    check_scale(scale)
    cfg = _PRESETS[scale]
    rng = as_rng(rng)

    data = make_cifar_like(cfg["n"], rng, size=cfg["size"])
    train, test = train_test_split(data, rng=rng)

    def builder():
        return build_resnet(
            input_shape=(3, cfg["size"], cfg["size"]),
            base_channels=cfg["base_channels"],
            rng=0,
        )

    methods = standard_method_grid(cfg["batches"][0], cfg["batches"][1], _BETA_GOOD, _BETA_BAD)
    result = run_grid(
        methods,
        builder,
        train,
        test,
        sigmas=cfg["sigmas"],
        iterations=cfg["iters"],
        learning_rate=cfg["lr"],
        clip_norm=_CLIP,
        rng=rng,
        checkpoint_dir=checkpoint_dir,
        resume=resume,
        workers=workers,
        grad_mode=grad_mode,
    )
    result["scale"] = scale
    result["dataset"] = "CIFAR-like"
    result["model"] = "ResNet"
    return result


def format_table3(result: dict) -> str:
    """Render the accuracy grid in the paper's table layout."""
    sigmas = result["sigmas"]
    headers = ["Method"] + [f"sigma={s:g}" for s in sigmas]
    rows = [
        [r["label"]] + [f"{r['accuracies'][s] * 100:.2f}%" for s in sigmas]
        for r in result["rows"]
    ]
    title = (
        f"Table III (scale={result['scale']}): {result['model']} on "
        f"{result['dataset']} (noise-free {result['noise_free'] * 100:.2f}%)"
    )
    return format_table(headers, rows, title=title)
