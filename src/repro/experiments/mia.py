"""Membership-inference evaluation of the perturbation schemes.

Extension experiment: the paper motivates DP with membership-inference
attacks (§I); this experiment measures the attack surface directly.  An
intentionally overfit target is compared with DP-SGD and GeoDP-SGD targets
at the same sigma, reporting held-out accuracy next to the loss-threshold
attacker's membership advantage.
"""

from __future__ import annotations

from repro.attacks.membership import LossThresholdAttack, membership_advantage
from repro.core.dpsgd import DpSgdOptimizer
from repro.core.geodp import GeoDpSgdOptimizer
from repro.core.sgd import SgdOptimizer
from repro.core.trainer import Trainer
from repro.data.datasets import train_test_split
from repro.data.mnist_like import make_mnist_like
from repro.experiments.common import check_scale
from repro.models.logistic import build_logistic_regression
from repro.utils.rng import as_rng, spawn_rngs
from repro.utils.tables import format_table

__all__ = ["run_mia", "format_mia"]

_PRESETS = {
    # n (split 50/50 members / non-members), size, iterations, sigma
    "smoke": {"n": 300, "size": 16, "iters": 400, "sigma": 5.0, "lr": 2.0},
    "ci": {"n": 1000, "size": 16, "iters": 800, "sigma": 5.0, "lr": 2.0},
    "paper": {"n": 4000, "size": 28, "iters": 2000, "sigma": 5.0, "lr": 2.0},
}

_CLIP = 0.1
_BETA = 0.1


def run_mia(scale: str = "smoke", rng=None) -> dict:
    """Train plain/DP/GeoDP targets and attack each with the loss threshold."""
    check_scale(scale)
    cfg = _PRESETS[scale]
    rng = as_rng(rng)
    data = make_mnist_like(cfg["n"], rng, size=cfg["size"])
    members, non_members = train_test_split(data, test_fraction=0.5, rng=rng)
    seeds = iter(spawn_rngs(rng, 8))

    def evaluate(label, optimizer):
        model = build_logistic_regression((1, cfg["size"], cfg["size"]), rng=0)
        Trainer(
            model, optimizer, members, batch_size=32, rng=next(seeds)
        ).train(cfg["iters"])
        attack = LossThresholdAttack().fit(model, non_members)
        advantage = membership_advantage(
            attack.score(model, members.x, members.y),
            attack.score(model, non_members.x, non_members.y),
        )
        return {
            "label": label,
            "accuracy": model.accuracy(non_members.x, non_members.y),
            "advantage": advantage,
        }

    sigma, lr = cfg["sigma"], cfg["lr"]
    rows = [
        evaluate("SGD (no privacy)", SgdOptimizer(lr)),
        evaluate(
            f"DP-SGD sigma={sigma:g}", DpSgdOptimizer(lr, _CLIP, sigma, rng=next(seeds))
        ),
        evaluate(
            f"GeoDP sigma={sigma:g} beta={_BETA}",
            GeoDpSgdOptimizer(
                lr, _CLIP, sigma, beta=_BETA, rng=next(seeds),
                sensitivity_mode="per_angle",
            ),
        ),
    ]
    return {"scale": scale, "iterations": cfg["iters"], "rows": rows}


def format_mia(result: dict) -> str:
    """Render the accuracy-vs-advantage table."""
    headers = ["training", "held-out accuracy", "MIA advantage"]
    rows = [[r["label"], r["accuracy"], r["advantage"]] for r in result["rows"]]
    return format_table(
        headers,
        rows,
        title=(
            f"Membership inference (scale={result['scale']}, "
            f"{result['iterations']} iterations)"
        ),
    )
