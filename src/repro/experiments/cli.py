"""Command-line runner for the paper's experiments.

Usage::

    python -m repro.experiments.cli fig1 --scale ci --seed 0
    python -m repro.experiments.cli all --scale smoke
    python -m repro.experiments.cli trace --telemetry out.jsonl
    python -m repro.experiments.cli table2 --checkpoint-dir ckpt --resume
    python -m repro.experiments.cli table2 --workers 4 --checkpoint-dir ckpt
    python -m repro.experiments.cli report out.jsonl --format markdown
    python -m repro.experiments.cli report out.jsonl --chrome out.trace.json
    python -m repro.experiments.cli list

Budget-server subcommands (see docs/service.md) route to
:mod:`repro.service.cli`::

    python -m repro.experiments.cli tenants add alice --state-dir d --epsilon 4
    python -m repro.experiments.cli submit --state-dir d --tenant alice \\
        --sigma 1.1 --sample-rate 0.01 --steps 100
    python -m repro.experiments.cli serve --state-dir d --workers 4
    python -m repro.experiments.cli tenants report --state-dir d
"""

from __future__ import annotations

import argparse
import inspect
import sys
import time

from repro.experiments import (
    format_fig1,
    format_fig3,
    format_fig4,
    format_fig5,
    format_fig6,
    format_concentration,
    format_mia,
    format_privacy_utility,
    format_sparse_scale,
    format_table2,
    format_table3,
    format_theory_validation,
    format_trace,
    run_fig1,
    run_fig3,
    run_fig4,
    run_fig5,
    run_fig6,
    run_concentration,
    run_mia,
    run_privacy_utility,
    run_sparse_scale,
    run_table2,
    run_table3,
    run_theory_validation,
    run_trace,
)

EXPERIMENTS = {
    "fig1": (run_fig1, format_fig1, "Figure 1: MSEs vs noise multiplier"),
    "fig3": (run_fig3, format_fig3, "Figure 3: MSE sweeps (sigma, d, B) x beta"),
    "fig4": (run_fig4, format_fig4, "Figure 4: bounding-factor effectiveness"),
    "fig5": (run_fig5, format_fig5, "Figure 5: LR training curves"),
    "fig6": (run_fig6, format_fig6, "Figure 6: perturbation runtime"),
    "table2": (run_table2, format_table2, "Table II: CNN / MNIST-like grid"),
    "table3": (run_table3, format_table3, "Table III: ResNet / CIFAR-like grid"),
    "theory": (
        run_theory_validation,
        format_theory_validation,
        "Numeric validation of Theorems 1-3 / Lemma 1 / Corollaries 1-2",
    ),
    "frontier": (
        run_privacy_utility,
        format_privacy_utility,
        "Extension: accuracy at calibrated equal-epsilon budgets",
    ),
    "mia": (
        run_mia,
        format_mia,
        "Extension: membership-inference advantage of each scheme",
    ),
    "concentration": (
        run_concentration,
        format_concentration,
        "Extension: Theorem 3's direction concentration on real gradients",
    ),
    "trace": (
        run_trace,
        format_trace,
        "Telemetry: instrumented DP-SGD vs GeoDP run (supports --telemetry)",
    ),
    "sparse": (
        run_sparse_scale,
        format_sparse_scale,
        "Extension: embedding-scale sparse vs dense DP training",
    ),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.cli",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all", "list", "report"],
        help=(
            "which experiment to run ('all' runs everything, 'list' describes "
            "them, 'report' renders a run report from an exported trace file)"
        ),
    )
    parser.add_argument(
        "path",
        nargs="?",
        default=None,
        metavar="TRACE",
        help="trace file written by --telemetry ('report' only)",
    )
    parser.add_argument(
        "--format",
        dest="report_format",
        default="markdown",
        choices=("markdown", "json"),
        help="output format of the 'report' subcommand (default: markdown)",
    )
    parser.add_argument(
        "--chrome",
        metavar="PATH",
        default=None,
        help=(
            "also write the trace's span tree as a Chrome trace-event JSON "
            "file, loadable in chrome://tracing or Perfetto ('report' only)"
        ),
    )
    parser.add_argument(
        "--alerts-only",
        action="store_true",
        help=(
            "restrict the 'report' output to the alert annotations "
            "extracted from each run's ledger"
        ),
    )
    parser.add_argument(
        "--profile",
        metavar="PATH",
        default=None,
        help=(
            "sample the experiment with the SIGPROF profiler and write "
            "collapsed stacks (flamegraph format) to PATH; with --chrome "
            "on 'report', profiles can be merged via the API"
        ),
    )
    parser.add_argument(
        "--scale",
        default="smoke",
        choices=("smoke", "ci", "paper"),
        help="parameter preset (default: smoke)",
    )
    parser.add_argument("--seed", type=int, default=0, help="master RNG seed")
    parser.add_argument(
        "--telemetry",
        metavar="PATH",
        default=None,
        help=(
            "write a JSONL telemetry trace to PATH (experiments whose runner "
            "has no telemetry support ignore the flag with a notice)"
        ),
    )
    parser.add_argument(
        "--checkpoint-dir",
        metavar="DIR",
        default=None,
        help=(
            "checkpoint training state into DIR (training-grid experiments "
            "only; others ignore the flag with a notice)"
        ),
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help=(
            "resume from the latest valid snapshots in --checkpoint-dir "
            "(bit-identical to an uninterrupted run); without this flag, "
            "existing snapshots are ignored and overwritten"
        ),
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help=(
            "run an experiment's independent cells over N worker processes "
            "(results are bit-identical to serial for any N; experiments "
            "without parallel support ignore the flag with a notice)"
        ),
    )
    parser.add_argument(
        "--backend",
        default=None,
        choices=("reference", "fused", "numba", "cext", "auto"),
        help=(
            "numeric kernel backend for the hot paths (default: the "
            "REPRO_BACKEND env var, else 'reference'); 'auto' picks the "
            "fastest available accelerated backend, unavailable choices "
            "fall back with a telemetry counter (see docs/backends.md)"
        ),
    )
    parser.add_argument(
        "--threads",
        type=int,
        default=None,
        metavar="N",
        help=(
            "intra-kernel thread count for the accelerated backends "
            "(default: the REPRO_THREADS env var, else 1); outputs are "
            "bit-identical for any N — chunking is derived from input "
            "shapes, never from the thread count (see docs/parallelism.md)"
        ),
    )
    parser.add_argument(
        "--grad-mode",
        default=None,
        choices=("materialize", "ghost"),
        help=(
            "per-sample gradient strategy for training-grid experiments: "
            "'materialize' (default) builds the full (B, P) matrix; 'ghost' "
            "clips and sums without it — O(P) gradient memory (experiments "
            "without training ignore the flag with a notice)"
        ),
    )
    return parser


def _supports_kwarg(name: str, kwarg: str) -> bool:
    """Whether an experiment's runner accepts the given keyword argument."""
    run, _, _ = EXPERIMENTS[name]
    return kwarg in inspect.signature(run).parameters


def supports_telemetry(name: str) -> bool:
    """Whether an experiment's runner accepts a ``telemetry=`` path."""
    return _supports_kwarg(name, "telemetry")


def supports_checkpointing(name: str) -> bool:
    """Whether an experiment's runner accepts a ``checkpoint_dir=`` path."""
    return _supports_kwarg(name, "checkpoint_dir")


def supports_workers(name: str) -> bool:
    """Whether an experiment's runner accepts a ``workers=`` count."""
    return _supports_kwarg(name, "workers")


def supports_grad_mode(name: str) -> bool:
    """Whether an experiment's runner accepts a ``grad_mode=`` choice."""
    return _supports_kwarg(name, "grad_mode")


def run_one(
    name: str,
    scale: str,
    seed: int,
    telemetry: str | None = None,
    checkpoint_dir: str | None = None,
    resume: bool = False,
    workers: int | None = None,
    grad_mode: str | None = None,
) -> str:
    """Run one experiment and return its formatted table."""
    run, fmt, _ = EXPERIMENTS[name]
    notice = ""
    kwargs = {}
    if telemetry is not None:
        if supports_telemetry(name):
            kwargs["telemetry"] = telemetry
        else:
            notice += f"[{name} does not support --telemetry; flag ignored]\n"
    if checkpoint_dir is not None:
        if supports_checkpointing(name):
            kwargs["checkpoint_dir"] = checkpoint_dir
            kwargs["resume"] = resume
        else:
            notice += f"[{name} does not support --checkpoint-dir; flag ignored]\n"
    if workers is not None:
        if supports_workers(name):
            kwargs["workers"] = workers
        else:
            notice += f"[{name} does not support --workers; flag ignored]\n"
    if grad_mode is not None:
        if supports_grad_mode(name):
            kwargs["grad_mode"] = grad_mode
        else:
            notice += f"[{name} does not support --grad-mode; flag ignored]\n"
    start = time.perf_counter()
    result = run(scale, rng=seed, **kwargs)
    elapsed = time.perf_counter() - start
    return f"{notice}{fmt(result)}\n[{name} completed in {elapsed:.1f}s]"


def run_report(
    path: str,
    *,
    fmt: str = "markdown",
    chrome: str | None = None,
    alerts_only: bool = False,
) -> str:
    """Render the report for one exported trace file; optionally write Chrome JSON.

    Merges every run bundle's span tree onto one per-run track when
    ``chrome`` is given, so a multi-run trace file (e.g. the trace
    experiment's dpsgd + geodp pair) lands in a single timeline view.
    """
    from repro.telemetry import Tracer, build_report, load_run_bundles, render_report

    bundles = load_run_bundles(path)
    text = render_report(build_report(bundles), fmt=fmt, alerts_only=alerts_only)
    if chrome is not None:
        merged = Tracer(granularity="phase")
        for run in sorted(bundles):
            tracer = bundles[run].tracer
            if tracer is not None:
                merged.merge_state(tracer.state_dict(), track=run)
        merged.save_chrome_trace(chrome)
        text += f"\n[Chrome trace written to {chrome}]"
    return text


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else list(argv)
    if argv and argv[0] in ("serve", "submit", "tenants"):
        from repro.service.cli import main as service_main

        return service_main(argv)
    if argv and argv[0] == "monitor":
        from repro.telemetry.live.monitor import main as monitor_main

        return monitor_main(argv[1:])
    args = build_parser().parse_args(argv)
    if args.experiment == "list":
        for name, (_, _, description) in sorted(EXPERIMENTS.items()):
            print(f"{name:8s} {description}")
        return 0
    if args.experiment == "report":
        if args.path is None:
            print("report requires a trace file path", file=sys.stderr)
            return 2
        print(
            run_report(
                args.path,
                fmt=args.report_format,
                chrome=args.chrome,
                alerts_only=args.alerts_only,
            )
        )
        return 0
    if args.path is not None:
        print("only the 'report' subcommand takes a trace path", file=sys.stderr)
        return 2
    if args.resume and args.checkpoint_dir is None:
        print("--resume requires --checkpoint-dir", file=sys.stderr)
        return 2
    if args.workers is not None and args.workers < 1:
        print("--workers must be >= 1", file=sys.stderr)
        return 2
    if args.backend is not None:
        from repro.backend import get_backend, set_backend

        set_backend(args.backend)
        active = get_backend().name
        if args.backend != "auto" and active != args.backend:
            print(f"[backend {args.backend!r} unavailable; using {active!r}]")
    if args.threads is not None:
        from repro.backend import set_num_threads

        if args.threads < 1:
            print("--threads must be >= 1", file=sys.stderr)
            return 2
        set_num_threads(args.threads)
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    profiler = None
    if args.profile is not None:
        from repro.telemetry.live.profiler import SamplingProfiler

        profiler = SamplingProfiler().start()
    try:
        for name in names:
            print(
                run_one(
                    name,
                    args.scale,
                    args.seed,
                    telemetry=args.telemetry,
                    checkpoint_dir=args.checkpoint_dir,
                    resume=args.resume,
                    workers=args.workers,
                    grad_mode=args.grad_mode,
                )
            )
            print()
    finally:
        if profiler is not None:
            profiler.stop().save_collapsed(args.profile)
            print(f"[profile: {profiler.sample_count} samples -> {args.profile}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
