"""Bag-of-embeddings text classifier."""

from __future__ import annotations

from repro.nn.embedding import Embedding, SequenceMean
from repro.nn.layers import Linear, ReLU
from repro.nn.losses import SoftmaxCrossEntropy
from repro.nn.model import Sequential
from repro.utils.rng import as_rng

__all__ = ["build_text_classifier"]


def build_text_classifier(
    vocab_size: int,
    num_classes: int,
    *,
    embedding_dim: int = 16,
    hidden: int = 0,
    padding_idx: int | None = None,
    rng=None,
) -> Sequential:
    """``embedding -> mean-pool (-> linear -> relu) -> linear`` classifier.

    With ``hidden = 0`` the model is linear in the pooled embedding (the
    classic fastText-style classifier); a positive ``hidden`` inserts one
    ReLU layer.  With ``padding_idx`` set, padded positions contribute
    neither gradient nor mean mass (the pool divides by each sample's
    non-padded count).
    """
    rng = as_rng(rng)
    embedding = Embedding(vocab_size, embedding_dim, rng=rng, padding_idx=padding_idx)
    layers = [embedding, SequenceMean(mask_source=embedding)]
    width = embedding_dim
    if hidden > 0:
        layers.append(Linear(width, hidden, rng=rng))
        layers.append(ReLU())
        width = hidden
    layers.append(Linear(width, num_classes, rng=rng))
    return Sequential(layers, SoftmaxCrossEntropy())
