"""The paper's three evaluation models (§VI-A), built on :mod:`repro.nn`."""

from repro.models.logistic import build_logistic_regression
from repro.models.cnn import build_cnn
from repro.models.resnet import build_resnet
from repro.models.mlp import build_mlp
from repro.models.text import build_text_classifier

__all__ = [
    "build_logistic_regression",
    "build_cnn",
    "build_resnet",
    "build_mlp",
    "build_text_classifier",
]
