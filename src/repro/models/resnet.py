"""ResNet with three residual blocks (the paper's "ResNet" model, §VI-A).

"ResNet with 3 residual blocks (each one containing 2 convolutional layers
and 1 rectified linear unit (ReLU))" — we use a small conv stem, three
residual blocks with increasing width, global average pooling and a linear
head.  Width is configurable so experiments can scale compute.
"""

from __future__ import annotations

from repro.nn.layers import Conv2d, GlobalAvgPool2d, Linear, ReLU
from repro.nn.losses import SoftmaxCrossEntropy
from repro.nn.model import Sequential
from repro.nn.residual import ResidualBlock
from repro.utils.rng import as_rng

__all__ = ["build_resnet"]


def build_resnet(
    input_shape: tuple[int, int, int] = (3, 32, 32),
    num_classes: int = 10,
    *,
    base_channels: int = 8,
    rng=None,
) -> Sequential:
    """Build the 3-residual-block ResNet used in Table III.

    Architecture: ``conv(3x3) -> relu -> block(c) -> block(2c, stride 2) ->
    block(4c, stride 2) -> global-avg-pool -> linear``.
    """
    rng = as_rng(rng)
    in_c = input_shape[0]
    c = base_channels
    return Sequential(
        [
            Conv2d(in_c, c, 3, stride=1, padding=1, rng=rng),
            ReLU(),
            ResidualBlock(c, c, stride=1, rng=rng),
            ResidualBlock(c, 2 * c, stride=2, rng=rng),
            ResidualBlock(2 * c, 4 * c, stride=2, rng=rng),
            GlobalAvgPool2d(),
            Linear(4 * c, num_classes, rng=rng),
        ],
        SoftmaxCrossEntropy(),
    )
