"""Configurable multi-layer perceptron builder.

Not one of the paper's three headline models, but the standard substrate
model for ablations and for tasks where convolutions are overkill (e.g. the
synthetic workloads in the examples).
"""

from __future__ import annotations

from repro.nn.activations import Dropout, LeakyReLU, Sigmoid, Softplus, Tanh
from repro.nn.layers import Flatten, Linear, ReLU
from repro.nn.losses import SoftmaxCrossEntropy
from repro.nn.model import Sequential
from repro.utils.rng import as_rng

__all__ = ["build_mlp"]

_ACTIVATIONS = {
    "relu": ReLU,
    "tanh": Tanh,
    "sigmoid": Sigmoid,
    "leaky_relu": LeakyReLU,
    "softplus": Softplus,
}


def build_mlp(
    input_shape,
    hidden_sizes,
    num_classes: int = 10,
    *,
    activation: str = "relu",
    dropout: float = 0.0,
    rng=None,
) -> Sequential:
    """Build ``flatten -> [linear -> act (-> dropout)]* -> linear``.

    Parameters
    ----------
    input_shape:
        Per-sample input shape; flattened internally.
    hidden_sizes:
        Widths of the hidden layers (may be empty: logistic regression).
    activation:
        One of ``relu``, ``tanh``, ``sigmoid``, ``leaky_relu``, ``softplus``.
    dropout:
        Dropout rate applied after each hidden activation (0 disables).
    """
    if activation not in _ACTIVATIONS:
        raise ValueError(
            f"activation must be one of {sorted(_ACTIVATIONS)}, got {activation!r}"
        )
    rng = as_rng(rng)
    in_features = 1
    for dim in input_shape:
        in_features *= dim

    layers = [Flatten()]
    width = in_features
    for hidden in hidden_sizes:
        layers.append(Linear(width, hidden, rng=rng))
        layers.append(_ACTIVATIONS[activation]())
        if dropout > 0:
            layers.append(Dropout(dropout, rng=rng))
        width = hidden
    layers.append(Linear(width, num_classes, rng=rng))
    return Sequential(layers, SoftmaxCrossEntropy())
