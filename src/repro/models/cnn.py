"""Two-layer CNN with softmax head (the paper's "CNN" model, §VI-A)."""

from __future__ import annotations

from repro.nn.layers import Conv2d, Flatten, Linear, MaxPool2d, ReLU
from repro.nn.losses import SoftmaxCrossEntropy
from repro.nn.model import Sequential
from repro.utils.rng import as_rng

__all__ = ["build_cnn"]


def build_cnn(
    input_shape: tuple[int, int, int] = (1, 28, 28),
    num_classes: int = 10,
    *,
    channels: tuple[int, int] = (8, 16),
    rng=None,
) -> Sequential:
    """Build the 2-convolution CNN used in Table II.

    Architecture: ``conv(3x3) -> relu -> maxpool(2) -> conv(3x3) -> relu ->
    maxpool(2) -> flatten -> linear`` with softmax cross-entropy.  Both
    convolutions use padding 1, so spatial size only halves at the pools.
    ``channels`` controls width, letting experiments scale the parameter
    count (the paper's run has ~21,840 parameters).
    """
    rng = as_rng(rng)
    in_c, height, width = input_shape
    if height % 4 or width % 4:
        raise ValueError(f"input spatial dims must be divisible by 4, got {height}x{width}")
    c1, c2 = channels
    flat_features = c2 * (height // 4) * (width // 4)
    return Sequential(
        [
            Conv2d(in_c, c1, 3, stride=1, padding=1, rng=rng),
            ReLU(),
            MaxPool2d(2),
            Conv2d(c1, c2, 3, stride=1, padding=1, rng=rng),
            ReLU(),
            MaxPool2d(2),
            Flatten(),
            Linear(flat_features, num_classes, rng=rng),
        ],
        SoftmaxCrossEntropy(),
    )
