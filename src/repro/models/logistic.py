"""Multinomial logistic regression (the paper's "LR" model).

On 28x28 MNIST-like inputs this has 784*10 + 10 = 7850 parameters; the paper
quotes d = 785 per class (784 weights + bias), matching Figure 5's setup.
"""

from __future__ import annotations

from repro.nn.layers import Flatten, Linear
from repro.nn.losses import SoftmaxCrossEntropy
from repro.nn.model import Sequential

__all__ = ["build_logistic_regression"]


def build_logistic_regression(
    input_shape: tuple[int, ...] = (1, 28, 28),
    num_classes: int = 10,
    rng=None,
) -> Sequential:
    """Build a softmax logistic-regression classifier.

    Parameters
    ----------
    input_shape:
        Per-sample input shape (channels, height, width) or a flat ``(d,)``.
    num_classes:
        Number of output classes.
    rng:
        Seed / generator for weight initialisation.
    """
    in_features = 1
    for dim in input_shape:
        in_features *= dim
    return Sequential(
        [Flatten(), Linear(in_features, num_classes, rng=rng)],
        SoftmaxCrossEntropy(),
    )
