"""repro — reproduction of "Analyzing and Optimizing Perturbation of DP-SGD
Geometrically" (GeoDP, ICDE 2025).

The package is organised as:

* :mod:`repro.core` — GeoDP-SGD, DP-SGD and the training stack (the paper's
  contribution).
* :mod:`repro.geometry` — hyper-spherical coordinates, direction metrics,
  bounding-factor sensitivity.
* :mod:`repro.privacy` — mechanisms, calibration, RDP accounting, clipping.
* :mod:`repro.nn` / :mod:`repro.models` — per-sample-gradient NN substrate
  and the paper's LR/CNN/ResNet models.
* :mod:`repro.data` — procedural MNIST/CIFAR substitutes and the synthetic
  gradient dataset.
* :mod:`repro.experiments` — one module per paper table/figure.
* :mod:`repro.telemetry` — opt-in per-step metrics/tracing for training
  runs (gradient geometry diagnostics, timers, JSONL traces).
* :mod:`repro.checkpoint` — fault-tolerant training: atomic snapshots of
  complete training state with bit-identical resume.
* :mod:`repro.runtime` — parallel execution: fault-tolerant process-pool
  job runner, concurrent experiment scheduler, and a shared-memory
  parallel per-sample gradient map — all bit-identical to serial runs.

Quickstart::

    from repro import GeoDpSgdOptimizer, Trainer
    from repro.data import make_mnist_like, train_test_split
    from repro.models import build_logistic_regression

    train, test = train_test_split(make_mnist_like(2000, rng=0), rng=0)
    model = build_logistic_regression(rng=0)
    opt = GeoDpSgdOptimizer(
        learning_rate=0.5, clipping=0.1, noise_multiplier=1.0, beta=0.5, rng=0
    )
    history = Trainer(model, opt, train, test_data=test, batch_size=256, rng=0).train(100)
"""

from repro.core import (
    DpSgdOptimizer,
    GeoDpSgdOptimizer,
    SgdOptimizer,
    AdamOptimizer,
    DpAdamOptimizer,
    Trainer,
    TrainingHistory,
    perturb_dp,
    perturb_geodp,
    perturb_dp_batch,
    perturb_geodp_batch,
)
from repro.privacy import RdpAccountant, PrivacySpent
from repro.telemetry import MetricsRecorder

__version__ = "1.0.0"

__all__ = [
    "DpSgdOptimizer",
    "GeoDpSgdOptimizer",
    "SgdOptimizer",
    "AdamOptimizer",
    "DpAdamOptimizer",
    "Trainer",
    "TrainingHistory",
    "perturb_dp",
    "perturb_geodp",
    "perturb_dp_batch",
    "perturb_geodp_batch",
    "RdpAccountant",
    "PrivacySpent",
    "MetricsRecorder",
    "__version__",
]
