"""The long-lived multi-tenant DP budget server.

:class:`BudgetServer` ties the pieces together into one process-wide
state machine:

* **submission** — :meth:`submit` (in-process) or the on-disk spool
  (:meth:`ingest_spool`, fed by ``repro submit``) hands each
  :class:`~repro.service.queue.JobSpec` to the admission controller,
  which commits or refuses the job's worst-case ε *before dispatch*;
* **dispatch** — admitted jobs run in fair-share order on the existing
  :func:`repro.runtime.run_cells` pool (``workers=N`` forks real worker
  processes), with per-job telemetry shipped back through
  :mod:`repro.runtime.shipback` and merged deterministically;
* **durability** — every state transition is snapshotted through
  :mod:`repro.checkpoint` (atomic, versioned, pruned), so a SIGKILL at
  any instant loses at most the in-flight transition: a restarted server
  replays its ledgers into bit-identical accountants, re-runs jobs that
  were mid-flight (at-least-once; their ε was already committed at
  admission, so a re-run never spends twice), and leaves finished jobs
  finished;
* **drain** — :meth:`serve` stops between phases when asked to shut
  down: the running batch completes, queued jobs stay queued in the last
  snapshot, and the next start picks them up.

Execution is intentionally pluggable (``runner=``): the default
:func:`execute_job` simulates the job's noise releases from its private
seed.  Whatever the runner does, the *accounting* never depends on it —
the budget math is a pure function of (σ, sample rate, steps) committed
at admission.
"""

from __future__ import annotations

import threading
import time

import numpy as np

from repro.privacy.ledger import ReleaseLedger
from repro.runtime.jobs import Job
from repro.runtime.scheduler import run_cells
from repro.runtime.shipback import job_recorder
from repro.service.admission import AdmissionController, AdmissionDecision
from repro.service.persist import ServiceStore
from repro.service.queue import JobQueue, JobRecord, JobSpec
from repro.service.tenants import TenantRegistry
from repro.telemetry.live.exporter import MetricsExporter
from repro.telemetry.live.health import AlertRule, HealthMonitor, alert_meta
from repro.telemetry.live.registry import MetricsRegistry
from repro.telemetry.recorder import MetricsRecorder

__all__ = ["BudgetServer", "execute_job"]

#: Cap on *simulated* release draws per job — accounting always uses the
#: spec's full step count; the simulation just has to touch the RNG.
MAX_SIMULATED_STEPS = 32


def execute_job(job: Job) -> dict:
    """Default runner: simulate the admitted job's noise releases.

    Runs in a forked pool worker.  Draws up to :data:`MAX_SIMULATED_STEPS`
    σ-scaled Gaussian release vectors from the job's private seed and
    returns summary statistics; sleeps ``work_ms`` first so tests and
    benchmarks can shape job duration.
    """
    spec = JobSpec.from_dict(job.payload)
    if spec.work_ms:
        time.sleep(spec.work_ms / 1000.0)
    rng = np.random.default_rng(spec.seed)
    simulated = min(spec.steps, MAX_SIMULATED_STEPS)
    norms = np.empty(simulated)
    for i in range(simulated):
        norms[i] = float(np.linalg.norm(rng.normal(0.0, spec.sigma, size=spec.dim)))
    recorder = job_recorder()
    if recorder is not None:
        recorder.increment("service_release_draws", simulated)
        recorder.record("service_noise_norm", float(norms.mean()))
    return {
        "steps_simulated": int(simulated),
        "noise_norm_mean": float(norms.mean()),
        "noise_norm_max": float(norms.max()),
    }


def _safe(runner):
    """Wrap a runner so per-job exceptions become failed results.

    One bad job must not abort the batch (``run_jobs`` would raise
    ``JobFailure`` after exhausting retries); the server marks the record
    ``failed`` instead and keeps serving.
    """

    def call(job):
        try:
            result = runner(job)
        except Exception as exc:
            return {"ok": False, "error": repr(exc)}
        if not isinstance(result, dict):
            result = {"value": result}
        return {"ok": True, **result}

    return call


class BudgetServer:
    """Multi-tenant budget server with admission control and durable state.

    Parameters
    ----------
    state_dir:
        Directory for snapshots and the submission spool.  ``None`` runs
        fully in memory (benchmarks, throwaway tests); otherwise the
        constructor **resumes** from the newest valid snapshot, reverting
        jobs that were mid-flight to ``admitted``.
    workers:
        Pool width for dispatch (``run_cells``); 1 = in-process.
    batch_size:
        Max admitted jobs dispatched per cycle (fair-share interleaved).
    keep_snapshots:
        Snapshot files retained after pruning.
    runner:
        Job execution callable ``runner(Job) -> dict``; defaults to
        :func:`execute_job`.
    metrics_port:
        When not ``None``, start a live metrics endpoint
        (:class:`~repro.telemetry.live.MetricsExporter`) on this port
        (``0`` = ephemeral) serving Prometheus text at ``/metrics`` and
        snapshots at ``/state.json`` / ``/alerts.json``.
    alert_rules:
        Extra :class:`~repro.telemetry.live.AlertRule` objects evaluated
        each cycle, on top of the built-in per-tenant ε burn-rate rules.
    alert_horizon_steps:
        Burn-rate projection horizon, in state transitions: a tenant
        alert fires when its spend trend would cross the budget within
        this many transitions.
    """

    def __init__(
        self,
        state_dir=None,
        *,
        workers: int = 1,
        batch_size: int = 8,
        keep_snapshots: int = 8,
        telemetry: MetricsRecorder | None = None,
        tracer=None,
        runner=None,
        ship_telemetry: bool = True,
        metrics_port: int | None = None,
        metrics_host: str = "127.0.0.1",
        alert_rules=None,
        alert_horizon_steps: int = 200,
    ):
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.workers = workers
        self.batch_size = int(batch_size)
        self.telemetry = telemetry if telemetry is not None else MetricsRecorder()
        self.tracer = tracer
        self.runner = _safe(runner if runner is not None else execute_job)
        self.ship_telemetry = bool(ship_telemetry)
        self.registry = TenantRegistry()
        self.queue = JobQueue()
        self.admission = AdmissionController(self.registry, telemetry=self.telemetry)
        self.store = (
            None
            if state_dir is None
            else ServiceStore(state_dir, keep_snapshots=keep_snapshots)
        )
        #: Guards queue/registry composition + persistence (admission's
        #: budget race is handled separately by the per-tenant locks).
        self._state_lock = threading.RLock()
        #: Monotonic state-transition counter (snapshot sequence).
        self.seq = 0
        self._stop = threading.Event()
        #: Hash-chained home for server-scope (non-tenant) alert
        #: annotations; tenant alerts go into the tenant's own ledger.
        self.ops_ledger = ReleaseLedger(namespace="ops")
        #: Live metric surface.  The server recorder mirrors into it, so
        #: everything the runtime/backends/optimizers publish through
        #: telemetry is scrapeable; service-state gauges come from the
        #: collector below.
        self.metrics = MetricsRegistry()
        self.telemetry.bind_registry(self.metrics)
        self.metrics.register_collector(self._collect_service_metrics)
        from repro.backend import publish_metrics as _publish_backend

        self.metrics.register_collector(_publish_backend)
        self.alert_horizon_steps = int(alert_horizon_steps)
        self._extra_alert_rules = list(alert_rules or ())
        self.health = HealthMonitor(self.metrics, annotator=self._annotate_alert)
        if self.store is not None:
            state = self.store.load(telemetry=self.telemetry)
            if state is not None:
                self._load_state(state)
        self._refresh_alert_rules()
        self.metrics_exporter = None
        if metrics_port is not None:
            self.metrics_exporter = MetricsExporter(
                self.metrics,
                port=metrics_port,
                host=metrics_host,
                monitor=self.health,
                snapshot_extra=self._snapshot_extra,
            ).start()

    # ------------------------------------------------------------ tenants
    def add_tenant(
        self,
        name: str,
        *,
        epsilon_budget: float,
        delta: float = 1e-5,
        on_overspend: str = "refuse",
    ):
        """Register a tenant and persist the transition."""
        tenant = self.registry.add(
            name, epsilon_budget=epsilon_budget, delta=delta, on_overspend=on_overspend
        )
        with self._state_lock:
            self._persist()
        self._refresh_alert_rules()
        return tenant

    def set_tenant_budget(self, name: str, epsilon_budget: float):
        """Change a tenant's ε budget, then re-check its pending jobs."""
        tenant = self.registry.set_budget(name, epsilon_budget)
        with self._state_lock:
            self._persist()
        self._refresh_alert_rules()
        self.recheck_pending()
        return tenant

    # --------------------------------------------------------- submission
    def submit(
        self, spec: JobSpec, *, job_id: str | None = None
    ) -> tuple[JobRecord, AdmissionDecision]:
        """Admit-or-refuse one job and durably record the decision.

        Thread-safe: the budget check-and-commit serializes on the
        tenant's lock (two threads racing for the last slice of a budget
        cannot both win), while queue insertion and the snapshot
        serialize on the server lock.
        """
        with self._state_lock:
            seq = self.queue.next_seq()
        if job_id is None:
            job_id = f"job-{seq:06d}"
        self.telemetry.increment("service_submissions")
        decision = self.admission.admit(spec, job_id=job_id)
        status = {"admitted": "admitted", "refused": "refused", "queued": "pending"}[
            decision.outcome
        ]
        record = JobRecord(
            job_id=job_id,
            spec=spec,
            status=status,
            submit_seq=seq,
            projected_epsilon=decision.projected_epsilon,
            reason=decision.reason,
        )
        with self._state_lock:
            self.queue.add(record)
            self._persist()
        return record, decision

    def ingest_spool(self) -> int:
        """Pull spooled submissions through admission; returns the count.

        Idempotent under crashes: a spool file whose job id is already in
        the queue (admission snapshotted, deletion lost to a kill) is
        consumed without being admitted again — no double spend.
        """
        if self.store is None:
            return 0
        ingested = 0
        for path, job_id, spec in self.store.pending_submissions():
            try:
                self.queue.get(job_id)
            except KeyError:
                if spec.tenant not in self.registry:
                    # Leave unknown-tenant submissions spooled: the tenant
                    # may simply not be registered *yet*.
                    self.telemetry.increment("service_spool_unknown_tenant")
                    continue
                self.submit(spec, job_id=job_id)
                ingested += 1
            self.store.consume(path)
        if ingested:
            self.telemetry.increment("service_spool_ingested", ingested)
        return ingested

    def recheck_pending(self) -> int:
        """Re-run admission for parked jobs (queue policy); returns admits."""
        admitted = 0
        for record in self.queue.by_status("pending"):
            decision = self.admission.admit(record.spec, job_id=record.job_id)
            if decision.admitted:
                with self._state_lock:
                    record.status = "admitted"
                    record.projected_epsilon = decision.projected_epsilon
                    record.reason = decision.reason
                    self._persist()
                admitted += 1
        return admitted

    # ----------------------------------------------------------- dispatch
    def dispatch_once(self) -> int:
        """Run one fair-share batch of admitted jobs; returns its size."""
        with self._state_lock:
            counts = {t.name: t.dispatch_count for t in self.registry}
            batch = self.queue.next_batch(self.batch_size, counts)
            if not batch:
                return 0
            for record in batch:
                record.status = "running"
                record.attempts += 1
                self.registry.get(record.spec.tenant).dispatch_count += 1
            self._persist()
        self.telemetry.increment("service_batches")
        self.telemetry.increment("service_jobs_dispatched", len(batch))
        cells = [
            Job(key=record.job_id, payload=record.spec.to_dict()) for record in batch
        ]
        results = run_cells(
            self.runner,
            cells,
            workers=self.workers,
            telemetry=self.telemetry,
            tracer=self.tracer,
            ship_telemetry=self.ship_telemetry,
        )
        with self._state_lock:
            for record, result in zip(batch, results):
                ok = isinstance(result, dict) and result.get("ok", False)
                record.status = "done" if ok else "failed"
                record.result = result if isinstance(result, dict) else {"value": result}
                record.finished_seq = self.seq + 1
                self.telemetry.increment(
                    "service_jobs_completed" if ok else "service_jobs_failed"
                )
            self._persist()
        return len(batch)

    def run_once(self) -> int:
        """One server cycle: ingest, re-check pending, dispatch, health."""
        work = self.ingest_spool()
        work += self.recheck_pending()
        work += self.dispatch_once()
        self.evaluate_health()
        return work

    def run_until_idle(self) -> int:
        """Cycle until no submission is ingested and no job dispatches."""
        total = 0
        while not self._stop.is_set():
            work = self.run_once()
            if work == 0:
                break
            total += work
        return total

    def serve(
        self,
        *,
        poll_interval: float = 0.2,
        stop: threading.Event | None = None,
        max_cycles: int | None = None,
    ) -> None:
        """Serve until asked to stop; graceful drain between phases.

        ``stop`` (or :meth:`shutdown`) is honoured *between* cycle phases:
        the batch in flight always completes and its completion is
        snapshotted, queued jobs simply stay queued — the documented drain
        semantics.
        """
        stop = stop if stop is not None else self._stop
        cycles = 0
        while not stop.is_set() and not self._stop.is_set():
            work = self.run_once()
            cycles += 1
            if max_cycles is not None and cycles >= max_cycles:
                break
            if work == 0:
                stop.wait(poll_interval)
        self.telemetry.increment("service_drains")
        with self._state_lock:
            self._persist()

    def shutdown(self) -> None:
        """Ask a running :meth:`serve` loop to drain and exit."""
        self._stop.set()
        if self.metrics_exporter is not None:
            self.metrics_exporter.stop()
            self.metrics_exporter = None

    # ------------------------------------------------------------- health
    @property
    def metrics_address(self) -> str | None:
        """Base URL of the live endpoint, or ``None`` when not exported."""
        if self.metrics_exporter is None:
            return None
        return self.metrics_exporter.address

    def _collect_service_metrics(self, registry) -> None:
        """Registry collector: queue depths, per-tenant ε, phase times.

        The ε gauges read each tenant's *live* accountant, which is
        always replay-derived from its hash-chained ledger (construction
        and restore both go through ``replay_accountant``), so a scrape
        after a SIGKILL restart matches ``verify_ledger`` replay exactly.
        """
        registry.set_gauge("service_seq", float(self.seq), step=self.seq)
        for status, count in sorted(self.queue.counts().items()):
            registry.set_gauge(
                "service_queue_depth",
                float(count),
                step=self.seq,
                labels={"status": status},
            )
        for tenant in self.registry:
            labels = {"tenant": tenant.name}
            spent = tenant.spent_epsilon()
            registry.set_gauge(
                "service_tenant_epsilon_spent", spent, step=self.seq, labels=labels
            )
            registry.set_gauge(
                "service_tenant_epsilon_remaining",
                tenant.remaining_epsilon(),
                step=self.seq,
                labels=labels,
            )
            registry.set_gauge(
                "service_tenant_epsilon_budget",
                tenant.policy.epsilon_budget,
                step=self.seq,
                labels=labels,
            )
        for phase, seconds in self.telemetry.timers.items():
            registry.set_gauge(
                "service_phase_seconds", seconds, labels={"phase": phase}
            )

    def _snapshot_extra(self) -> dict:
        """Service context appended to ``/state.json`` snapshots."""
        return {"service": {"seq": int(self.seq), "jobs": self.queue.counts()}}

    def _refresh_alert_rules(self) -> None:
        """Rebuild the rule set: one ε burn-rate rule per tenant + extras.

        Called whenever tenants or budgets change; budgets are captured
        at refresh time, so a budget change re-derives its rule.
        """
        rules = [
            AlertRule(
                "epsilon_burn_rate",
                labels={"tenant": tenant.name},
                budget=tenant.policy.epsilon_budget,
                horizon_steps=self.alert_horizon_steps,
                min_samples=2,
                severity="critical",
                description="projected ε spend crosses the tenant budget "
                f"within {self.alert_horizon_steps} transitions",
            )
            for tenant in self.registry
        ]
        rules.extend(self._extra_alert_rules)
        self.health.set_rules(rules)

    def _annotate_alert(self, verdict: dict) -> None:
        """Chain one fired alert into the owning ledger and persist it.

        Tenant-labelled alerts annotate the tenant's own ledger (under
        its admission lock, with its live accountant, so the recorded ε
        passes replay verification); everything else goes to the
        server's ``ops`` ledger.  The snapshot taken right after is what
        makes alerts survive a SIGKILL.
        """
        tenant_name = (verdict.get("labels") or {}).get("tenant")
        meta = alert_meta(verdict)
        if tenant_name is not None and tenant_name in self.registry:
            tenant = self.registry.get(tenant_name)
            with tenant.lock:
                tenant.ledger.record_annotation(
                    kind="alert", accountant=tenant.accountant, meta=meta
                )
        else:
            self.ops_ledger.record_annotation(kind="alert", meta=meta)
        self.telemetry.increment("service_alerts_annotated")
        with self._state_lock:
            self._persist()

    def evaluate_health(self) -> list[dict]:
        """Evaluate every alert rule once; returns newly-fired verdicts."""
        return self.health.evaluate(step=self.seq)

    # -------------------------------------------------------------- state
    def verify(self, *, tol: float = 1e-9, strict: bool = True) -> dict:
        """Replay-audit every tenant ledger; ``name -> LedgerVerification``."""
        return {
            tenant.name: tenant.verify(tol=tol, strict=strict)
            for tenant in self.registry
        }

    def state_dict(self) -> dict:
        """Full durable state (registry + queue + transition counter)."""
        return {
            "seq": int(self.seq),
            "registry": self.registry.state_dict(),
            "queue": self.queue.state_dict(),
            "ops_ledger": self.ops_ledger.state_dict(),
        }

    def _load_state(self, state: dict) -> None:
        self.seq = int(state["seq"])
        self.registry.load_state_dict(state["registry"])
        self.queue.load_state_dict(state["queue"])
        if "ops_ledger" in state:  # absent in pre-observability snapshots
            self.ops_ledger.load_state_dict(state["ops_ledger"])
        # Jobs that were mid-flight when the process died re-run from the
        # queue (their ε is already committed — never spent twice).
        for record in self.queue.by_status("running"):
            record.status = "admitted"
            self.telemetry.increment("service_jobs_recovered")

    def _persist(self) -> None:
        """Advance the transition counter; snapshot when durable."""
        self.seq += 1
        if self.store is not None:
            self.store.save(self.state_dict(), seq=self.seq)
