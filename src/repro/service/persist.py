"""Durable server state: checkpoint snapshots + a submission spool.

Two on-disk structures under one ``state_dir``:

``state_dir/snapshots/``
    The server's full state (tenant registry incl. per-tenant ledgers,
    job queue, transition counter) written through
    :func:`repro.checkpoint.save_snapshot` after **every** state
    transition — one atomic, fsynced, versioned ``.npz`` per transition
    sequence number, pruned to the newest few.  A SIGKILL at any instant
    leaves either the previous or the new snapshot complete on disk,
    never a torn one; :func:`repro.checkpoint.latest_snapshot` skips a
    partial newest file, so restart costs at most the final transition.

``state_dir/spool/``
    One atomically-written JSON file per ``repro submit`` invocation.
    The spool decouples submission from the server process: clients only
    append; the server ingests in filename order (a wall-clock+pid+counter
    prefix, so concurrent submitters interleave stably) and deletes each
    file once its admission decision is snapshotted.

The accountants are never persisted — they are replayed from the ledgers
on load (see :func:`repro.service.tenants.replay_accountant`), which is
what makes a restarted server's ε reports bit-identical.
"""

from __future__ import annotations

import itertools
import json
import os
import time
from pathlib import Path

from repro.checkpoint import (
    latest_snapshot,
    prune_snapshots,
    save_snapshot,
    snapshot_path,
)
from repro.service.queue import JobSpec
from repro.utils.serialization import atomic_write_bytes

__all__ = ["ServiceStore", "write_submission", "read_submissions"]

#: Distinguishes spool files from stray artifacts.
_SPOOL_SUFFIX = ".job.json"

#: Per-process tie-break for submissions landing in the same nanosecond.
_spool_counter = itertools.count()


def write_submission(spool_dir, spec: JobSpec, *, job_id: str | None = None) -> Path:
    """Atomically drop one submission into the spool; returns its path.

    ``job_id`` defaults to the filename stem, which is unique across
    concurrent submitters (wall-clock ns + pid + per-process counter) and
    sorts in submission order for a single submitter.
    """
    spool_dir = Path(spool_dir)
    spool_dir.mkdir(parents=True, exist_ok=True)
    stem = f"{time.time_ns():020d}-{os.getpid():07d}-{next(_spool_counter):06d}"
    job_id = job_id or stem
    path = spool_dir / f"{stem}{_SPOOL_SUFFIX}"
    payload = {"job_id": job_id, "spec": spec.to_dict()}
    atomic_write_bytes(path, json.dumps(payload, indent=2).encode("utf-8"))
    return path


def read_submissions(spool_dir) -> list[tuple[Path, str, JobSpec]]:
    """Spooled submissions in filename (= submission) order.

    Unreadable files are skipped, not consumed: a submission mid-write by
    another process (before its atomic rename) is simply not visible yet.
    """
    spool_dir = Path(spool_dir)
    if not spool_dir.is_dir():
        return []
    out = []
    for path in sorted(spool_dir.iterdir()):
        if not path.name.endswith(_SPOOL_SUFFIX):
            continue
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
            spec = JobSpec.from_dict(payload["spec"])
            job_id = str(payload["job_id"])
        except (OSError, ValueError, KeyError):
            continue
        out.append((path, job_id, spec))
    return out


class ServiceStore:
    """Filesystem layout + snapshot rotation for one budget server."""

    def __init__(self, state_dir, *, keep_snapshots: int = 8):
        if keep_snapshots < 1:
            raise ValueError(f"keep_snapshots must be >= 1, got {keep_snapshots}")
        self.state_dir = Path(state_dir)
        self.keep_snapshots = int(keep_snapshots)
        self.snapshots_dir = self.state_dir / "snapshots"
        self.spool_dir = self.state_dir / "spool"
        self.state_dir.mkdir(parents=True, exist_ok=True)
        self.snapshots_dir.mkdir(parents=True, exist_ok=True)
        self.spool_dir.mkdir(parents=True, exist_ok=True)

    def save(self, state: dict, *, seq: int) -> Path:
        """Snapshot one transition's full state and prune old files."""
        path = save_snapshot(snapshot_path(self.snapshots_dir, seq), state)
        prune_snapshots(self.snapshots_dir, keep=self.keep_snapshots)
        return path

    def load(self, *, telemetry=None) -> dict | None:
        """Newest valid snapshot state, or ``None`` on a fresh directory."""
        found = latest_snapshot(self.snapshots_dir, telemetry=telemetry)
        if found is None:
            return None
        _, state = found
        return state

    # ------------------------------------------------------------- spool
    def submit_to_spool(self, spec: JobSpec) -> Path:
        return write_submission(self.spool_dir, spec)

    def pending_submissions(self) -> list[tuple[Path, str, JobSpec]]:
        return read_submissions(self.spool_dir)

    def consume(self, path: Path) -> None:
        """Remove one ingested spool file (idempotent)."""
        try:
            Path(path).unlink()
        except FileNotFoundError:
            pass
