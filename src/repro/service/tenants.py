"""Tenants: named (ε, δ) budgets with serialized, auditable accounting.

A :class:`Tenant` owns the three things the budget server must never let
diverge: an immutable :class:`TenantPolicy` (the budget), a live
:class:`~repro.privacy.accountant.RdpAccountant` (the spend), and a
hash-chained :class:`~repro.privacy.ledger.ReleaseLedger` namespaced to
the tenant (the audit trail).  The accountant is *derived state*: it is
never persisted, only rebuilt by replaying the ledger's spending entries
in order — the same float operations in the same order the live server
performed, so a restarted server reports bit-identical ε.

Every tenant carries its own lock; the admission controller holds it for
the whole check-then-commit sequence, which is what makes concurrent
submissions racing for the last slice of a budget race-free (see
:mod:`repro.service.admission`).
"""

from __future__ import annotations

import threading
from dataclasses import asdict, dataclass

from repro.privacy.accountant import RdpAccountant
from repro.privacy.ledger import ReleaseLedger, verify_ledger

__all__ = ["TenantPolicy", "Tenant", "TenantRegistry", "replay_accountant"]

#: Admission behaviours when a job's projected ε exceeds the budget.
OVERSPEND_POLICIES = ("refuse", "queue")


@dataclass(frozen=True)
class TenantPolicy:
    """One tenant's privacy budget and admission behaviour."""

    #: Total ε the tenant may spend (at ``delta``) across all jobs.
    epsilon_budget: float
    #: Failure probability the budget is evaluated at.
    delta: float = 1e-5
    #: ``"refuse"`` rejects over-budget jobs outright; ``"queue"`` parks
    #: them as pending, re-checked whenever the budget changes.
    on_overspend: str = "refuse"

    def __post_init__(self):
        if self.epsilon_budget <= 0:
            raise ValueError(f"epsilon_budget must be > 0, got {self.epsilon_budget}")
        if not 0.0 < self.delta < 1.0:
            raise ValueError(f"delta must be in (0, 1), got {self.delta}")
        if self.on_overspend not in OVERSPEND_POLICIES:
            raise ValueError(
                f"on_overspend must be one of {OVERSPEND_POLICIES}, "
                f"got {self.on_overspend!r}"
            )


def replay_accountant(ledger: ReleaseLedger) -> RdpAccountant:
    """Fresh accountant advanced through the ledger's spending entries.

    Annotations (``num_steps == 0``) are skipped; σ is replayed as
    ``max(σ, 1e-12)`` exactly as :func:`~repro.privacy.ledger.verify_ledger`
    does.  Because the live server steps its accountant once per admitted
    job in chain order, the replayed curve is bit-identical to the one the
    server held before a restart.
    """
    accountant = RdpAccountant()
    for record in ledger.entries:
        if record.num_steps > 0:
            accountant.step(
                max(record.sigma, 1e-12), record.sample_rate, num_steps=record.num_steps
            )
    return accountant


class Tenant:
    """Budget + accountant + ledger + admission lock for one tenant."""

    def __init__(self, name: str, policy: TenantPolicy):
        if not name:
            raise ValueError("tenant name must be non-empty")
        self.name = str(name)
        self.policy = policy
        self.ledger = ReleaseLedger(delta=policy.delta, namespace=self.name)
        self.accountant = RdpAccountant()
        #: Serializes check-then-commit admission for this tenant.
        self.lock = threading.RLock()
        #: Jobs dispatched so far (fair-share ordering key, persisted).
        self.dispatch_count = 0

    def spent_epsilon(self) -> float:
        """Cumulative ε committed so far (admitted jobs, at policy δ)."""
        return self.accountant.get_epsilon(self.policy.delta)

    def remaining_epsilon(self) -> float:
        """Budget headroom; never negative."""
        return max(0.0, self.policy.epsilon_budget - self.spent_epsilon())

    def verify(self, *, tol: float = 1e-9, strict: bool = True):
        """Replay-audit this tenant's ledger against its live accountant."""
        return verify_ledger(self.ledger, self.accountant, tol=tol, strict=strict)

    def state_dict(self) -> dict:
        """Persistent state: policy + ledger + dispatch counter.

        The accountant is deliberately absent — it is rebuilt by
        :func:`replay_accountant` on load, and :meth:`load_state_dict`
        asserts the replay matches the recorded trajectory.
        """
        return {
            "name": self.name,
            "policy": asdict(self.policy),
            "ledger": self.ledger.state_dict(),
            "dispatch_count": int(self.dispatch_count),
        }

    @classmethod
    def from_state(cls, state: dict) -> "Tenant":
        """Inverse of :meth:`state_dict`; verifies the restored chain."""
        tenant = cls(state["name"], TenantPolicy(**state["policy"]))
        tenant.ledger.load_state_dict(state["ledger"])
        tenant.accountant = replay_accountant(tenant.ledger)
        tenant.dispatch_count = int(state.get("dispatch_count", 0))
        tenant.verify(strict=True)
        return tenant

    def __repr__(self) -> str:
        return (
            f"Tenant({self.name!r}, spent={self.spent_epsilon():.4g}/"
            f"{self.policy.epsilon_budget:.4g} at delta={self.policy.delta:.3g})"
        )


class TenantRegistry:
    """Thread-safe mapping of tenant name -> :class:`Tenant`."""

    def __init__(self):
        self._tenants: dict[str, Tenant] = {}
        self._lock = threading.Lock()

    def add(
        self,
        name: str,
        *,
        epsilon_budget: float,
        delta: float = 1e-5,
        on_overspend: str = "refuse",
    ) -> Tenant:
        """Register a new tenant; rejects duplicates."""
        policy = TenantPolicy(
            epsilon_budget=float(epsilon_budget),
            delta=float(delta),
            on_overspend=on_overspend,
        )
        tenant = Tenant(name, policy)
        with self._lock:
            if tenant.name in self._tenants:
                raise ValueError(f"tenant {tenant.name!r} already registered")
            self._tenants[tenant.name] = tenant
        return tenant

    def set_budget(self, name: str, epsilon_budget: float) -> Tenant:
        """Replace a tenant's ε budget (e.g. a top-up unblocking queued jobs)."""
        tenant = self.get(name)
        with tenant.lock:
            tenant.policy = TenantPolicy(
                epsilon_budget=float(epsilon_budget),
                delta=tenant.policy.delta,
                on_overspend=tenant.policy.on_overspend,
            )
        return tenant

    def get(self, name: str) -> Tenant:
        with self._lock:
            try:
                return self._tenants[name]
            except KeyError:
                raise KeyError(f"unknown tenant {name!r}") from None

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._tenants)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._tenants

    def __iter__(self):
        with self._lock:
            tenants = list(self._tenants.values())
        return iter(sorted(tenants, key=lambda t: t.name))

    def __len__(self) -> int:
        with self._lock:
            return len(self._tenants)

    def state_dict(self) -> dict:
        """Persistent state of every tenant, keyed by name."""
        return {"tenants": {tenant.name: tenant.state_dict() for tenant in self}}

    def load_state_dict(self, state: dict) -> None:
        """Rebuild every tenant (ledger verify + accountant replay)."""
        with self._lock:
            self._tenants = {
                name: Tenant.from_state(tenant_state)
                for name, tenant_state in state["tenants"].items()
            }
