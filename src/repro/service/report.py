"""Per-tenant budget reports over a server's registry + queue.

:func:`build_budget_report` assembles a JSON-serialisable payload — spend
vs budget (replayed from the ledger, not trusted from live state), job
state counts, refusal annotations and the ε trajectory — and
:func:`repro.telemetry.report.render_budget_report` renders it as
markdown or JSON for the ``repro tenants report`` CLI.
"""

from __future__ import annotations

from repro.privacy.ledger import verify_ledger
from repro.telemetry.report import alerts_from_ledger

__all__ = ["build_budget_report", "burn_rate"]

#: Trailing ε-trajectory points the burn-rate trend is fitted over.
BURN_RATE_WINDOW = 8


def burn_rate(trajectory, *, window: int = BURN_RATE_WINDOW) -> float | None:
    """Recent ε spend per accounted step from an ε trajectory.

    ``trajectory`` is ``[(cumulative_steps, epsilon), ...]``; the rate is
    the secant slope over the last ``window`` points — the same linear
    projection the ``epsilon_burn_rate`` alert rule uses.  ``None`` when
    fewer than two points exist.
    """
    tail = list(trajectory)[-window:]
    if len(tail) < 2:
        return None
    (s0, e0), (s1, e1) = tail[0], tail[-1]
    if s1 <= s0:
        return None
    return (float(e1) - float(e0)) / (float(s1) - float(s0))


def _tenant_section(tenant, queue) -> dict:
    verification = verify_ledger(tenant.ledger, tenant.accountant, strict=False)
    spent = (
        verification.replayed_epsilon
        if verification.replayed_epsilon is not None
        else 0.0
    )
    budget = tenant.policy.epsilon_budget
    refusals = [
        {
            "job_id": record.meta.get("job_id"),
            "projected_epsilon": record.meta.get("projected_epsilon"),
            "epsilon_at_refusal": record.epsilon,
        }
        for record in tenant.ledger.entries
        if record.is_annotation and record.mechanism == "annotation.refused"
    ]
    trajectory = [
        [int(steps), float(eps)] for steps, eps in tenant.ledger.epsilon_trajectory()
    ]
    rate = burn_rate(trajectory)
    remaining = max(0.0, budget - spent)
    return {
        "epsilon_budget": budget,
        "delta": tenant.policy.delta,
        "on_overspend": tenant.policy.on_overspend,
        # Replayed spend is the *audited* number: what the hash chain
        # composes to, not what mutable accountant state claims.
        "spent_epsilon": spent,
        "remaining_epsilon": remaining,
        "utilization": spent / budget if budget > 0 else 0.0,
        "burn_rate": rate,
        "steps_to_exhaustion": (
            remaining / rate if rate is not None and rate > 0 else None
        ),
        "dispatch_count": tenant.dispatch_count,
        "jobs": queue.tenant_counts(tenant.name),
        "refusals": refusals,
        "alerts": alerts_from_ledger(tenant.ledger),
        "ledger": {
            "entries": len(tenant.ledger.entries),
            "head": tenant.ledger.head,
            "namespace": tenant.ledger.namespace,
            "verified": verification.ok,
            "verification": str(verification),
        },
        "epsilon_trajectory": trajectory,
    }


def build_budget_report(server) -> dict:
    """Budget/spend/jobs/audit payload for every tenant of ``server``."""
    return {
        "seq": server.seq,
        "tenants": {
            tenant.name: _tenant_section(tenant, server.queue)
            for tenant in server.registry
        },
        "jobs": server.queue.counts(),
    }
