"""Pre-dispatch admission control: spend the budget *before* the noise.

"Rethinking the Security of DP-SGD" argues that budget enforcement
reconstructed after the fact is no enforcement at all — a release that
has already happened cannot be un-spent.  The controller therefore
commits a job's **worst-case** ε cost at admission time, before any noise
is drawn:

1. project the cumulative ε the tenant would reach if the job ran to
   completion, via :meth:`RdpAccountant.cost_of` (pure RDP
   pre-composition over the job's σ, sample rate and step count);
2. admit only if the projection fits the budget, in which case the
   accountant is stepped and a ``service.<mechanism>`` release is chained
   into the tenant's ledger *in the same critical section*;
3. otherwise refuse (or park as pending, per tenant policy), chaining a
   non-spending ``annotation.refused`` entry so the refusal itself is
   tamper-evident.

The check-then-commit sequence runs under the tenant's lock, so two
threads racing for the last slice of a budget serialize: exactly one of
them sees the headroom, and the ledger order *is* the admission order.
Dispatch failures after admission never refund ε — an authorized release
is accounted whether or not the job's results are ever consumed, which is
the conservative direction for privacy.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.service.queue import JobSpec
from repro.service.tenants import Tenant, TenantRegistry

__all__ = ["AdmissionDecision", "AdmissionController"]


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of one admission check (admitted, refused, or queued)."""

    admitted: bool
    #: ``"admitted"`` | ``"refused"`` | ``"queued"``.
    outcome: str
    #: Cumulative ε the tenant would reach (or now has reached) with this job.
    projected_epsilon: float
    #: Cumulative ε before the decision.
    spent_epsilon: float
    #: The tenant's ε budget at decision time.
    epsilon_budget: float
    reason: str

    def __str__(self) -> str:
        return (
            f"{self.outcome}: projected epsilon {self.projected_epsilon:.6g} "
            f"vs budget {self.epsilon_budget:.6g} ({self.reason})"
        )


class AdmissionController:
    """Serialized worst-case budget checks over a :class:`TenantRegistry`."""

    def __init__(self, registry: TenantRegistry, *, telemetry=None):
        self.registry = registry
        self.telemetry = telemetry

    def _count(self, name: str) -> None:
        if self.telemetry is not None:
            self.telemetry.increment(name)

    def project(self, spec: JobSpec) -> tuple[Tenant, float]:
        """The cumulative ε ``spec``'s tenant would reach — no mutation."""
        tenant = self.registry.get(spec.tenant)
        projected = tenant.accountant.cost_of(
            spec.sigma, spec.sample_rate, spec.steps, delta=tenant.policy.delta
        )
        return tenant, projected

    def admit(self, spec: JobSpec, *, job_id: str) -> AdmissionDecision:
        """Check-then-commit one job under the tenant's lock.

        On admission the tenant's accountant is stepped and the release is
        chained into its ledger with the job id in ``meta`` — the spend is
        durable in the chain before the caller ever dispatches.  On
        refusal a non-spending annotation carrying the projection and the
        budget is chained instead.  Decision latency (lock wait included)
        is recorded as the ``service_admission_seconds`` series.
        """
        start = time.perf_counter()
        try:
            return self._admit(spec, job_id=job_id)
        finally:
            if self.telemetry is not None:
                self.telemetry.record(
                    "service_admission_seconds", time.perf_counter() - start
                )

    def _admit(self, spec: JobSpec, *, job_id: str) -> AdmissionDecision:
        tenant = self.registry.get(spec.tenant)
        with tenant.lock:
            spent = tenant.spent_epsilon()
            projected = tenant.accountant.cost_of(
                spec.sigma, spec.sample_rate, spec.steps, delta=tenant.policy.delta
            )
            budget = tenant.policy.epsilon_budget
            if projected <= budget:
                tenant.accountant.step(spec.sigma, spec.sample_rate, spec.steps)
                tenant.ledger.record_release(
                    mechanism=f"service.{spec.mechanism}",
                    sigma=spec.sigma,
                    sensitivity=1.0,
                    sample_rate=spec.sample_rate,
                    num_steps=spec.steps,
                    accountant=tenant.accountant,
                    meta={"job_id": job_id},
                )
                self._count("service_jobs_admitted")
                return AdmissionDecision(
                    admitted=True,
                    outcome="admitted",
                    projected_epsilon=projected,
                    spent_epsilon=spent,
                    epsilon_budget=budget,
                    reason="projected cost fits the budget",
                )
            reason = (
                f"projected epsilon {projected:.6g} exceeds budget {budget:.6g} "
                f"(spent {spent:.6g})"
            )
            if tenant.policy.on_overspend == "queue":
                self._count("service_jobs_queued")
                return AdmissionDecision(
                    admitted=False,
                    outcome="queued",
                    projected_epsilon=projected,
                    spent_epsilon=spent,
                    epsilon_budget=budget,
                    reason=reason,
                )
            tenant.ledger.record_annotation(
                kind="refused",
                accountant=tenant.accountant,
                meta={
                    "job_id": job_id,
                    "sigma": float(spec.sigma),
                    "sample_rate": float(spec.sample_rate),
                    "steps": int(spec.steps),
                    "projected_epsilon": float(projected),
                    "epsilon_budget": float(budget),
                },
            )
            self._count("service_jobs_refused")
            return AdmissionDecision(
                admitted=False,
                outcome="refused",
                projected_epsilon=projected,
                spent_epsilon=spent,
                epsilon_budget=budget,
                reason=reason,
            )
