"""``repro.service`` — DP-training-as-a-service budget server.

The subsystem that turns the single-run reproduction into the "heavy
traffic" shape of the roadmap: a long-lived, multi-tenant server that
admits or refuses DP training jobs **before** any noise is drawn.

* :mod:`repro.service.tenants` — per-tenant (ε, δ) budgets, namespaced
  hash-chained ledgers, replay-derived accountants, per-tenant locks;
* :mod:`repro.service.admission` — worst-case RDP pre-composition
  (:meth:`~repro.privacy.accountant.RdpAccountant.cost_of`) and the
  serialized check-then-commit that makes concurrent submissions safe;
* :mod:`repro.service.queue` — job lifecycle records and fair-share
  dispatch ordering;
* :mod:`repro.service.server` — the :class:`BudgetServer` loop: spool
  ingestion, dispatch on the :mod:`repro.runtime` pool with shipped-back
  telemetry, graceful drain;
* :mod:`repro.service.persist` — per-transition checkpoint snapshots and
  the submission spool (kill-anywhere durability);
* :mod:`repro.service.report` — per-tenant budget reports (rendered by
  :func:`repro.telemetry.render_budget_report`);
* :mod:`repro.service.cli` — the ``repro serve | submit | tenants``
  subcommands.

See ``docs/service.md`` for the architecture, the admission math and the
restart guarantees.
"""

from repro.service.admission import AdmissionController, AdmissionDecision
from repro.service.persist import ServiceStore, read_submissions, write_submission
from repro.service.queue import JOB_STATES, JobQueue, JobRecord, JobSpec
from repro.service.report import build_budget_report
from repro.service.server import BudgetServer, execute_job
from repro.service.tenants import (
    Tenant,
    TenantPolicy,
    TenantRegistry,
    replay_accountant,
)

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "BudgetServer",
    "JOB_STATES",
    "JobQueue",
    "JobRecord",
    "JobSpec",
    "ServiceStore",
    "Tenant",
    "TenantPolicy",
    "TenantRegistry",
    "build_budget_report",
    "execute_job",
    "read_submissions",
    "replay_accountant",
    "write_submission",
]
