"""Job specifications, lifecycle states and the fair-share queue.

A submitted job moves through a small state machine::

    submit -> admitted -> running -> done
           -> pending  (over budget, tenant policy "queue"; re-checked
                        whenever the tenant's budget changes)
           -> refused  (over budget, tenant policy "refuse"; terminal,
                        recorded as a non-spending ledger annotation)
    running -> failed  (runner raised; the spend stays committed — the
                        release was authorized and must stay accounted)

The queue itself is plain data plus deterministic ordering — all
concurrency control lives in the admission controller (per-tenant locks)
and the server (one state lock around queue mutation + persistence).

**Fair-share dispatch**: :meth:`JobQueue.next_batch` interleaves tenants
by dispatch deficit — repeatedly picking the admitted job whose tenant
has dispatched the fewest jobs so far (ties broken by submission order) —
so a tenant that floods the queue cannot starve the others.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["JobSpec", "JobRecord", "JobQueue", "JOB_STATES"]

#: Every state a job record can be in.
JOB_STATES = ("pending", "admitted", "running", "done", "refused", "failed")
#: States that still hold queue resources (survive restarts as work).
ACTIVE_STATES = ("pending", "admitted", "running")
#: Terminal states (never re-run).
TERMINAL_STATES = ("done", "refused", "failed")


@dataclass(frozen=True)
class JobSpec:
    """What a tenant asked for: the DP release shape plus workload knobs.

    ``sigma`` / ``sample_rate`` / ``steps`` fully determine the job's
    worst-case ε cost under RDP pre-composition; the remaining fields only
    shape the dispatched workload, never the accounting.
    """

    tenant: str
    sigma: float
    sample_rate: float
    steps: int
    mechanism: str = "gaussian"
    #: Gradient dimensionality of the simulated releases.
    dim: int = 64
    #: Seed of the job's private noise stream.
    seed: int = 0
    #: Artificial per-job wall-clock cost in ms (testing/back-pressure).
    work_ms: float = 0.0

    def __post_init__(self):
        if not self.tenant:
            raise ValueError("tenant must be non-empty")
        if self.sigma <= 0:
            raise ValueError(f"sigma must be > 0, got {self.sigma}")
        if not 0.0 < self.sample_rate <= 1.0:
            raise ValueError(f"sample_rate must be in (0, 1], got {self.sample_rate}")
        if self.steps < 1:
            raise ValueError(f"steps must be >= 1, got {self.steps}")
        if self.dim < 1:
            raise ValueError(f"dim must be >= 1, got {self.dim}")
        if self.work_ms < 0:
            raise ValueError(f"work_ms must be >= 0, got {self.work_ms}")

    def to_dict(self) -> dict:
        return {
            "tenant": self.tenant,
            "sigma": float(self.sigma),
            "sample_rate": float(self.sample_rate),
            "steps": int(self.steps),
            "mechanism": self.mechanism,
            "dim": int(self.dim),
            "seed": int(self.seed),
            "work_ms": float(self.work_ms),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "JobSpec":
        return cls(
            tenant=str(payload["tenant"]),
            sigma=float(payload["sigma"]),
            sample_rate=float(payload["sample_rate"]),
            steps=int(payload["steps"]),
            mechanism=str(payload.get("mechanism", "gaussian")),
            dim=int(payload.get("dim", 64)),
            seed=int(payload.get("seed", 0)),
            work_ms=float(payload.get("work_ms", 0.0)),
        )


@dataclass
class JobRecord:
    """One job's full lifecycle: spec, status, decision data, result."""

    job_id: str
    spec: JobSpec
    status: str
    #: Monotonic submission sequence (FIFO tie-break inside a tenant).
    submit_seq: int
    #: Projected cumulative ε had/has this job been admitted.
    projected_epsilon: float | None = None
    #: Human-readable admission outcome ("admitted", "over budget ...").
    reason: str = ""
    #: Runner attempts (each restart of a killed-while-running job adds one).
    attempts: int = 0
    #: Server transition sequence at which the job finished (restart audit).
    finished_seq: int | None = None
    result: dict | None = field(default=None, repr=False)

    def to_dict(self) -> dict:
        return {
            "job_id": self.job_id,
            "spec": self.spec.to_dict(),
            "status": self.status,
            "submit_seq": int(self.submit_seq),
            "projected_epsilon": (
                None if self.projected_epsilon is None else float(self.projected_epsilon)
            ),
            "reason": self.reason,
            "attempts": int(self.attempts),
            "finished_seq": (
                None if self.finished_seq is None else int(self.finished_seq)
            ),
            "result": self.result,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "JobRecord":
        projected = payload.get("projected_epsilon")
        finished = payload.get("finished_seq")
        return cls(
            job_id=str(payload["job_id"]),
            spec=JobSpec.from_dict(payload["spec"]),
            status=str(payload["status"]),
            submit_seq=int(payload["submit_seq"]),
            projected_epsilon=None if projected is None else float(projected),
            reason=str(payload.get("reason", "")),
            attempts=int(payload.get("attempts", 0)),
            finished_seq=None if finished is None else int(finished),
            result=payload.get("result"),
        )


class JobQueue:
    """Ordered store of every job the server has ever seen.

    Jobs are never deleted — terminal records are the audit trail the
    per-tenant reports and the restart tests read.  Insertion order is the
    submission order; dispatch order is fair-share (see module docstring).
    """

    def __init__(self):
        self._records: dict[str, JobRecord] = {}
        self._next_seq = 0

    def next_seq(self) -> int:
        """Allocate the next submission sequence number."""
        seq = self._next_seq
        self._next_seq += 1
        return seq

    def add(self, record: JobRecord) -> JobRecord:
        if record.job_id in self._records:
            raise ValueError(f"duplicate job id {record.job_id!r}")
        if record.status not in JOB_STATES:
            raise ValueError(f"unknown job status {record.status!r}")
        self._records[record.job_id] = record
        return record

    def get(self, job_id: str) -> JobRecord:
        try:
            return self._records[job_id]
        except KeyError:
            raise KeyError(f"unknown job {job_id!r}") from None

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self):
        return iter(sorted(self._records.values(), key=lambda r: r.submit_seq))

    def by_status(self, *statuses: str) -> list[JobRecord]:
        """Records in the given states, in submission order."""
        for status in statuses:
            if status not in JOB_STATES:
                raise ValueError(f"unknown job status {status!r}")
        return [record for record in self if record.status in statuses]

    def counts(self) -> dict[str, int]:
        """``state -> count`` over all records (all states present)."""
        counts = {state: 0 for state in JOB_STATES}
        for record in self._records.values():
            counts[record.status] += 1
        return counts

    def tenant_counts(self, tenant: str) -> dict[str, int]:
        """``state -> count`` restricted to one tenant."""
        counts = {state: 0 for state in JOB_STATES}
        for record in self._records.values():
            if record.spec.tenant == tenant:
                counts[record.status] += 1
        return counts

    def next_batch(self, limit: int, dispatch_counts: dict[str, int]) -> list[JobRecord]:
        """Up to ``limit`` admitted jobs in fair-share order.

        ``dispatch_counts`` maps tenant -> jobs dispatched so far (the
        registry's per-tenant counters); the returned batch repeatedly
        takes the admitted job whose tenant has the smallest count,
        incrementing a local copy after each pick, so one call interleaves
        tenants the same way successive single-job calls would.  The
        caller owns persisting the real counters.
        """
        if limit < 1:
            raise ValueError(f"limit must be >= 1, got {limit}")
        admitted: dict[str, list[JobRecord]] = {}
        for record in self.by_status("admitted"):
            admitted.setdefault(record.spec.tenant, []).append(record)
        counts = dict(dispatch_counts)
        batch: list[JobRecord] = []
        while admitted and len(batch) < limit:
            tenant = min(
                admitted,
                key=lambda t: (counts.get(t, 0), admitted[t][0].submit_seq),
            )
            record = admitted[tenant].pop(0)
            if not admitted[tenant]:
                del admitted[tenant]
            counts[tenant] = counts.get(tenant, 0) + 1
            batch.append(record)
        return batch

    # --------------------------------------------------------- persistence
    def state_dict(self) -> dict:
        return {
            "records": [record.to_dict() for record in self],
            "next_seq": int(self._next_seq),
        }

    def load_state_dict(self, state: dict) -> None:
        self._records = {}
        for payload in state["records"]:
            record = JobRecord.from_dict(payload)
            self._records[record.job_id] = record
        self._next_seq = int(state["next_seq"])
