"""CLI surface of the budget server: ``repro serve | submit | tenants``.

All three subcommands operate on one ``--state-dir``; the spool decouples
them, so ``submit`` works whether or not a server is currently running::

    python -m repro.experiments.cli tenants add alice --state-dir d --epsilon 4.0
    python -m repro.experiments.cli submit --state-dir d --tenant alice \\
        --sigma 1.1 --sample-rate 0.01 --steps 100
    python -m repro.experiments.cli serve --state-dir d --workers 4
    python -m repro.experiments.cli tenants report --state-dir d

``serve`` drains gracefully on SIGTERM/SIGINT: the batch in flight
completes and is snapshotted, queued jobs survive to the next start.
A SIGKILL is also safe — every transition is already on disk — it just
re-runs whatever was mid-flight (the ε of which was committed at
admission, so nothing is ever spent twice).
"""

from __future__ import annotations

import argparse
import signal
import sys
import threading

#: Subcommand names routed here by the experiments CLI.
SERVICE_COMMANDS = ("serve", "submit", "tenants")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.cli",
        description="Multi-tenant DP budget server (see docs/service.md).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser("serve", help="run the budget server loop")
    serve.add_argument("--state-dir", required=True, metavar="DIR")
    serve.add_argument("--workers", type=int, default=1, metavar="N")
    serve.add_argument("--batch-size", type=int, default=8, metavar="N")
    serve.add_argument(
        "--poll", type=float, default=0.2, metavar="SECONDS",
        help="idle sleep between cycles (default: 0.2)",
    )
    serve.add_argument(
        "--once", action="store_true",
        help="drain the spool and queue, then exit instead of serving forever",
    )
    serve.add_argument(
        "--metrics-port", type=int, default=None, metavar="PORT",
        help="serve live metrics on this port (0 = ephemeral; "
        "Prometheus at /metrics, snapshots at /state.json)",
    )
    serve.add_argument(
        "--alert-rules", default=None, metavar="FILE",
        help="JSON file with a list of declarative alert rules "
        "(see docs/observability.md) evaluated on top of the built-ins",
    )
    serve.add_argument(
        "--alert-horizon", type=int, default=200, metavar="STEPS",
        help="epsilon burn-rate projection horizon in state transitions",
    )
    serve.add_argument(
        "--profile", default=None, metavar="FILE",
        help="sample the serve loop with SIGPROF and write collapsed "
        "stacks (flamegraph format) to FILE on exit",
    )

    submit = sub.add_parser("submit", help="spool one job submission")
    submit.add_argument("--state-dir", required=True, metavar="DIR")
    submit.add_argument("--tenant", required=True)
    submit.add_argument("--sigma", type=float, required=True, help="noise multiplier")
    submit.add_argument("--sample-rate", type=float, required=True)
    submit.add_argument("--steps", type=int, required=True)
    submit.add_argument("--mechanism", default="gaussian")
    submit.add_argument("--dim", type=int, default=64)
    submit.add_argument("--seed", type=int, default=0)
    submit.add_argument(
        "--work-ms", type=float, default=0.0,
        help="artificial per-job runtime in milliseconds",
    )

    tenants = sub.add_parser("tenants", help="manage and report tenants")
    tsub = tenants.add_subparsers(dest="tenants_command", required=True)
    tlist = tsub.add_parser("list", help="one line per tenant: budget and spend")
    tlist.add_argument("--state-dir", required=True, metavar="DIR")
    tadd = tsub.add_parser("add", help="register a tenant")
    tadd.add_argument("name")
    tadd.add_argument("--state-dir", required=True, metavar="DIR")
    tadd.add_argument("--epsilon", type=float, required=True, help="epsilon budget")
    tadd.add_argument("--delta", type=float, default=1e-5)
    tadd.add_argument(
        "--on-overspend", default="refuse", choices=("refuse", "queue"),
        help="what to do with jobs whose projected cost exceeds the budget",
    )
    tbudget = tsub.add_parser("set-budget", help="change a tenant's epsilon budget")
    tbudget.add_argument("name")
    tbudget.add_argument("--state-dir", required=True, metavar="DIR")
    tbudget.add_argument("--epsilon", type=float, required=True)
    treport = tsub.add_parser("report", help="per-tenant budget report")
    treport.add_argument("--state-dir", required=True, metavar="DIR")
    treport.add_argument(
        "--format", dest="report_format", default="markdown",
        choices=("markdown", "json"),
    )
    return parser


def _open_server(state_dir, **kwargs):
    from repro.service.server import BudgetServer

    return BudgetServer(state_dir, **kwargs)


def _load_alert_rules(path):
    import json

    from repro.telemetry.live.health import rule_from_dict

    with open(path, encoding="utf-8") as fh:
        specs = json.load(fh)
    return [rule_from_dict(spec) for spec in specs]


def _cmd_serve(args) -> int:
    alert_rules = _load_alert_rules(args.alert_rules) if args.alert_rules else None
    server = _open_server(
        args.state_dir,
        workers=args.workers,
        batch_size=args.batch_size,
        metrics_port=args.metrics_port,
        alert_rules=alert_rules,
        alert_horizon_steps=args.alert_horizon,
    )
    if server.metrics_address is not None:
        print(f"[metrics at {server.metrics_address}/metrics]", flush=True)
    profiler = None
    if args.profile:
        from repro.telemetry.live.profiler import SamplingProfiler

        profiler = SamplingProfiler().start()
    try:
        if args.once:
            done = server.run_until_idle()
            print(f"[served {done} transitions; queue drained]")
            return 0
        stop = threading.Event()

        def request_drain(signum, frame):
            print(f"[signal {signum}: draining]", flush=True)
            stop.set()

        signal.signal(signal.SIGTERM, request_drain)
        signal.signal(signal.SIGINT, request_drain)
        print(f"[serving from {args.state_dir}; workers={args.workers}]", flush=True)
        server.serve(poll_interval=args.poll, stop=stop)
        counts = server.queue.counts()
        print(f"[drained; jobs: {counts}]")
        return 0
    finally:
        if profiler is not None:
            profiler.stop().save_collapsed(args.profile)
            print(f"[profile: {profiler.sample_count} samples -> {args.profile}]")


def _cmd_submit(args) -> int:
    from repro.service.persist import ServiceStore, write_submission
    from repro.service.queue import JobSpec

    spec = JobSpec(
        tenant=args.tenant,
        sigma=args.sigma,
        sample_rate=args.sample_rate,
        steps=args.steps,
        mechanism=args.mechanism,
        dim=args.dim,
        seed=args.seed,
        work_ms=args.work_ms,
    )
    store = ServiceStore(args.state_dir)
    path = write_submission(store.spool_dir, spec)
    print(f"[spooled {path.name} for tenant {args.tenant!r}]")
    return 0


def _cmd_tenants(args) -> int:
    from repro.service.report import build_budget_report
    from repro.telemetry.report import render_budget_report
    from repro.utils.tables import format_table

    server = _open_server(args.state_dir)
    if args.tenants_command == "add":
        server.add_tenant(
            args.name,
            epsilon_budget=args.epsilon,
            delta=args.delta,
            on_overspend=args.on_overspend,
        )
        print(
            f"[tenant {args.name!r} registered: epsilon={args.epsilon} "
            f"delta={args.delta} on_overspend={args.on_overspend}]"
        )
        return 0
    if args.tenants_command == "set-budget":
        server.set_tenant_budget(args.name, args.epsilon)
        print(f"[tenant {args.name!r} budget set to epsilon={args.epsilon}]")
        return 0
    if args.tenants_command == "report":
        print(render_budget_report(build_budget_report(server), fmt=args.report_format))
        return 0
    rows = [
        [
            tenant.name,
            tenant.policy.epsilon_budget,
            tenant.spent_epsilon(),
            tenant.remaining_epsilon(),
            tenant.policy.on_overspend,
            len(tenant.ledger.entries),
        ]
        for tenant in server.registry
    ]
    if not rows:
        print("(no tenants registered)")
        return 0
    print(
        format_table(
            ["tenant", "budget", "spent", "remaining", "on_overspend", "ledger"],
            rows,
        )
    )
    return 0


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "submit":
        return _cmd_submit(args)
    return _cmd_tenants(args)


if __name__ == "__main__":
    sys.exit(main())
