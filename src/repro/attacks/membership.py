"""Black-box membership-inference attacks and their evaluation metrics.

Attack API: ``fit`` on reference data, then ``score(model, x, y)`` returns a
membership score per sample (higher = more likely a training member).
Evaluation compares scores on true members vs non-members.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import as_rng

__all__ = [
    "LossThresholdAttack",
    "ShadowModelAttack",
    "membership_advantage",
    "attack_roc",
]


class LossThresholdAttack:
    """Yeom et al. loss-threshold membership inference.

    The attacker guesses "member" when the target model's loss on a sample
    is below a threshold.  ``fit`` chooses the threshold as the mean loss on
    known non-member (reference) data — the classic calibration — or the
    midpoint between member/non-member means when both are supplied.
    """

    def __init__(self):
        self.threshold: float | None = None

    def fit(self, model, reference, member_data=None) -> "LossThresholdAttack":
        """Calibrate the threshold on reference (non-member) data."""
        x, y = reference.x, reference.y
        ref_losses = model.loss.per_sample(model.forward(x, train=False), y)
        if member_data is not None:
            m_losses = model.loss.per_sample(
                model.forward(member_data.x, train=False), member_data.y
            )
            self.threshold = float((np.mean(ref_losses) + np.mean(m_losses)) / 2)
        else:
            self.threshold = float(np.mean(ref_losses))
        return self

    def score(self, model, x, y) -> np.ndarray:
        """Membership scores: negative per-sample loss (higher = member-like)."""
        losses = model.loss.per_sample(model.forward(x, train=False), y)
        return -losses

    def predict(self, model, x, y) -> np.ndarray:
        """Hard member/non-member decisions using the fitted threshold."""
        if self.threshold is None:
            raise RuntimeError("call fit() before predict()")
        losses = model.loss.per_sample(model.forward(x, train=False), y)
        return losses < self.threshold


class ShadowModelAttack:
    """Simplified shadow-model attack (Shokri et al.).

    Trains ``num_shadows`` copies of a model architecture on disjoint shards
    of attacker-controlled data, collects (confidence-vector, member?) pairs
    from each shadow's in/out split, and fits a logistic regression attack
    model on features of the confidence vector (max prob, entropy, true-class
    prob, loss).
    """

    def __init__(self, model_builder, num_shadows: int = 3, *, train_steps: int = 60,
                 learning_rate: float = 1.0, batch_size: int = 32, rng=None):
        if num_shadows < 1:
            raise ValueError(f"num_shadows must be >= 1, got {num_shadows}")
        self.model_builder = model_builder
        self.num_shadows = num_shadows
        self.train_steps = train_steps
        self.learning_rate = learning_rate
        self.batch_size = batch_size
        self.rng = as_rng(rng)
        self._attack_weights: np.ndarray | None = None

    @staticmethod
    def _features(model, x, y) -> np.ndarray:
        """Attack features from the target's output distribution."""
        from repro.nn.functional import softmax

        logits = model.forward(x, train=False)
        probs = softmax(logits, axis=1)
        true_prob = probs[np.arange(len(y)), np.asarray(y, dtype=np.int64)]
        max_prob = probs.max(axis=1)
        entropy = -np.sum(probs * np.log(probs + 1e-12), axis=1)
        loss = -np.log(true_prob + 1e-12)
        ones = np.ones_like(loss)
        return np.column_stack([true_prob, max_prob, entropy, loss, ones])

    def fit(self, shadow_data) -> "ShadowModelAttack":
        """Train shadows on disjoint halves and fit the attack model."""
        from repro.core.sgd import SgdOptimizer
        from repro.core.trainer import Trainer

        n = len(shadow_data)
        per_shadow = n // self.num_shadows
        if per_shadow < 2 * self.batch_size:
            raise ValueError(
                f"shadow_data too small: {n} samples for {self.num_shadows} shadows"
            )
        feats, labels = [], []
        for s in range(self.num_shadows):
            shard = shadow_data.subset(
                np.arange(s * per_shadow, (s + 1) * per_shadow)
            )
            half = len(shard) // 2
            members = shard.subset(np.arange(half))
            non_members = shard.subset(np.arange(half, len(shard)))
            model = self.model_builder()
            Trainer(
                model,
                SgdOptimizer(self.learning_rate),
                members,
                batch_size=min(self.batch_size, len(members)),
                rng=self.rng,
            ).train(self.train_steps)
            feats.append(self._features(model, members.x, members.y))
            labels.append(np.ones(len(members)))
            feats.append(self._features(model, non_members.x, non_members.y))
            labels.append(np.zeros(len(non_members)))

        features = np.concatenate(feats)
        targets = np.concatenate(labels)
        # Standardise (keep bias column intact) then fit logistic regression
        # by plain gradient descent.
        mean = features.mean(axis=0)
        std = features.std(axis=0)
        std[std == 0] = 1.0
        mean[-1], std[-1] = 0.0, 1.0
        self._norm = (mean, std)
        z = (features - mean) / std
        w = np.zeros(z.shape[1])
        for _ in range(500):
            p = 1.0 / (1.0 + np.exp(-(z @ w)))
            w -= 0.5 * z.T @ (p - targets) / len(targets)
        self._attack_weights = w
        return self

    def score(self, model, x, y) -> np.ndarray:
        """Membership probability from the fitted attack model."""
        if self._attack_weights is None:
            raise RuntimeError("call fit() before score()")
        mean, std = self._norm
        z = (self._features(model, x, y) - mean) / std
        return 1.0 / (1.0 + np.exp(-(z @ self._attack_weights)))


def membership_advantage(member_scores, non_member_scores) -> float:
    """Yeom et al. membership advantage: ``max_t (TPR(t) - FPR(t))`` in [0, 1].

    0 means the attack is no better than chance; 1 is perfect separation.
    """
    fpr, tpr = attack_roc(member_scores, non_member_scores)
    return float(np.max(tpr - fpr))


def attack_roc(member_scores, non_member_scores) -> tuple[np.ndarray, np.ndarray]:
    """ROC curve (FPR, TPR) of a score-based membership attack."""
    member_scores = np.asarray(member_scores, dtype=np.float64)
    non_member_scores = np.asarray(non_member_scores, dtype=np.float64)
    if member_scores.size == 0 or non_member_scores.size == 0:
        raise ValueError("both score arrays must be non-empty")
    thresholds = np.unique(np.concatenate([member_scores, non_member_scores]))
    # Evaluate "score >= t" for each threshold, descending.
    thresholds = thresholds[::-1]
    tpr = np.array([(member_scores >= t).mean() for t in thresholds])
    fpr = np.array([(non_member_scores >= t).mean() for t in thresholds])
    return np.concatenate([[0.0], fpr, [1.0]]), np.concatenate([[0.0], tpr, [1.0]])
