"""Membership-inference evaluation substrate.

The paper motivates DP-SGD with membership-inference attacks (§I: a
white-box MIA "can infer whether a single data point belongs to the
training dataset").  This package implements the standard black-box
evaluation attacks so the privacy/efficiency trade-off of DP-SGD and GeoDP
can be measured empirically, not just accounted:

* :class:`LossThresholdAttack` — Yeom et al. (CSF 2018): predict "member"
  when the per-sample loss is below a threshold fit on reference data.
* :class:`ShadowModelAttack` — Shokri et al. (S&P 2017), simplified: train
  shadow models on disjoint shards and learn a logistic attack model on
  their confidence vectors.
* :func:`membership_advantage` / :func:`attack_roc` — evaluation metrics.

These tools are for *defensive evaluation* of the privacy mechanisms in
this library (the standard methodology in the DP literature).
"""

from repro.attacks.membership import (
    LossThresholdAttack,
    ShadowModelAttack,
    attack_roc,
    membership_advantage,
)

__all__ = [
    "LossThresholdAttack",
    "ShadowModelAttack",
    "attack_roc",
    "membership_advantage",
]
