"""Deterministic intra-kernel thread parallelism.

All four kernel backends can split their row-parallel work across a pool
of threads.  The cardinal rule, inherited from the backend contract, is
that the thread count may change *who* computes a chunk but never *what*
is computed:

* **Chunk boundaries are a pure function of the input shape.**  An
  ``(m, d)`` kernel is split into fixed row spans derived from ``(m, d)``
  alone (:func:`chunk_spans`); requesting 1, 2 or 4 threads schedules the
  same spans onto fewer or more workers.
* **Each chunk is computed independently**, writing to a disjoint slice
  of the output (geometry kernels, per-sample norms) or to its own
  partial buffer.
* **Partial buffers are reduced in chunk-index order** on the calling
  thread, so floating-point accumulation order is fixed.

Together these make every kernel's output *byte-identical* for any
thread count — asserted by ``tests/backend/test_threads.py`` — and leave
the RNG untouched (kernels never draw randomness; see
:mod:`repro.backend`).

Selection::

    from repro.backend import set_num_threads, use_num_threads

    set_num_threads(4)            # process-wide
    with use_num_threads(2):      # scoped (tests, benchmarks)
        ...

or via the environment (``REPRO_THREADS=4``) or the CLI (``--threads``).
The default is 1 — serial execution, bit-identical to the historical
library — because thread efficiency depends on kernel sizes the library
cannot guess.  The Python-side pool is a persistent
:class:`~concurrent.futures.ThreadPoolExecutor` shared by the fused
backend's GIL-releasing numpy calls; the C backend keeps its own
persistent pthread pool (see ``repro/backend/cext.py``).  Both pools are
torn down in forked children (``os.register_at_fork``) so
:mod:`repro.runtime`'s fork-based workers never inherit dead threads.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor

__all__ = [
    "THREADS_ENV",
    "MAX_THREADS",
    "set_num_threads",
    "get_num_threads",
    "use_num_threads",
    "chunk_spans",
    "run_chunks",
]

#: Environment variable naming the initial thread count (default: 1).
THREADS_ENV = "REPRO_THREADS"

#: Hard cap on the pool size; requests above it are clamped.
MAX_THREADS = 64

_num_threads: int | None = None
_executor: ThreadPoolExecutor | None = None
_executor_size = 0


def set_num_threads(n: int) -> int:
    """Set the process-wide kernel thread count; returns the clamped value.

    ``n = 1`` (the default) is fully serial.  Thread counts never change
    kernel outputs (chunking is shape-derived; see the module docstring),
    so this is purely a performance knob.
    """
    n = int(n)
    if n < 1:
        raise ValueError(f"thread count must be >= 1, got {n}")
    global _num_threads
    _num_threads = min(n, MAX_THREADS)
    return _num_threads


def get_num_threads() -> int:
    """The active thread count (initialized from ``REPRO_THREADS`` on first use)."""
    global _num_threads
    if _num_threads is None:
        raw = os.environ.get(THREADS_ENV, "1")
        try:
            set_num_threads(int(raw))
        except ValueError:
            _num_threads = 1
    return _num_threads


class use_num_threads:
    """Context manager scoping a thread-count selection (restores the previous)."""

    def __init__(self, n: int):
        self._n = n
        self._previous: int | None = None

    def __enter__(self) -> int:
        self._previous = get_num_threads()
        return set_num_threads(self._n)

    def __exit__(self, *exc):
        global _num_threads
        _num_threads = self._previous
        return False


def chunk_spans(total: int, rows_per_chunk: int) -> list[tuple[int, int]]:
    """Fixed ``[start, stop)`` spans covering ``total`` rows.

    The boundaries depend only on ``total`` and ``rows_per_chunk`` (which
    callers derive from the input shape), never on the thread count —
    the determinism contract hangs on this.
    """
    rows_per_chunk = max(1, int(rows_per_chunk))
    return [
        (start, min(start + rows_per_chunk, total))
        for start in range(0, max(total, 0), rows_per_chunk)
    ]


def _get_executor(workers: int) -> ThreadPoolExecutor:
    """The persistent executor, resized (recreated) when the target grows."""
    global _executor, _executor_size
    if _executor is None or _executor_size < workers:
        if _executor is not None:
            _executor.shutdown(wait=False)
        _executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-kernel"
        )
        _executor_size = workers
    return _executor


def run_chunks(fn, spans) -> None:
    """Run ``fn(start, stop)`` for every span, possibly on the thread pool.

    With one span or one configured thread the spans run serially in
    order on the calling thread — the scheduling (not the arithmetic)
    is all the thread count changes, so outputs are byte-identical either
    way.  Exceptions propagate to the caller.
    """
    spans = list(spans)
    n = get_num_threads()
    if n <= 1 or len(spans) <= 1:
        for start, stop in spans:
            fn(start, stop)
        return
    executor = _get_executor(min(n, len(spans), MAX_THREADS))
    # list() drains the iterator so worker exceptions surface here.
    list(executor.map(lambda span: fn(span[0], span[1]), spans))


def _reset_after_fork() -> None:
    """Drop the inherited executor in forked children (its threads are gone)."""
    global _executor, _executor_size
    _executor = None
    _executor_size = 0


if hasattr(os, "register_at_fork"):  # pragma: no branch
    os.register_at_fork(after_in_child=_reset_after_fork)
