"""Numba-JIT backend (optional): compiled GeoDP loop without a C toolchain.

When ``numba`` is importable, the GeoDP hot loop and the embedding
norm-Gram are JIT-compiled; every other kernel inherits the fused-numpy
implementation.  When numba is absent — as in minimal installs — the
dispatch layer never constructs this class and falls back (see
:mod:`repro.backend`), so importing this module stays side-effect free.

The JIT kernel is the same algorithm as the C kernel in
:mod:`repro.backend.cext` (sequential suffix sums, zero-denominator
convention, angle addition on the noise), so it sits inside the same
1e-10 parity budget against the reference backend.
"""

from __future__ import annotations

import importlib.util

import numpy as np

from repro.backend.fused import FusedBackend

__all__ = ["NumbaBackend", "numba_available"]


def numba_available() -> bool:
    """Whether the numba JIT compiler is importable."""
    return importlib.util.find_spec("numba") is not None


_jitted = None


def _build_kernels():
    """Compile the JIT kernels once; cached at module level."""
    global _jitted
    if _jitted is None:
        from numba import njit

        @njit(cache=True, fastmath=False)
        def geodp_perturb(clipped, mag_noise, theta_noise):
            m, d = clipped.shape
            out = np.empty((m, d))
            tail = np.empty(d)
            for i in range(m):
                acc = 0.0
                tail[d - 1] = 0.0
                for z in range(d - 2, -1, -1):
                    acc += clipped[i, z + 1] * clipped[i, z + 1]
                    tail[z] = acc
                total = clipped[i, 0] * clipped[i, 0] + acc
                noisy_mag = np.sqrt(total) + mag_noise[i]
                sinprod = 1.0
                for z in range(d - 1):
                    denom = np.sqrt(total) if z == 0 else np.sqrt(tail[z - 1])
                    if denom == 0.0:
                        ct, st = 1.0, 0.0
                    elif z < d - 2:
                        ct = clipped[i, z] / denom
                        st = np.sqrt(tail[z]) / denom
                    else:
                        ct = clipped[i, z] / denom
                        st = clipped[i, z + 1] / denom
                    sn = np.sin(theta_noise[i, z])
                    cn = np.cos(theta_noise[i, z])
                    out[i, z] = noisy_mag * sinprod * (ct * cn - st * sn)
                    sinprod *= st * cn + ct * sn
                out[i, d - 1] = noisy_mag * sinprod
            return out

        @njit(cache=True)
        def embedding_norm_sq(tokens, grad_out):
            batch, length, dim = grad_out.shape
            norm_sq = np.zeros(batch)
            for b in range(batch):
                for l in range(length):  # noqa: E741
                    for mm in range(length):
                        if tokens[b, l] == tokens[b, mm]:
                            dot = 0.0
                            for k in range(dim):
                                dot += grad_out[b, l, k] * grad_out[b, mm, k]
                            norm_sq[b] += dot
            return norm_sq

        _jitted = (geodp_perturb, embedding_norm_sq)
    return _jitted


class NumbaBackend(FusedBackend):
    """Fused-numpy backend with numba-compiled hot loops."""

    name = "numba"
    accelerated = True

    def __init__(self):
        if not numba_available():
            raise RuntimeError("numba is not installed; numba backend unavailable")
        self._geodp_perturb, self._embedding_norm_sq = _build_kernels()

    def geodp_perturb(
        self, clipped: np.ndarray, mag_noise: np.ndarray, theta_noise: np.ndarray
    ) -> np.ndarray:
        return self._geodp_perturb(
            np.ascontiguousarray(clipped, dtype=np.float64),
            np.ascontiguousarray(mag_noise, dtype=np.float64),
            np.ascontiguousarray(theta_noise, dtype=np.float64),
        )

    def embedding_norm_sq(self, tokens: np.ndarray, grad_out: np.ndarray) -> np.ndarray:
        return self._embedding_norm_sq(
            np.ascontiguousarray(tokens, dtype=np.int64),
            np.ascontiguousarray(grad_out, dtype=np.float64),
        )
