"""C-accelerated backend: single-pass fused GeoDP kernel via ctypes.

The fused-numpy backend still makes ~10 memory-bound passes over the
``(m, d)`` arrays; the only way to collapse them into one register-resident
pass per row is compiled code.  This backend embeds a small C kernel,
compiles it with the system C compiler on first use (``-O3 -march=native``)
and loads it through ``ctypes``.  Compilation failures of any kind mark the
backend unavailable, and the dispatch layer falls back to the fused-numpy
backend — so environments without a toolchain lose speed, never
correctness.

The kernel mirrors the fused-numpy algorithm exactly (same reversed
suffix-sum order, same zero-denominator convention, angle addition with
``sin``/``cos`` of the noise only), keeping it inside the 1e-10 parity
budget of ``tests/backend/``.  The ``sin``/``cos`` of the noise uses a
Taylor polynomial on ``|x| <= 0.5`` (error < 1e-16, auto-vectorizable)
and libm elsewhere.

Compiled artifacts are cached next to this module (``_build/``, keyed by
source hash) so the cost is one compile per source change per machine; a
read-only install transparently falls back to a per-user temp directory.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import sys
import tempfile
from pathlib import Path

import numpy as np

from repro.backend.fused import FusedBackend

__all__ = ["CExtBackend", "compiler_available"]

_C_SOURCE = r"""
#include <math.h>

/* Fused to_spherical -> perturb -> to_cartesian, one pass per row.
 *
 * g:         (m, d) clipped gradients, C-contiguous
 * mag_noise: (m,)   pre-scaled magnitude noise
 * dir_noise: (m, d-1) pre-scaled direction noise
 * out:       (m, d) output buffer
 * tail:      (d,)   scratch buffer for suffix sums of squares
 */
void geodp_perturb(const double *g, const double *mag_noise,
                   const double *dir_noise, double *out, double *tail,
                   long m, long d) {
    for (long i = 0; i < m; i++) {
        const double *gi = g + i * d;
        const double *ni = dir_noise + i * (d - 1);
        double *oi = out + i * d;

        /* Suffix sums of squares, accumulated from the end in the same
         * sequential order as the reversed-cumsum reference. */
        double acc = 0.0;
        tail[d - 1] = 0.0;
        for (long z = d - 2; z >= 0; z--) {
            acc += gi[z + 1] * gi[z + 1];
            tail[z] = acc;
        }
        double total = gi[0] * gi[0] + acc;
        double noisy_mag = sqrt(total) + mag_noise[i];

        /* Each iteration's sqrt(tail[z]) is the next iteration's
         * denominator, so carry it over and spend one sqrt and one
         * division per coordinate instead of two of each. */
        double sinprod = 1.0;
        double denom = sqrt(total);
        for (long z = 0; z < d - 1; z++) {
            double ct, st, next_denom = 0.0;
            if (denom == 0.0) {
                ct = 1.0; /* arctan2(0, 0) == 0 convention */
                st = 0.0;
            } else if (z < d - 2) {
                double inv = 1.0 / denom;
                next_denom = sqrt(tail[z]);
                ct = gi[z] * inv;
                st = next_denom * inv;
            } else {
                double inv = 1.0 / denom;
                ct = gi[z] * inv;
                st = gi[z + 1] * inv; /* azimuth keeps the sign */
            }
            denom = next_denom;
            double n = ni[z], sn, cn;
            if (fabs(n) <= 0.5) {
                double x2 = n * n;
                sn = n * (1.0 + x2 * (-1.0 / 6 + x2 * (1.0 / 120
                        + x2 * (-1.0 / 5040 + x2 * (1.0 / 362880
                        + x2 * (-1.0 / 39916800))))));
                cn = 1.0 + x2 * (-0.5 + x2 * (1.0 / 24
                        + x2 * (-1.0 / 720 + x2 * (1.0 / 40320
                        + x2 * (-1.0 / 3628800 + x2 * (1.0 / 479001600))))));
            } else {
                sn = sin(n);
                cn = cos(n);
            }
            oi[z] = noisy_mag * sinprod * (ct * cn - st * sn);
            sinprod *= st * cn + ct * sn;
        }
        oi[d - 1] = noisy_mag * sinprod;
    }
}
"""

_LIB = None
_PROBED = False


def _build_dirs() -> list[Path]:
    """Candidate cache directories, most preferred first."""
    return [
        Path(__file__).resolve().parent / "_build",
        Path(tempfile.gettempdir()) / f"repro-cext-{os.getuid() if hasattr(os, 'getuid') else 'u'}",
    ]


def _compile() -> ctypes.CDLL | None:
    """Compile (or reuse) the shared library; None on any failure."""
    digest = hashlib.sha256(_C_SOURCE.encode()).hexdigest()[:16]
    suffix = ".dll" if sys.platform == "win32" else ".so"
    for build_dir in _build_dirs():
        so_path = build_dir / f"geodp_{digest}{suffix}"
        if so_path.exists():
            try:
                return ctypes.CDLL(str(so_path))
            except OSError:
                continue
        try:
            build_dir.mkdir(parents=True, exist_ok=True)
            c_path = build_dir / f"geodp_{digest}.c"
            c_path.write_text(_C_SOURCE)
            for cc in ("cc", "gcc", "clang"):
                cmd = [cc, "-O3", "-march=native", "-shared", "-fPIC",
                       "-o", str(so_path) + ".tmp", str(c_path), "-lm"]
                try:
                    proc = subprocess.run(
                        cmd, capture_output=True, timeout=120, check=False
                    )
                except (OSError, subprocess.TimeoutExpired):
                    continue
                if proc.returncode == 0:
                    # Atomic rename so concurrent probes never load a
                    # half-written library.
                    os.replace(str(so_path) + ".tmp", str(so_path))
                    return ctypes.CDLL(str(so_path))
        except OSError:
            continue
    return None


def _load() -> ctypes.CDLL | None:
    global _LIB, _PROBED
    if not _PROBED:
        _PROBED = True
        lib = _compile()
        if lib is not None:
            ptr = np.ctypeslib.ndpointer(dtype=np.float64, flags="C_CONTIGUOUS")
            lib.geodp_perturb.restype = None
            lib.geodp_perturb.argtypes = [
                ptr, ptr, ptr, ptr, ptr, ctypes.c_long, ctypes.c_long
            ]
        _LIB = lib
    return _LIB


def compiler_available() -> bool:
    """Whether the C kernel compiled (cached probe; compiles on first call)."""
    return _load() is not None


class CExtBackend(FusedBackend):
    """Fused-numpy backend with the GeoDP hot loop in compiled C."""

    name = "cext"
    accelerated = True

    def __init__(self):
        lib = _load()
        if lib is None:
            raise RuntimeError("no working C compiler; cext backend unavailable")
        self._lib = lib

    def geodp_perturb(
        self, clipped: np.ndarray, mag_noise: np.ndarray, theta_noise: np.ndarray
    ) -> np.ndarray:
        clipped = np.ascontiguousarray(clipped, dtype=np.float64)
        mag_noise = np.ascontiguousarray(mag_noise, dtype=np.float64)
        theta_noise = np.ascontiguousarray(theta_noise, dtype=np.float64)
        m, d = clipped.shape
        out = np.empty((m, d))
        scratch = np.empty(d)
        self._lib.geodp_perturb(clipped, mag_noise, theta_noise, out, scratch, m, d)
        return out
