"""C-accelerated backend: fused geometry kernels on a persistent pthread pool.

The fused-numpy backend still makes ~10 memory-bound passes over the
``(m, d)`` arrays; the only way to collapse them into one register-resident
pass per row is compiled code.  This backend embeds a small C kernel
family, compiles it with the system C compiler on first use
(``-O3 -march=native -pthread``) and loads it through ``ctypes``.
Compilation failures of any kind mark the backend unavailable, and the
dispatch layer falls back to the fused-numpy backend — so environments
without a toolchain lose speed, never correctness.

Four kernels run in C: the fused GeoDP perturbation, the spherical
decompose/compose pair, and the canonical-angle fold.  Each is
row-parallel over a persistent pthread worker pool with the determinism
contract of :mod:`repro.backend.threads`: chunk boundaries come from the
caller as a pure function of the input shape, every chunk writes a
disjoint row span, and no kernel here reduces across rows — so outputs
are byte-identical for any thread count.  The ghost-norm family stays on
the inherited fused-numpy implementations on purpose: those kernels are
BLAS-bound, and a naive C loop loses to BLAS (measured), so threading
them happens at the numpy-chunk level in :class:`FusedBackend`.

The kernels avoid per-row scratch entirely (a requirement for threading —
the old single-thread kernel shared one scratch row): the backward
suffix-sum pass stores into the *output* row and the forward pass reads
each slot just before overwriting it.

The perturbation kernel mirrors the fused-numpy algorithm exactly (same
reversed suffix-sum order, same zero-denominator convention, angle
addition with ``sin``/``cos`` of the noise only), keeping it inside the
1e-10 parity budget of ``tests/backend/``.  The ``sin``/``cos`` of the
noise uses a Taylor polynomial on ``|x| <= 0.5`` (error < 1e-16,
auto-vectorizable) and libm elsewhere.

Output buffers come from the :mod:`repro.backend.workspace` arena, so the
steady-state hot path allocates nothing.  The worker pool is reset in
forked children (``pool_reset`` via ``os.register_at_fork``) so
:mod:`repro.runtime`'s fork-based workers never inherit dead threads.

Compiled artifacts are cached next to this module (``_build/``, keyed by
source hash) so the cost is one compile per source change per machine; a
read-only install transparently falls back to a per-user temp directory.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import sys
import tempfile
import threading
from pathlib import Path

import numpy as np

from repro.backend import workspace
from repro.backend.fused import FusedBackend, _row_block
from repro.backend.threads import get_num_threads

__all__ = ["CExtBackend", "compiler_available"]

_C_SOURCE = r"""
#include <math.h>
#include <pthread.h>
#include <stdint.h>

static const double PI = 3.14159265358979323846;
static const double TWO_PI = 6.28318530717958647692;

/* ------------------------------------------------------------------ pool
 * Persistent worker pool.  parallel_for(fn, ctx, total, chunk, nthreads)
 * splits [0, total) into fixed spans of `chunk` rows (the boundaries are
 * chosen by the *caller* from the input shape, never from nthreads) and
 * lets `nthreads - 1` workers plus the calling thread claim spans.  Which
 * thread runs which span is scheduling, not arithmetic: every kernel
 * below writes disjoint row spans, so outputs are byte-identical for any
 * thread count.  Workers are spawned lazily, parked on a condvar between
 * kernels, and never torn down (pool_reset reinitializes after fork).
 */

#define MAX_POOL_WORKERS 63

typedef void (*chunk_fn)(void *ctx, long start, long stop);

static struct {
    pthread_mutex_t mu;
    pthread_cond_t work_cv;  /* wakes workers on a new epoch */
    pthread_cond_t done_cv;  /* wakes the caller when all chunks finish */
    long nworkers;           /* spawned worker threads */
    long active;             /* workers allowed to join the current epoch */
    unsigned long epoch;
    chunk_fn fn;
    void *ctx;
    long total, chunk, next, remaining;
} pool = {PTHREAD_MUTEX_INITIALIZER, PTHREAD_COND_INITIALIZER,
          PTHREAD_COND_INITIALIZER, 0, 0, 0, 0, 0, 0, 0, 0, 0};

static void run_span_locked(chunk_fn fn, void *ctx) {
    /* Claim and run spans until none remain; called with pool.mu held,
     * returns with pool.mu held. */
    while (pool.next < pool.total) {
        long start = pool.next;
        long stop = start + pool.chunk;
        if (stop > pool.total) stop = pool.total;
        pool.next = stop;
        pthread_mutex_unlock(&pool.mu);
        fn(ctx, start, stop);
        pthread_mutex_lock(&pool.mu);
        if (--pool.remaining == 0)
            pthread_cond_signal(&pool.done_cv);
    }
}

static void *worker_main(void *arg) {
    long wid = (long)(intptr_t)arg;
    unsigned long seen = 0;
    pthread_mutex_lock(&pool.mu);
    for (;;) {
        while (pool.epoch == seen)
            pthread_cond_wait(&pool.work_cv, &pool.mu);
        seen = pool.epoch;
        if (wid >= pool.active)
            continue; /* more workers exist than this epoch asked for */
        run_span_locked(pool.fn, pool.ctx);
    }
    return (void *)0; /* unreachable */
}

static void parallel_for(chunk_fn fn, void *ctx, long total, long chunk,
                         long nthreads) {
    if (total <= 0)
        return;
    if (chunk < 1)
        chunk = total;
    long nchunks = (total + chunk - 1) / chunk;
    if (nthreads <= 1 || nchunks <= 1) {
        for (long s = 0; s < total; s += chunk) {
            long e = s + chunk;
            if (e > total) e = total;
            fn(ctx, s, e);
        }
        return;
    }
    long want = nthreads - 1; /* the calling thread participates */
    if (want > nchunks - 1) want = nchunks - 1;
    if (want > MAX_POOL_WORKERS) want = MAX_POOL_WORKERS;
    pthread_mutex_lock(&pool.mu);
    while (pool.nworkers < want) {
        pthread_t t;
        if (pthread_create(&t, 0, worker_main,
                           (void *)(intptr_t)pool.nworkers) != 0)
            break; /* fewer workers: slower, never wrong */
        pthread_detach(t);
        pool.nworkers++;
    }
    pool.fn = fn;
    pool.ctx = ctx;
    pool.total = total;
    pool.chunk = chunk;
    pool.next = 0;
    pool.remaining = nchunks;
    pool.active = want;
    pool.epoch++;
    pthread_cond_broadcast(&pool.work_cv);
    run_span_locked(fn, ctx);
    while (pool.remaining > 0)
        pthread_cond_wait(&pool.done_cv, &pool.mu);
    pool.fn = 0;
    pool.ctx = 0;
    pthread_mutex_unlock(&pool.mu);
}

/* Reinitialize after fork: the child inherits the pool state but none of
 * the worker threads, so drop both (workers respawn lazily). */
void pool_reset(void) {
    pthread_mutex_t mu = PTHREAD_MUTEX_INITIALIZER;
    pthread_cond_t cv = PTHREAD_COND_INITIALIZER;
    pool.mu = mu;
    pool.work_cv = cv;
    pool.done_cv = cv;
    pool.nworkers = 0;
    pool.active = 0;
    pool.epoch = 0;
    pool.fn = 0;
    pool.ctx = 0;
    pool.total = pool.chunk = pool.next = pool.remaining = 0;
}

/* ------------------------------------------------- fused GeoDP perturb
 * Fused to_spherical -> perturb -> to_cartesian, one pass per row.  The
 * backward pass parks the suffix sums of squares in the output row; the
 * forward pass reads each slot immediately before overwriting it, so the
 * kernel needs no scratch (which is what makes it trivially parallel).
 */

typedef struct {
    const double *g;         /* (m, d) clipped gradients */
    const double *mag_noise; /* (m,)   pre-scaled magnitude noise */
    const double *dir_noise; /* (m, d-1) pre-scaled direction noise */
    double *out;             /* (m, d) */
    long d;
} perturb_ctx;

static void perturb_chunk(void *vctx, long start, long stop) {
    const perturb_ctx *c = (const perturb_ctx *)vctx;
    long d = c->d;
    for (long i = start; i < stop; i++) {
        const double *gi = c->g + i * d;
        const double *ni = c->dir_noise + i * (d - 1);
        double *oi = c->out + i * d;

        /* Suffix sums of squares, accumulated from the end in the same
         * sequential order as the reversed-cumsum reference, stored in
         * the output slots they will later replace. */
        double acc = 0.0;
        for (long z = d - 2; z >= 0; z--) {
            acc += gi[z + 1] * gi[z + 1];
            oi[z] = acc;
        }
        double total = gi[0] * gi[0] + acc;
        double noisy_mag = sqrt(total) + c->mag_noise[i];

        /* Each iteration's sqrt(tail) is the next iteration's
         * denominator, so carry it over and spend one sqrt and one
         * division per coordinate instead of two of each. */
        double sinprod = 1.0;
        double denom = sqrt(total);
        for (long z = 0; z < d - 1; z++) {
            double ct, st, next_denom = 0.0;
            if (denom == 0.0) {
                ct = 1.0; /* arctan2(0, 0) == 0 convention */
                st = 0.0;
            } else if (z < d - 2) {
                double inv = 1.0 / denom;
                next_denom = sqrt(oi[z]); /* tail parked here; overwritten below */
                ct = gi[z] * inv;
                st = next_denom * inv;
            } else {
                double inv = 1.0 / denom;
                ct = gi[z] * inv;
                st = gi[z + 1] * inv; /* azimuth keeps the sign */
            }
            denom = next_denom;
            double n = ni[z], sn, cn;
            if (fabs(n) <= 0.5) {
                double x2 = n * n;
                sn = n * (1.0 + x2 * (-1.0 / 6 + x2 * (1.0 / 120
                        + x2 * (-1.0 / 5040 + x2 * (1.0 / 362880
                        + x2 * (-1.0 / 39916800))))));
                cn = 1.0 + x2 * (-0.5 + x2 * (1.0 / 24
                        + x2 * (-1.0 / 720 + x2 * (1.0 / 40320
                        + x2 * (-1.0 / 3628800 + x2 * (1.0 / 479001600))))));
            } else {
                sn = sin(n);
                cn = cos(n);
            }
            oi[z] = noisy_mag * sinprod * (ct * cn - st * sn);
            sinprod *= st * cn + ct * sn;
        }
        oi[d - 1] = noisy_mag * sinprod;
    }
}

void geodp_perturb(const double *g, const double *mag_noise,
                   const double *dir_noise, double *out, long m, long d,
                   long chunk, long nthreads) {
    perturb_ctx ctx = {g, mag_noise, dir_noise, out, d};
    parallel_for(perturb_chunk, &ctx, m, chunk, nthreads);
}

/* ------------------------------------------------- spherical decompose
 * (m, d) -> magnitudes (m,), angles (m, d-1).  Suffix sums park in the
 * angle row (read-before-write, as above).
 */

typedef struct {
    const double *g;
    double *mag;
    double *theta;
    long d;
} decompose_ctx;

static void decompose_chunk(void *vctx, long start, long stop) {
    const decompose_ctx *c = (const decompose_ctx *)vctx;
    long d = c->d;
    for (long i = start; i < stop; i++) {
        const double *gi = c->g + i * d;
        double *ti = c->theta + i * (d - 1);
        double acc = 0.0;
        for (long z = d - 2; z >= 0; z--) {
            acc += gi[z + 1] * gi[z + 1];
            ti[z] = acc;
        }
        c->mag[i] = sqrt(gi[0] * gi[0] + acc);
        for (long z = 0; z < d - 2; z++)
            ti[z] = atan2(sqrt(ti[z]), gi[z]);
        ti[d - 2] = atan2(gi[d - 1], gi[d - 2]);
    }
}

void spherical_decompose(const double *g, double *mag, double *theta, long m,
                         long d, long chunk, long nthreads) {
    decompose_ctx ctx = {g, mag, theta, d};
    parallel_for(decompose_chunk, &ctx, m, chunk, nthreads);
}

/* -------------------------------------------------- spherical compose */

typedef struct {
    const double *mag;
    const double *theta;
    double *out;
    long d;
} compose_ctx;

static void compose_chunk(void *vctx, long start, long stop) {
    const compose_ctx *c = (const compose_ctx *)vctx;
    long d = c->d;
    for (long i = start; i < stop; i++) {
        const double *ti = c->theta + i * (d - 1);
        double *oi = c->out + i * d;
        double mi = c->mag[i];
        double sinprod = 1.0;
        for (long z = 0; z < d - 1; z++) {
            double st = sin(ti[z]);
            double ct = cos(ti[z]);
            oi[z] = mi * (sinprod * ct);
            sinprod *= st;
        }
        oi[d - 1] = mi * sinprod;
    }
}

void spherical_compose(const double *mag, const double *theta, double *out,
                       long m, long d, long chunk, long nthreads) {
    compose_ctx ctx = {mag, theta, out, d};
    parallel_for(compose_chunk, &ctx, m, chunk, nthreads);
}

/* ---------------------------------------------- canonical angle fold
 * Mirrors the vectorized reference: whether a polar angle folds is
 * independent of pending negations, so the negation flag at position z
 * is the exclusive prefix parity of the fold flags.  w = d - 1 angle
 * columns: w - 1 polar angles then one azimuth.
 */

typedef struct {
    const double *theta;
    double *out;
    long w;
} canon_ctx;

static void canon_chunk(void *vctx, long start, long stop) {
    const canon_ctx *c = (const canon_ctx *)vctx;
    long w = c->w;
    for (long i = start; i < stop; i++) {
        const double *ti = c->theta + i * w;
        double *oi = c->out + i * w;
        int parity = 0;
        for (long j = 0; j < w - 1; j++) {
            /* np.mod: fmod with the sign folded positive. */
            double r = fmod(ti[j], TWO_PI);
            if (r < 0.0) r += TWO_PI;
            int above = r > PI;
            double folded = above ? TWO_PI - r : r;
            oi[j] = parity ? PI - folded : folded;
            parity ^= above;
        }
        double last = ti[w - 1];
        if (parity) last += PI;
        double r = fmod(last + PI, TWO_PI);
        if (r < 0.0) r += TWO_PI;
        r -= PI;
        if (r == -PI) r = PI; /* keep the (-pi, pi] convention */
        oi[w - 1] = r;
    }
}

void canonicalize_angles(const double *theta, double *out, long m, long w,
                         long chunk, long nthreads) {
    canon_ctx ctx = {theta, out, w};
    parallel_for(canon_chunk, &ctx, m, chunk, nthreads);
}
"""

_LIB = None
_PROBED = False

#: ctypes releases the GIL during foreign calls, and the C worker pool
#: serves one parallel_for at a time — serialize entry from Python.
_call_lock = threading.Lock()


def _build_dirs() -> list[Path]:
    """Candidate cache directories, most preferred first."""
    return [
        Path(__file__).resolve().parent / "_build",
        Path(tempfile.gettempdir()) / f"repro-cext-{os.getuid() if hasattr(os, 'getuid') else 'u'}",
    ]


def _compile() -> ctypes.CDLL | None:
    """Compile (or reuse) the shared library; None on any failure."""
    digest = hashlib.sha256(_C_SOURCE.encode()).hexdigest()[:16]
    suffix = ".dll" if sys.platform == "win32" else ".so"
    for build_dir in _build_dirs():
        so_path = build_dir / f"geodp_{digest}{suffix}"
        if so_path.exists():
            try:
                return ctypes.CDLL(str(so_path))
            except OSError:
                continue
        try:
            build_dir.mkdir(parents=True, exist_ok=True)
            c_path = build_dir / f"geodp_{digest}.c"
            c_path.write_text(_C_SOURCE)
            for cc in ("cc", "gcc", "clang"):
                cmd = [cc, "-O3", "-march=native", "-pthread", "-shared",
                       "-fPIC", "-o", str(so_path) + ".tmp", str(c_path), "-lm"]
                try:
                    proc = subprocess.run(
                        cmd, capture_output=True, timeout=120, check=False
                    )
                except (OSError, subprocess.TimeoutExpired):
                    continue
                if proc.returncode == 0:
                    # Atomic rename so concurrent probes never load a
                    # half-written library.
                    os.replace(str(so_path) + ".tmp", str(so_path))
                    return ctypes.CDLL(str(so_path))
        except OSError:
            continue
    return None


def _reset_pool_after_fork() -> None:
    """Forked children inherit pool state but no worker threads; reset both."""
    if _LIB is not None:
        _LIB.pool_reset()


def _load() -> ctypes.CDLL | None:
    global _LIB, _PROBED
    if not _PROBED:
        _PROBED = True
        lib = _compile()
        if lib is not None:
            ptr = np.ctypeslib.ndpointer(dtype=np.float64, flags="C_CONTIGUOUS")
            c_long = ctypes.c_long
            lib.geodp_perturb.restype = None
            lib.geodp_perturb.argtypes = [
                ptr, ptr, ptr, ptr, c_long, c_long, c_long, c_long
            ]
            lib.spherical_decompose.restype = None
            lib.spherical_decompose.argtypes = [
                ptr, ptr, ptr, c_long, c_long, c_long, c_long
            ]
            lib.spherical_compose.restype = None
            lib.spherical_compose.argtypes = [
                ptr, ptr, ptr, c_long, c_long, c_long, c_long
            ]
            lib.canonicalize_angles.restype = None
            lib.canonicalize_angles.argtypes = [
                ptr, ptr, c_long, c_long, c_long, c_long
            ]
            lib.pool_reset.restype = None
            lib.pool_reset.argtypes = []
        _LIB = lib
    return _LIB


if hasattr(os, "register_at_fork"):  # pragma: no branch
    os.register_at_fork(after_in_child=_reset_pool_after_fork)


def compiler_available() -> bool:
    """Whether the C kernels compiled (cached probe; compiles on first call)."""
    return _load() is not None


class CExtBackend(FusedBackend):
    """Fused-numpy backend with the geometry kernel family in compiled C."""

    name = "cext"
    accelerated = True

    def __init__(self):
        lib = _load()
        if lib is None:
            raise RuntimeError("no working C compiler; cext backend unavailable")
        self._lib = lib

    def geodp_perturb(
        self, clipped: np.ndarray, mag_noise: np.ndarray, theta_noise: np.ndarray
    ) -> np.ndarray:
        clipped = np.ascontiguousarray(clipped, dtype=np.float64)
        mag_noise = np.ascontiguousarray(mag_noise, dtype=np.float64)
        theta_noise = np.ascontiguousarray(theta_noise, dtype=np.float64)
        m, d = clipped.shape
        out = workspace.take((m, d))
        with _call_lock:
            self._lib.geodp_perturb(
                clipped, mag_noise, theta_noise, out,
                m, d, _row_block(m, d), get_num_threads(),
            )
        return out

    def spherical_decompose(self, grads: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        grads = np.ascontiguousarray(grads, dtype=np.float64)
        m, d = grads.shape
        magnitudes = workspace.take(m)
        thetas = workspace.take((m, d - 1))
        with _call_lock:
            self._lib.spherical_decompose(
                grads, magnitudes, thetas, m, d, _row_block(m, d), get_num_threads()
            )
        return magnitudes, thetas

    def spherical_compose(self, magnitudes: np.ndarray, thetas: np.ndarray) -> np.ndarray:
        magnitudes = np.ascontiguousarray(magnitudes, dtype=np.float64)
        thetas = np.ascontiguousarray(thetas, dtype=np.float64)
        m, d_minus_1 = thetas.shape
        d = d_minus_1 + 1
        out = workspace.take((m, d))
        with _call_lock:
            self._lib.spherical_compose(
                magnitudes, thetas, out, m, d, _row_block(m, d), get_num_threads()
            )
        return out

    def canonicalize_angles(self, thetas: np.ndarray) -> np.ndarray:
        thetas = np.ascontiguousarray(thetas, dtype=np.float64)
        m, w = thetas.shape
        out = workspace.take((m, w))
        with _call_lock:
            self._lib.canonicalize_angles(
                thetas, out, m, w, _row_block(m, w + 1), get_num_threads()
            )
        return out
