"""Reusable-workspace buffer arena for the kernel hot paths.

Every DP release used to allocate its working set from scratch —
``BENCH_1`` measured ~23 MB of fresh temporaries per
``perturb_geodp_batch`` call at the benchmark shape.  Training loops call
the release path thousands of times with *identical* shapes, so this
module keeps a small pool of float buffers keyed by ``(shape, dtype)``
and hands them back out instead of allocating:

* :func:`take` — pop a pooled buffer for the key, or allocate fresh on a
  miss.  The caller owns the buffer (contents are uninitialized, like
  ``np.empty``); ownership transfers on return, so ``take`` is safe for
  kernel *outputs* handed to callers.
* :func:`give` — donate a buffer back to the pool for reuse.  Never give
  a buffer that anything else still references.
* :func:`scratch` — context manager bundling ``take`` + guaranteed
  ``give`` for internal temporaries.
* :func:`zeros` — ``take`` + zero fill, for accumulators.

The pool is bounded (per-key and global byte caps, oldest-first
eviction) and thread-safe: concurrent kernel chunks each ``take``
distinct buffers.  :func:`invalidate` drops every pooled buffer — call
it when the parameter shape changes in a long-lived process (the DP
optimizers do this automatically) so stale shapes cannot pin memory.

Telemetry: the module counts ``workspace_hits`` / ``workspace_misses``
/ ``workspace_bytes`` (bytes currently pooled), exposed by
:func:`stats` and surfaced in the ``threads`` benchmark section.

The tier-1 lint (``tests/test_lint.py``) forbids direct ``np.empty`` /
``np.zeros`` in the release hot-path modules; all hot-path allocation is
funnelled through here so steady-state allocation is near zero.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager

import numpy as np

__all__ = [
    "take",
    "give",
    "scratch",
    "zeros",
    "stats",
    "reset_stats",
    "invalidate",
    "note_release_shape",
    "MAX_BUFFERS_PER_KEY",
    "MAX_POOL_BYTES",
]

#: Buffers retained per ``(shape, dtype)`` key (others are dropped on give).
MAX_BUFFERS_PER_KEY = 8

#: Global cap on pooled bytes; oldest keys evict first when exceeded.
MAX_POOL_BYTES = 256 * 2**20

_lock = threading.Lock()
_pool: dict[tuple, list[np.ndarray]] = {}
_pool_bytes = 0
_hits = 0
_misses = 0


def _key(shape, dtype) -> tuple:
    shape = (int(shape),) if np.isscalar(shape) else tuple(int(s) for s in shape)
    return (shape, np.dtype(dtype).str)


def take(shape, dtype=np.float64) -> np.ndarray:
    """A buffer of ``shape``/``dtype`` — pooled when available, fresh otherwise.

    Contents are uninitialized.  The caller owns the result; donate it
    back with :func:`give` when it is provably dead to make the next
    ``take`` a hit.
    """
    global _pool_bytes, _hits, _misses
    key = _key(shape, dtype)
    with _lock:
        bucket = _pool.get(key)
        if bucket:
            buf = bucket.pop()
            if not bucket:
                del _pool[key]
            _pool_bytes -= buf.nbytes
            _hits += 1
            return buf
        _misses += 1
    return np.empty(key[0], dtype=dtype)


def give(buf: np.ndarray) -> None:
    """Donate a buffer back to the pool (caller must hold no other references)."""
    global _pool_bytes
    if not isinstance(buf, np.ndarray) or not buf.flags.c_contiguous:
        return
    key = _key(buf.shape, buf.dtype)
    with _lock:
        bucket = _pool.setdefault(key, [])
        if len(bucket) >= MAX_BUFFERS_PER_KEY or buf.nbytes > MAX_POOL_BYTES:
            if not bucket:
                del _pool[key]
            return
        bucket.append(buf)
        _pool_bytes += buf.nbytes
        # Evict oldest-inserted keys until back under the global cap.
        while _pool_bytes > MAX_POOL_BYTES and _pool:
            oldest = next(iter(_pool))
            if oldest == key and len(_pool) == 1 and len(bucket) == 1:
                break  # never evict the buffer just donated if it fits alone
            dropped = _pool.pop(oldest)
            _pool_bytes -= sum(b.nbytes for b in dropped)


@contextmanager
def scratch(shape, dtype=np.float64):
    """Checkout/checkin context for an internal temporary buffer."""
    buf = take(shape, dtype)
    try:
        yield buf
    finally:
        give(buf)


def zeros(shape, dtype=np.float64) -> np.ndarray:
    """A zero-filled owned buffer (pooled ``take`` + in-place fill)."""
    buf = take(shape, dtype)
    buf.fill(0)
    return buf


def stats() -> dict:
    """Current counters: ``workspace_hits`` / ``workspace_misses`` / ``workspace_bytes``."""
    with _lock:
        return {
            "workspace_hits": _hits,
            "workspace_misses": _misses,
            "workspace_bytes": _pool_bytes,
            "workspace_keys": len(_pool),
        }


def reset_stats() -> None:
    """Zero the hit/miss counters (the pool itself is untouched)."""
    global _hits, _misses
    with _lock:
        _hits = 0
        _misses = 0


def invalidate() -> None:
    """Drop every pooled buffer (e.g. after a parameter-shape change)."""
    global _pool_bytes
    with _lock:
        _pool.clear()
        _pool_bytes = 0


def note_release_shape(owner, shape) -> None:
    """Invalidate the pool when ``owner``'s release shape changes.

    The DP optimizers call this once per release: in a long-lived process
    a parameter-shape change (fine-tuning surgery, a new model behind the
    same optimizer slot) would otherwise leave the old shape's buffers
    pinned in the pool until eviction.  The previous shape is remembered
    on ``owner`` itself, so independent optimizers do not interfere.
    """
    shape = _key(shape, np.float64)[0]
    prev = getattr(owner, "_workspace_release_shape", None)
    if prev is not None and prev != shape:
        invalidate()
    owner._workspace_release_shape = shape
