"""Pluggable kernel backend dispatch.

The numeric hot paths of the library — the GeoDP spherical round trip,
the ghost-clipping norm and accumulate kernels — are implemented behind a
small backend interface so that optimized implementations can be swapped
in without touching callers:

========= ==============================================================
Backend    What it is
========= ==============================================================
reference  Plain numpy, bit-identical to the pre-backend library.  The
           parity baseline and the default.
fused      Optimized numpy: trig-identity fused GeoDP perturbation,
           BLAS-routed ghost kernels, blocked conv Grams.
numba      Numba-JIT compiled hot loops; available only when numba is
           installed.
cext       ctypes-loaded C kernel compiled on first use with the system
           C compiler; available only when compilation succeeds.
auto       Selects the fastest available accelerated backend
           (numba > cext > fused) without counting a fallback.
========= ==============================================================

Selection::

    from repro.backend import set_backend, get_backend, use_backend

    set_backend("auto")           # process-wide
    with use_backend("fused"):    # scoped (tests, benchmarks)
        ...

or via the environment: ``REPRO_BACKEND=fused python -m repro...``.
``REPRO_BACKEND_DISABLE`` (comma-separated names) masks backends, which is
how sandboxed environments keep the compiler probe off.

Requesting an unavailable backend (e.g. ``numba`` without numba) is not an
error: the dispatcher *falls back* down the acceleration chain and records
the event, surfaced as a ``backend_fallbacks`` telemetry counter so runs
document the substitution.  Switching backends never changes *which*
random numbers a DP release consumes — noise is drawn by the callers, in a
fixed order, and handed to the kernels — so accounting and ledger replay
are bit-identical across backends (``tests/backend/`` enforces this).

The accelerated backends additionally run their kernels across an
intra-kernel thread pool (:func:`set_num_threads` / ``REPRO_THREADS`` /
``--threads``; default 1) with the same guarantee in the other direction:
the thread count never changes a single output bit (see
:mod:`repro.backend.threads` and ``docs/parallelism.md``).  Hot-path
buffers come from the :mod:`repro.backend.workspace` arena so
steady-state release allocation is near zero.

See ``docs/backends.md`` for the full contract.
"""

from __future__ import annotations

import os
import weakref

from repro.backend.cext import CExtBackend, compiler_available
from repro.backend.fused import FusedBackend
from repro.backend.numba_backend import NumbaBackend, numba_available
from repro.backend.reference import ReferenceBackend
from repro.backend.threads import (
    THREADS_ENV,
    get_num_threads,
    set_num_threads,
    use_num_threads,
)

__all__ = [
    "available_backends",
    "get_backend",
    "set_backend",
    "use_backend",
    "note_backend",
    "publish_metrics",
    "set_num_threads",
    "get_num_threads",
    "use_num_threads",
    "BACKEND_NAMES",
    "BACKEND_ENV",
    "BACKEND_DISABLE_ENV",
    "THREADS_ENV",
]

#: Selectable names, in documentation order ("auto" resolves to one of them).
BACKEND_NAMES = ("reference", "fused", "numba", "cext")

#: Environment variable naming the initial backend (default: ``reference``).
BACKEND_ENV = "REPRO_BACKEND"

#: Comma-separated backend names to treat as unavailable.
BACKEND_DISABLE_ENV = "REPRO_BACKEND_DISABLE"

#: Fallback preference for unavailable accelerated backends and ``auto``.
_ACCELERATED_ORDER = ("numba", "cext", "fused")

_active = None
_active_fell_back = False
_instances: dict[str, object] = {}
_noted: "weakref.WeakSet" = weakref.WeakSet()


def _disabled() -> set[str]:
    raw = os.environ.get(BACKEND_DISABLE_ENV, "")
    return {name.strip() for name in raw.split(",") if name.strip()}


def _is_available(name: str) -> bool:
    if name in _disabled():
        return False
    if name in ("reference", "fused"):
        return True
    if name == "numba":
        return numba_available()
    if name == "cext":
        return compiler_available()
    return False


def available_backends() -> dict[str, bool]:
    """Mapping of backend name to availability in this environment."""
    return {name: _is_available(name) for name in BACKEND_NAMES}


def _instantiate(name: str):
    if name not in _instances:
        cls = {
            "reference": ReferenceBackend,
            "fused": FusedBackend,
            "numba": NumbaBackend,
            "cext": CExtBackend,
        }[name]
        _instances[name] = cls()
    return _instances[name]


def _resolve(name: str) -> tuple[str, bool]:
    """Resolve a requested name to ``(available name, fell_back)``."""
    if name == "auto":
        for candidate in _ACCELERATED_ORDER:
            if _is_available(candidate):
                return candidate, False
        return "reference", False
    if name not in BACKEND_NAMES:
        raise ValueError(
            f"unknown backend {name!r}; choose from {BACKEND_NAMES + ('auto',)}"
        )
    if _is_available(name):
        return name, False
    # Fall down the acceleration chain past the unavailable request.
    start = _ACCELERATED_ORDER.index(name) + 1 if name in _ACCELERATED_ORDER else 0
    for candidate in _ACCELERATED_ORDER[start:]:
        if _is_available(candidate):
            return candidate, True
    return "reference", True


def set_backend(name: str):
    """Select the process-wide backend; returns the backend object.

    Unavailable requests fall back down the chain (numba > cext > fused >
    reference) and mark the selection as a fallback, which
    :func:`note_backend` reports as a ``backend_fallbacks`` counter.
    """
    global _active, _active_fell_back
    resolved, fell_back = _resolve(name)
    _active = _instantiate(resolved)
    _active_fell_back = fell_back
    # A new selection should be re-noted by any recorder that asks.
    _noted.clear()
    return _active


def get_backend():
    """The active backend (initialized from ``REPRO_BACKEND`` on first use)."""
    if _active is None:
        set_backend(os.environ.get(BACKEND_ENV, "reference"))
    return _active


class use_backend:
    """Context manager scoping a backend selection (restores the previous)."""

    def __init__(self, name: str):
        self._name = name
        self._previous = None

    def __enter__(self):
        global _active_fell_back
        self._previous = (get_backend(), _active_fell_back)
        return set_backend(self._name)

    def __exit__(self, *exc):
        global _active, _active_fell_back
        _active, _active_fell_back = self._previous
        _noted.clear()
        return False


def note_backend(recorder) -> None:
    """Record the active backend on a telemetry recorder, once per recorder.

    Emits a ``backend_active_<name>`` counter, plus one
    ``backend_fallbacks`` counter when the active backend was substituted
    for an unavailable request.  Observational only — never touches the
    RNG or the kernels.
    """
    if recorder is None:
        return
    try:
        if recorder in _noted:
            return
        _noted.add(recorder)
    except TypeError:  # unhashable / non-weakrefable recorders: note anyway
        pass
    backend = get_backend()
    recorder.increment(f"backend_active_{backend.name}")
    if _active_fell_back:
        recorder.increment("backend_fallbacks")


def publish_metrics(registry) -> None:
    """Set backend-layer gauges on a live ``MetricsRegistry``.

    Designed as a registry *collector* (``registry.register_collector(
    publish_metrics)``), invoked at scrape/evaluation time: active
    backend (``backend_active{backend=...}`` one-hot), fallback state,
    workspace-arena hit/miss/bytes/keys, configured kernel thread count,
    and current intra-kernel thread-pool occupancy.  Read-only.
    """
    from repro.backend import threads as _threads
    from repro.backend import workspace as _workspace

    backend = get_backend()
    for name in BACKEND_NAMES:
        registry.set_gauge(
            "backend_active",
            1.0 if name == backend.name else 0.0,
            labels={"backend": name},
        )
    registry.set_gauge("backend_fell_back", 1.0 if _active_fell_back else 0.0)
    for name, value in _workspace.stats().items():
        registry.set_gauge(f"backend_{name}", float(value))
    registry.set_gauge("backend_threads_configured", float(get_num_threads()))
    executor = _threads._executor
    pool_size = float(_threads._executor_size if executor is not None else 0)
    occupancy = 0.0
    if executor is not None:
        # Threads exist lazily; count the ones actually alive right now.
        occupancy = float(sum(1 for t in executor._threads if t.is_alive()))
    registry.set_gauge("backend_thread_pool_size", pool_size)
    registry.set_gauge("backend_thread_pool_occupancy", occupancy)
