"""Pure-numpy reference backend.

Every kernel here is the *definition* of correct: the bodies are the exact
numpy formulations the library shipped with before the backend layer
existed (same operations in the same order), so selecting the reference
backend reproduces historical results bit-for-bit.  The differential
parity harness in ``tests/backend/`` measures every other backend against
these implementations.

Kernels are pure functions of ``float64`` arrays: they never touch an RNG
(noise is drawn by the caller and passed in, already scaled), never
validate (callers validate), and never mutate their inputs.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ReferenceBackend"]


class ReferenceBackend:
    """Plain-numpy kernels; always available; the parity baseline."""

    name = "reference"
    #: Whether this backend is an optimized implementation (used by ``auto``
    #: selection and by the benchmark gate that accelerated kernels must
    #: beat the reference).
    accelerated = False

    # ------------------------------------------------------------- geometry
    def spherical_decompose(self, grads: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """``(m, d) -> (magnitudes (m,), angles (m, d-1))`` (paper Eq. 24-26)."""
        m, d = grads.shape
        squares = grads**2
        # tail_sq[:, z] = sum_{k > z} grads[:, k]^2  (0-indexed).  Writing the
        # reversed cumulative sum straight into a preallocated buffer keeps
        # the addition order of the reversed-cumsum formulation while
        # skipping the reverse/slice/concatenate temporaries.
        tail_sq = np.empty((m, d))
        tail_sq[:, -1] = 0.0
        np.cumsum(squares[:, :0:-1], axis=1, out=tail_sq[:, -2::-1])
        # Cumulative floating-point cancellation can leave tiny negatives.
        np.maximum(tail_sq, 0.0, out=tail_sq)
        magnitudes = np.sqrt(squares.sum(axis=1))

        theta = np.empty((m, d - 1))
        if d > 2:
            theta[:, : d - 2] = np.arctan2(
                np.sqrt(tail_sq[:, : d - 2]), grads[:, : d - 2]
            )
        theta[:, d - 2] = np.arctan2(grads[:, d - 1], grads[:, d - 2])
        return magnitudes, theta

    def spherical_compose(self, magnitudes: np.ndarray, thetas: np.ndarray) -> np.ndarray:
        """``(magnitudes (m,), angles (m, d-1)) -> (m, d)`` (paper Eq. 27)."""
        m, d_minus_1 = thetas.shape
        d = d_minus_1 + 1
        sines = np.sin(thetas)
        cosines = np.cos(thetas)
        # sin_prod[:, z] = prod_{i < z} sin(theta_i), with sin_prod[:, 0] = 1.
        sin_prod = np.empty((m, d))
        sin_prod[:, 0] = 1.0
        np.cumprod(sines, axis=1, out=sin_prod[:, 1:])
        g = np.empty((m, d))
        g[:, : d - 1] = sin_prod[:, : d - 1] * cosines
        g[:, d - 1] = sin_prod[:, d - 1]
        g *= magnitudes[:, None]
        return g

    def geodp_perturb(
        self, clipped: np.ndarray, mag_noise: np.ndarray, theta_noise: np.ndarray
    ) -> np.ndarray:
        """Fuseable GeoDP hot path: decompose, add pre-scaled noise, compose.

        ``mag_noise`` ``(m,)`` and ``theta_noise`` ``(m, d-1)`` are already
        scaled by the caller (``(C/B) * sigma`` resp. the direction
        sensitivity), so the kernel is deterministic.  The reference
        implementation is literally the round trip — accelerated backends
        may fuse the three stages but must match it to 1e-10.
        """
        magnitudes, thetas = self.spherical_decompose(clipped)
        return self.spherical_compose(magnitudes + mag_noise, thetas + theta_noise)

    def canonicalize_angles(self, thetas: np.ndarray) -> np.ndarray:
        """Fold noised angles ``(m, d-1)`` into canonical ranges, row by row.

        The exact historical vectorized formulation (see
        :func:`repro.geometry.spherical.canonicalize_angles` for the
        geometry): whether a polar angle folds is independent of pending
        negations, so the negation flag at position ``z`` is the exclusive
        prefix parity of the fold flags — one cumsum per row.  Rows never
        interact, which is what lets accelerated backends chunk this.
        """
        out = np.empty_like(thetas)
        d_minus_1 = thetas.shape[1]
        if d_minus_1 > 1:
            polar = np.mod(thetas[:, :-1], 2.0 * np.pi)
            above = polar > np.pi
            folded = np.where(above, 2.0 * np.pi - polar, polar)
            fold_count = np.cumsum(above, axis=1)
            pending = (fold_count - above) % 2 == 1  # exclusive prefix parity
            out[:, :-1] = np.where(pending, np.pi - folded, folded)
            negate = fold_count[:, -1] % 2 == 1
        else:
            negate = np.zeros(thetas.shape[0], dtype=bool)
        last = thetas[:, -1].copy()
        last[negate] += np.pi
        last = np.mod(last + np.pi, 2 * np.pi) - np.pi
        # mod maps pi -> -pi; keep the canonical (-pi, pi] convention.
        last[last == -np.pi] = np.pi
        out[:, -1] = last
        return out

    # ---------------------------------------------------------- ghost norms
    def linear_norm_sq(
        self, x: np.ndarray, grad_out: np.ndarray, bias: bool
    ) -> np.ndarray:
        """Per-sample ``||dW_i||^2 (+ ||db_i||^2)`` for ``y = x @ W + b``.

        The per-sample weight gradient is the outer product ``a_i e_i^T``,
        so its squared Frobenius norm factorizes: ``||a_i||^2 * ||e_i||^2``.
        """
        e_sq = np.einsum("bo,bo->b", grad_out, grad_out)
        norm_sq = np.einsum("bi,bi->b", x, x) * e_sq
        if bias:
            norm_sq = norm_sq + e_sq
        return norm_sq

    def conv_norm_sq(self, cols: np.ndarray, dy: np.ndarray, bias: bool) -> np.ndarray:
        """Per-sample conv gradient norms from im2col patches.

        ``cols`` is ``(B, K, L)`` with ``K = in_c * k * k``; ``dy`` is
        ``(B, O, L)``.  Uses the ghost-norm Gram trick
        ``||E_i A_i^T||_F^2 = <A_i^T A_i, E_i^T E_i>_F`` when the ``(L, L)``
        Grams are smaller than the ``(B, O, K)`` per-sample gradients.
        """
        out_channels = dy.shape[1]
        k_dim, length = cols.shape[1], cols.shape[2]
        if length * length <= out_channels * k_dim:
            ga = np.einsum("bkl,bkm->blm", cols, cols)
            ge = np.einsum("bol,bom->blm", dy, dy)
            norm_sq = np.einsum("blm,blm->b", ga, ge)
        else:
            dw = np.einsum("bol,bkl->bok", dy, cols)
            norm_sq = np.einsum("bok,bok->b", dw, dw)
        if bias:
            db = dy.sum(axis=2)
            norm_sq = norm_sq + np.einsum("bo,bo->b", db, db)
        return norm_sq

    def embedding_norm_sq(self, tokens: np.ndarray, grad_out: np.ndarray) -> np.ndarray:
        """Per-sample embedding gradient norms via the token-masked Gram.

        ``||dw_i||^2 = sum_{l,m} [t_l == t_m] <g_l, g_m>`` — the ``(L, L)``
        positional Gram masked by token equality; repeated tokens are what
        makes this differ from a plain sum of ``||g_l||^2``.
        """
        gram = np.einsum("bld,bmd->blm", grad_out, grad_out)
        same = tokens[:, :, None] == tokens[:, None, :]
        return np.einsum("blm,blm->b", gram, same.astype(np.float64))

    # ------------------------------------------------- clipped accumulation
    def linear_clip_accumulate(
        self, x: np.ndarray, grad_out: np.ndarray, factors: np.ndarray, bias: bool
    ) -> tuple[np.ndarray, np.ndarray | None]:
        """``sum_i c_i a_i e_i^T`` (and ``sum_i c_i e_i``) without ``(B, P)``."""
        scaled = grad_out * factors[:, None]
        dw = x.T @ scaled
        db = scaled.sum(axis=0) if bias else None
        return dw, db

    def conv_clip_accumulate(
        self, cols: np.ndarray, dy: np.ndarray, factors: np.ndarray, bias: bool
    ) -> tuple[np.ndarray, np.ndarray | None]:
        """Clip-scaled conv weight-gradient sum ``(O, K)`` from patches."""
        scaled = dy * factors[:, None, None]
        dw = np.einsum("bol,bkl->ok", scaled, cols)
        db = scaled.sum(axis=(0, 2)) if bias else None
        return dw, db

    def embedding_clip_accumulate(
        self,
        tokens: np.ndarray,
        grad_out: np.ndarray,
        factors: np.ndarray,
        vocab_size: int,
    ) -> np.ndarray:
        """Clip-scaled scatter-add of positional gradients onto token rows."""
        dim = grad_out.shape[-1]
        scaled = grad_out * factors[:, None, None]
        dw = np.zeros((vocab_size, dim))
        np.add.at(dw, tokens.ravel(), scaled.reshape(-1, dim))
        return dw

    # ------------------------------------------------- sparse embedding path
    def embedding_sparse_grads(
        self,
        tokens: np.ndarray,
        grad_out: np.ndarray,
        valid: np.ndarray,
        vocab_size: int,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Compact per-sample embedding gradients to touched rows.

        Sums the ``(B, L, D)`` positional gradients over repeated tokens
        *within each sample*, returning one ``(sample_id, row, value)``
        triple per touched ``(sample, row)`` pair, sorted by ``(sample,
        row)``.  Positions with ``valid == False`` (padding) are dropped.
        This is lossless: scattering the triples back reproduces the dense
        per-sample gradient exactly, so norms over ``vals`` are exact.
        """
        batch, length = tokens.shape
        dim = grad_out.shape[-1]
        flat_valid = valid.ravel()
        sample_idx = np.repeat(np.arange(batch, dtype=np.int64), length)[flat_valid]
        flat_tokens = tokens.ravel()[flat_valid].astype(np.int64)
        flat_grads = grad_out.reshape(batch * length, dim)[flat_valid]
        # One key per (sample, row) pair; unique both dedups and sorts.
        keys = sample_idx * np.int64(vocab_size) + flat_tokens
        uniq, inverse = np.unique(keys, return_inverse=True)
        vals = np.zeros((uniq.size, dim))
        np.add.at(vals, inverse, flat_grads)
        return uniq // vocab_size, uniq % vocab_size, vals

    def sparse_row_reduce(
        self,
        sample_ids: np.ndarray,
        rows: np.ndarray,
        vals: np.ndarray,
        factors: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Clip-scale per-sample sparse gradients and merge across the lot.

        ``sum_i c_i dw_i`` restricted to touched rows: each nonzero is
        scaled by its sample's clip factor, then nonzeros sharing a row are
        summed.  Returns ``(unique_rows, summed_vals)`` with rows sorted
        ascending — the sparse counterpart of ``embedding_clip_accumulate``.
        """
        scaled = vals * factors[sample_ids][:, None]
        uniq_rows, inverse = np.unique(rows, return_inverse=True)
        out = np.zeros((uniq_rows.size, vals.shape[1]))
        np.add.at(out, inverse, scaled)
        return uniq_rows, out
