"""Optimized pure-numpy backend: cache-blocked geometry, BLAS-routed
ghost kernels, blocked conv Grams.

Three ideas carry the speedups:

* **Row blocking** (geometry kernels): the spherical round trip streams
  ~10 distinct ``(m, d)`` temporaries; at benchmark sizes those fall out
  of cache between passes and every op runs at memory bandwidth.
  Processing the batch in row blocks sized to keep the whole working set
  cache-resident (~16k doubles per buffer) runs the *same* operations on
  hot data — measured ~1.6x on the GeoDP perturbation at ``(64, 5000)``,
  with bit-identical results because rows never interact.  (A trig-identity
  rewrite that avoids ``arctan2`` entirely was measured slower than this in
  pure numpy — it needs compiled code to pay off, which is exactly what the
  ``cext``/``numba`` backends do.)
* **BLAS routing**: the batched Gram/contract einsums of the ghost norms
  become ``matmul``/``tensordot`` calls, which dispatch to BLAS instead of
  einsum's generic loops.
* **Batch blocking**: the conv ``(B, L, L)`` Gram intermediates are
  computed in batch blocks, bounding peak memory without changing the
  contraction.

Everything here must match :class:`~repro.backend.reference.ReferenceBackend`
to 1e-10 — enforced by ``tests/backend/test_parity.py``; the geometry
kernels match it bit-for-bit.
"""

from __future__ import annotations

import numpy as np

from repro.backend.reference import ReferenceBackend

__all__ = ["FusedBackend"]

#: Matrices with at most this many doubles stay unblocked: they already fit
#: in cache, and per-block numpy call overhead would dominate.
_BLOCK_THRESHOLD = 1 << 17

#: Target doubles per row block (~128 KiB per temporary buffer).
_BLOCK_DOUBLES = 1 << 14

#: Target doubles per blocked conv Gram buffer (~4 MiB).
_GRAM_BLOCK_DOUBLES = 1 << 19


def _row_block(m: int, d: int) -> int:
    """Rows per block for an ``(m, d)`` geometry kernel (``m`` = no blocking)."""
    if m * d <= _BLOCK_THRESHOLD:
        return m
    return max(1, _BLOCK_DOUBLES // max(1, d))


class FusedBackend(ReferenceBackend):
    """Optimized numpy kernels; always available; parity-gated vs reference."""

    name = "fused"
    accelerated = True

    # ------------------------------------------------------------- geometry
    def spherical_decompose(self, grads: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        m, d = grads.shape
        block = _row_block(m, d)
        if block >= m:
            return super().spherical_decompose(grads)
        magnitudes = np.empty(m)
        thetas = np.empty((m, d - 1))
        for start in range(0, m, block):
            stop = min(start + block, m)
            magnitudes[start:stop], thetas[start:stop] = super().spherical_decompose(
                grads[start:stop]
            )
        return magnitudes, thetas

    def spherical_compose(self, magnitudes: np.ndarray, thetas: np.ndarray) -> np.ndarray:
        m, d_minus_1 = thetas.shape
        block = _row_block(m, d_minus_1 + 1)
        if block >= m:
            return super().spherical_compose(magnitudes, thetas)
        g = np.empty((m, d_minus_1 + 1))
        for start in range(0, m, block):
            stop = min(start + block, m)
            g[start:stop] = super().spherical_compose(
                magnitudes[start:stop], thetas[start:stop]
            )
        return g

    def geodp_perturb(
        self, clipped: np.ndarray, mag_noise: np.ndarray, theta_noise: np.ndarray
    ) -> np.ndarray:
        m, d = clipped.shape
        block = _row_block(m, d)
        if block >= m:
            return super().geodp_perturb(clipped, mag_noise, theta_noise)
        out = np.empty((m, d))
        for start in range(0, m, block):
            stop = min(start + block, m)
            out[start:stop] = super().geodp_perturb(
                clipped[start:stop], mag_noise[start:stop], theta_noise[start:stop]
            )
        return out

    # ---------------------------------------------------------- ghost norms
    def conv_norm_sq(self, cols: np.ndarray, dy: np.ndarray, bias: bool) -> np.ndarray:
        batch = cols.shape[0]
        out_channels = dy.shape[1]
        k_dim, length = cols.shape[1], cols.shape[2]
        if length * length <= out_channels * k_dim:
            # Blocked Gram trick: per-block (block, L, L) intermediates via
            # batched BLAS matmul, freed before the next block.
            block = max(1, _GRAM_BLOCK_DOUBLES // max(1, length * length))
            norm_sq = np.empty(batch)
            for start in range(0, batch, block):
                stop = min(start + block, batch)
                c = cols[start:stop]
                e = dy[start:stop]
                ga = np.matmul(c.transpose(0, 2, 1), c)
                ge = np.matmul(e.transpose(0, 2, 1), e)
                ga *= ge
                norm_sq[start:stop] = ga.sum(axis=(1, 2))
        else:
            dw = np.matmul(dy, cols.transpose(0, 2, 1))  # (B, O, K) via BLAS
            norm_sq = np.einsum("bok,bok->b", dw, dw)
        if bias:
            db = dy.sum(axis=2)
            norm_sq = norm_sq + np.einsum("bo,bo->b", db, db)
        return norm_sq

    def embedding_norm_sq(self, tokens: np.ndarray, grad_out: np.ndarray) -> np.ndarray:
        # Batched BLAS Gram, masked in place (no float64 copy of the mask).
        gram = np.matmul(grad_out, grad_out.transpose(0, 2, 1))
        gram *= tokens[:, :, None] == tokens[:, None, :]
        return gram.sum(axis=(1, 2))

    # ------------------------------------------------- clipped accumulation
    def conv_clip_accumulate(
        self, cols: np.ndarray, dy: np.ndarray, factors: np.ndarray, bias: bool
    ) -> tuple[np.ndarray, np.ndarray | None]:
        scaled = dy * factors[:, None, None]
        # tensordot reshapes to one (O, B*L) @ (B*L, K) GEMM; einsum's
        # generic 3-index loop is an order of magnitude slower here.
        dw = np.tensordot(scaled, cols, axes=([0, 2], [0, 2]))
        db = scaled.sum(axis=(0, 2)) if bias else None
        return dw, db

    # ------------------------------------------------- sparse embedding path
    def embedding_sparse_grads(
        self,
        tokens: np.ndarray,
        grad_out: np.ndarray,
        valid: np.ndarray,
        vocab_size: int,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        batch, length = tokens.shape
        dim = grad_out.shape[-1]
        flat_valid = valid.ravel()
        sample_idx = np.repeat(np.arange(batch, dtype=np.int64), length)[flat_valid]
        flat_tokens = tokens.ravel()[flat_valid].astype(np.int64)
        flat_grads = grad_out.reshape(batch * length, dim)[flat_valid]
        keys = sample_idx * np.int64(vocab_size) + flat_tokens
        uniq, inverse = np.unique(keys, return_inverse=True)
        # bincount's contiguous accumulation loop beats np.add.at's fancy
        # indexing; one pass per (small) embedding dim.
        vals = np.empty((uniq.size, dim))
        for j in range(dim):
            vals[:, j] = np.bincount(
                inverse, weights=flat_grads[:, j], minlength=uniq.size
            )
        return uniq // vocab_size, uniq % vocab_size, vals

    def sparse_row_reduce(
        self,
        sample_ids: np.ndarray,
        rows: np.ndarray,
        vals: np.ndarray,
        factors: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        scaled = vals * factors[sample_ids][:, None]
        uniq_rows, inverse = np.unique(rows, return_inverse=True)
        out = np.empty((uniq_rows.size, vals.shape[1]))
        for j in range(vals.shape[1]):
            out[:, j] = np.bincount(
                inverse, weights=scaled[:, j], minlength=uniq_rows.size
            )
        return uniq_rows, out
