"""Optimized pure-numpy backend: cache-blocked geometry, BLAS-routed
ghost kernels, blocked conv Grams — all chunk-parallel.

Three ideas carry the speedups:

* **Row blocking** (geometry kernels): the spherical round trip streams
  ~10 distinct ``(m, d)`` temporaries; at benchmark sizes those fall out
  of cache between passes and every op runs at memory bandwidth.
  Processing the batch in row blocks sized to keep the whole working set
  cache-resident (~16k doubles per buffer) runs the *same* operations on
  hot data — measured ~1.6x on the GeoDP perturbation at ``(64, 5000)``,
  with bit-identical results because rows never interact.  (A trig-identity
  rewrite that avoids ``arctan2`` entirely was measured slower than this in
  pure numpy — it needs compiled code to pay off, which is exactly what the
  ``cext``/``numba`` backends do.)
* **BLAS routing**: the batched Gram/contract einsums of the ghost norms
  become ``matmul``/``tensordot`` calls, which dispatch to BLAS instead of
  einsum's generic loops.
* **Chunk parallelism**: the row blocks above double as the unit of
  thread scheduling (:mod:`repro.backend.threads`).  Chunk boundaries are
  derived from the input *shape* alone and partial reductions are summed
  in chunk-index order, so the thread count never changes a single output
  bit — only which thread computes which block.  Numpy's ufunc and BLAS
  inner loops release the GIL, so a plain ``ThreadPoolExecutor`` scales.

Temporaries and outputs come from the :mod:`repro.backend.workspace`
arena instead of fresh allocation, so the steady-state hot path allocates
(next to) nothing; the tier-1 lint forbids direct ``np.empty``/``np.zeros``
here.

Everything here must match :class:`~repro.backend.reference.ReferenceBackend`
to 1e-10 — enforced by ``tests/backend/test_parity.py``; the geometry
kernels match it bit-for-bit.
"""

from __future__ import annotations

import numpy as np

from repro.backend import workspace
from repro.backend.reference import ReferenceBackend
from repro.backend.threads import chunk_spans, run_chunks

__all__ = ["FusedBackend"]

#: Matrices with at most this many doubles stay unblocked: they already fit
#: in cache, and per-block numpy call overhead would dominate.
_BLOCK_THRESHOLD = 1 << 17

#: Target doubles per row block (~128 KiB per temporary buffer).
_BLOCK_DOUBLES = 1 << 14

#: Target doubles per blocked conv Gram / ghost-reduction buffer (~4 MiB).
_GRAM_BLOCK_DOUBLES = 1 << 19


def _row_block(m: int, d: int) -> int:
    """Rows per block for an ``(m, d)`` geometry kernel (``m`` = no blocking).

    Depends only on the shape — never on the thread count — so chunk
    boundaries (and therefore every output bit) are identical whether the
    chunks run serially or across the pool.
    """
    if m * d <= _BLOCK_THRESHOLD:
        return m
    return max(1, _BLOCK_DOUBLES // max(1, d))


def _batch_block(batch: int, per_row_doubles: int, target: int = _GRAM_BLOCK_DOUBLES) -> int:
    """Batch rows per block for a ghost kernel with the given per-row cost."""
    if batch * per_row_doubles <= _BLOCK_THRESHOLD:
        return batch
    return max(1, target // max(1, per_row_doubles))


class FusedBackend(ReferenceBackend):
    """Optimized numpy kernels; always available; parity-gated vs reference."""

    name = "fused"
    accelerated = True

    # ------------------------------------------------------------- geometry
    def spherical_decompose(self, grads: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        m, d = grads.shape
        block = _row_block(m, d)
        if block >= m:
            return super().spherical_decompose(grads)
        magnitudes = workspace.take(m)
        thetas = workspace.take((m, d - 1))

        def chunk(start, stop):
            magnitudes[start:stop], thetas[start:stop] = ReferenceBackend.spherical_decompose(
                self, grads[start:stop]
            )

        run_chunks(chunk, chunk_spans(m, block))
        return magnitudes, thetas

    def spherical_compose(self, magnitudes: np.ndarray, thetas: np.ndarray) -> np.ndarray:
        m, d_minus_1 = thetas.shape
        block = _row_block(m, d_minus_1 + 1)
        if block >= m:
            return super().spherical_compose(magnitudes, thetas)
        g = workspace.take((m, d_minus_1 + 1))

        def chunk(start, stop):
            g[start:stop] = ReferenceBackend.spherical_compose(
                self, magnitudes[start:stop], thetas[start:stop]
            )

        run_chunks(chunk, chunk_spans(m, block))
        return g

    def geodp_perturb(
        self, clipped: np.ndarray, mag_noise: np.ndarray, theta_noise: np.ndarray
    ) -> np.ndarray:
        m, d = clipped.shape
        block = _row_block(m, d)
        if block >= m:
            return super().geodp_perturb(clipped, mag_noise, theta_noise)
        out = workspace.take((m, d))

        def chunk(start, stop):
            out[start:stop] = ReferenceBackend.geodp_perturb(
                self,
                clipped[start:stop],
                mag_noise[start:stop],
                theta_noise[start:stop],
            )

        run_chunks(chunk, chunk_spans(m, block))
        return out

    def canonicalize_angles(self, thetas: np.ndarray) -> np.ndarray:
        m, d_minus_1 = thetas.shape
        block = _row_block(m, d_minus_1 + 1)
        if block >= m:
            return super().canonicalize_angles(thetas)
        out = workspace.take((m, d_minus_1))

        def chunk(start, stop):
            out[start:stop] = ReferenceBackend.canonicalize_angles(
                self, thetas[start:stop]
            )

        run_chunks(chunk, chunk_spans(m, block))
        return out

    # ---------------------------------------------------------- ghost norms
    def linear_norm_sq(
        self, x: np.ndarray, grad_out: np.ndarray, bias: bool
    ) -> np.ndarray:
        batch = x.shape[0]
        block = _batch_block(batch, x.shape[1] + grad_out.shape[1])
        if block >= batch:
            return super().linear_norm_sq(x, grad_out, bias)
        norm_sq = workspace.take(batch)

        def chunk(start, stop):
            norm_sq[start:stop] = ReferenceBackend.linear_norm_sq(
                self, x[start:stop], grad_out[start:stop], bias
            )

        run_chunks(chunk, chunk_spans(batch, block))
        return norm_sq

    def conv_norm_sq(self, cols: np.ndarray, dy: np.ndarray, bias: bool) -> np.ndarray:
        batch = cols.shape[0]
        out_channels = dy.shape[1]
        k_dim, length = cols.shape[1], cols.shape[2]
        if length * length <= out_channels * k_dim:
            # Blocked Gram trick: per-block (block, L, L) intermediates via
            # batched BLAS matmul, freed before the next block.  The blocks
            # are the thread-scheduling unit; each writes a disjoint slice.
            block = max(1, _GRAM_BLOCK_DOUBLES // max(1, length * length))
            norm_sq = workspace.take(batch)

            def chunk(start, stop):
                c = cols[start:stop]
                e = dy[start:stop]
                ga = np.matmul(c.transpose(0, 2, 1), c)
                ge = np.matmul(e.transpose(0, 2, 1), e)
                ga *= ge
                norm_sq[start:stop] = ga.sum(axis=(1, 2))

            run_chunks(chunk, chunk_spans(batch, block))
        else:
            dw = np.matmul(dy, cols.transpose(0, 2, 1))  # (B, O, K) via BLAS
            norm_sq = np.einsum("bok,bok->b", dw, dw)
        if bias:
            db = dy.sum(axis=2)
            norm_sq = norm_sq + np.einsum("bo,bo->b", db, db)
        return norm_sq

    def embedding_norm_sq(self, tokens: np.ndarray, grad_out: np.ndarray) -> np.ndarray:
        batch, length, dim = grad_out.shape
        block = _batch_block(batch, length * length + length * dim)
        if block >= batch:
            # Batched BLAS Gram, masked in place (no float64 copy of the mask).
            gram = np.matmul(grad_out, grad_out.transpose(0, 2, 1))
            gram *= tokens[:, :, None] == tokens[:, None, :]
            return gram.sum(axis=(1, 2))
        norm_sq = workspace.take(batch)

        def chunk(start, stop):
            gram = np.matmul(
                grad_out[start:stop], grad_out[start:stop].transpose(0, 2, 1)
            )
            gram *= tokens[start:stop, :, None] == tokens[start:stop, None, :]
            norm_sq[start:stop] = gram.sum(axis=(1, 2))

        run_chunks(chunk, chunk_spans(batch, block))
        return norm_sq

    # ------------------------------------------------- clipped accumulation
    # The accumulate kernels reduce over the batch, so parallel chunks
    # produce *partial* sums.  Chunk boundaries come from the shape and the
    # partials are summed in chunk-index order on the calling thread, so
    # the result is byte-identical for every thread count (including 1 —
    # a single chunk degenerates to the unchunked formulation).

    def linear_clip_accumulate(
        self, x: np.ndarray, grad_out: np.ndarray, factors: np.ndarray, bias: bool
    ) -> tuple[np.ndarray, np.ndarray | None]:
        batch = x.shape[0]
        block = _batch_block(batch, x.shape[1] + grad_out.shape[1])
        spans = chunk_spans(batch, block)
        if len(spans) <= 1:
            return super().linear_clip_accumulate(x, grad_out, factors, bias)
        partials: list = [None] * len(spans)

        def chunk(start, stop):
            partials[start // block] = ReferenceBackend.linear_clip_accumulate(
                self, x[start:stop], grad_out[start:stop], factors[start:stop], bias
            )

        run_chunks(chunk, spans)
        return _reduce_pairs(partials, bias)

    def conv_clip_accumulate(
        self, cols: np.ndarray, dy: np.ndarray, factors: np.ndarray, bias: bool
    ) -> tuple[np.ndarray, np.ndarray | None]:
        batch = cols.shape[0]
        k_dim, length = cols.shape[1], cols.shape[2]
        out_channels = dy.shape[1]
        block = _batch_block(batch, (k_dim + out_channels) * length)
        spans = chunk_spans(batch, block)
        if len(spans) <= 1:
            with workspace.scratch(dy.shape) as scaled:
                np.multiply(dy, factors[:, None, None], out=scaled)
                # tensordot reshapes to one (O, B*L) @ (B*L, K) GEMM; einsum's
                # generic 3-index loop is an order of magnitude slower here.
                dw = np.tensordot(scaled, cols, axes=([0, 2], [0, 2]))
                db = scaled.sum(axis=(0, 2)) if bias else None
            return dw, db
        partials: list = [None] * len(spans)

        def chunk(start, stop):
            with workspace.scratch((stop - start,) + dy.shape[1:]) as scaled:
                np.multiply(dy[start:stop], factors[start:stop, None, None], out=scaled)
                dw = np.tensordot(scaled, cols[start:stop], axes=([0, 2], [0, 2]))
                db = scaled.sum(axis=(0, 2)) if bias else None
            partials[start // block] = (dw, db)

        run_chunks(chunk, spans)
        return _reduce_pairs(partials, bias)

    # ------------------------------------------------- sparse embedding path
    def embedding_sparse_grads(
        self,
        tokens: np.ndarray,
        grad_out: np.ndarray,
        valid: np.ndarray,
        vocab_size: int,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        batch, length = tokens.shape
        dim = grad_out.shape[-1]
        flat_valid = valid.ravel()
        sample_idx = np.repeat(np.arange(batch, dtype=np.int64), length)[flat_valid]
        flat_tokens = tokens.ravel()[flat_valid].astype(np.int64)
        flat_grads = grad_out.reshape(batch * length, dim)[flat_valid]
        keys = sample_idx * np.int64(vocab_size) + flat_tokens
        uniq, inverse = np.unique(keys, return_inverse=True)
        # bincount's contiguous accumulation loop beats np.add.at's fancy
        # indexing; one pass per (small) embedding dim.
        vals = workspace.take((uniq.size, dim))
        for j in range(dim):
            vals[:, j] = np.bincount(
                inverse, weights=flat_grads[:, j], minlength=uniq.size
            )
        return uniq // vocab_size, uniq % vocab_size, vals

    def sparse_row_reduce(
        self,
        sample_ids: np.ndarray,
        rows: np.ndarray,
        vals: np.ndarray,
        factors: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        scaled = vals * factors[sample_ids][:, None]
        uniq_rows, inverse = np.unique(rows, return_inverse=True)
        out = workspace.take((uniq_rows.size, vals.shape[1]))
        for j in range(vals.shape[1]):
            out[:, j] = np.bincount(
                inverse, weights=scaled[:, j], minlength=uniq_rows.size
            )
        return uniq_rows, out


def _reduce_pairs(partials, bias: bool):
    """Sum ``(dw, db)`` chunk partials in chunk-index order, in place."""
    dw, db = partials[0]
    for part_dw, part_db in partials[1:]:
        dw += part_dw
        if bias:
            db += part_db
    return dw, (db if bias else None)
