"""Gradient checking utilities for layer authors.

Anyone extending :mod:`repro.nn` with a new layer can verify its backward
pass against central differences — the same checks this library's own test
suite uses, packaged as a public API::

    from repro.nn.gradcheck import check_layer
    report = check_layer(MyLayer(...), example_input)
    assert report.passed, report

"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.utils.rng import as_rng

__all__ = ["GradCheckReport", "numerical_gradient", "check_layer"]


def numerical_gradient(f, x, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of scalar function ``f`` at array ``x``."""
    x = np.asarray(x, dtype=np.float64)
    grad = np.zeros_like(x)
    flat = x.ravel()
    gflat = grad.ravel()
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        f_plus = f(x)
        flat[i] = orig - eps
        f_minus = f(x)
        flat[i] = orig
        gflat[i] = (f_plus - f_minus) / (2 * eps)
    return grad


@dataclass
class GradCheckReport:
    """Outcome of :func:`check_layer`."""

    passed: bool
    #: Maximum absolute error of the input gradient.
    input_error: float
    #: Maximum absolute error per parameter gradient.
    param_errors: dict[str, float] = field(default_factory=dict)
    #: Maximum per-sample-vs-summed inconsistency per parameter.
    per_sample_errors: dict[str, float] = field(default_factory=dict)
    #: Maximum error of one sample's gradient vs finite differences.
    per_sample_fd_errors: dict[str, float] = field(default_factory=dict)

    def __str__(self) -> str:
        lines = [f"GradCheck {'PASSED' if self.passed else 'FAILED'}"]
        lines.append(f"  input gradient max error: {self.input_error:.3e}")
        for name, err in self.param_errors.items():
            lines.append(f"  d/d{name} max error: {err:.3e}")
        for name, err in self.per_sample_errors.items():
            lines.append(f"  per-sample({name}) max inconsistency: {err:.3e}")
        for name, err in self.per_sample_fd_errors.items():
            lines.append(f"  per-sample-fd({name}) max error: {err:.3e}")
        return "\n".join(lines)


def check_layer(
    layer,
    x,
    *,
    atol: float = 1e-5,
    rng=None,
    check_per_sample: bool = True,
    train: bool = False,
) -> GradCheckReport:
    """Verify a layer's backward pass numerically.

    Checks (1) the input gradient against central differences of
    ``sum(forward(x) * R)`` for a random cotangent ``R``, (2) every
    parameter gradient the same way, (3) that per-sample parameter
    gradients sum to the batch gradients, and (4) that the *first sample's*
    per-sample gradient matches central differences of that sample's own
    contribution ``sum(forward(x)[0] * R[0])`` — the quantity DP-SGD clips.

    ``train`` selects the forward mode used for the numerical evaluations.
    The default ``False`` is right for layers whose train and eval paths
    agree; pass ``True`` for layers that differentiate through train-only
    statistics (e.g. ``BatchNorm2d``, whose train-mode gradient flows
    through the batch mean/var).  Train-mode checking requires the train
    forward to be deterministic, so it cannot be combined with active
    dropout.  Check (4) assumes sample outputs depend only on their own
    input (true for everything here except ``BatchNorm2d``, which refuses
    per-sample gradients anyway).

    The layer must follow the :class:`repro.nn.Layer` contract.  Stateless
    layers simply skip checks (2)-(4).
    """
    rng = as_rng(rng)
    x = np.asarray(x, dtype=np.float64)

    out = layer.forward(x, train=True)
    cotangent = rng.normal(size=out.shape)
    grad_in, grads = layer.backward(cotangent, per_sample=False)

    def scalar(x_):
        return float(np.sum(layer.forward(x_, train=train) * cotangent))

    input_error = float(
        np.abs(grad_in - numerical_gradient(scalar, x.copy())).max()
    )
    passed = input_error <= atol

    param_errors: dict[str, float] = {}
    for name, param in layer.params().items():
        original = param.copy()

        def param_scalar(p, _name=name, _orig=original):
            layer.set_param(_name, p)
            value = float(np.sum(layer.forward(x, train=train) * cotangent))
            layer.set_param(_name, _orig)
            return value

        num = numerical_gradient(param_scalar, original.copy())
        err = float(np.abs(grads[name] - num).max())
        param_errors[name] = err
        passed = passed and err <= atol

    per_sample_errors: dict[str, float] = {}
    per_sample_fd_errors: dict[str, float] = {}
    if check_per_sample and layer.params():
        layer.forward(x, train=True)
        _, per_sample = layer.backward(cotangent, per_sample=True)
        for name in grads:
            err = float(
                np.abs(per_sample[name].sum(axis=0) - grads[name]).max()
            )
            per_sample_errors[name] = err
            passed = passed and err <= max(atol, 1e-8)

        for name, param in layer.params().items():
            original = param.copy()

            def sample_scalar(p, _name=name, _orig=original):
                layer.set_param(_name, p)
                value = float(
                    np.sum(layer.forward(x, train=train)[0] * cotangent[0])
                )
                layer.set_param(_name, _orig)
                return value

            num = numerical_gradient(sample_scalar, original.copy())
            err = float(np.abs(per_sample[name][0] - num).max())
            per_sample_fd_errors[name] = err
            passed = passed and err <= atol

    return GradCheckReport(
        passed, input_error, param_errors, per_sample_errors, per_sample_fd_errors
    )
