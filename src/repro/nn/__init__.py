"""Minimal neural-network substrate with exact per-sample gradients.

DP-SGD (and therefore GeoDP-SGD) clips *per-sample* gradients, so unlike a
generic autodiff framework every layer here can return the gradient of each
sample's loss with respect to its parameters (the quantity Opacus computes
with hooks).  Layers are numpy-only; convolutions use im2col so per-sample
gradients reduce to einsums.
"""

from repro.nn.functional import (
    relu,
    softmax,
    log_softmax,
    one_hot,
    im2col,
    col2im,
    conv_output_shape,
)
from repro.nn.initializers import (
    zeros_init,
    normal_init,
    xavier_uniform,
    kaiming_uniform,
)
from repro.nn.layers import (
    Layer,
    Linear,
    ReLU,
    Flatten,
    Conv2d,
    MaxPool2d,
    AvgPool2d,
    GlobalAvgPool2d,
)
from repro.nn.normalization import GroupNorm, LayerNorm, BatchNorm2d
from repro.nn.activations import Tanh, Sigmoid, LeakyReLU, Softplus, Dropout
from repro.nn.residual import ResidualBlock
from repro.nn.embedding import Embedding, SequenceMean
from repro.nn.gradcheck import check_layer, GradCheckReport
from repro.nn.losses import Loss, SoftmaxCrossEntropy, MeanSquaredError
from repro.nn.model import Sequential

__all__ = [
    "relu",
    "softmax",
    "log_softmax",
    "one_hot",
    "im2col",
    "col2im",
    "conv_output_shape",
    "zeros_init",
    "normal_init",
    "xavier_uniform",
    "kaiming_uniform",
    "Layer",
    "Linear",
    "ReLU",
    "Flatten",
    "Conv2d",
    "MaxPool2d",
    "AvgPool2d",
    "GlobalAvgPool2d",
    "GroupNorm",
    "LayerNorm",
    "BatchNorm2d",
    "Tanh",
    "Sigmoid",
    "LeakyReLU",
    "Softplus",
    "Dropout",
    "ResidualBlock",
    "Embedding",
    "SequenceMean",
    "check_layer",
    "GradCheckReport",
    "Loss",
    "SoftmaxCrossEntropy",
    "MeanSquaredError",
    "Sequential",
]
