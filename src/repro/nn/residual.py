"""Residual block for the paper's ResNet (§VI-A).

Each block contains two 3x3 convolutions and one ReLU ("each one containing
2 convolutional layers and 1 rectified linear unit"), with an identity
shortcut — or a 1x1 projection convolution when the channel count or stride
changes.  A trailing ReLU follows the addition, as in the original ResNet.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Conv2d, Layer, ReLU

__all__ = ["ResidualBlock"]


class ResidualBlock(Layer):
    """``y = relu(conv2(relu(conv1(x))) + shortcut(x))``."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        *,
        stride: int = 1,
        rng=None,
    ):
        from repro.utils.rng import as_rng

        rng = as_rng(rng)
        self.conv1 = Conv2d(
            in_channels, out_channels, 3, stride=stride, padding=1, rng=rng
        )
        self.relu1 = ReLU()
        self.conv2 = Conv2d(out_channels, out_channels, 3, stride=1, padding=1, rng=rng)
        if stride != 1 or in_channels != out_channels:
            self.projection: Conv2d | None = Conv2d(
                in_channels, out_channels, 1, stride=stride, padding=0, rng=rng, bias=False
            )
        else:
            self.projection = None
        self.relu_out = ReLU()

    def forward(self, x: np.ndarray, train: bool = True) -> np.ndarray:
        main = self.conv2.forward(
            self.relu1.forward(self.conv1.forward(x, train), train), train
        )
        shortcut = self.projection.forward(x, train) if self.projection is not None else x
        return self.relu_out.forward(main + shortcut, train)

    def backward(self, grad_out, per_sample: bool = False):
        grad_sum, _ = self.relu_out.backward(grad_out, per_sample)
        # Main branch.
        grad, g2 = self.conv2.backward(grad_sum, per_sample)
        grad, _ = self.relu1.backward(grad, per_sample)
        grad_main, g1 = self.conv1.backward(grad, per_sample)
        # Shortcut branch.
        if self.projection is not None:
            grad_short, gp = self.projection.backward(grad_sum, per_sample)
        else:
            grad_short, gp = grad_sum, {}
        grads = {f"conv1.{k}": v for k, v in g1.items()}
        grads.update({f"conv2.{k}": v for k, v in g2.items()})
        grads.update({f"projection.{k}": v for k, v in gp.items()})
        return grad_main + grad_short, grads

    def backward_norm_sq(self, grad_out):
        # Compose the sub-layers' ghost contributions; the block's per-sample
        # gradient is the concatenation of its convolutions' gradients, so
        # the squared norms add.
        grad_sum, _ = self.relu_out.backward(grad_out, per_sample=False)
        grad, n2 = self.conv2.backward_norm_sq(grad_sum)
        grad, _ = self.relu1.backward(grad, per_sample=False)
        grad_main, n1 = self.conv1.backward_norm_sq(grad)
        if self.projection is not None:
            grad_short, n_proj = self.projection.backward_norm_sq(grad_sum)
        else:
            grad_short, n_proj = grad_sum, 0.0
        return grad_main + grad_short, n1 + n2 + n_proj

    def params(self) -> dict[str, np.ndarray]:
        out = {f"conv1.{k}": v for k, v in self.conv1.params().items()}
        out.update({f"conv2.{k}": v for k, v in self.conv2.params().items()})
        if self.projection is not None:
            out.update(
                {f"projection.{k}": v for k, v in self.projection.params().items()}
            )
        return out

    def set_param(self, name: str, value: np.ndarray) -> None:
        sub, _, rest = name.partition(".")
        layer = {"conv1": self.conv1, "conv2": self.conv2, "projection": self.projection}.get(sub)
        if layer is None or not rest:
            raise KeyError(f"ResidualBlock has no parameter {name!r}")
        layer.set_param(rest, value)

    def __repr__(self) -> str:
        proj = ", projection" if self.projection is not None else ""
        return (
            f"ResidualBlock({self.conv1.in_channels}->{self.conv1.out_channels}, "
            f"stride={self.conv1.stride}{proj})"
        )
