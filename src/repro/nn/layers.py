"""Layers with exact per-sample parameter gradients.

Contract
--------
``forward(x, train=True)`` caches whatever ``backward`` needs (when
``train``) and returns the output.  ``backward(grad_out, per_sample=False)``
returns ``(grad_in, param_grads)`` where ``param_grads`` maps parameter name
to either

* the gradient *summed over the batch* (shape = parameter shape), or
* with ``per_sample=True``, per-sample gradients with a leading batch axis.

Upstream gradients are gradients of the *sum of per-sample losses* (the
per-sample loss gradients stacked), so per-sample parameter gradients are
exactly the gradients Opacus computes before clipping.
"""

from __future__ import annotations

import numpy as np

from repro.backend import get_backend
from repro.nn import functional as F
from repro.nn.initializers import kaiming_uniform, zeros_init
from repro.utils.rng import as_rng

__all__ = [
    "Layer",
    "Linear",
    "ReLU",
    "Flatten",
    "Conv2d",
    "MaxPool2d",
    "AvgPool2d",
    "GlobalAvgPool2d",
]


def coerce_param(owner: str, name: str, value, expected_shape) -> np.ndarray:
    """Validate a replacement parameter strictly; never reshape silently.

    A transposed ``(dim, vocab)`` embedding table or a flattened weight has
    the right *size* but the wrong *shape*; loading it through ``reshape``
    corrupts training without a trace.  Shape mismatches are errors.
    """
    value = np.asarray(value, dtype=np.float64)
    if value.shape != tuple(expected_shape):
        raise ValueError(
            f"{owner}.{name} expects shape {tuple(expected_shape)}, "
            f"got {value.shape}"
        )
    return value


class Layer:
    """Base class; parameter-free layers only override forward/backward."""

    def forward(self, x: np.ndarray, train: bool = True) -> np.ndarray:
        raise NotImplementedError

    def backward(
        self, grad_out: np.ndarray, per_sample: bool = False
    ) -> tuple[np.ndarray, dict[str, np.ndarray]]:
        raise NotImplementedError

    def backward_norm_sq(self, grad_out: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Ghost-norm backward: ``(grad_in, per-sample param-grad norm² (B,))``.

        Returns the input gradient (same as :meth:`backward`) together with
        each sample's squared L2 norm of this layer's parameter gradient,
        computed — in the overriding parametric layers — from layer-local
        cached activations and ``grad_out`` without materializing the
        per-sample gradient arrays.  This generic implementation is the
        correct-for-anything fallback: parameter-free layers contribute
        zeros, and unspecialized parametric layers fall back to the
        materialized per-sample gradients.
        """
        if not self.params():
            grad_in, _ = self.backward(grad_out, per_sample=False)
            return grad_in, np.zeros(grad_out.shape[0])
        grad_in, grads = self.backward(grad_out, per_sample=True)
        batch = grad_out.shape[0]
        norm_sq = np.zeros(batch)
        for g in grads.values():
            flat = g.reshape(batch, -1)
            norm_sq += np.einsum("ij,ij->i", flat, flat)
        return grad_in, norm_sq

    def accumulate_clipped(
        self, grad_out: np.ndarray, factors: np.ndarray
    ) -> dict[str, np.ndarray]:
        """Ghost backward pass #2: clip-scaled summed parameter gradients.

        ``grad_out`` is this layer's *unscaled* upstream gradient cached
        during the norm pass; ``factors`` are the per-sample clip factors
        ``c_i``.  Because backward never mixes samples, scaling each
        sample's rows of ``grad_out`` by ``c_i`` and summing yields exactly
        ``sum_i c_i (dtheta_i)`` — without re-running the layer *chain*
        (the input gradient is never needed again).  This generic fallback
        scales and delegates to :meth:`backward`; the hot layers override
        it with backend kernels that skip the input-gradient work.
        """
        scaled = grad_out * factors.reshape(
            (grad_out.shape[0],) + (1,) * (grad_out.ndim - 1)
        )
        _, grads = self.backward(scaled, per_sample=False)
        return grads

    def params(self) -> dict[str, np.ndarray]:
        """Ordered mapping of parameter name to array (empty if none)."""
        return {}

    def set_param(self, name: str, value: np.ndarray) -> None:
        raise KeyError(f"{type(self).__name__} has no parameter {name!r}")

    @property
    def num_params(self) -> int:
        return sum(p.size for p in self.params().values())

    def __call__(self, x: np.ndarray, train: bool = True) -> np.ndarray:
        return self.forward(x, train=train)

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class Linear(Layer):
    """Fully connected layer ``y = x @ W + b`` with per-sample gradients."""

    def __init__(self, in_features: int, out_features: int, rng=None, *, bias: bool = True):
        if in_features < 1 or out_features < 1:
            raise ValueError("in_features and out_features must be >= 1")
        self.in_features = in_features
        self.out_features = out_features
        self.weight = kaiming_uniform((in_features, out_features), as_rng(rng))
        self.bias = zeros_init((out_features,)) if bias else None
        self._x: np.ndarray | None = None

    def forward(self, x: np.ndarray, train: bool = True) -> np.ndarray:
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ValueError(
                f"expected input (B, {self.in_features}), got {x.shape}"
            )
        if train:
            self._x = x
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out

    def backward(self, grad_out, per_sample: bool = False):
        if self._x is None:
            raise RuntimeError("backward called before forward(train=True)")
        x = self._x
        grad_in = grad_out @ self.weight.T
        if per_sample:
            grads = {"weight": np.einsum("bi,bo->bio", x, grad_out)}
            if self.bias is not None:
                grads["bias"] = grad_out
        else:
            grads = {"weight": x.T @ grad_out}
            if self.bias is not None:
                grads["bias"] = grad_out.sum(axis=0)
        return grad_in, grads

    def backward_norm_sq(self, grad_out):
        if self._x is None:
            raise RuntimeError("backward called before forward(train=True)")
        # Per-sample weight gradient is the outer product a_i e_i^T, so its
        # squared Frobenius norm factorizes: ||a_i||^2 * ||e_i||^2.  The bias
        # gradient is e_i itself.  No (B, in, out) array is ever formed.
        norm_sq = get_backend().linear_norm_sq(
            self._x, grad_out, self.bias is not None
        )
        return grad_out @ self.weight.T, norm_sq

    def accumulate_clipped(self, grad_out, factors):
        if self._x is None:
            raise RuntimeError("backward called before forward(train=True)")
        dw, db = get_backend().linear_clip_accumulate(
            self._x, grad_out, factors, self.bias is not None
        )
        grads = {"weight": dw}
        if db is not None:
            grads["bias"] = db
        return grads

    def params(self) -> dict[str, np.ndarray]:
        out = {"weight": self.weight}
        if self.bias is not None:
            out["bias"] = self.bias
        return out

    def set_param(self, name: str, value: np.ndarray) -> None:
        if name == "weight":
            self.weight = coerce_param("Linear", name, value, self.weight.shape)
        elif name == "bias" and self.bias is not None:
            self.bias = coerce_param("Linear", name, value, self.bias.shape)
        else:
            raise KeyError(f"Linear has no parameter {name!r}")

    def __repr__(self) -> str:
        return f"Linear({self.in_features}, {self.out_features})"


class ReLU(Layer):
    """Rectified linear activation."""

    def __init__(self):
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, train: bool = True) -> np.ndarray:
        if train:
            self._mask = x > 0
        return F.relu(x)

    def backward(self, grad_out, per_sample: bool = False):
        if self._mask is None:
            raise RuntimeError("backward called before forward(train=True)")
        return grad_out * self._mask, {}


class Flatten(Layer):
    """Flatten all axes after the batch axis."""

    def __init__(self):
        self._shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray, train: bool = True) -> np.ndarray:
        if train:
            self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_out, per_sample: bool = False):
        if self._shape is None:
            raise RuntimeError("backward called before forward(train=True)")
        return grad_out.reshape(self._shape), {}


class Conv2d(Layer):
    """2-D convolution via im2col with per-sample weight gradients.

    Weights have shape ``(out_channels, in_channels, kernel, kernel)``.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel: int,
        *,
        stride: int = 1,
        padding: int = 0,
        rng=None,
        bias: bool = True,
    ):
        if min(in_channels, out_channels, kernel, stride) < 1 or padding < 0:
            raise ValueError("invalid Conv2d geometry")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel = kernel
        self.stride = stride
        self.padding = padding
        self.weight = kaiming_uniform(
            (out_channels, in_channels, kernel, kernel), as_rng(rng)
        )
        self.bias = zeros_init((out_channels,)) if bias else None
        self._cols: np.ndarray | None = None
        self._x_shape: tuple[int, ...] | None = None
        self._out_hw: tuple[int, int] | None = None

    def forward(self, x: np.ndarray, train: bool = True) -> np.ndarray:
        if x.ndim != 4 or x.shape[1] != self.in_channels:
            raise ValueError(
                f"expected input (B, {self.in_channels}, H, W), got {x.shape}"
            )
        batch = x.shape[0]
        out_h, out_w = F.conv_output_shape(
            x.shape[2], x.shape[3], self.kernel, self.stride, self.padding
        )
        cols = F.im2col(x, self.kernel, self.stride, self.padding)
        w_flat = self.weight.reshape(self.out_channels, -1)
        out = np.einsum("ok,bkl->bol", w_flat, cols)
        if self.bias is not None:
            out = out + self.bias[None, :, None]
        if train:
            self._cols = cols
            self._x_shape = x.shape
            self._out_hw = (out_h, out_w)
        return out.reshape(batch, self.out_channels, out_h, out_w)

    def backward(self, grad_out, per_sample: bool = False):
        if self._cols is None:
            raise RuntimeError("backward called before forward(train=True)")
        batch = grad_out.shape[0]
        dy = grad_out.reshape(batch, self.out_channels, -1)  # (B, out_c, L)
        w_flat = self.weight.reshape(self.out_channels, -1)

        if per_sample:
            dw = np.einsum("bol,bkl->bok", dy, self._cols).reshape(
                batch, *self.weight.shape
            )
            grads = {"weight": dw}
            if self.bias is not None:
                grads["bias"] = dy.sum(axis=2)
        else:
            dw = np.einsum("bol,bkl->ok", dy, self._cols).reshape(self.weight.shape)
            grads = {"weight": dw}
            if self.bias is not None:
                grads["bias"] = dy.sum(axis=(0, 2))

        dcols = np.einsum("ok,bol->bkl", w_flat, dy)
        grad_in = F.col2im(dcols, self._x_shape, self.kernel, self.stride, self.padding)
        return grad_in, grads

    def backward_norm_sq(self, grad_out):
        if self._cols is None:
            raise RuntimeError("backward called before forward(train=True)")
        batch = grad_out.shape[0]
        dy = grad_out.reshape(batch, self.out_channels, -1)  # (B, O, L)
        # Ghost-norm Gram trick: ||E_i A_i^T||_F^2 = <A_i^T A_i, E_i^T E_i>_F
        # over the (L, L) spatial Grams when those are smaller than the
        # (B, O, K) per-sample gradients; the backend picks the crossover
        # (and may block the Grams over the batch for cache residency).
        norm_sq = get_backend().conv_norm_sq(self._cols, dy, self.bias is not None)
        w_flat = self.weight.reshape(self.out_channels, -1)
        dcols = np.einsum("ok,bol->bkl", w_flat, dy)
        grad_in = F.col2im(dcols, self._x_shape, self.kernel, self.stride, self.padding)
        return grad_in, norm_sq

    def accumulate_clipped(self, grad_out, factors):
        if self._cols is None:
            raise RuntimeError("backward called before forward(train=True)")
        batch = grad_out.shape[0]
        dy = grad_out.reshape(batch, self.out_channels, -1)
        dw, db = get_backend().conv_clip_accumulate(
            self._cols, dy, factors, self.bias is not None
        )
        grads = {"weight": dw.reshape(self.weight.shape)}
        if db is not None:
            grads["bias"] = db
        return grads

    def params(self) -> dict[str, np.ndarray]:
        out = {"weight": self.weight}
        if self.bias is not None:
            out["bias"] = self.bias
        return out

    def set_param(self, name: str, value: np.ndarray) -> None:
        if name == "weight":
            self.weight = coerce_param("Conv2d", name, value, self.weight.shape)
        elif name == "bias" and self.bias is not None:
            self.bias = coerce_param("Conv2d", name, value, self.bias.shape)
        else:
            raise KeyError(f"Conv2d has no parameter {name!r}")

    def __repr__(self) -> str:
        return (
            f"Conv2d({self.in_channels}, {self.out_channels}, kernel={self.kernel}, "
            f"stride={self.stride}, padding={self.padding})"
        )


class MaxPool2d(Layer):
    """Non-overlapping max pooling (kernel == stride); H, W must be divisible."""

    def __init__(self, kernel: int):
        if kernel < 1:
            raise ValueError(f"kernel must be >= 1, got {kernel}")
        self.kernel = kernel
        self._mask: np.ndarray | None = None
        self._x_shape: tuple[int, ...] | None = None

    def _window(self, x: np.ndarray) -> np.ndarray:
        batch, channels, height, width = x.shape
        k = self.kernel
        if height % k or width % k:
            raise ValueError(
                f"input {height}x{width} not divisible by pooling kernel {k}"
            )
        return x.reshape(batch, channels, height // k, k, width // k, k)

    def forward(self, x: np.ndarray, train: bool = True) -> np.ndarray:
        windows = self._window(x)
        out = windows.max(axis=(3, 5))
        if train:
            # Ties share the gradient equally (see backward); this is a valid
            # subgradient and keeps the adjoint linear.
            self._mask = windows == out[:, :, :, None, :, None]
            self._x_shape = x.shape
        return out

    def backward(self, grad_out, per_sample: bool = False):
        if self._mask is None:
            raise RuntimeError("backward called before forward(train=True)")
        counts = self._mask.sum(axis=(3, 5), keepdims=True)
        spread = (
            self._mask
            * grad_out[:, :, :, None, :, None]
            / np.maximum(counts, 1)
        )
        return spread.reshape(self._x_shape), {}

    def __repr__(self) -> str:
        return f"MaxPool2d(kernel={self.kernel})"


class AvgPool2d(Layer):
    """Non-overlapping average pooling (kernel == stride)."""

    def __init__(self, kernel: int):
        if kernel < 1:
            raise ValueError(f"kernel must be >= 1, got {kernel}")
        self.kernel = kernel
        self._x_shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray, train: bool = True) -> np.ndarray:
        batch, channels, height, width = x.shape
        k = self.kernel
        if height % k or width % k:
            raise ValueError(
                f"input {height}x{width} not divisible by pooling kernel {k}"
            )
        if train:
            self._x_shape = x.shape
        return x.reshape(batch, channels, height // k, k, width // k, k).mean(axis=(3, 5))

    def backward(self, grad_out, per_sample: bool = False):
        if self._x_shape is None:
            raise RuntimeError("backward called before forward(train=True)")
        k = self.kernel
        grad = np.repeat(np.repeat(grad_out, k, axis=2), k, axis=3) / (k * k)
        return grad.reshape(self._x_shape), {}

    def __repr__(self) -> str:
        return f"AvgPool2d(kernel={self.kernel})"


class GlobalAvgPool2d(Layer):
    """Average over all spatial positions: ``(B, C, H, W) -> (B, C)``."""

    def __init__(self):
        self._x_shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray, train: bool = True) -> np.ndarray:
        if x.ndim != 4:
            raise ValueError(f"expected (B, C, H, W), got {x.shape}")
        if train:
            self._x_shape = x.shape
        return x.mean(axis=(2, 3))

    def backward(self, grad_out, per_sample: bool = False):
        if self._x_shape is None:
            raise RuntimeError("backward called before forward(train=True)")
        _, _, height, width = self._x_shape
        grad = grad_out[:, :, None, None] / (height * width)
        return np.broadcast_to(grad, self._x_shape).copy(), {}
