"""Additional activation layers beyond ReLU.

All are element-wise and parameter-free, so their per-sample behaviour is
trivially correct (the backward just scales the upstream gradient).
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Layer

__all__ = ["Tanh", "Sigmoid", "LeakyReLU", "Softplus", "Dropout"]


class Tanh(Layer):
    """Hyperbolic tangent activation."""

    def __init__(self):
        self._out: np.ndarray | None = None

    def forward(self, x: np.ndarray, train: bool = True) -> np.ndarray:
        out = np.tanh(x)
        if train:
            self._out = out
        return out

    def backward(self, grad_out, per_sample: bool = False):
        if self._out is None:
            raise RuntimeError("backward called before forward(train=True)")
        return grad_out * (1.0 - self._out**2), {}


class Sigmoid(Layer):
    """Logistic sigmoid activation."""

    def __init__(self):
        self._out: np.ndarray | None = None

    def forward(self, x: np.ndarray, train: bool = True) -> np.ndarray:
        out = np.where(x >= 0, 1.0 / (1.0 + np.exp(-np.abs(x))),
                       np.exp(-np.abs(x)) / (1.0 + np.exp(-np.abs(x))))
        if train:
            self._out = out
        return out

    def backward(self, grad_out, per_sample: bool = False):
        if self._out is None:
            raise RuntimeError("backward called before forward(train=True)")
        return grad_out * self._out * (1.0 - self._out), {}


class LeakyReLU(Layer):
    """Leaky rectified linear unit with negative slope ``alpha``."""

    def __init__(self, alpha: float = 0.01):
        if alpha < 0:
            raise ValueError(f"alpha must be >= 0, got {alpha}")
        self.alpha = alpha
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, train: bool = True) -> np.ndarray:
        mask = x > 0
        if train:
            self._mask = mask
        return np.where(mask, x, self.alpha * x)

    def backward(self, grad_out, per_sample: bool = False):
        if self._mask is None:
            raise RuntimeError("backward called before forward(train=True)")
        return grad_out * np.where(self._mask, 1.0, self.alpha), {}

    def __repr__(self) -> str:
        return f"LeakyReLU(alpha={self.alpha})"


class Softplus(Layer):
    """Smooth ReLU: ``log(1 + e^x)``, numerically stable."""

    def __init__(self):
        self._x: np.ndarray | None = None

    def forward(self, x: np.ndarray, train: bool = True) -> np.ndarray:
        if train:
            self._x = x
        return np.logaddexp(0.0, x)

    def backward(self, grad_out, per_sample: bool = False):
        if self._x is None:
            raise RuntimeError("backward called before forward(train=True)")
        sig = 1.0 / (1.0 + np.exp(-self._x))
        return grad_out * sig, {}


class Dropout(Layer):
    """Inverted dropout; identity at inference time.

    Dropout masks are drawn per forward pass from a seeded generator, are
    sample-independent across the batch (each sample gets its own mask), and
    therefore keep per-sample gradients valid.
    """

    def __init__(self, rate: float = 0.5, rng=None):
        if not 0 <= rate < 1:
            raise ValueError(f"rate must be in [0, 1), got {rate}")
        self.rate = rate
        from repro.utils.rng import as_rng

        self._rng = as_rng(rng)
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, train: bool = True) -> np.ndarray:
        if not train or self.rate == 0.0:
            self._mask = np.ones_like(x) if train else None
            return x
        keep = 1.0 - self.rate
        self._mask = (self._rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, grad_out, per_sample: bool = False):
        if self._mask is None:
            raise RuntimeError("backward called before forward(train=True)")
        return grad_out * self._mask, {}

    def __repr__(self) -> str:
        return f"Dropout(rate={self.rate})"
