"""Weight initialisation schemes."""

from __future__ import annotations

import numpy as np

from repro.utils.rng import as_rng

__all__ = ["zeros_init", "normal_init", "xavier_uniform", "kaiming_uniform"]


def zeros_init(shape, rng=None) -> np.ndarray:
    """All-zero initialisation (biases)."""
    return np.zeros(shape)


def normal_init(shape, rng=None, *, std: float = 0.01) -> np.ndarray:
    """Gaussian initialisation with standard deviation ``std``."""
    return as_rng(rng).normal(0.0, std, size=shape)


def _fan_in_out(shape) -> tuple[int, int]:
    shape = tuple(shape)
    if len(shape) == 2:  # Linear: (in, out)
        return shape[0], shape[1]
    if len(shape) == 4:  # Conv: (out_c, in_c, kh, kw)
        receptive = shape[2] * shape[3]
        return shape[1] * receptive, shape[0] * receptive
    raise ValueError(f"unsupported weight shape {shape}")


def xavier_uniform(shape, rng=None) -> np.ndarray:
    """Glorot/Xavier uniform initialisation: U(-a, a), a = sqrt(6/(fan_in+fan_out))."""
    fan_in, fan_out = _fan_in_out(shape)
    a = np.sqrt(6.0 / (fan_in + fan_out))
    return as_rng(rng).uniform(-a, a, size=shape)


def kaiming_uniform(shape, rng=None) -> np.ndarray:
    """He/Kaiming uniform initialisation for ReLU networks: a = sqrt(6/fan_in)."""
    fan_in, _ = _fan_in_out(shape)
    a = np.sqrt(6.0 / fan_in)
    return as_rng(rng).uniform(-a, a, size=shape)
