"""Embedding and sequence-pooling layers.

Adds a text-classification modality to the substrate: integer token
sequences ``(B, L)`` are embedded to ``(B, L, D)`` and mean-pooled to
``(B, D)``.  Per-sample gradients for the embedding table are scatter-adds
of the upstream gradient over each sample's own token ids, so DP-SGD's
clipping applies exactly as for dense layers.

For embedding-scale tables the dense ``(B, vocab, dim)`` per-sample
scatter is the memory wall; :meth:`Embedding.backward_sparse` instead
returns the per-sample gradients in compacted sparse form — only the rows
each sample actually touched — which :mod:`repro.sparse` threads through
the full clip → noise → step pipeline.

With ``padding_idx`` set, padded positions contribute neither gradient
mass (their upstream gradients are zeroed before any scatter or norm) nor
mean mass (:class:`SequenceMean` divides by each sample's count of
non-padded positions instead of the full sequence length).
"""

from __future__ import annotations

import numpy as np

from repro.backend import get_backend
from repro.nn.layers import Layer, coerce_param
from repro.utils.rng import as_rng

__all__ = ["Embedding", "SequenceMean"]


class Embedding(Layer):
    """Token embedding table ``(vocab_size, dim)``."""

    def __init__(
        self,
        vocab_size: int,
        dim: int,
        rng=None,
        *,
        scale: float = 0.1,
        padding_idx: int | None = None,
    ):
        if vocab_size < 1 or dim < 1:
            raise ValueError("vocab_size and dim must be >= 1")
        if padding_idx is not None and not 0 <= padding_idx < vocab_size:
            raise ValueError(
                f"padding_idx must lie in [0, {vocab_size}), got {padding_idx}"
            )
        self.vocab_size = vocab_size
        self.dim = dim
        self.padding_idx = padding_idx
        self.weight = as_rng(rng).normal(0.0, scale, size=(vocab_size, dim))
        if padding_idx is not None:
            self.weight[padding_idx] = 0.0
        self._tokens: np.ndarray | None = None
        #: Pad mask of the most recent forward — ``(B, L)`` bool, True at
        #: padded positions; None when ``padding_idx`` is unset.  Refreshed
        #: on *every* forward (train and eval) so a downstream
        #: :class:`SequenceMean` always pools with the current batch's mask.
        self.last_pad_mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, train: bool = True) -> np.ndarray:
        tokens = np.asarray(x)
        if tokens.ndim != 2:
            raise ValueError(f"expected token matrix (B, L), got shape {tokens.shape}")
        if tokens.shape[1] == 0:
            # A zero-length sequence has no tokens to embed and would turn
            # the downstream mean-pool into 0/0; reject it loudly.  A
            # zero-sample batch (0, L) stays a well-defined no-op.
            raise ValueError(
                f"token matrix {tokens.shape} has zero sequence length"
            )
        if not np.issubdtype(tokens.dtype, np.integer):
            if not np.allclose(tokens, np.round(tokens)):
                raise ValueError("token ids must be integers")
            # Round, don't truncate: 2.999999 must map to token 3.
            tokens = np.round(tokens).astype(np.int64)
        if tokens.size and (tokens.min() < 0 or tokens.max() >= self.vocab_size):
            raise ValueError(f"token ids must lie in [0, {self.vocab_size})")
        self.last_pad_mask = (
            tokens == self.padding_idx if self.padding_idx is not None else None
        )
        if train:
            self._tokens = tokens
        return self.weight[tokens]

    def _masked_grad_out(self, grad_out: np.ndarray) -> np.ndarray:
        """Upstream gradient with padded positions zeroed (no-op without pad)."""
        if self.padding_idx is None or self._tokens is None:
            return grad_out
        pad = self._tokens == self.padding_idx
        if not pad.any():
            return grad_out
        return np.where(pad[:, :, None], 0.0, grad_out)

    def backward(self, grad_out, per_sample: bool = False):
        if self._tokens is None:
            raise RuntimeError("backward called before forward(train=True)")
        tokens = self._tokens
        batch, length = tokens.shape
        grad_out = self._masked_grad_out(grad_out)
        if per_sample:
            dw = np.zeros((batch, self.vocab_size, self.dim))
            # Scatter each sample's positional gradients onto its own rows.
            batch_idx = np.repeat(np.arange(batch), length)
            np.add.at(
                dw,
                (batch_idx, tokens.ravel()),
                np.ascontiguousarray(grad_out).reshape(batch * length, self.dim),
            )
            grads = {"weight": dw}
        else:
            dw = np.zeros((self.vocab_size, self.dim))
            np.add.at(
                dw,
                tokens.ravel(),
                np.ascontiguousarray(grad_out).reshape(-1, self.dim),
            )
            grads = {"weight": dw}
        # Token inputs are not differentiable; propagate zeros of input shape.
        return np.zeros(tokens.shape), grads

    def backward_norm_sq(self, grad_out):
        if self._tokens is None:
            raise RuntimeError("backward called before forward(train=True)")
        tokens = self._tokens
        # The per-sample gradient scatters position gradients onto token
        # rows, so ||dw_i||^2 = sum_{l,m} [t_l == t_m] <g_l, g_m>: the (L, L)
        # positional Gram masked by token equality.  Repeated tokens are what
        # makes this differ from a plain sum of ||g_l||^2.  O(B L^2 D)
        # instead of the (B, vocab, dim) scatter target.
        norm_sq = get_backend().embedding_norm_sq(
            tokens, self._masked_grad_out(grad_out)
        )
        return np.zeros(tokens.shape), norm_sq

    def accumulate_clipped(self, grad_out, factors):
        if self._tokens is None:
            raise RuntimeError("backward called before forward(train=True)")
        dw = get_backend().embedding_clip_accumulate(
            self._tokens, self._masked_grad_out(grad_out), factors, self.vocab_size
        )
        return {"weight": dw}

    def backward_sparse(self, grad_out):
        """Per-sample gradients in compacted sparse row form.

        Returns a :class:`repro.sparse.SparseBatchGrads` holding, for every
        ``(sample, row)`` pair a sample actually touched, the summed
        positional gradient for that row — never the ``(B, vocab, dim)``
        dense scatter.  Padded positions are excluded.  Per-sample norms
        computed from these values are *exact* (equal to the dense
        per-sample gradient norms): compaction sums, it never drops.
        """
        if self._tokens is None:
            raise RuntimeError("backward called before forward(train=True)")
        from repro.sparse.grads import SparseBatchGrads

        tokens = self._tokens
        valid = (
            tokens != self.padding_idx
            if self.padding_idx is not None
            else np.ones(tokens.shape, dtype=bool)
        )
        sample_ids, rows, vals = get_backend().embedding_sparse_grads(
            tokens, np.ascontiguousarray(grad_out), valid, self.vocab_size
        )
        return SparseBatchGrads(
            batch_size=tokens.shape[0],
            dim=self.dim,
            sample_ids=sample_ids,
            rows=rows,
            vals=vals,
        )

    def params(self) -> dict[str, np.ndarray]:
        return {"weight": self.weight}

    def set_param(self, name: str, value: np.ndarray) -> None:
        if name != "weight":
            raise KeyError(f"Embedding has no parameter {name!r}")
        self.weight = coerce_param("Embedding", name, value, self.weight.shape)

    def __repr__(self) -> str:
        pad = f", padding_idx={self.padding_idx}" if self.padding_idx is not None else ""
        return f"Embedding(vocab={self.vocab_size}, dim={self.dim}{pad})"


class SequenceMean(Layer):
    """Mean over the sequence axis: ``(B, L, D) -> (B, D)``.

    When constructed with a ``mask_source`` :class:`Embedding` whose
    ``padding_idx`` is set, padded positions are excluded from the mean:
    each sample is pooled as ``sum(valid positions) / count(valid
    positions)`` — an all-padding sample pools to zeros.  Without a mask
    the layer divides by the full sequence length as before.
    """

    def __init__(self, mask_source: Embedding | None = None):
        self.mask_source = mask_source
        self._shape: tuple[int, ...] | None = None
        self._valid: np.ndarray | None = None
        self._counts: np.ndarray | None = None

    def _current_mask(self, x: np.ndarray) -> np.ndarray | None:
        if self.mask_source is None:
            return None
        pad = self.mask_source.last_pad_mask
        if pad is None:
            return None
        if pad.shape != x.shape[:2]:
            raise RuntimeError(
                f"pad mask shape {pad.shape} does not match input {x.shape[:2]}; "
                "SequenceMean must pool the mask source's own output"
            )
        return ~pad

    def forward(self, x: np.ndarray, train: bool = True) -> np.ndarray:
        if x.ndim != 3:
            raise ValueError(f"expected (B, L, D), got shape {x.shape}")
        if x.shape[1] == 0:
            raise ValueError("cannot mean-pool a zero-length sequence axis")
        valid = self._current_mask(x)
        if valid is None:
            if train:
                self._shape, self._valid, self._counts = x.shape, None, None
            return x.mean(axis=1)
        # Clamp to 1 so an all-padding sample divides 0 by 1, pooling to 0.
        counts = np.maximum(valid.sum(axis=1), 1).astype(np.float64)
        if train:
            self._shape, self._valid, self._counts = x.shape, valid, counts
        return (x * valid[:, :, None]).sum(axis=1) / counts[:, None]

    def backward(self, grad_out, per_sample: bool = False):
        if self._shape is None:
            raise RuntimeError("backward called before forward(train=True)")
        if self._valid is None:
            _, length, _ = self._shape
            # Broadcast view, not np.repeat: bit-identical values (each
            # element is grad_out[b, d] / length either way) at 1/L the
            # memory.  Read-only, but every consumer only reads it.
            grad = np.broadcast_to((grad_out / length)[:, None, :], self._shape)
            return grad, {}
        grad = (grad_out / self._counts[:, None])[:, None, :] * (
            self._valid[:, :, None]
        )
        return grad, {}
