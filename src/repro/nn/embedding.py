"""Embedding and sequence-pooling layers.

Adds a text-classification modality to the substrate: integer token
sequences ``(B, L)`` are embedded to ``(B, L, D)`` and mean-pooled to
``(B, D)``.  Per-sample gradients for the embedding table are scatter-adds
of the upstream gradient over each sample's own token ids, so DP-SGD's
clipping applies exactly as for dense layers.
"""

from __future__ import annotations

import numpy as np

from repro.backend import get_backend
from repro.nn.layers import Layer
from repro.utils.rng import as_rng

__all__ = ["Embedding", "SequenceMean"]


class Embedding(Layer):
    """Token embedding table ``(vocab_size, dim)``."""

    def __init__(self, vocab_size: int, dim: int, rng=None, *, scale: float = 0.1):
        if vocab_size < 1 or dim < 1:
            raise ValueError("vocab_size and dim must be >= 1")
        self.vocab_size = vocab_size
        self.dim = dim
        self.weight = as_rng(rng).normal(0.0, scale, size=(vocab_size, dim))
        self._tokens: np.ndarray | None = None

    def forward(self, x: np.ndarray, train: bool = True) -> np.ndarray:
        tokens = np.asarray(x)
        if tokens.ndim != 2:
            raise ValueError(f"expected token matrix (B, L), got shape {tokens.shape}")
        if not np.issubdtype(tokens.dtype, np.integer):
            if not np.allclose(tokens, np.round(tokens)):
                raise ValueError("token ids must be integers")
            # Round, don't truncate: 2.999999 must map to token 3.
            tokens = np.round(tokens).astype(np.int64)
        if tokens.min(initial=0) < 0 or tokens.max(initial=0) >= self.vocab_size:
            raise ValueError(f"token ids must lie in [0, {self.vocab_size})")
        if train:
            self._tokens = tokens
        return self.weight[tokens]

    def backward(self, grad_out, per_sample: bool = False):
        if self._tokens is None:
            raise RuntimeError("backward called before forward(train=True)")
        tokens = self._tokens
        batch, length = tokens.shape
        if per_sample:
            dw = np.zeros((batch, self.vocab_size, self.dim))
            # Scatter each sample's positional gradients onto its own rows.
            batch_idx = np.repeat(np.arange(batch), length)
            np.add.at(
                dw,
                (batch_idx, tokens.ravel()),
                grad_out.reshape(batch * length, self.dim),
            )
            grads = {"weight": dw}
        else:
            dw = np.zeros((self.vocab_size, self.dim))
            np.add.at(dw, tokens.ravel(), grad_out.reshape(-1, self.dim))
            grads = {"weight": dw}
        # Token inputs are not differentiable; propagate zeros of input shape.
        return np.zeros(tokens.shape), grads

    def backward_norm_sq(self, grad_out):
        if self._tokens is None:
            raise RuntimeError("backward called before forward(train=True)")
        tokens = self._tokens
        # The per-sample gradient scatters position gradients onto token
        # rows, so ||dw_i||^2 = sum_{l,m} [t_l == t_m] <g_l, g_m>: the (L, L)
        # positional Gram masked by token equality.  Repeated tokens are what
        # makes this differ from a plain sum of ||g_l||^2.  O(B L^2 D)
        # instead of the (B, vocab, dim) scatter target.
        norm_sq = get_backend().embedding_norm_sq(tokens, grad_out)
        return np.zeros(tokens.shape), norm_sq

    def accumulate_clipped(self, grad_out, factors):
        if self._tokens is None:
            raise RuntimeError("backward called before forward(train=True)")
        dw = get_backend().embedding_clip_accumulate(
            self._tokens, grad_out, factors, self.vocab_size
        )
        return {"weight": dw}

    def params(self) -> dict[str, np.ndarray]:
        return {"weight": self.weight}

    def set_param(self, name: str, value: np.ndarray) -> None:
        if name != "weight":
            raise KeyError(f"Embedding has no parameter {name!r}")
        self.weight = value.reshape(self.weight.shape)

    def __repr__(self) -> str:
        return f"Embedding(vocab={self.vocab_size}, dim={self.dim})"


class SequenceMean(Layer):
    """Mean over the sequence axis: ``(B, L, D) -> (B, D)``."""

    def __init__(self):
        self._shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray, train: bool = True) -> np.ndarray:
        if x.ndim != 3:
            raise ValueError(f"expected (B, L, D), got shape {x.shape}")
        if train:
            self._shape = x.shape
        return x.mean(axis=1)

    def backward(self, grad_out, per_sample: bool = False):
        if self._shape is None:
            raise RuntimeError("backward called before forward(train=True)")
        _, length, _ = self._shape
        grad = np.repeat(grad_out[:, None, :], length, axis=1) / length
        return grad, {}
