"""Stateless tensor operations used by the layers.

``im2col``/``col2im`` implement the patch-extraction view that turns 2-D
convolution into matrix multiplication; per-sample convolution gradients are
then plain einsums over the column tensor.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "relu",
    "softmax",
    "log_softmax",
    "one_hot",
    "conv_output_shape",
    "im2col",
    "col2im",
]


def relu(x) -> np.ndarray:
    """Element-wise rectified linear unit."""
    return np.maximum(np.asarray(x), 0.0)


def softmax(logits, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax along ``axis``."""
    logits = np.asarray(logits, dtype=np.float64)
    shifted = logits - np.max(logits, axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / np.sum(exp, axis=axis, keepdims=True)


def log_softmax(logits, axis: int = -1) -> np.ndarray:
    """Numerically stable log-softmax along ``axis``."""
    logits = np.asarray(logits, dtype=np.float64)
    shifted = logits - np.max(logits, axis=axis, keepdims=True)
    return shifted - np.log(np.sum(np.exp(shifted), axis=axis, keepdims=True))


def one_hot(labels, num_classes: int) -> np.ndarray:
    """One-hot encode integer ``labels`` into ``(B, num_classes)``."""
    labels = np.asarray(labels, dtype=np.int64)
    if labels.ndim != 1:
        raise ValueError(f"labels must be 1-D, got shape {labels.shape}")
    if labels.min(initial=0) < 0 or labels.max(initial=0) >= num_classes:
        raise ValueError(
            f"labels must lie in [0, {num_classes}), got range "
            f"[{labels.min()}, {labels.max()}]"
        )
    out = np.zeros((labels.shape[0], num_classes))
    out[np.arange(labels.shape[0]), labels] = 1.0
    return out


def conv_output_shape(
    height: int, width: int, kernel: int, stride: int, padding: int
) -> tuple[int, int]:
    """Spatial output shape of a convolution/pooling window."""
    out_h = (height + 2 * padding - kernel) // stride + 1
    out_w = (width + 2 * padding - kernel) // stride + 1
    if out_h <= 0 or out_w <= 0:
        raise ValueError(
            f"kernel={kernel}, stride={stride}, padding={padding} produce "
            f"empty output for input {height}x{width}"
        )
    return out_h, out_w


def im2col(x, kernel: int, stride: int = 1, padding: int = 0) -> np.ndarray:
    """Extract sliding patches from ``x`` of shape ``(B, C, H, W)``.

    Returns a column tensor of shape ``(B, C*kernel*kernel, L)`` where
    ``L = out_h * out_w``, so that a convolution with flattened weights
    ``W_flat (out_c, C*k*k)`` becomes ``einsum('ok,bkl->bol')``.
    """
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 4:
        raise ValueError(f"x must be (B, C, H, W), got shape {x.shape}")
    batch, channels, height, width = x.shape
    out_h, out_w = conv_output_shape(height, width, kernel, stride, padding)

    if padding:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))

    s0, s1, s2, s3 = x.strides
    windows = np.lib.stride_tricks.as_strided(
        x,
        shape=(batch, channels, kernel, kernel, out_h, out_w),
        strides=(s0, s1, s2, s3, s2 * stride, s3 * stride),
        writeable=False,
    )
    return np.ascontiguousarray(windows).reshape(
        batch, channels * kernel * kernel, out_h * out_w
    )


def col2im(
    cols,
    x_shape: tuple[int, int, int, int],
    kernel: int,
    stride: int = 1,
    padding: int = 0,
) -> np.ndarray:
    """Adjoint of :func:`im2col`: scatter-add columns back into an image tensor.

    ``cols`` has shape ``(B, C*kernel*kernel, L)``; the result has
    ``x_shape = (B, C, H, W)``.  Overlapping patches accumulate, which is
    exactly the gradient of patch extraction.
    """
    batch, channels, height, width = x_shape
    out_h, out_w = conv_output_shape(height, width, kernel, stride, padding)
    cols = np.asarray(cols, dtype=np.float64).reshape(
        batch, channels, kernel, kernel, out_h, out_w
    )

    padded = np.zeros((batch, channels, height + 2 * padding, width + 2 * padding))
    for i in range(kernel):
        for j in range(kernel):
            padded[
                :, :, i : i + stride * out_h : stride, j : j + stride * out_w : stride
            ] += cols[:, :, i, j]
    if padding:
        return padded[:, :, padding : padding + height, padding : padding + width]
    return padded
