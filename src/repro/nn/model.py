"""Sequential model with flattened-parameter and per-sample-gradient APIs.

The optimizers in :mod:`repro.core` operate on flat parameter vectors and
flat gradient (matrices); :class:`Sequential` provides the bridge:

* ``get_params()`` / ``set_params(flat)`` — the full parameter vector
  ``w`` in a fixed deterministic order.
* ``loss_and_gradient(x, y)`` — batch-mean loss and mean gradient ``(P,)``
  (non-private SGD path).
* ``loss_and_per_sample_gradients(x, y)`` — per-sample losses ``(B,)`` and
  the per-sample gradient matrix ``(B, P)`` (the DP-SGD/GeoDP path: each row
  is ``grad l(w; s_j)`` of Eq. 4, before clipping).
* ``loss_and_clipped_grad_sum(x, y, clipping)`` — the ghost-clipping fast
  path: per-sample losses plus the clipped gradient *sum* ``sum_i c_i g_i``
  computed with two backward passes and O(P) gradient memory, never forming
  the ``(B, P)`` matrix (see :doc:`/docs/performance`).
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Layer
from repro.nn.losses import Loss, SoftmaxCrossEntropy

__all__ = ["Sequential"]


class Sequential:
    """A chain of layers plus a per-sample loss."""

    def __init__(self, layers: list[Layer], loss: Loss | None = None):
        if not layers:
            raise ValueError("Sequential requires at least one layer")
        self.layers = list(layers)
        self.loss = loss if loss is not None else SoftmaxCrossEntropy()
        # Fixed parameter ordering: (layer_index, param_name, shape, size).
        self._index: list[tuple[int, str, tuple[int, ...], int]] = []
        for i, layer in enumerate(self.layers):
            for name, value in layer.params().items():
                self._index.append((i, name, value.shape, value.size))

    # ------------------------------------------------------------------ params
    @property
    def num_params(self) -> int:
        """Total number of scalar parameters ``P``."""
        return sum(size for *_, size in self._index)

    def param_slices(self) -> list[tuple[str, slice]]:
        """``(name, slice)`` of every parameter block in the flat vector.

        Names are ``layer{i}.{param}``; used by per-layer clipping and any
        tool that needs to address parts of the flat parameter vector.
        """
        out = []
        offset = 0
        for i, name, _, size in self._index:
            out.append((f"layer{i}.{name}", slice(offset, offset + size)))
            offset += size
        return out

    def layer_slices(self) -> list[tuple[int, slice]]:
        """``(layer_index, slice)`` covering each layer's full block."""
        out: list[tuple[int, slice]] = []
        offset = 0
        current_layer = None
        start = 0
        for i, _, _, size in self._index:
            if current_layer is None:
                current_layer, start = i, offset
            elif i != current_layer:
                out.append((current_layer, slice(start, offset)))
                current_layer, start = i, offset
            offset += size
        if current_layer is not None:
            out.append((current_layer, slice(start, offset)))
        return out

    def get_params(self) -> np.ndarray:
        """Concatenate all parameters into one flat vector ``(P,)``."""
        if not self._index:
            return np.zeros(0)
        chunks = []
        for i, name, _, _ in self._index:
            chunks.append(self.layers[i].params()[name].ravel())
        return np.concatenate(chunks)

    def set_params(self, flat: np.ndarray) -> None:
        """Write a flat vector ``(P,)`` back into the layers."""
        flat = np.asarray(flat, dtype=np.float64)
        if flat.shape != (self.num_params,):
            raise ValueError(
                f"expected flat params of shape ({self.num_params},), got {flat.shape}"
            )
        offset = 0
        for i, name, shape, size in self._index:
            self.layers[i].set_param(name, flat[offset : offset + size].reshape(shape))
            offset += size

    # ----------------------------------------------------------------- forward
    def forward(self, x: np.ndarray, train: bool = True) -> np.ndarray:
        """Run the layer chain; caches intermediates when ``train``."""
        for layer in self.layers:
            x = layer.forward(x, train=train)
        return x

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Hard class predictions (no caching)."""
        logits = self.forward(x, train=False)
        return np.argmax(logits, axis=1)

    def accuracy(self, x: np.ndarray, y) -> float:
        """Classification accuracy on ``(x, y)``."""
        return float(np.mean(self.predict(x) == np.asarray(y)))

    def mean_loss(self, x: np.ndarray, y) -> float:
        """Batch-mean loss without touching gradients or caches."""
        return self.loss.mean(self.forward(x, train=False), y)

    # ---------------------------------------------------------------- backward
    def _backward(self, grad: np.ndarray, per_sample: bool) -> list[dict[str, np.ndarray]]:
        per_layer: list[dict[str, np.ndarray]] = [None] * len(self.layers)  # type: ignore
        for i in reversed(range(len(self.layers))):
            grad, grads = self.layers[i].backward(grad, per_sample=per_sample)
            per_layer[i] = grads
        return per_layer

    def _flatten_grads(
        self, per_layer: list[dict[str, np.ndarray]], batch: int | None
    ) -> np.ndarray:
        chunks = []
        for i, name, _, size in self._index:
            g = per_layer[i][name]
            if batch is None:
                chunks.append(g.reshape(size))
            else:
                chunks.append(g.reshape(batch, size))
        axis = 0 if batch is None else 1
        return np.concatenate(chunks, axis=axis)

    def loss_and_gradient(self, x: np.ndarray, y) -> tuple[float, np.ndarray]:
        """Batch-mean loss and its flat gradient ``(P,)`` (non-private path)."""
        outputs = self.forward(x, train=True)
        losses = self.loss.per_sample(outputs, y)
        grad_out = self.loss.gradient(outputs, y)
        per_layer = self._backward(grad_out, per_sample=False)
        flat = self._flatten_grads(per_layer, batch=None) / x.shape[0]
        return float(np.mean(losses)), flat

    def loss_and_per_sample_gradients(
        self, x: np.ndarray, y
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-sample losses ``(B,)`` and per-sample flat gradients ``(B, P)``."""
        outputs = self.forward(x, train=True)
        losses = self.loss.per_sample(outputs, y)
        grad_out = self.loss.gradient(outputs, y)
        per_layer = self._backward(grad_out, per_sample=True)
        return losses, self._flatten_grads(per_layer, batch=x.shape[0])

    def per_sample_grad_norms(self, grad_out: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Ghost backward pass #1: pre-clip per-sample gradient L2 norms.

        Runs the layer chain's :meth:`~repro.nn.layers.Layer.backward_norm_sq`
        hooks on the (already cached) forward activations, accumulating each
        layer's squared-norm contribution.  Returns ``(norms (B,),
        grad_out)`` so callers can reuse the loss-output gradient for the
        second, scaled backward pass.
        """
        norm_sq = np.zeros(grad_out.shape[0])
        grad = grad_out
        for i in reversed(range(len(self.layers))):
            grad, layer_norm_sq = self.layers[i].backward_norm_sq(grad)
            norm_sq += layer_norm_sq
        return np.sqrt(norm_sq), grad_out

    def loss_and_clipped_grad_sum(
        self, x: np.ndarray, y, clipping
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Ghost-clipping fast path: clipped gradient sum without ``(B, P)``.

        Backward pass #1 accumulates per-sample gradient norms from
        layer-local "ghost" quantities while caching each parametric
        layer's (unscaled) upstream gradient; ``clipping`` maps the norms
        to per-sample factors ``c_i`` (:meth:`~repro.privacy.clipping.
        ClippingStrategy.clip_factors`, which also feeds adaptive-threshold
        state); pass #2 then calls every parametric layer's
        :meth:`~repro.nn.layers.Layer.accumulate_clipped` on its cached
        upstream gradient — summed parameter gradients only, *no* second
        trip through the layer chain.  Because backward never mixes
        samples, scaling sample ``i``'s upstream rows by ``c_i`` commutes
        with the (per-sample linear) backward map, so the result equals
        ``sum_i c_i g_i`` exactly — within floating-point tolerance of the
        materialized path.  (Samples never mixing is also why BatchNorm
        models are rejected here just as they are on the per-sample path.)

        Returns ``(per-sample losses (B,), clipped sum (P,), pre-clip
        norms (B,))``.  Raises
        :class:`~repro.privacy.clipping.GhostClippingUnsupportedError` for
        strategies that need the full matrix (e.g. per-layer clipping).
        """
        if len(x) == 0:
            # Empty Poisson batch: nothing to clip; mirror the optimizers'
            # materialized-path handling (zero sum, no strategy observation).
            return np.zeros(0), np.zeros(self.num_params), np.zeros(0)
        outputs = self.forward(x, train=True)
        losses = self.loss.per_sample(outputs, y)
        grad_out = self.loss.gradient(outputs, y)

        # Pass #1: norms, caching each parametric layer's upstream gradient.
        norm_sq = np.zeros(grad_out.shape[0])
        upstream: list[np.ndarray | None] = [None] * len(self.layers)
        grad = grad_out
        for i in reversed(range(len(self.layers))):
            layer = self.layers[i]
            if layer.params():
                upstream[i] = grad
            grad, layer_norm_sq = layer.backward_norm_sq(grad)
            norm_sq += layer_norm_sq
        norms = np.sqrt(norm_sq)

        factors = np.asarray(clipping.clip_factors(norms), dtype=np.float64)

        # Pass #2: per-layer clipped accumulation from the cached upstream
        # gradients — the chain (input gradients, col2im, ...) is not
        # recomputed, which is what makes ghost match materialize on speed.
        per_layer: list[dict[str, np.ndarray]] = [
            self.layers[i].accumulate_clipped(upstream[i], factors)
            if upstream[i] is not None
            else {}
            for i in range(len(self.layers))
        ]
        return losses, self._flatten_grads(per_layer, batch=None), norms

    def __repr__(self) -> str:
        inner = ", ".join(repr(layer) for layer in self.layers)
        return f"Sequential([{inner}], params={self.num_params})"
