"""Per-sample loss functions.

Losses return the vector of per-sample losses and the gradient of *each
sample's own loss* with respect to the network output (i.e. the stacked
per-sample gradients, not the batch mean).  This matches the paper's Eq. 4:
``g_t = (1/B) * sum_j grad l(w; s_j)`` — the ``1/B`` averaging is applied at
aggregation time by the optimizers, after per-sample clipping.
"""

from __future__ import annotations

import numpy as np

from repro.nn import functional as F

__all__ = ["Loss", "SoftmaxCrossEntropy", "MeanSquaredError"]


class Loss:
    """Interface for per-sample losses."""

    def per_sample(self, outputs: np.ndarray, targets) -> np.ndarray:
        """Vector of per-sample losses, shape ``(B,)``."""
        raise NotImplementedError

    def gradient(self, outputs: np.ndarray, targets) -> np.ndarray:
        """Gradient of each sample's loss w.r.t. ``outputs``, shape like ``outputs``."""
        raise NotImplementedError

    def mean(self, outputs: np.ndarray, targets) -> float:
        """Convenience: batch-mean loss."""
        return float(np.mean(self.per_sample(outputs, targets)))


class SoftmaxCrossEntropy(Loss):
    """Softmax + negative log-likelihood over integer class labels."""

    def per_sample(self, outputs, targets) -> np.ndarray:
        logp = F.log_softmax(outputs, axis=1)
        targets = np.asarray(targets, dtype=np.int64)
        return -logp[np.arange(outputs.shape[0]), targets]

    def gradient(self, outputs, targets) -> np.ndarray:
        probs = F.softmax(outputs, axis=1)
        return probs - F.one_hot(targets, outputs.shape[1])

    def predict(self, outputs) -> np.ndarray:
        """Hard class predictions from logits."""
        return np.argmax(outputs, axis=1)


class MeanSquaredError(Loss):
    """Per-sample squared error ``||y_hat - y||^2`` (summed over outputs)."""

    def per_sample(self, outputs, targets) -> np.ndarray:
        targets = np.asarray(targets, dtype=np.float64)
        if targets.ndim == 1:
            targets = targets[:, None]
        return np.sum((outputs - targets) ** 2, axis=1)

    def gradient(self, outputs, targets) -> np.ndarray:
        targets = np.asarray(targets, dtype=np.float64)
        if targets.ndim == 1:
            targets = targets[:, None]
        return 2.0 * (outputs - targets)
