"""Normalisation layers.

GroupNorm and LayerNorm compute statistics *per sample*, so per-sample
gradients remain well defined — they are the normalisations DP training can
use.  BatchNorm mixes samples through the batch statistics; it is provided
for non-private baselines and *refuses* the per-sample gradient path with an
explanatory error, which is exactly the constraint Opacus enforces.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Layer, coerce_param

__all__ = ["GroupNorm", "LayerNorm", "BatchNorm2d"]


class GroupNorm(Layer):
    """Normalise ``(B, C, H, W)`` inputs over ``num_groups`` channel groups."""

    def __init__(self, num_groups: int, num_channels: int, *, eps: float = 1e-5):
        if num_groups < 1 or num_channels % num_groups:
            raise ValueError(
                f"num_channels={num_channels} must be divisible by "
                f"num_groups={num_groups}"
            )
        self.num_groups = num_groups
        self.num_channels = num_channels
        self.eps = eps
        self.gamma = np.ones(num_channels)
        self.beta = np.zeros(num_channels)
        self._cache: tuple | None = None

    def forward(self, x: np.ndarray, train: bool = True) -> np.ndarray:
        if x.ndim != 4 or x.shape[1] != self.num_channels:
            raise ValueError(
                f"expected (B, {self.num_channels}, H, W), got {x.shape}"
            )
        batch, channels, height, width = x.shape
        grouped = x.reshape(batch, self.num_groups, -1)
        mean = grouped.mean(axis=2, keepdims=True)
        var = grouped.var(axis=2, keepdims=True)
        inv_std = 1.0 / np.sqrt(var + self.eps)
        x_hat = ((grouped - mean) * inv_std).reshape(x.shape)
        out = self.gamma[None, :, None, None] * x_hat + self.beta[None, :, None, None]
        if train:
            self._cache = (x_hat, inv_std, x.shape)
        return out

    def backward(self, grad_out, per_sample: bool = False):
        if self._cache is None:
            raise RuntimeError("backward called before forward(train=True)")
        x_hat, inv_std, shape = self._cache
        batch = shape[0]

        if per_sample:
            grads = {
                "gamma": (grad_out * x_hat).sum(axis=(2, 3)),
                "beta": grad_out.sum(axis=(2, 3)),
            }
        else:
            grads = {
                "gamma": (grad_out * x_hat).sum(axis=(0, 2, 3)),
                "beta": grad_out.sum(axis=(0, 2, 3)),
            }

        # Gradient through the normalisation, group by group.
        dx_hat = (grad_out * self.gamma[None, :, None, None]).reshape(
            batch, self.num_groups, -1
        )
        xh = x_hat.reshape(batch, self.num_groups, -1)
        mean_dxhat = dx_hat.mean(axis=2, keepdims=True)
        mean_dxhat_xh = (dx_hat * xh).mean(axis=2, keepdims=True)
        dx = inv_std * (dx_hat - mean_dxhat - xh * mean_dxhat_xh)
        return dx.reshape(shape), grads

    def backward_norm_sq(self, grad_out):
        # The affine per-sample gradients are channel-sized ((B, C)), so the
        # ghost contribution is a direct sum of squares — no (B, P) blowup.
        grad_in, grads = self.backward(grad_out, per_sample=True)
        dgamma, dbeta = grads["gamma"], grads["beta"]
        norm_sq = np.einsum("bc,bc->b", dgamma, dgamma)
        norm_sq += np.einsum("bc,bc->b", dbeta, dbeta)
        return grad_in, norm_sq

    def params(self) -> dict[str, np.ndarray]:
        return {"gamma": self.gamma, "beta": self.beta}

    def set_param(self, name: str, value: np.ndarray) -> None:
        if name == "gamma":
            self.gamma = coerce_param("GroupNorm", name, value, self.gamma.shape)
        elif name == "beta":
            self.beta = coerce_param("GroupNorm", name, value, self.beta.shape)
        else:
            raise KeyError(f"GroupNorm has no parameter {name!r}")

    def __repr__(self) -> str:
        return f"GroupNorm(groups={self.num_groups}, channels={self.num_channels})"


class LayerNorm(Layer):
    """Normalise each sample over all non-batch axes.

    Per-sample statistics only, so DP per-sample gradients are exact.  The
    affine parameters have the shape of one sample.
    """

    def __init__(self, normalized_shape, *, eps: float = 1e-5):
        self.shape = tuple(
            normalized_shape if hasattr(normalized_shape, "__len__") else (normalized_shape,)
        )
        if any(s < 1 for s in self.shape):
            raise ValueError(f"invalid normalized_shape {self.shape}")
        self.eps = eps
        self.gamma = np.ones(self.shape)
        self.beta = np.zeros(self.shape)
        self._cache: tuple | None = None

    def forward(self, x: np.ndarray, train: bool = True) -> np.ndarray:
        if x.shape[1:] != self.shape:
            raise ValueError(f"expected per-sample shape {self.shape}, got {x.shape[1:]}")
        batch = x.shape[0]
        flat = x.reshape(batch, -1)
        mean = flat.mean(axis=1, keepdims=True)
        var = flat.var(axis=1, keepdims=True)
        inv_std = 1.0 / np.sqrt(var + self.eps)
        x_hat = ((flat - mean) * inv_std).reshape(x.shape)
        out = self.gamma[None] * x_hat + self.beta[None]
        if train:
            self._cache = (x_hat, inv_std, x.shape)
        return out

    def backward(self, grad_out, per_sample: bool = False):
        if self._cache is None:
            raise RuntimeError("backward called before forward(train=True)")
        x_hat, inv_std, shape = self._cache
        batch = shape[0]

        if per_sample:
            grads = {"gamma": grad_out * x_hat, "beta": grad_out.copy()}
        else:
            grads = {
                "gamma": (grad_out * x_hat).sum(axis=0),
                "beta": grad_out.sum(axis=0),
            }

        dx_hat = (grad_out * self.gamma[None]).reshape(batch, -1)
        xh = x_hat.reshape(batch, -1)
        mean_dxhat = dx_hat.mean(axis=1, keepdims=True)
        mean_dxhat_xh = (dx_hat * xh).mean(axis=1, keepdims=True)
        dx = inv_std * (dx_hat - mean_dxhat - xh * mean_dxhat_xh)
        return dx.reshape(shape), grads

    def backward_norm_sq(self, grad_out):
        # ||dgamma_i||^2 = ||grad_out_i * x_hat_i||^2 and ||dbeta_i||^2 =
        # ||grad_out_i||^2, both activation-sized — computed in place of the
        # per-sample gradient dict.
        grad_in, _ = self.backward(grad_out, per_sample=False)
        batch = grad_out.shape[0]
        g = grad_out.reshape(batch, -1)
        gx = (grad_out * self._cache[0]).reshape(batch, -1)
        norm_sq = np.einsum("bi,bi->b", gx, gx) + np.einsum("bi,bi->b", g, g)
        return grad_in, norm_sq

    def params(self) -> dict[str, np.ndarray]:
        return {"gamma": self.gamma, "beta": self.beta}

    def set_param(self, name: str, value: np.ndarray) -> None:
        if name == "gamma":
            self.gamma = coerce_param("LayerNorm", name, value, self.shape)
        elif name == "beta":
            self.beta = coerce_param("LayerNorm", name, value, self.shape)
        else:
            raise KeyError(f"LayerNorm has no parameter {name!r}")

    def __repr__(self) -> str:
        return f"LayerNorm(shape={self.shape})"


class BatchNorm2d(Layer):
    """Batch normalisation over ``(B, C, H, W)`` — non-private baselines only.

    Batch statistics couple every sample's gradient to the whole batch, so
    *per-sample gradients do not exist* for this layer; requesting them
    raises with the standard DP guidance (use GroupNorm).  Running statistics
    are tracked for inference.
    """

    def __init__(self, num_channels: int, *, eps: float = 1e-5, momentum: float = 0.1):
        if num_channels < 1:
            raise ValueError(f"num_channels must be >= 1, got {num_channels}")
        self.num_channels = num_channels
        self.eps = eps
        self.momentum = momentum
        self.gamma = np.ones(num_channels)
        self.beta = np.zeros(num_channels)
        self.running_mean = np.zeros(num_channels)
        self.running_var = np.ones(num_channels)
        self._cache: tuple | None = None

    def forward(self, x: np.ndarray, train: bool = True) -> np.ndarray:
        if x.ndim != 4 or x.shape[1] != self.num_channels:
            raise ValueError(f"expected (B, {self.num_channels}, H, W), got {x.shape}")
        if train:
            mean = x.mean(axis=(0, 2, 3))
            var = x.var(axis=(0, 2, 3))
            self.running_mean = (
                (1 - self.momentum) * self.running_mean + self.momentum * mean
            )
            self.running_var = (
                (1 - self.momentum) * self.running_var + self.momentum * var
            )
        else:
            mean, var = self.running_mean, self.running_var
        inv_std = 1.0 / np.sqrt(var + self.eps)
        x_hat = (x - mean[None, :, None, None]) * inv_std[None, :, None, None]
        if train:
            self._cache = (x_hat, inv_std, x.shape)
        return self.gamma[None, :, None, None] * x_hat + self.beta[None, :, None, None]

    def backward(self, grad_out, per_sample: bool = False):
        if per_sample:
            raise RuntimeError(
                "BatchNorm2d has no per-sample gradients: batch statistics "
                "couple samples, which breaks DP-SGD's clipping. Replace it "
                "with GroupNorm (the standard DP substitute)."
            )
        if self._cache is None:
            raise RuntimeError("backward called before forward(train=True)")
        x_hat, inv_std, shape = self._cache
        grads = {
            "gamma": (grad_out * x_hat).sum(axis=(0, 2, 3)),
            "beta": grad_out.sum(axis=(0, 2, 3)),
        }
        dx_hat = grad_out * self.gamma[None, :, None, None]
        mean_dxhat = dx_hat.mean(axis=(0, 2, 3), keepdims=True)
        mean_dxhat_xh = (dx_hat * x_hat).mean(axis=(0, 2, 3), keepdims=True)
        dx = inv_std[None, :, None, None] * (
            dx_hat - mean_dxhat - x_hat * mean_dxhat_xh
        )
        return dx, grads

    def params(self) -> dict[str, np.ndarray]:
        return {"gamma": self.gamma, "beta": self.beta}

    def set_param(self, name: str, value: np.ndarray) -> None:
        if name == "gamma":
            self.gamma = coerce_param("BatchNorm2d", name, value, self.gamma.shape)
        elif name == "beta":
            self.beta = coerce_param("BatchNorm2d", name, value, self.beta.shape)
        else:
            raise KeyError(f"BatchNorm2d has no parameter {name!r}")

    def __repr__(self) -> str:
        return f"BatchNorm2d(channels={self.num_channels})"
