"""Parallel scheduler for experiment grids and sweeps.

An experiment grid is a list of independent *cells* (one trained model, one
sweep point, ...).  :func:`run_cells` executes them through the
fault-tolerant pool runner with the two invariants every experiment in this
repository relies on:

* **index-based seeding** — each cell's generator is spawned from the
  master seed by cell index before anything runs, so for a fixed seed the
  cell results are bit-identical for any ``workers`` value (completion
  order never touches a random stream);
* **per-cell resume** — cells that checkpoint into their own directories
  (:func:`repro.experiments.training_grid.cell_checkpoint_dir`) restore
  themselves when re-run, so a killed parallel run re-executes only its
  unfinished cells.

The scheduler itself is deliberately small: it owns cell construction and
ordering; retries, crash recovery and the serial fallback live in
:mod:`repro.runtime.pool`.
"""

from __future__ import annotations

from typing import Any

from repro.runtime.jobs import Job, JobOutcome, assign_job_rngs
from repro.runtime.pool import run_jobs
from repro.runtime.shipback import instrument, merge_shipped

__all__ = ["make_cells", "run_cells"]


def make_cells(payloads, *, keys, rng) -> list[Job]:
    """Build the cell list for one grid: payloads + keys + per-cell streams.

    Every cell gets an independent child generator spawned from ``rng`` in
    index order — the same streams a serial loop over the cells would use.
    """
    payloads = list(payloads)
    keys = [str(k) for k in keys]
    if len(keys) != len(payloads):
        raise ValueError(f"{len(payloads)} payloads but {len(keys)} keys")
    rngs = assign_job_rngs(rng, len(payloads))
    return [Job(key, payload, cell_rng) for key, payload, cell_rng in zip(keys, payloads, rngs)]


def run_cells(
    runner,
    cells,
    *,
    workers=1,
    max_attempts: int = 3,
    timeout: float | None = None,
    telemetry=None,
    tracer=None,
    ship_telemetry: bool = False,
    outcomes: list[JobOutcome] | None = None,
) -> list[Any]:
    """Run every cell; results are returned in cell order.

    ``runner(cell)`` receives each :class:`~repro.runtime.jobs.Job` and runs
    in a forked worker (``workers > 1``) or in-process (``workers = 1``,
    or after the pool runner's fallback).  It may close over unpicklable
    state (models, datasets); only ``cell.payload``/``cell.rng`` and the
    return value cross process boundaries.

    With ``ship_telemetry=True`` each cell runs with fresh per-job
    instruments (see :mod:`repro.runtime.shipback`; the runner reaches
    them via :func:`~repro.runtime.shipback.job_recorder` /
    :func:`~repro.runtime.shipback.job_tracer`), and the shipped states
    merge into ``telemetry`` and ``tracer`` in cell-index order — the
    merged result is worker-count invariant in its deterministic
    projection, and each cell's spans land on a track named after its key.
    """
    cells = list(cells)
    if telemetry is not None:
        telemetry.increment("runtime_cells_scheduled", len(cells))
    job_fn = runner
    if ship_telemetry:
        granularity = tracer.granularity if tracer is not None else "phase"
        job_fn = instrument(runner, granularity=granularity)
    results = run_jobs(
        job_fn,
        cells,
        workers=workers,
        max_attempts=max_attempts,
        timeout=timeout,
        telemetry=telemetry,
        outcomes=outcomes,
    )
    if ship_telemetry:
        results = merge_shipped(
            results,
            keys=[cell.key for cell in cells],
            recorder=telemetry,
            tracer=tracer,
        )
    return results
