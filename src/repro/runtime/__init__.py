"""``repro.runtime`` — parallel execution subsystem.

Three layers, each usable on its own:

* :mod:`repro.runtime.pool` — fault-tolerant process-pool **job runner**
  (:func:`run_jobs`): forked workers, per-job retry with capped backoff,
  crash/timeout detection, automatic serial fallback, telemetry progress
  events.
* :mod:`repro.runtime.scheduler` — **experiment scheduler**
  (:func:`run_cells`): runs grid/sweep cells concurrently with index-based
  seed assignment, so results are bit-identical for any worker count.
* :mod:`repro.runtime.gradmap` — **parallel per-sample gradient map**
  (:class:`ParallelGradientMap`): shards a lot's microbatch chunks across
  workers over a shared-memory dataset snapshot; opt-in through
  ``Trainer(parallel_grad_workers=...)``.
* :mod:`repro.runtime.shipback` — **worker telemetry ship-back**
  (:func:`instrument` / :func:`merge_shipped`): per-job recorders and
  tracers travel back with results and merge deterministically in the
  parent; opt-in through ``run_cells(..., ship_telemetry=True)``.

See ``docs/parallelism.md`` for the worker model and the determinism
guarantees.
"""

from repro.runtime.gradmap import ParallelGradientMap
from repro.runtime.jobs import (
    Job,
    JobFailure,
    JobOutcome,
    assign_job_rngs,
    chunk_ranges,
    make_jobs,
)
from repro.runtime.pool import parallel_available, resolve_workers, run_jobs
from repro.runtime.scheduler import make_cells, run_cells
from repro.runtime.shipback import (
    ShippedTelemetry,
    instrument,
    job_recorder,
    job_tracer,
    merge_shipped,
)

__all__ = [
    "Job",
    "JobFailure",
    "JobOutcome",
    "ParallelGradientMap",
    "ShippedTelemetry",
    "assign_job_rngs",
    "chunk_ranges",
    "instrument",
    "job_recorder",
    "job_tracer",
    "make_cells",
    "make_jobs",
    "merge_shipped",
    "parallel_available",
    "resolve_workers",
    "run_cells",
    "run_jobs",
]
