"""Parallel per-sample gradient map over the microbatch chunks of one lot.

DP-SGD's per-sample gradient pass is embarrassingly parallel: the clipped
sum of a lot is the sum of the clipped sums of its microbatch chunks, and
each chunk depends only on the current parameters, the chunk's sample
indices and the (lot-frozen) clipping strategy.  :class:`ParallelGradientMap`
keeps a persistent pool of workers that attach to the training set through
POSIX shared memory (:mod:`multiprocessing.shared_memory` — one copy of the
data for any number of workers); each task ships only the flat parameter
vector and the chunk indices.

Determinism: chunk boundaries are fixed by :func:`repro.runtime.jobs.chunk_ranges`
and results are reduced in chunk-index order, so the accumulated clipped
sum is bit-identical to the serial microbatch loop for any worker count.
All randomness (noise, sampling, adaptive-clipping updates) stays in the
parent process.

Fault tolerance: a crashed, hung or unpicklable lot falls back to ``None``,
telling the trainer to run that lot through its ordinary serial loop (same
numbers, just slower); after ``max_pool_failures`` consecutive failures the
map disables itself for the rest of the run.
"""

from __future__ import annotations

import multiprocessing as mp
import time
import weakref
from concurrent.futures import ProcessPoolExecutor
from multiprocessing import shared_memory

import numpy as np

from repro.runtime.pool import START_METHOD, resolve_workers

__all__ = ["ParallelGradientMap"]

#: Worker-side state installed by :func:`_init_worker`:
#: ``(model, x, y, shm_x, shm_y)`` — the shared-memory handles are kept
#: alive here so the array views stay valid for the worker's lifetime.
_WORKER_STATE = None


def _init_worker(model, x_meta, y_meta):
    global _WORKER_STATE
    x_name, x_shape, x_dtype = x_meta
    y_name, y_shape, y_dtype = y_meta
    shm_x = shared_memory.SharedMemory(name=x_name)
    shm_y = shared_memory.SharedMemory(name=y_name)
    x = np.ndarray(x_shape, dtype=np.dtype(x_dtype), buffer=shm_x.buf)
    y = np.ndarray(y_shape, dtype=np.dtype(y_dtype), buffer=shm_y.buf)
    _WORKER_STATE = (model, x, y, shm_x, shm_y)


def _grad_chunk(task):
    """One microbatch chunk: per-sample gradients, clip, sum.

    Returns ``(clipped_sum, losses, pre_clip_norms)``; the norms let the
    parent replay adaptive-clipping observations and telemetry without the
    gradient matrix ever leaving the worker.
    """
    params, indices, clipping = task
    model, x, y, _, _ = _WORKER_STATE
    model.set_params(params)
    losses, grads = model.loss_and_per_sample_gradients(x[indices], y[indices])
    clipped, norms = clipping.clip_with_norms(grads)
    return clipped.sum(axis=0), losses, norms


def _share_array(array: np.ndarray) -> tuple[shared_memory.SharedMemory, tuple]:
    array = np.ascontiguousarray(array)
    shm = shared_memory.SharedMemory(create=True, size=array.nbytes)
    view = np.ndarray(array.shape, dtype=array.dtype, buffer=shm.buf)
    view[...] = array
    return shm, (shm.name, array.shape, array.dtype.str)


class ParallelGradientMap:
    """Persistent worker pool computing clipped per-sample gradient sums.

    Parameters
    ----------
    model:
        The model whose per-sample gradients are computed.  A copy is
        shipped to each worker once; the current parameters travel with
        every task.  Models with cross-step forward state (e.g. BatchNorm
        running statistics) are rejected — their serial chunk loop is
        order-dependent, so sharding it would change results.
    dataset:
        :class:`repro.data.Dataset`; its arrays are snapshotted into shared
        memory at construction.
    workers:
        Worker-process count (``None``/``"auto"``: one per CPU).
    timeout:
        Optional per-lot wall-clock limit in seconds; an overdue lot is
        abandoned (the trainer recomputes it serially) and the pool killed.
    telemetry:
        Optional recorder for ``gradmap_*`` progress counters.
    """

    def __init__(
        self,
        model,
        dataset,
        *,
        workers,
        timeout: float | None = None,
        telemetry=None,
        max_pool_failures: int = 2,
    ):
        for layer in getattr(model, "layers", []):
            if hasattr(layer, "running_mean") or hasattr(layer, "running_var"):
                raise ValueError(
                    f"{type(layer).__name__} keeps running statistics across "
                    "steps; the parallel gradient map cannot reproduce the "
                    "serial chunk order for such models"
                )
        self.workers = resolve_workers(workers)
        self.timeout = timeout
        self.telemetry = telemetry
        self.max_pool_failures = max_pool_failures
        self._model = model
        self._failures = 0
        self._disabled = self.workers <= 1
        self._executor: ProcessPoolExecutor | None = None
        self._shm: list[shared_memory.SharedMemory] = []
        self._x_meta = None
        self._y_meta = None
        self._dataset = dataset
        self._finalizer = weakref.finalize(self, _release, self._shm)

    # ------------------------------------------------------------ lifecycle
    @property
    def available(self) -> bool:
        """Whether the map will attempt parallel execution for the next lot."""
        return not self._disabled

    def _ensure_started(self) -> bool:
        if self._disabled:
            return False
        if self._executor is not None:
            return True
        try:
            if not self._shm:
                shm_x, self._x_meta = _share_array(self._dataset.x)
                self._shm.append(shm_x)
                shm_y, self._y_meta = _share_array(self._dataset.y)
                self._shm.append(shm_y)
            method = START_METHOD if START_METHOD in mp.get_all_start_methods() else None
            ctx = mp.get_context(method)
            self._executor = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=ctx,
                initializer=_init_worker,
                initargs=(self._model, self._x_meta, self._y_meta),
            )
        except Exception:
            self._record_failure()
            return False
        return True

    def _kill_pool(self) -> None:
        if self._executor is None:
            return
        processes = getattr(self._executor, "_processes", None) or {}
        for process in list(processes.values()):
            try:
                process.kill()
            except Exception:
                pass
        self._executor.shutdown(wait=False, cancel_futures=True)
        self._executor = None

    def _record_failure(self) -> None:
        self._failures += 1
        if self.telemetry is not None:
            self.telemetry.increment("gradmap_fallbacks")
        self._kill_pool()
        if self._failures >= self.max_pool_failures:
            self._disabled = True
            self.close()

    def close(self) -> None:
        """Shut the pool down and release the shared-memory snapshot."""
        self._disabled = True
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None
        _release(self._shm)

    # ------------------------------------------------------------- mapping
    def map_chunks(self, params: np.ndarray, chunks, clipping) -> list | None:
        """Compute ``(clipped_sum, losses, norms)`` for every chunk, in order.

        ``chunks`` is a sequence of index arrays (one per microbatch).
        Returns ``None`` when parallel execution is unavailable or fails —
        the caller then runs its serial loop, which produces the same
        numbers.
        """
        chunks = [np.asarray(chunk) for chunk in chunks]
        if not chunks:
            return []
        if not self._ensure_started():
            return None
        deadline = None if self.timeout is None else time.monotonic() + self.timeout
        try:
            futures = [
                self._executor.submit(_grad_chunk, (params, chunk, clipping))
                for chunk in chunks
            ]
            results = []
            for future in futures:
                budget = None if deadline is None else max(0.0, deadline - time.monotonic())
                results.append(future.result(timeout=budget))
        except Exception:
            self._record_failure()
            return None
        if self.telemetry is not None:
            self.telemetry.increment("gradmap_lots_parallel")
        return results


def _release(shm_blocks: list) -> None:
    while shm_blocks:
        shm = shm_blocks.pop()
        try:
            shm.close()
            shm.unlink()
        except Exception:
            pass
