"""Ship worker-side telemetry back to the parent process.

The pool workers are forked processes: a recorder or tracer mutated inside
a job is invisible to the parent.  This module closes that gap without
giving up determinism:

* :func:`instrument` wraps a job function so each call runs with a *fresh*
  per-job :class:`~repro.telemetry.MetricsRecorder` and
  :class:`~repro.telemetry.tracing.Tracer`, and returns a picklable
  :class:`ShippedTelemetry` bundling the job's result with both state
  dicts.  The job body reaches its instruments through
  :func:`job_recorder` / :func:`job_tracer`.
* :func:`merge_shipped` unwraps a list of shipped results **in job-index
  order** and merges every state into the parent's recorder and tracer.
  Job order is fixed before anything runs, so the merged telemetry is
  identical for any worker count (modulo wall-clock timings — compare
  via :meth:`~repro.telemetry.MetricsRecorder.deterministic_state`).

The same wrapper runs on the serial path (``workers=1``), so a serial run
and an 8-worker run ship byte-identical deterministic projections.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "ShippedTelemetry",
    "instrument",
    "job_recorder",
    "job_tracer",
    "merge_shipped",
]

#: Per-job instruments of the job currently executing in *this* process.
#: Module-global so forked workers and the serial path share one mechanism.
_ACTIVE: dict = {"recorder": None, "tracer": None}


def job_recorder():
    """The executing job's recorder, or ``None`` outside an instrumented job."""
    return _ACTIVE["recorder"]


def job_tracer():
    """The executing job's tracer, or ``None`` outside an instrumented job."""
    return _ACTIVE["tracer"]


@dataclass
class ShippedTelemetry:
    """A job result plus the state of its per-job instruments (picklable)."""

    result: object
    recorder_state: dict
    tracer_state: dict


def instrument(fn, *, granularity: str = "phase", trace_memory: bool = False):
    """Wrap ``fn`` so every call ships its telemetry with its result.

    The wrapper installs a fresh recorder and tracer before calling
    ``fn(job)`` (reachable via :func:`job_recorder` / :func:`job_tracer`)
    and returns a :class:`ShippedTelemetry` instead of the bare result.
    Instruments are always torn down, even when ``fn`` raises, so a
    retried job starts clean.
    """
    from repro.telemetry.recorder import MetricsRecorder
    from repro.telemetry.tracing import Tracer

    def shipped(job):
        recorder = MetricsRecorder()
        tracer = Tracer(granularity=granularity, trace_memory=trace_memory)
        _ACTIVE["recorder"], _ACTIVE["tracer"] = recorder, tracer
        try:
            result = fn(job)
        finally:
            _ACTIVE["recorder"], _ACTIVE["tracer"] = None, None
            tracer.close()
        return ShippedTelemetry(result, recorder.state_dict(), tracer.state_dict())

    # Marker the pool uses to count telemetry lost to failed attempts
    # (``runtime_shipback_lost``): a hung or crashed worker cannot ship
    # its partial state back, so the loss is made explicit instead of
    # silently under-reporting merged metrics.
    shipped.ships_telemetry = True
    shipped.__wrapped__ = fn
    return shipped


def merge_shipped(shipped, *, keys=None, recorder=None, tracer=None) -> list:
    """Unwrap shipped results, merging their telemetry; returns bare results.

    ``shipped`` is the ordered output of :func:`~repro.runtime.run_jobs`
    over an :func:`instrument`-wrapped function.  States merge in that
    fixed job-index order — never completion order — so the parent's
    telemetry is worker-count invariant.  ``keys`` labels each job's span
    track in the parent tracer (defaults to ``job-<index>``).  Entries
    that are not :class:`ShippedTelemetry` (nothing ran) pass through
    untouched.
    """
    results = []
    for index, item in enumerate(shipped):
        if not isinstance(item, ShippedTelemetry):
            results.append(item)
            continue
        track = str(keys[index]) if keys is not None else f"job-{index}"
        if recorder is not None:
            recorder.merge_state(item.recorder_state)
        if tracer is not None:
            tracer.merge_state(item.tracer_state, track=track)
        results.append(item.result)
    return results
