"""Fault-tolerant process-pool job runner.

:func:`run_jobs` maps a function over picklable :class:`~repro.runtime.jobs.Job`
specs on a pool of forked workers, with:

* **deterministic results** — every job carries its own pre-spawned random
  stream (assigned by index, see :mod:`repro.runtime.jobs`), so the result
  list is bit-identical to a serial run for any worker count;
* **per-job retry with capped exponential backoff** — transient worker
  exceptions re-enqueue the job up to ``max_attempts`` times;
* **crash and timeout detection** — a worker that dies (segfault,
  ``os._exit``) breaks the pool; the runner kills the remains, restarts the
  pool and re-runs the interrupted jobs.  Jobs that exceed ``timeout``
  seconds are treated the same way;
* **automatic serial fallback** — a job whose parallel attempts are
  exhausted (or whose payload/result cannot cross a process boundary) runs
  in-process instead, so ``run_jobs`` degrades to the plain serial loop
  rather than failing;
* **progress events** — completions, retries, pool restarts and fallbacks
  are surfaced through the existing telemetry recorder
  (``runtime_*`` counters and the ``runtime_job_seconds`` series).

The job *function* is never pickled: workers are forked from the parent
after the function is installed in a module global, so closures over
models, datasets and other unpicklable state work transparently.  Only the
job payloads and results cross process boundaries.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool

from repro.runtime.jobs import Job, JobFailure, JobOutcome

__all__ = ["parallel_available", "resolve_workers", "run_jobs"]

#: Start method used for worker processes.  Fork keeps the job function and
#: its closed-over state out of the pickle stream entirely.
START_METHOD = "fork"

#: Installed by :func:`run_jobs` immediately before the pool forks; workers
#: inherit it through fork and look it up in :func:`_invoke`.
_WORKER_FN = None


def parallel_available() -> bool:
    """Whether this platform supports the forking worker pool."""
    return START_METHOD in mp.get_all_start_methods()


def resolve_workers(workers) -> int:
    """Normalise a worker-count request into a positive int.

    ``None`` or ``"auto"`` means one worker per CPU.
    """
    if workers is None or workers == "auto":
        return os.cpu_count() or 1
    workers = int(workers)
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    return workers


def _invoke(task):
    """Worker-side trampoline: run the fork-inherited function on one job."""
    index, job = task
    return index, _WORKER_FN(job)


def _count(telemetry, name: str, amount: float = 1) -> None:
    if telemetry is not None:
        telemetry.increment(name, amount)


def _record(telemetry, name: str, value: float) -> None:
    if telemetry is not None:
        telemetry.record(name, value)


def _as_jobs(jobs) -> list[Job]:
    out = []
    for i, job in enumerate(jobs):
        if not isinstance(job, Job):
            job = Job(key=f"job-{i}", payload=job)
        out.append(job)
    return out


def run_jobs(
    fn,
    jobs,
    *,
    workers=1,
    max_attempts: int = 3,
    timeout: float | None = None,
    backoff_base: float = 0.05,
    backoff_cap: float = 1.0,
    telemetry=None,
    outcomes: list[JobOutcome] | None = None,
) -> list:
    """Map ``fn`` over ``jobs``; results are returned in job order.

    Parameters
    ----------
    fn:
        Called as ``fn(job)`` for each :class:`Job` (bare payloads are
        wrapped on the fly).  Runs in a forked worker, so it may close over
        unpicklable state; the job payload and the return value must pickle
        (if they don't, the job silently degrades to the serial fallback).
    workers:
        Process count; ``1`` (the default) runs everything in-process with
        no subprocesses at all.  ``None``/``"auto"`` uses all CPUs.
    max_attempts:
        Parallel attempts per job before the in-process serial fallback.
    timeout:
        Per-job wall-clock limit in seconds.  An overdue job's pool is
        killed and the job retried; ``None`` disables the limit (worker
        *crashes* are still detected promptly either way).
    backoff_base / backoff_cap:
        Retry ``i`` sleeps ``min(backoff_base * 2**(i-1), backoff_cap)``.
    telemetry:
        Optional :class:`~repro.telemetry.MetricsRecorder` receiving
        ``runtime_*`` progress events.
    outcomes:
        Optional list collecting one :class:`JobOutcome` per job (appended
        in completion order; ``index`` maps back to the job).

    Errors raised by ``fn`` itself (i.e. reproducibly, on every attempt
    including the serial fallback) propagate as :class:`JobFailure`.
    """
    jobs = _as_jobs(jobs)
    if max_attempts < 1:
        raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
    if timeout is not None and timeout <= 0:
        raise ValueError(f"timeout must be positive, got {timeout}")
    if not jobs:
        return []
    workers = resolve_workers(workers)
    if workers <= 1 or not parallel_available():
        return [
            _run_serial(fn, job, index, telemetry, outcomes, attempts=0)
            for index, job in enumerate(jobs)
        ]
    runner = _ParallelRunner(
        fn,
        jobs,
        workers=workers,
        max_attempts=max_attempts,
        timeout=timeout,
        backoff_base=backoff_base,
        backoff_cap=backoff_cap,
        telemetry=telemetry,
        outcomes=outcomes,
    )
    return runner.run()


def _run_serial(fn, job: Job, index: int, telemetry, outcomes, *, attempts: int):
    """Run one job in-process (serial mode or post-retry fallback)."""
    start = time.perf_counter()
    try:
        result = fn(job)
    except Exception as exc:
        raise JobFailure(job.key, attempts + 1, exc) from exc
    duration = time.perf_counter() - start
    _count(telemetry, "runtime_jobs_completed")
    _record(telemetry, "runtime_job_seconds", duration)
    if attempts:
        _count(telemetry, "runtime_serial_fallbacks")
    if outcomes is not None:
        outcomes.append(
            JobOutcome(
                job.key,
                index,
                attempts=attempts + 1,
                duration=duration,
                fallback=attempts > 0,
                result=result,
            )
        )
    return result


class _ParallelRunner:
    """One :func:`run_jobs` invocation's state machine."""

    def __init__(
        self,
        fn,
        jobs,
        *,
        workers,
        max_attempts,
        timeout,
        backoff_base,
        backoff_cap,
        telemetry,
        outcomes,
    ):
        self.fn = fn
        self.jobs = jobs
        self.workers = workers
        self.max_attempts = max_attempts
        self.timeout = timeout
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.telemetry = telemetry
        self.outcomes = outcomes
        self.results = [None] * len(jobs)
        self.done = [False] * len(jobs)
        self.attempts = [0] * len(jobs)
        self.queue = deque(range(len(jobs)))
        self.inflight: dict = {}  # future -> job index
        self.started: dict = {}  # future -> (monotonic submit time, perf start)
        self.executor: ProcessPoolExecutor | None = None

    # ------------------------------------------------------------ lifecycle
    def run(self) -> list:
        global _WORKER_FN
        previous = _WORKER_FN
        _WORKER_FN = self.fn  # must be installed before the pool forks
        try:
            self._start_pool()
            while not all(self.done):
                self._submit_ready()
                if self.inflight:
                    self._wait_and_collect()
            return self.results
        finally:
            self._stop_pool(kill=False)
            _WORKER_FN = previous

    def _start_pool(self) -> None:
        ctx = mp.get_context(START_METHOD)
        self.executor = ProcessPoolExecutor(max_workers=self.workers, mp_context=ctx)

    def _stop_pool(self, *, kill: bool) -> None:
        if self.executor is None:
            return
        if kill:
            # Hung or crashed workers never drain the call queue; reclaim
            # them forcibly before restarting.  ``_processes`` is private
            # but stable across CPython 3.8-3.13; degrade gracefully if it
            # ever disappears.
            processes = getattr(self.executor, "_processes", None) or {}
            for process in list(processes.values()):
                try:
                    process.kill()
                except Exception:
                    pass
        self.executor.shutdown(wait=not kill, cancel_futures=True)
        self.executor = None

    def _restart_pool(self) -> None:
        _count(self.telemetry, "runtime_pool_restarts")
        self._stop_pool(kill=True)
        self._start_pool()

    # ----------------------------------------------------------- scheduling
    def _submit_ready(self) -> None:
        # A small over-subscription buffer keeps workers busy without
        # queueing every job up front (which would make timeout accounting
        # meaningless for queued-but-not-running jobs).
        while self.queue and len(self.inflight) < 2 * self.workers:
            index = self.queue.popleft()
            try:
                future = self.executor.submit(_invoke, (index, self.jobs[index]))
            except BrokenProcessPool:
                self.queue.appendleft(index)
                self._on_broken_pool()
                return
            self.inflight[future] = index
            self.started[future] = (time.monotonic(), time.perf_counter())

    def _wait_and_collect(self) -> None:
        finished, _ = wait(
            set(self.inflight), timeout=self._wait_budget(), return_when=FIRST_COMPLETED
        )
        if not finished:
            self._expire_overdue()
            return
        for future in finished:
            index = self.inflight.pop(future)
            _, perf_start = self.started.pop(future)
            try:
                _, result = future.result()
            except BrokenProcessPool:
                # The crashing worker takes the whole executor down; every
                # other in-flight future is about to fail the same way.  The
                # popped job is charged an attempt along with its peers — it
                # may itself be the crasher, and skipping it would let a
                # poison job break the pool forever.
                self._on_broken_pool(also_charge=[index])
                return
            except Exception as exc:
                self._on_job_error(index, exc)
            else:
                self._on_job_done(index, result, time.perf_counter() - perf_start)

    def _wait_budget(self) -> float | None:
        if self.timeout is None:
            return None
        now = time.monotonic()
        deadlines = [mono + self.timeout for mono, _ in self.started.values()]
        return max(0.0, min(deadlines) - now) + 1e-3

    def _expire_overdue(self) -> None:
        now = time.monotonic()
        overdue = [
            future
            for future, (mono, _) in self.started.items()
            if now - mono >= self.timeout
        ]
        if not overdue:
            return
        # A single stuck worker cannot be killed through the executor API,
        # so treat the pool as lost: charge an attempt to the overdue jobs,
        # requeue the innocent ones for free, and restart.
        overdue_indices = {self.inflight[future] for future in overdue}
        for index in list(self.inflight.values()):
            if index in overdue_indices:
                self._on_job_error(index, TimeoutError(f"exceeded {self.timeout}s"))
            else:
                self._requeue(index)
        self.inflight.clear()
        self.started.clear()
        self._restart_pool()

    def _on_broken_pool(self, also_charge=()) -> None:
        # Attempts are charged to every interrupted job: the crasher is
        # indistinguishable from its peers, and max_attempts still bounds
        # the damage before the serial fallback takes over.
        interrupted = list(also_charge) + list(self.inflight.values())
        self.inflight.clear()
        self.started.clear()
        self._restart_pool()
        for index in interrupted:
            self._on_job_error(index, BrokenProcessPool("worker process died"))

    # -------------------------------------------------------------- results
    def _requeue(self, index: int) -> None:
        if not self.done[index]:
            self.queue.append(index)

    def _on_job_done(self, index: int, result, duration: float) -> None:
        if self.done[index]:
            return
        self.results[index] = result
        self.done[index] = True
        _count(self.telemetry, "runtime_jobs_completed")
        _record(self.telemetry, "runtime_job_seconds", duration)
        if self.outcomes is not None:
            self.outcomes.append(
                JobOutcome(
                    self.jobs[index].key,
                    index,
                    attempts=self.attempts[index] + 1,
                    duration=duration,
                    result=result,
                )
            )

    def _on_job_error(self, index: int, exc: BaseException) -> None:
        if self.done[index]:
            return
        self.attempts[index] += 1
        # An instrumented job that dies mid-attempt takes its shipped
        # telemetry with it (partial worker state is unreachable after a
        # hang or crash).  Count the loss so merged metrics are honest
        # about under-reporting instead of silent about it.
        if getattr(self.fn, "ships_telemetry", False):
            _count(self.telemetry, "runtime_shipback_lost")
        if self.attempts[index] >= self.max_attempts:
            # Last resort: run in-process.  Bit-identical to a worker run
            # (the job owns its random stream), and it turns "worker keeps
            # dying" into "slower but correct".  A deterministic error will
            # re-raise here, which is the right failure mode.
            self.results[index] = _run_serial(
                self.fn,
                self.jobs[index],
                index,
                self.telemetry,
                self.outcomes,
                attempts=self.attempts[index],
            )
            self.done[index] = True
            return
        _count(self.telemetry, "runtime_retries")
        time.sleep(min(self.backoff_base * 2 ** (self.attempts[index] - 1), self.backoff_cap))
        self.queue.append(index)
