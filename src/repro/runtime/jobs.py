"""Job specifications for the process-pool runner.

A :class:`Job` is the unit of work :func:`repro.runtime.pool.run_jobs`
ships to a worker: a stable ``key`` (used for telemetry and error
messages), an arbitrary picklable ``payload``, and — when the work is
stochastic — a pre-spawned ``numpy`` generator.  Seeds are always assigned
to jobs *by index* through :func:`assign_job_rngs` before anything runs,
never by completion order, which is what makes parallel results
bit-identical to serial ones for any worker count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.utils.rng import spawn_rngs

__all__ = [
    "Job",
    "JobFailure",
    "JobOutcome",
    "assign_job_rngs",
    "chunk_ranges",
    "make_jobs",
]


@dataclass(frozen=True)
class Job:
    """One picklable unit of work for the pool runner."""

    #: Stable identifier (deterministic, independent of scheduling).
    key: str
    #: Arbitrary picklable payload handed to the job function.
    payload: Any = None
    #: Optional pre-spawned generator owning this job's random stream.
    rng: np.random.Generator | None = None


@dataclass
class JobOutcome:
    """Bookkeeping for one finished job (surfaced through telemetry)."""

    key: str
    index: int
    attempts: int = 1
    duration: float = 0.0
    #: True when the job's final attempt ran in-process (serial fallback).
    fallback: bool = False
    result: Any = field(default=None, repr=False)


class JobFailure(RuntimeError):
    """A job exhausted its attempts; carries the job key and last error."""

    def __init__(self, key: str, attempts: int, cause: BaseException):
        super().__init__(f"job {key!r} failed after {attempts} attempt(s): {cause!r}")
        self.key = key
        self.attempts = attempts
        self.cause = cause


def make_jobs(payloads, *, keys=None, rng=None) -> list[Job]:
    """Wrap ``payloads`` into :class:`Job` objects with index-based seeding.

    ``keys`` defaults to ``job-<index>``; when ``rng`` is given every job
    receives an independent child generator spawned in index order.
    """
    payloads = list(payloads)
    if keys is None:
        keys = [f"job-{i}" for i in range(len(payloads))]
    else:
        keys = [str(k) for k in keys]
        if len(keys) != len(payloads):
            raise ValueError(f"{len(payloads)} payloads but {len(keys)} keys")
    rngs: list[np.random.Generator | None]
    if rng is None:
        rngs = [None] * len(payloads)
    else:
        rngs = list(spawn_rngs(rng, len(payloads)))
    return [Job(k, p, r) for k, p, r in zip(keys, payloads, rngs)]


def assign_job_rngs(rng, n: int) -> list[np.random.Generator]:
    """``n`` independent generators, one per job index (deterministic).

    Thin alias of :func:`repro.utils.rng.spawn_rngs` under the name the
    runtime documentation uses: seed-sequence sharding by *index*.
    """
    return spawn_rngs(rng, n)


def chunk_ranges(total: int, chunk_size: int) -> list[tuple[int, int]]:
    """Half-open ``(start, stop)`` ranges covering ``range(total)`` in order.

    The deterministic sharding used by the parallel gradient map: chunk
    boundaries depend only on ``total`` and ``chunk_size``, never on the
    number of workers.
    """
    if total < 0:
        raise ValueError(f"total must be >= 0, got {total}")
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    return [(start, min(start + chunk_size, total)) for start in range(0, total, chunk_size)]
