"""Procedural MNIST substitute: rendered hand-written-style digits.

The real MNIST cannot be downloaded in this offline environment, so we
render 28x28 grey-scale digit images from 5x7 bitmap glyphs with random
affine jitter (shift, rotation, scale), stroke-thickness variation and pixel
noise.  The resulting classification task has the same shape (10 balanced
classes, 28x28x1, values in [0, 1]) and non-trivial intra-class variance, so
every training code path the paper exercises on MNIST is exercised
identically here.  See DESIGN.md §1 for the substitution rationale.
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage

from repro.data.datasets import Dataset
from repro.utils.rng import as_rng

__all__ = ["make_mnist_like", "render_digit", "DIGIT_GLYPHS"]

# 5x7 bitmap glyphs for digits 0-9 ('#' = on pixel).
_GLYPH_STRINGS = {
    0: [" ### ", "#   #", "#   #", "#   #", "#   #", "#   #", " ### "],
    1: ["  #  ", " ##  ", "  #  ", "  #  ", "  #  ", "  #  ", " ### "],
    2: [" ### ", "#   #", "    #", "   # ", "  #  ", " #   ", "#####"],
    3: [" ### ", "#   #", "    #", "  ## ", "    #", "#   #", " ### "],
    4: ["   # ", "  ## ", " # # ", "#  # ", "#####", "   # ", "   # "],
    5: ["#####", "#    ", "#### ", "    #", "    #", "#   #", " ### "],
    6: [" ### ", "#    ", "#    ", "#### ", "#   #", "#   #", " ### "],
    7: ["#####", "    #", "   # ", "  #  ", "  #  ", " #   ", " #   "],
    8: [" ### ", "#   #", "#   #", " ### ", "#   #", "#   #", " ### "],
    9: [" ### ", "#   #", "#   #", " ####", "    #", "    #", " ### "],
}

DIGIT_GLYPHS: dict[int, np.ndarray] = {
    digit: np.array([[1.0 if ch == "#" else 0.0 for ch in row] for row in rows])
    for digit, rows in _GLYPH_STRINGS.items()
}


def render_digit(
    digit: int,
    rng=None,
    *,
    size: int = 28,
    max_shift: float = 2.5,
    max_rotation_deg: float = 15.0,
    scale_jitter: float = 0.15,
    noise_std: float = 0.08,
    blur_sigma_range: tuple[float, float] = (0.4, 1.0),
) -> np.ndarray:
    """Render one jittered digit image in ``[0, 1]`` of shape ``(size, size)``.

    The glyph is placed on the canvas at ~4x magnification, blurred to vary
    apparent stroke thickness, rotated/shifted/scaled randomly, then pixel
    noise is added.
    """
    if digit not in DIGIT_GLYPHS:
        raise ValueError(f"digit must be 0-9, got {digit}")
    rng = as_rng(rng)
    glyph = DIGIT_GLYPHS[digit]

    zoom = size / 7.0 * 0.75 * (1.0 + rng.uniform(-scale_jitter, scale_jitter))
    big = ndimage.zoom(glyph, (zoom, zoom * 7.0 / 5.0 * 0.75), order=1, prefilter=False)
    big = np.clip(big, 0.0, 1.0)

    canvas = np.zeros((size, size))
    h, w = min(big.shape[0], size), min(big.shape[1], size)
    top = (size - h) // 2
    left = (size - w) // 2
    canvas[top : top + h, left : left + w] = big[:h, :w]

    angle = rng.uniform(-max_rotation_deg, max_rotation_deg)
    canvas = ndimage.rotate(canvas, angle, reshape=False, order=1, mode="constant")
    shift = rng.uniform(-max_shift, max_shift, size=2)
    canvas = ndimage.shift(canvas, shift, order=1, mode="constant")

    sigma = rng.uniform(*blur_sigma_range)
    canvas = ndimage.gaussian_filter(canvas, sigma)
    peak = canvas.max()
    if peak > 0:
        canvas = canvas / peak
    canvas *= rng.uniform(0.75, 1.0)  # intensity variation
    canvas += rng.normal(0.0, noise_std, size=canvas.shape)
    return np.clip(canvas, 0.0, 1.0)


def make_mnist_like(
    num_samples: int = 2000,
    rng=None,
    *,
    size: int = 28,
    noise_std: float = 0.08,
) -> Dataset:
    """Generate a balanced MNIST-like dataset of shape ``(N, 1, size, size)``.

    Labels cycle through 0-9 and rows are shuffled, so any split is balanced
    in expectation.
    """
    if num_samples < 1:
        raise ValueError(f"num_samples must be >= 1, got {num_samples}")
    rng = as_rng(rng)
    images = np.empty((num_samples, 1, size, size))
    labels = np.empty(num_samples, dtype=np.int64)
    for i in range(num_samples):
        digit = i % 10
        labels[i] = digit
        images[i, 0] = render_digit(digit, rng, size=size, noise_std=noise_std)
    return Dataset(images, labels).shuffled(rng)
