"""Dataset substrate.

The paper evaluates on MNIST, CIFAR-10 and a synthetic gradient dataset.
This environment is offline, so :mod:`repro.data.mnist_like` and
:mod:`repro.data.cifar_like` generate procedural stand-ins that exercise the
same code paths (documented in DESIGN.md §1), and
:mod:`repro.data.gradients` reproduces the paper's §VI-A gradient-collection
protocol (gradients recorded from non-private CNN training at B=1).
"""

from repro.data.datasets import Dataset, train_test_split
from repro.data.mnist_like import make_mnist_like
from repro.data.cifar_like import make_cifar_like
from repro.data.text_like import make_text_like
from repro.data.clicklog import make_click_log
from repro.data.sampling import iterate_minibatches, minibatch_indices, poisson_indices
from repro.data.gradients import collect_training_gradients, synthetic_gradient_batch
from repro.data.augmentation import (
    Augmenter,
    add_pixel_noise,
    random_crop,
    random_horizontal_flip,
)

__all__ = [
    "Dataset",
    "train_test_split",
    "make_mnist_like",
    "make_cifar_like",
    "make_text_like",
    "make_click_log",
    "iterate_minibatches",
    "minibatch_indices",
    "poisson_indices",
    "collect_training_gradients",
    "synthetic_gradient_batch",
    "Augmenter",
    "add_pixel_noise",
    "random_crop",
    "random_horizontal_flip",
]
