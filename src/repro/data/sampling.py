"""Minibatch samplers.

DP accounting depends on how batches are drawn: Poisson sampling (each
record independently with probability ``q``) gives the subsampled-Gaussian
RDP amplification used by the accountant, while fixed-size uniform sampling
is the common practical approximation (and what the paper's experiments
use, with ``q ~= B/N``).
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.utils.rng import as_rng

__all__ = ["minibatch_indices", "poisson_indices", "iterate_minibatches"]


def minibatch_indices(n: int, batch_size: int, rng=None) -> np.ndarray:
    """Draw one uniform fixed-size batch of indices without replacement."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if not 1 <= batch_size <= n:
        raise ValueError(f"batch_size must be in [1, {n}], got {batch_size}")
    return as_rng(rng).choice(n, size=batch_size, replace=False)


def poisson_indices(n: int, sample_rate: float, rng=None) -> np.ndarray:
    """Poisson sampling: include each index independently with probability ``sample_rate``.

    May return an empty batch — callers (and the accountant) must tolerate
    that, as real Poisson-subsampled DP-SGD does.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if not 0 < sample_rate <= 1:
        raise ValueError(f"sample_rate must be in (0, 1], got {sample_rate}")
    mask = as_rng(rng).random(n) < sample_rate
    return np.flatnonzero(mask)


def iterate_minibatches(
    n: int, batch_size: int, num_batches: int, rng=None
) -> Iterator[np.ndarray]:
    """Yield ``num_batches`` independent uniform batches (one per SGD iteration)."""
    rng = as_rng(rng)
    for _ in range(num_batches):
        yield minibatch_indices(n, batch_size, rng)
