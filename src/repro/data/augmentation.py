"""Image augmentation for ``(B, C, H, W)`` tensors.

Standard label-preserving transforms (the CIFAR recipe: pad-and-crop,
horizontal flip, plus pixel noise).  Augmentation composes cleanly with
DP-SGD: transforms are applied per sample before the forward pass and do
not touch the privacy analysis (each sample still contributes one clipped
gradient).
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import as_rng
from repro.utils.validation import check_positive

__all__ = ["random_horizontal_flip", "random_crop", "add_pixel_noise", "Augmenter"]


def random_horizontal_flip(images, rng=None, *, probability: float = 0.5) -> np.ndarray:
    """Flip each image left-right independently with ``probability``."""
    if not 0 <= probability <= 1:
        raise ValueError(f"probability must be in [0, 1], got {probability}")
    images = np.asarray(images, dtype=np.float64)
    if images.ndim != 4:
        raise ValueError(f"expected (B, C, H, W), got {images.shape}")
    rng = as_rng(rng)
    out = images.copy()
    flip = rng.random(images.shape[0]) < probability
    out[flip] = out[flip, :, :, ::-1]
    return out


def random_crop(images, rng=None, *, padding: int = 2) -> np.ndarray:
    """Zero-pad by ``padding`` then crop back at a random per-image offset."""
    if padding < 0:
        raise ValueError(f"padding must be >= 0, got {padding}")
    images = np.asarray(images, dtype=np.float64)
    if images.ndim != 4:
        raise ValueError(f"expected (B, C, H, W), got {images.shape}")
    if padding == 0:
        return images.copy()
    rng = as_rng(rng)
    batch, channels, height, width = images.shape
    padded = np.pad(
        images, ((0, 0), (0, 0), (padding, padding), (padding, padding))
    )
    out = np.empty_like(images)
    tops = rng.integers(0, 2 * padding + 1, size=batch)
    lefts = rng.integers(0, 2 * padding + 1, size=batch)
    for i in range(batch):
        out[i] = padded[i, :, tops[i] : tops[i] + height, lefts[i] : lefts[i] + width]
    return out


def add_pixel_noise(images, rng=None, *, std: float = 0.02, clip01: bool = True) -> np.ndarray:
    """Add i.i.d. Gaussian pixel noise; optionally clamp back to [0, 1]."""
    check_positive("std", std, strict=False)
    images = np.asarray(images, dtype=np.float64)
    rng = as_rng(rng)
    out = images + rng.normal(0.0, std, size=images.shape)
    return np.clip(out, 0.0, 1.0) if clip01 else out


class Augmenter:
    """Composable augmentation pipeline applied at batch time.

    Example::

        augment = Augmenter(flip=True, crop_padding=2, noise_std=0.02, rng=0)
        x_aug = augment(x_batch)
    """

    def __init__(
        self,
        *,
        flip: bool = True,
        crop_padding: int = 0,
        noise_std: float = 0.0,
        rng=None,
    ):
        self.flip = flip
        self.crop_padding = crop_padding
        self.noise_std = noise_std
        self._rng = as_rng(rng)

    def __call__(self, images) -> np.ndarray:
        out = np.asarray(images, dtype=np.float64)
        if self.crop_padding:
            out = random_crop(out, self._rng, padding=self.crop_padding)
        if self.flip:
            out = random_horizontal_flip(out, self._rng)
        if self.noise_std > 0:
            out = add_pixel_noise(out, self._rng, std=self.noise_std)
        return out

    def __repr__(self) -> str:
        return (
            f"Augmenter(flip={self.flip}, crop_padding={self.crop_padding}, "
            f"noise_std={self.noise_std})"
        )
