"""Procedural text-classification dataset.

A synthetic stand-in for topic classification: each class has its own set
of "topic" tokens; a document is a fixed-length token sequence mixing topic
tokens (with probability ``topic_rate``) and shared background tokens.  A
bag-of-embeddings classifier separates the classes, giving the library a
second modality (beyond images) on which to exercise DP/GeoDP training.
"""

from __future__ import annotations

import numpy as np

from repro.data.datasets import Dataset
from repro.utils.rng import as_rng

__all__ = ["make_text_like"]


def make_text_like(
    num_samples: int = 1000,
    rng=None,
    *,
    num_classes: int = 4,
    vocab_size: int = 64,
    seq_length: int = 20,
    topic_words_per_class: int = 6,
    topic_rate: float = 0.35,
) -> Dataset:
    """Generate a balanced synthetic topic-classification dataset.

    Returns a :class:`Dataset` whose ``x`` is an integer token matrix
    ``(N, seq_length)`` and ``y`` the topic labels.
    """
    if num_samples < 1:
        raise ValueError(f"num_samples must be >= 1, got {num_samples}")
    needed = num_classes * topic_words_per_class
    if vocab_size <= needed:
        raise ValueError(
            f"vocab_size must exceed {needed} (topic words) to leave "
            "background tokens"
        )
    if not 0 < topic_rate <= 1:
        raise ValueError(f"topic_rate must be in (0, 1], got {topic_rate}")
    rng = as_rng(rng)

    # Disjoint topic vocabularies; the rest of the vocab is background.
    topic_words = rng.permutation(vocab_size)[:needed].reshape(
        num_classes, topic_words_per_class
    )
    background = np.setdiff1d(np.arange(vocab_size), topic_words.ravel())

    tokens = np.empty((num_samples, seq_length), dtype=np.int64)
    labels = np.empty(num_samples, dtype=np.int64)
    for i in range(num_samples):
        label = i % num_classes
        labels[i] = label
        is_topic = rng.random(seq_length) < topic_rate
        doc = rng.choice(background, size=seq_length)
        n_topic = int(is_topic.sum())
        if n_topic:
            doc[is_topic] = rng.choice(topic_words[label], size=n_topic)
        tokens[i] = doc
    data = Dataset(tokens.astype(np.float64), labels)
    # Keep integer token semantics (Dataset stores float64; Embedding casts).
    return data.shuffled(rng)
