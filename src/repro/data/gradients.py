"""Synthetic gradient datasets (paper §VI-A).

The paper's synthetic dataset is built by "randomly collect[ing] 450,000
gradients (of 20,000 dimensions) from 9 epochs of training a non-DP CNN
(B=1) on CIFAR-10".  :func:`collect_training_gradients` reproduces that
protocol exactly (at configurable scale): run plain SGD with batch size 1 on
a model and record the flattened gradient of every step, optionally keeping
a fixed random subset of coordinates to hit a target dimensionality.

:func:`synthetic_gradient_batch` is a direct generator of gradient batches
whose *directions concentrate* around a common mean direction — the property
Theorem 3 proves for averaged stochastic gradients — used by the geometry
property tests and for quick MSE experiments where training a collector
model would be wasteful.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import as_rng
from repro.utils.validation import check_positive

__all__ = ["collect_training_gradients", "synthetic_gradient_batch"]


def collect_training_gradients(
    model,
    dataset,
    num_gradients: int,
    rng=None,
    *,
    learning_rate: float = 0.05,
    dim: int | None = None,
) -> np.ndarray:
    """Record gradients from non-private B=1 SGD training (paper's protocol).

    Parameters
    ----------
    model:
        A :class:`repro.nn.Sequential`; trained in place.
    dataset:
        A :class:`repro.data.Dataset` supplying (x, y) samples.
    num_gradients:
        Number of SGD steps / recorded gradients.
    learning_rate:
        Step size of the collector's SGD.
    dim:
        If given and smaller than the model's parameter count, keep only a
        fixed random subset of ``dim`` coordinates ("dimensions are randomly
        chosen", §VI-A).

    Returns
    -------
    ndarray
        Gradient matrix of shape ``(num_gradients, dim or P)``.
    """
    if num_gradients < 1:
        raise ValueError(f"num_gradients must be >= 1, got {num_gradients}")
    check_positive("learning_rate", learning_rate)
    rng = as_rng(rng)

    total = model.num_params
    if dim is not None:
        if not 2 <= dim <= total:
            raise ValueError(f"dim must be in [2, {total}], got {dim}")
        keep = np.sort(rng.choice(total, size=dim, replace=False))
    else:
        keep = None

    n = len(dataset)
    out = np.empty((num_gradients, dim if dim is not None else total))
    params = model.get_params()
    for step in range(num_gradients):
        idx = int(rng.integers(n))
        x, y = dataset.batch([idx])
        _, grad = model.loss_and_gradient(x, y)
        out[step] = grad[keep] if keep is not None else grad
        params = params - learning_rate * grad
        model.set_params(params)
    return out


def synthetic_gradient_batch(
    num: int,
    dim: int,
    rng=None,
    *,
    concentration: float = 20.0,
    magnitude_mean: float = 1.0,
    magnitude_sigma: float = 0.25,
) -> np.ndarray:
    """Generate ``num`` gradients of dimension ``dim`` with concentrated directions.

    Each gradient is ``r * normalize(mu + eps / sqrt(concentration))`` where
    ``mu`` is a shared random unit direction, ``eps ~ N(0, I/dim)`` and
    ``r`` is log-normal with median ``magnitude_mean``.  Higher
    ``concentration`` means directions cluster more tightly around ``mu``
    (Theorem 3's concentration of averaged directions).
    """
    if num < 1 or dim < 2:
        raise ValueError(f"need num >= 1 and dim >= 2, got num={num}, dim={dim}")
    check_positive("concentration", concentration)
    check_positive("magnitude_mean", magnitude_mean)
    check_positive("magnitude_sigma", magnitude_sigma, strict=False)
    rng = as_rng(rng)

    mu = rng.normal(size=dim)
    mu /= np.linalg.norm(mu)
    eps = rng.normal(scale=1.0 / np.sqrt(dim), size=(num, dim))
    raw = mu[None, :] + eps / np.sqrt(concentration)
    raw /= np.linalg.norm(raw, axis=1, keepdims=True)
    magnitudes = magnitude_mean * np.exp(rng.normal(0.0, magnitude_sigma, size=num))
    return raw * magnitudes[:, None]
