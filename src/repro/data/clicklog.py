"""Procedural click-log dataset: huge vocabulary, tiny per-lot footprint.

The embedding-scale regime the sparse DP pipeline targets: a vocabulary of
hundreds of thousands of item/token ids, of which a single lot touches a
small fraction.  Token popularity follows a Zipf-like power law (a handful
of head tokens appear everywhere, the long tail rarely), which is also the
adversarial case for gradient compaction — repeated tokens inside one
sample must merge into one row, not inflate the per-sample norm.

The label is a simple planted signal: each class owns a disjoint slice of
the *head* of the popularity distribution, and a session is labelled by
the class whose head tokens it contains most of.  A bag-of-embeddings
classifier separates the classes while the tail rows stay almost
untouched — exactly the touch profile ``benchmarks/bench_sparse.py``
measures.
"""

from __future__ import annotations

import numpy as np

from repro.data.datasets import Dataset
from repro.utils.rng import as_rng

__all__ = ["make_click_log"]


def make_click_log(
    num_samples: int = 1000,
    rng=None,
    *,
    vocab_size: int = 10_000,
    seq_length: int = 20,
    num_classes: int = 2,
    zipf_exponent: float = 1.1,
    touch_rate: float = 0.01,
    head_per_class: int = 8,
    signal_rate: float = 0.4,
    padding_idx: int | None = None,
    min_length: int | None = None,
) -> Dataset:
    """Generate a Zipfian click-log classification dataset.

    ``touch_rate`` caps the *support* of the token distribution: only the
    ``ceil(touch_rate * vocab_size)`` most popular rows can ever be drawn,
    so any lot touches at most that fraction of the table (usually much
    less).  Within the support, token popularity decays as
    ``rank^-zipf_exponent``.

    Each class owns ``head_per_class`` disjoint head tokens; a session
    draws from its class's head with probability ``signal_rate`` and from
    the shared Zipfian background otherwise.

    With ``padding_idx`` set, sessions get a random length in
    ``[min_length, seq_length]`` (default ``min_length`` is half of
    ``seq_length``) and are right-padded with ``padding_idx``; the padding
    row is excluded from the drawable support.

    Returns a :class:`Dataset` whose ``x`` is an integer token matrix
    ``(N, seq_length)`` and ``y`` the class labels.
    """
    if num_samples < 1:
        raise ValueError(f"num_samples must be >= 1, got {num_samples}")
    if seq_length < 1:
        raise ValueError(f"seq_length must be >= 1, got {seq_length}")
    if not 0.0 < touch_rate <= 1.0:
        raise ValueError(f"touch_rate must be in (0, 1], got {touch_rate}")
    if not 0.0 <= signal_rate <= 1.0:
        raise ValueError(f"signal_rate must be in [0, 1], got {signal_rate}")
    if zipf_exponent <= 0:
        raise ValueError(f"zipf_exponent must be > 0, got {zipf_exponent}")
    support = int(np.ceil(touch_rate * vocab_size))
    needed = num_classes * head_per_class
    if support <= needed:
        raise ValueError(
            f"touch_rate * vocab_size = {support} must exceed "
            f"{needed} (= num_classes * head_per_class) head tokens"
        )
    if padding_idx is not None and not 0 <= padding_idx < vocab_size:
        raise ValueError(
            f"padding_idx must be in [0, {vocab_size}), got {padding_idx}"
        )
    rng = as_rng(rng)

    # Drawable support: the most popular rows, skipping the padding row.
    pool = np.arange(vocab_size, dtype=np.int64)
    if padding_idx is not None:
        pool = pool[pool != padding_idx]
    support_tokens = pool[:support]
    ranks = np.arange(1, support + 1, dtype=np.float64)
    popularity = ranks**-zipf_exponent
    popularity /= popularity.sum()

    # Each class owns a disjoint slice of the head.
    heads = support_tokens[:needed].reshape(num_classes, head_per_class)

    tokens = np.empty((num_samples, seq_length), dtype=np.int64)
    labels = np.arange(num_samples, dtype=np.int64) % num_classes
    for i in range(num_samples):
        background = rng.choice(support_tokens, size=seq_length, p=popularity)
        is_signal = rng.random(seq_length) < signal_rate
        n_signal = int(is_signal.sum())
        background[is_signal] = rng.choice(heads[labels[i]], size=n_signal)
        tokens[i] = background

    if padding_idx is not None:
        low = seq_length // 2 if min_length is None else min_length
        if not 1 <= low <= seq_length:
            raise ValueError(
                f"min_length must be in [1, {seq_length}], got {low}"
            )
        lengths = rng.integers(low, seq_length + 1, size=num_samples)
        pad = np.arange(seq_length)[None, :] >= lengths[:, None]
        tokens[pad] = padding_idx

    return Dataset(tokens, labels)
