"""Procedural CIFAR-10 substitute: 32x32 colour texture/shape classes.

Ten parametric image families stand in for the ten CIFAR-10 classes.  Each
family has a characteristic structure (stripes at various orientations,
rings, checkers, blobs, gradients, ...) with randomised frequency, phase,
colour and noise, so the task is genuinely harder than the digit task — the
same qualitative relationship the paper has between MNIST and CIFAR-10.
See DESIGN.md §1 for the substitution rationale.
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage

from repro.data.datasets import Dataset
from repro.utils.rng import as_rng

__all__ = ["make_cifar_like", "render_class_image", "NUM_CLASSES"]

NUM_CLASSES = 10


def _grid(size: int) -> tuple[np.ndarray, np.ndarray]:
    coords = np.linspace(-1.0, 1.0, size)
    return np.meshgrid(coords, coords, indexing="ij")


def _base_pattern(label: int, size: int, rng) -> np.ndarray:
    """Grey-scale structural pattern in [0, 1] for one class."""
    yy, xx = _grid(size)
    freq = rng.uniform(2.0, 5.0)
    phase = rng.uniform(0, 2 * np.pi)
    if label == 0:  # horizontal stripes
        return 0.5 + 0.5 * np.sin(freq * np.pi * yy + phase)
    if label == 1:  # vertical stripes
        return 0.5 + 0.5 * np.sin(freq * np.pi * xx + phase)
    if label == 2:  # diagonal stripes
        return 0.5 + 0.5 * np.sin(freq * np.pi * (xx + yy) / np.sqrt(2) + phase)
    if label == 3:  # concentric rings
        r = np.sqrt(xx**2 + yy**2)
        return 0.5 + 0.5 * np.sin(2 * freq * np.pi * r + phase)
    if label == 4:  # checkerboard
        return 0.5 + 0.5 * np.sign(np.sin(freq * np.pi * xx + phase)) * np.sign(
            np.sin(freq * np.pi * yy + phase)
        )
    if label == 5:  # radial gradient with random centre
        cx, cy = rng.uniform(-0.5, 0.5, size=2)
        r = np.sqrt((xx - cx) ** 2 + (yy - cy) ** 2)
        return np.clip(1.0 - r / np.sqrt(2), 0.0, 1.0)
    if label == 6:  # smooth random blobs (low-frequency noise)
        noise = rng.normal(size=(size, size))
        blobs = ndimage.gaussian_filter(noise, sigma=rng.uniform(3.0, 5.0))
        span = blobs.max() - blobs.min()
        return (blobs - blobs.min()) / (span if span > 0 else 1.0)
    if label == 7:  # filled square of random size/position
        img = np.zeros((size, size))
        half = int(rng.uniform(0.2, 0.4) * size)
        cx = rng.integers(half, size - half)
        cy = rng.integers(half, size - half)
        img[cy - half : cy + half, cx - half : cx + half] = 1.0
        return img
    if label == 8:  # plus/cross shape
        img = np.zeros((size, size))
        width = max(2, int(rng.uniform(0.08, 0.18) * size))
        centre = size // 2 + rng.integers(-3, 4)
        img[centre - width : centre + width, :] = 1.0
        img[:, centre - width : centre + width] = 1.0
        return img
    if label == 9:  # angled bars (distinct diagonal from class 2)
        return 0.5 + 0.5 * np.sign(np.sin(freq * np.pi * (xx - yy) / np.sqrt(2) + phase))
    raise ValueError(f"label must be 0-{NUM_CLASSES - 1}, got {label}")


# A characteristic (but jittered) base colour per class.
_CLASS_COLOURS = np.array(
    [
        [0.9, 0.2, 0.2],
        [0.2, 0.9, 0.2],
        [0.2, 0.2, 0.9],
        [0.9, 0.9, 0.2],
        [0.9, 0.2, 0.9],
        [0.2, 0.9, 0.9],
        [0.9, 0.6, 0.2],
        [0.6, 0.2, 0.9],
        [0.5, 0.9, 0.5],
        [0.7, 0.7, 0.7],
    ]
)


def render_class_image(
    label: int,
    rng=None,
    *,
    size: int = 32,
    colour_jitter: float = 0.25,
    noise_std: float = 0.08,
) -> np.ndarray:
    """Render one image of shape ``(3, size, size)`` in ``[0, 1]`` for ``label``."""
    rng = as_rng(rng)
    pattern = _base_pattern(label, size, rng)
    colour = np.clip(
        _CLASS_COLOURS[label] + rng.uniform(-colour_jitter, colour_jitter, size=3),
        0.05,
        1.0,
    )
    background = rng.uniform(0.0, 0.3, size=3)
    img = (
        pattern[None, :, :] * colour[:, None, None]
        + (1.0 - pattern[None, :, :]) * background[:, None, None]
    )
    img += rng.normal(0.0, noise_std, size=img.shape)
    return np.clip(img, 0.0, 1.0)


def make_cifar_like(num_samples: int = 2000, rng=None, *, size: int = 32) -> Dataset:
    """Generate a balanced CIFAR-like dataset of shape ``(N, 3, size, size)``."""
    if num_samples < 1:
        raise ValueError(f"num_samples must be >= 1, got {num_samples}")
    rng = as_rng(rng)
    images = np.empty((num_samples, 3, size, size))
    labels = np.empty(num_samples, dtype=np.int64)
    for i in range(num_samples):
        label = i % NUM_CLASSES
        labels[i] = label
        images[i] = render_class_image(label, rng, size=size)
    return Dataset(images, labels).shuffled(rng)
