"""In-memory labelled dataset container."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import as_rng

__all__ = ["Dataset", "train_test_split"]


@dataclass
class Dataset:
    """Features ``x`` (N, ...) and integer labels ``y`` (N,)."""

    x: np.ndarray
    y: np.ndarray

    def __post_init__(self):
        self.x = np.asarray(self.x, dtype=np.float64)
        self.y = np.asarray(self.y, dtype=np.int64)
        if self.x.shape[0] != self.y.shape[0]:
            raise ValueError(
                f"x has {self.x.shape[0]} samples but y has {self.y.shape[0]}"
            )
        if self.y.ndim != 1:
            raise ValueError(f"y must be 1-D, got shape {self.y.shape}")

    def __len__(self) -> int:
        return self.x.shape[0]

    @property
    def num_classes(self) -> int:
        """Number of distinct classes (assumes labels 0..K-1)."""
        return int(self.y.max()) + 1 if len(self) else 0

    def subset(self, indices) -> "Dataset":
        """New dataset restricted to ``indices``."""
        indices = np.asarray(indices)
        return Dataset(self.x[indices], self.y[indices])

    def shuffled(self, rng=None) -> "Dataset":
        """New dataset with rows permuted."""
        perm = as_rng(rng).permutation(len(self))
        return self.subset(perm)

    def batch(self, indices) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(x[indices], y[indices])``."""
        indices = np.asarray(indices)
        return self.x[indices], self.y[indices]

    def normalized(self) -> "Dataset":
        """Feature-wise standardisation to zero mean / unit std (global stats)."""
        mean = self.x.mean()
        std = self.x.std()
        if std == 0:
            std = 1.0
        return Dataset((self.x - mean) / std, self.y)

    def class_counts(self) -> np.ndarray:
        """Histogram of labels over 0..num_classes-1."""
        return np.bincount(self.y, minlength=self.num_classes)


def train_test_split(
    dataset: Dataset, test_fraction: float = 0.2, rng=None
) -> tuple[Dataset, Dataset]:
    """Random split into ``(train, test)`` with ``test_fraction`` held out."""
    if not 0 < test_fraction < 1:
        raise ValueError(f"test_fraction must be in (0, 1), got {test_fraction}")
    perm = as_rng(rng).permutation(len(dataset))
    n_test = max(1, int(round(test_fraction * len(dataset))))
    return dataset.subset(perm[n_test:]), dataset.subset(perm[:n_test])
