"""Model/parameter persistence helpers.

Parameters are the model's flat vector (``Sequential.get_params``), so a
checkpoint is portable across any code that can rebuild the same
architecture.  Files are plain ``.npz`` archives with a metadata channel.

:func:`save_checkpoint` persists *parameters only* — for full training
state (optimizer internals, accountant, RNG streams) with exact resume
guarantees, use :mod:`repro.checkpoint` instead.

All savers here go through :func:`atomic_write_bytes` (write to a
temporary file in the destination directory, fsync, rename), so a crash
mid-write never leaves a truncated file under the final name.
"""

from __future__ import annotations

import io
import json
import os
from pathlib import Path

import numpy as np

__all__ = [
    "atomic_write_bytes",
    "save_checkpoint",
    "load_checkpoint",
    "save_history",
    "load_history",
    "save_jsonl",
    "load_jsonl",
]

_FORMAT_VERSION = 1


def atomic_write_bytes(path, payload: bytes) -> Path:
    """Write ``payload`` to ``path`` atomically (tmp file + fsync + rename).

    The destination only ever holds either its previous contents or the
    complete new payload — never a partial write.  Returns ``path``.
    """
    path = Path(path)
    tmp = path.with_name(f"{path.name}.tmp-{os.getpid()}")
    try:
        with open(tmp, "wb") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    finally:
        if tmp.exists():
            tmp.unlink()
    return path


def save_checkpoint(path, model, *, metadata: dict | None = None) -> None:
    """Save a model's parameters (and optional metadata) to ``path``.

    Parameters
    ----------
    path:
        Destination file; ``.npz`` is appended if missing.
    model:
        Any object with ``get_params()`` returning a flat vector.
    metadata:
        JSON-serialisable dict stored alongside the parameters (e.g.
        iteration count, sigma, epsilon spent).

    For complete training state (optimizer, accountant, RNG) see
    :func:`repro.checkpoint.save_snapshot`.
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    meta = dict(metadata or {})
    meta["_format_version"] = _FORMAT_VERSION
    buffer = io.BytesIO()
    np.savez(
        buffer,
        params=model.get_params(),
        metadata=np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8),
    )
    atomic_write_bytes(path, buffer.getvalue())


def load_checkpoint(path, model=None) -> tuple[np.ndarray, dict]:
    """Load parameters (and metadata) from ``path``.

    When ``model`` is given, its parameters are set in place (shape checked
    by ``set_params``).  Returns ``(params, metadata)`` either way.
    """
    path = Path(path)
    if not path.exists() and path.with_suffix(".npz").exists():
        path = path.with_suffix(".npz")
    with np.load(path) as archive:
        params = archive["params"]
        meta = json.loads(bytes(archive["metadata"].tobytes()).decode())
    version = meta.pop("_format_version", None)
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported checkpoint format version {version!r}")
    if model is not None:
        model.set_params(params)
    return params, meta


def save_history(path, history) -> None:
    """Save a :class:`~repro.core.trainer.TrainingHistory` to JSON."""
    path = Path(path)
    payload = {
        "losses": list(map(float, history.losses)),
        "test_accuracy": [[int(i), float(a)] for i, a in history.test_accuracy],
        "iterations": int(history.iterations),
        "sur_acceptance_rate": (
            None
            if history.sur_acceptance_rate is None
            else float(history.sur_acceptance_rate)
        ),
    }
    atomic_write_bytes(path, json.dumps(payload, indent=2).encode("utf-8"))


def load_history(path):
    """Load a :class:`~repro.core.trainer.TrainingHistory` from JSON."""
    from repro.core.trainer import TrainingHistory

    payload = json.loads(Path(path).read_text())
    history = TrainingHistory(
        losses=payload["losses"],
        test_accuracy=[(int(i), float(a)) for i, a in payload["test_accuracy"]],
        iterations=payload["iterations"],
        sur_acceptance_rate=payload["sur_acceptance_rate"],
    )
    return history


def save_jsonl(path, records, *, append: bool = False) -> None:
    """Write an iterable of JSON-serialisable dicts as one-object-per-line.

    JSONL is the interchange format of the telemetry subsystem
    (:mod:`repro.telemetry.export`): it streams, appends cheaply and is
    greppable.  ``append=True`` adds to an existing file instead of
    truncating it.
    """
    path = Path(path)
    mode = "a" if append else "w"
    with path.open(mode, encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record, separators=(",", ":")))
            handle.write("\n")


def load_jsonl(path) -> list[dict]:
    """Read a JSONL file back into a list of dicts (blank lines skipped)."""
    path = Path(path)
    records = []
    for lineno, line in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
        line = line.strip()
        if not line:
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}:{lineno}: invalid JSONL line: {exc}") from exc
    return records
