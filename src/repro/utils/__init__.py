"""Small shared utilities: seeded RNG handling, validation, table formatting."""

from repro.utils.rng import as_rng, spawn_rngs
from repro.utils.validation import (
    check_in_range,
    check_positive,
    check_probability,
    check_vector,
)
from repro.utils.tables import format_table
from repro.utils.serialization import (
    load_checkpoint,
    load_history,
    save_checkpoint,
    save_history,
)

__all__ = [
    "as_rng",
    "spawn_rngs",
    "check_in_range",
    "check_positive",
    "check_probability",
    "check_vector",
    "format_table",
    "save_checkpoint",
    "load_checkpoint",
    "save_history",
    "load_history",
]
