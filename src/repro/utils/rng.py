"""Random-number-generator helpers.

Every stochastic component in the library accepts either an integer seed, a
``numpy.random.Generator``, or ``None``.  :func:`as_rng` normalises all three
to a ``Generator`` so that callers can reproduce any run from a single seed.
"""

from __future__ import annotations

import numpy as np

RngLike = "int | np.random.Generator | None"


def as_rng(rng: int | np.random.Generator | None) -> np.random.Generator:
    """Normalise ``rng`` into a ``numpy.random.Generator``.

    Parameters
    ----------
    rng:
        ``None`` (fresh non-deterministic generator), an ``int`` seed, or an
        existing ``Generator`` (returned unchanged).
    """
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(int(rng))
    raise TypeError(f"rng must be None, int or Generator, got {type(rng)!r}")


def get_rng_state(rng: np.random.Generator) -> dict:
    """Snapshot a generator's bit-generator state as a JSON-safe dict.

    The returned dict is the ``BitGenerator.state`` mapping (plain ints and
    strings), so it round-trips through JSON without loss and can be fed
    back to :func:`set_rng_state` to resume the stream bit-for-bit.
    """
    if not isinstance(rng, np.random.Generator):
        raise TypeError(f"expected a Generator, got {type(rng)!r}")
    return rng.bit_generator.state


def set_rng_state(rng: np.random.Generator, state: dict) -> None:
    """Restore a generator's bit-generator state captured by :func:`get_rng_state`.

    The generator must wrap the same bit-generator algorithm the state was
    captured from (numpy validates the ``bit_generator`` name).
    """
    if not isinstance(rng, np.random.Generator):
        raise TypeError(f"expected a Generator, got {type(rng)!r}")
    if not isinstance(state, dict):
        raise TypeError(f"rng state must be a dict, got {type(state)!r}")
    rng.bit_generator.state = state


def spawn_rngs(rng: int | np.random.Generator | None, n: int) -> list[np.random.Generator]:
    """Create ``n`` independent child generators from ``rng``.

    Uses ``SeedSequence.spawn`` semantics via ``Generator.spawn`` so the
    children produce statistically independent streams, which keeps parallel
    experiment arms reproducible yet uncorrelated.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    return list(as_rng(rng).spawn(n))
