"""Argument validation helpers shared across the library.

These raise ``ValueError``/``TypeError`` with uniform messages so that tests
can assert on error behaviour and users get consistent diagnostics.
"""

from __future__ import annotations

import numpy as np


def check_positive(name: str, value: float, *, strict: bool = True) -> float:
    """Validate that ``value`` is a positive (or non-negative) finite scalar."""
    value = float(value)
    if not np.isfinite(value):
        raise ValueError(f"{name} must be finite, got {value}")
    if strict and value <= 0:
        raise ValueError(f"{name} must be > 0, got {value}")
    if not strict and value < 0:
        raise ValueError(f"{name} must be >= 0, got {value}")
    return value


def check_probability(name: str, value: float, *, allow_zero: bool = False) -> float:
    """Validate that ``value`` lies in (0, 1] (or [0, 1] with ``allow_zero``)."""
    value = float(value)
    low_ok = value >= 0 if allow_zero else value > 0
    if not (low_ok and value <= 1):
        bracket = "[0, 1]" if allow_zero else "(0, 1]"
        raise ValueError(f"{name} must be in {bracket}, got {value}")
    return value


def check_in_range(
    name: str,
    value: float,
    low: float,
    high: float,
    *,
    inclusive_low: bool = True,
    inclusive_high: bool = True,
) -> float:
    """Validate that ``value`` lies inside the interval [low, high]."""
    value = float(value)
    low_ok = value >= low if inclusive_low else value > low
    high_ok = value <= high if inclusive_high else value < high
    if not (low_ok and high_ok):
        lb = "[" if inclusive_low else "("
        hb = "]" if inclusive_high else ")"
        raise ValueError(f"{name} must be in {lb}{low}, {high}{hb}, got {value}")
    return value


def check_vector(name: str, value, *, min_dim: int = 1) -> np.ndarray:
    """Validate and convert ``value`` into a 1-D float64 array."""
    arr = np.asarray(value, dtype=np.float64)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be 1-D, got shape {arr.shape}")
    if arr.shape[0] < min_dim:
        raise ValueError(f"{name} must have at least {min_dim} dimensions, got {arr.shape[0]}")
    if not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} must be finite")
    return arr


def check_matrix(name: str, value, *, ncols: int | None = None) -> np.ndarray:
    """Validate and convert ``value`` into a 2-D float64 array."""
    arr = np.asarray(value, dtype=np.float64)
    if arr.ndim != 2:
        raise ValueError(f"{name} must be 2-D, got shape {arr.shape}")
    if ncols is not None and arr.shape[1] != ncols:
        raise ValueError(f"{name} must have {ncols} columns, got {arr.shape[1]}")
    if not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} must be finite")
    return arr
