"""Plain-text table formatting for experiment reports.

The benchmark harness prints the same rows/series the paper reports; this
module renders them as aligned monospace tables without third-party
dependencies.
"""

from __future__ import annotations

from collections.abc import Sequence


def _cell(value) -> str:
    if isinstance(value, float):
        if value != 0 and (abs(value) < 1e-3 or abs(value) >= 1e5):
            return f"{value:.3e}"
        return f"{value:.4f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    *,
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned text table."""
    str_rows = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return " | ".join(c.ljust(w) for c, w in zip(cells, widths))

    out = []
    if title:
        out.append(title)
    out.append(line(headers))
    out.append("-+-".join("-" * w for w in widths))
    out.extend(line(row) for row in str_rows)
    return "\n".join(out)
