"""Checkpoint/resume subsystem for fault-tolerant training.

Long DP training runs (the paper's Table II/III grids repeated across
epsilon, beta, C and learning rate) must survive interruption without
restarting — and for a *privacy* system, "survive" has a stricter meaning
than usual: the resumed run must spend exactly the privacy budget of an
uninterrupted run.  This package therefore snapshots *complete* training
state — model parameters, optimizer internals (momentum velocity, Adam
moments, lot size, adaptive-clipping threshold + history), accountant state
(the accumulated RDP curve and step history), every RNG bit-generator
state, the training history, SUR counters and telemetry — and restores it
so that a run killed at iteration ``k`` and resumed is **bit-identical** to
one that never stopped: same parameters, same losses, same noise draws,
same final epsilon.

Files are written atomically (write + fsync + rename) with a versioned
schema; corrupted or partial snapshots are detected and skipped on resume.

Usage through the trainer::

    trainer.train(1000, checkpoint_every=50, checkpoint_dir="run/ckpt")
    # ... process dies at iteration 730 ...
    # rebuild model/optimizer/trainer with the same seeds, then:
    trainer.train(1000, checkpoint_every=50, checkpoint_dir="run/ckpt")
    # resumes from snapshot 700 and finishes identically to an
    # uninterrupted 1000-iteration run

or from the CLI::

    python -m repro.experiments.cli table2 --checkpoint-dir run/ckpt --resume
"""

from repro.checkpoint.snapshot import (
    SCHEMA_VERSION,
    SnapshotError,
    latest_snapshot,
    list_snapshots,
    load_snapshot,
    prune_snapshots,
    save_snapshot,
    snapshot_path,
)
from repro.checkpoint.state import (
    capture_training_state,
    history_from_state,
    history_to_state,
    restore_training_state,
)

__all__ = [
    "SCHEMA_VERSION",
    "SnapshotError",
    "save_snapshot",
    "load_snapshot",
    "snapshot_path",
    "list_snapshots",
    "latest_snapshot",
    "prune_snapshots",
    "capture_training_state",
    "restore_training_state",
    "history_to_state",
    "history_from_state",
]
