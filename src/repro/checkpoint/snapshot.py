"""Atomic, versioned snapshot files for training state.

A snapshot is a single ``.npz`` archive holding a JSON metadata channel
(the nested state tree, with every numpy array replaced by a reference)
plus one channel per array.  Arrays round-trip bit-exactly through the
binary channels; scalars round-trip exactly through JSON (Python floats
serialise via ``repr``, which is lossless).

Durability guarantees:

* **Atomicity** — :func:`save_snapshot` writes to a temporary file in the
  destination directory, fsyncs it, and ``os.replace``\\ s it into place, so
  a crash mid-write never leaves a truncated file under the final name.
* **Corruption detection** — :func:`load_snapshot` validates the archive's
  magic string and schema version and re-raises any parse failure as
  :class:`SnapshotError`; :func:`latest_snapshot` walks snapshots newest
  first, skipping invalid files with a warning, so a partial file from a
  hard kill only costs the progress since the previous snapshot.
"""

from __future__ import annotations

import io
import json
import re
import warnings
from pathlib import Path

import numpy as np

from repro.utils.serialization import atomic_write_bytes

__all__ = [
    "SnapshotError",
    "SCHEMA_VERSION",
    "save_snapshot",
    "load_snapshot",
    "snapshot_path",
    "list_snapshots",
    "latest_snapshot",
    "prune_snapshots",
]

SCHEMA_VERSION = 1
_MAGIC = "repro-training-snapshot"
_ARRAY_KEY = "__ndarray__"
_FILE_RE = re.compile(r"^snapshot-(\d+)\.npz$")


class SnapshotError(RuntimeError):
    """A snapshot file is missing, corrupted, or schema-incompatible."""


def _encode(obj, arrays: dict[str, np.ndarray]):
    """Replace ndarrays with channel references; normalise to JSON-safe types."""
    if isinstance(obj, np.ndarray):
        key = f"array_{len(arrays)}"
        arrays[key] = obj
        return {_ARRAY_KEY: key}
    if isinstance(obj, dict):
        out = {}
        for key, value in obj.items():
            if not isinstance(key, str):
                raise TypeError(f"state keys must be strings, got {key!r}")
            if key == _ARRAY_KEY:
                raise ValueError(f"state key {_ARRAY_KEY!r} is reserved")
            out[key] = _encode(value, arrays)
        return out
    if isinstance(obj, (list, tuple)):
        return [_encode(value, arrays) for value in obj]
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        return float(obj)
    if isinstance(obj, np.bool_):
        return bool(obj)
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    raise TypeError(f"cannot snapshot value of type {type(obj)!r}")


def _decode(obj, arrays):
    """Inverse of :func:`_encode`."""
    if isinstance(obj, dict):
        if set(obj) == {_ARRAY_KEY}:
            key = obj[_ARRAY_KEY]
            if key not in arrays:
                raise SnapshotError(f"snapshot references missing array {key!r}")
            return arrays[key]
        return {key: _decode(value, arrays) for key, value in obj.items()}
    if isinstance(obj, list):
        return [_decode(value, arrays) for value in obj]
    return obj


def save_snapshot(path, state: dict) -> Path:
    """Atomically write ``state`` (a nested dict, ndarrays allowed) to ``path``.

    The file appears under its final name only once fully written: the
    archive is serialised to ``<name>.tmp-<pid>`` in the same directory,
    flushed and fsynced, then renamed over ``path`` in one ``os.replace``.
    Returns the final path.
    """
    path = Path(path)
    if not isinstance(state, dict):
        raise TypeError(f"state must be a dict, got {type(state)!r}")
    arrays: dict[str, np.ndarray] = {}
    payload = {
        "magic": _MAGIC,
        "schema_version": SCHEMA_VERSION,
        "state": _encode(state, arrays),
    }
    metadata = np.frombuffer(json.dumps(payload).encode(), dtype=np.uint8)
    buffer = io.BytesIO()
    np.savez(buffer, metadata=metadata, **arrays)
    return atomic_write_bytes(path, buffer.getvalue())


def load_snapshot(path) -> dict:
    """Load and validate a snapshot; raises :class:`SnapshotError` if invalid."""
    path = Path(path)
    if not path.exists():
        raise SnapshotError(f"no snapshot at {path}")
    try:
        with np.load(path) as archive:
            metadata = bytes(archive["metadata"].tobytes())
            arrays = {key: archive[key] for key in archive.files if key != "metadata"}
    except SnapshotError:
        raise
    except Exception as exc:  # truncated zip, missing channel, bad pickle, ...
        raise SnapshotError(f"cannot read snapshot {path}: {exc}") from exc
    try:
        payload = json.loads(metadata.decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SnapshotError(f"snapshot {path} has corrupt metadata: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("magic") != _MAGIC:
        raise SnapshotError(f"{path} is not a training snapshot")
    version = payload.get("schema_version")
    if version != SCHEMA_VERSION:
        raise SnapshotError(
            f"snapshot {path} has schema version {version!r}; "
            f"this build reads version {SCHEMA_VERSION}"
        )
    return _decode(payload["state"], arrays)


def snapshot_path(directory, iteration: int) -> Path:
    """Canonical snapshot filename for ``iteration`` inside ``directory``."""
    if iteration < 0:
        raise ValueError(f"iteration must be >= 0, got {iteration}")
    return Path(directory) / f"snapshot-{int(iteration):09d}.npz"


def list_snapshots(directory) -> list[Path]:
    """Snapshot files in ``directory``, sorted by iteration ascending."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    found = []
    for entry in directory.iterdir():
        match = _FILE_RE.match(entry.name)
        if match:
            found.append((int(match.group(1)), entry))
    return [path for _, path in sorted(found)]


def prune_snapshots(directory, *, keep: int) -> list[Path]:
    """Delete all but the ``keep`` newest snapshots in ``directory``.

    Long-lived writers (the budget server snapshots its state after every
    transition) would otherwise accumulate unbounded files.  The newest
    ``keep`` snapshots are always retained — corruption recovery walks
    newest-first, so keeping several bounds the damage of a partial write.
    Returns the paths that were removed.
    """
    if keep < 1:
        raise ValueError(f"keep must be >= 1, got {keep}")
    removed = []
    for path in list_snapshots(directory)[:-keep]:
        try:
            path.unlink()
        except OSError:
            continue
        removed.append(path)
    return removed


def latest_snapshot(directory, *, max_iteration: int | None = None, telemetry=None):
    """Newest valid snapshot in ``directory``, or ``None``.

    Walks the snapshots newest-first; corrupted or schema-incompatible
    files (e.g. a partial write from a hard kill) are skipped with a
    warning.  ``max_iteration`` ignores snapshots taken beyond that
    iteration, so resuming never overshoots the requested run length.
    ``telemetry`` (an optional
    :class:`~repro.telemetry.MetricsRecorder`) counts each skipped file
    under ``checkpoint_corrupt_snapshots``, so the degraded-mode fallback
    is observable like every other one (see ``docs/telemetry.md``).
    Returns ``(path, state)``.
    """
    for path in reversed(list_snapshots(directory)):
        if max_iteration is not None:
            iteration = int(_FILE_RE.match(path.name).group(1))
            if iteration > max_iteration:
                continue
        try:
            return path, load_snapshot(path)
        except SnapshotError as exc:
            if telemetry is not None:
                telemetry.increment("checkpoint_corrupt_snapshots")
            warnings.warn(f"skipping invalid snapshot {path}: {exc}", stacklevel=2)
    return None
