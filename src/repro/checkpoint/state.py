"""Capture and restore complete training state for exact resume.

:func:`capture_training_state` walks a :class:`~repro.core.trainer.Trainer`
and collects *everything* that evolves during training — model parameters,
optimizer internals (via each component's ``state_dict``), accountant
history, every RNG bit-generator state, the
:class:`~repro.core.trainer.TrainingHistory`, SUR counters and telemetry —
into one nested dict that :mod:`repro.checkpoint.snapshot` can persist.
:func:`restore_training_state` applies such a dict to a freshly
reconstructed trainer (same architecture, hyper-parameters and seeds as the
original run), after which training continues bit-identically to a run that
was never interrupted.
"""

from __future__ import annotations

import numpy as np

from repro.checkpoint.snapshot import SnapshotError
from repro.utils.rng import get_rng_state, set_rng_state

__all__ = [
    "capture_training_state",
    "restore_training_state",
    "history_to_state",
    "history_from_state",
]


def history_to_state(history) -> dict:
    """JSON-safe dict form of a :class:`~repro.core.trainer.TrainingHistory`."""
    return {
        "losses": [float(loss) for loss in history.losses],
        "test_accuracy": [[int(i), float(a)] for i, a in history.test_accuracy],
        "iterations": int(history.iterations),
        "sur_acceptance_rate": (
            None
            if history.sur_acceptance_rate is None
            else float(history.sur_acceptance_rate)
        ),
    }


def history_from_state(state: dict):
    """Inverse of :func:`history_to_state`."""
    from repro.core.trainer import TrainingHistory

    return TrainingHistory(
        losses=[float(loss) for loss in state["losses"]],
        test_accuracy=[(int(i), float(a)) for i, a in state["test_accuracy"]],
        iterations=int(state["iterations"]),
        sur_acceptance_rate=(
            None
            if state["sur_acceptance_rate"] is None
            else float(state["sur_acceptance_rate"])
        ),
    )


def _augment_rng(trainer):
    """The augmentation pipeline's generator, if it keeps one."""
    augment = trainer.augment
    if augment is None:
        return None
    for name in ("_rng", "rng"):
        rng = getattr(augment, name, None)
        if isinstance(rng, np.random.Generator):
            return rng
    return None


def capture_training_state(trainer, history, iteration: int) -> dict:
    """Snapshot the full mutable state of ``trainer`` after ``iteration``."""
    optimizer = trainer.optimizer
    state = {
        "iteration": int(iteration),
        "optimizer_class": type(optimizer).__name__,
        "num_params": int(trainer.model.num_params),
        "model_params": trainer.model.get_params().copy(),
        "trainer_rng": get_rng_state(trainer.rng),
        "history": history_to_state(history),
        "optimizer": (
            optimizer.state_dict() if hasattr(optimizer, "state_dict") else {}
        ),
        "sur": None if trainer.sur is None else trainer.sur.state_dict(),
        "telemetry": (
            None if trainer.telemetry is None else trainer.telemetry.state_dict()
        ),
    }
    augment_rng = _augment_rng(trainer)
    if augment_rng is not None:
        state["augment_rng"] = get_rng_state(augment_rng)
    return state


def restore_training_state(trainer, state: dict):
    """Apply a captured state to ``trainer``; returns ``(history, iteration)``.

    The trainer must have been rebuilt exactly as for the original run (same
    model architecture, optimizer configuration, techniques and seeds); this
    function then overwrites every mutable piece so the next iteration
    continues the interrupted run bit-for-bit.  Mismatches (different
    optimizer class or parameter count) raise :class:`SnapshotError` rather
    than silently resuming a different experiment.
    """
    optimizer = trainer.optimizer
    expected = type(optimizer).__name__
    if state["optimizer_class"] != expected:
        raise SnapshotError(
            f"snapshot was taken with {state['optimizer_class']}, but the "
            f"trainer uses {expected}"
        )
    if int(state["num_params"]) != int(trainer.model.num_params):
        raise SnapshotError(
            f"snapshot has {state['num_params']} model parameters, but the "
            f"model has {trainer.model.num_params}"
        )
    if (state["sur"] is None) != (trainer.sur is None):
        raise SnapshotError(
            "snapshot and trainer disagree on whether SUR is attached"
        )
    trainer.model.set_params(np.asarray(state["model_params"], dtype=np.float64))
    set_rng_state(trainer.rng, state["trainer_rng"])
    if hasattr(optimizer, "load_state_dict"):
        optimizer.load_state_dict(state["optimizer"])
    if trainer.sur is not None:
        trainer.sur.load_state_dict(state["sur"])
    if trainer.telemetry is not None and state["telemetry"] is not None:
        trainer.telemetry.load_state_dict(state["telemetry"])
    augment_rng = _augment_rng(trainer)
    if augment_rng is not None and "augment_rng" in state:
        set_rng_state(augment_rng, state["augment_rng"])
    return history_from_state(state["history"]), int(state["iteration"])
