"""Directional (circular/spherical) statistics.

Quantifies the concentration of gradient directions that Theorems 2-3 rely
on: the resultant length of a set of unit vectors, the implied von
Mises-Fisher concentration ``kappa`` (Banerjee et al.'s approximation), and
circular mean/variance for individual angles.  Used by the concentration
experiment and available for workload analysis.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_matrix

__all__ = [
    "mean_direction",
    "resultant_length",
    "estimate_vmf_kappa",
    "circular_mean",
    "circular_variance",
]


def _unit_rows(vectors) -> np.ndarray:
    vectors = check_matrix("vectors", vectors)
    norms = np.linalg.norm(vectors, axis=1, keepdims=True)
    if np.any(norms == 0):
        raise ValueError("zero vectors have no direction")
    return vectors / norms


def mean_direction(vectors) -> np.ndarray:
    """Unit vector in the direction of the sum of the normalised rows."""
    units = _unit_rows(vectors)
    total = units.sum(axis=0)
    norm = np.linalg.norm(total)
    if norm == 0:
        raise ValueError("directions cancel exactly; mean direction undefined")
    return total / norm


def resultant_length(vectors) -> float:
    """Mean resultant length ``R in [0, 1]``: 1 = perfectly aligned, 0 = spread."""
    units = _unit_rows(vectors)
    return float(np.linalg.norm(units.mean(axis=0)))


def estimate_vmf_kappa(vectors) -> float:
    """Estimate the vMF concentration ``kappa`` from unit-vector samples.

    Banerjee et al. (2005): ``kappa ~= R (d - R^2) / (1 - R^2)`` with ``R``
    the mean resultant length.  Returns ``inf`` for perfectly aligned data.
    """
    units = _unit_rows(vectors)
    d = units.shape[1]
    r = float(np.linalg.norm(units.mean(axis=0)))
    if r >= 1.0 - 1e-12:
        return float("inf")
    return r * (d - r**2) / (1.0 - r**2)


def circular_mean(angles) -> float:
    """Mean of angles (radians) respecting wraparound."""
    angles = np.asarray(angles, dtype=np.float64)
    if angles.size == 0:
        raise ValueError("need at least one angle")
    return float(np.arctan2(np.mean(np.sin(angles)), np.mean(np.cos(angles))))


def circular_variance(angles) -> float:
    """Circular variance ``1 - R`` in [0, 1] (0 = all equal)."""
    angles = np.asarray(angles, dtype=np.float64)
    if angles.size == 0:
        raise ValueError("need at least one angle")
    r = np.hypot(np.mean(np.sin(angles)), np.mean(np.cos(angles)))
    return float(1.0 - r)
