"""Bounding-factor privacy region for gradient directions (paper §V-B step 2).

GeoDP observes (Theorem 3) that the averaged direction of stochastic
gradients concentrates in a small sub-space rather than spreading over the
whole sphere, so protecting the *entire* direction space (as classic DP-SGD
implicitly does) is overprotective.  A bounding factor ``beta in (0, 1]``
shrinks each angle's protected range to

* ``Delta theta_z = beta * pi``   for the polar angles ``1 <= z <= d-2``
* ``Delta theta_{d-1} = 2 * beta * pi``  for the azimuthal angle,

giving total L2 sensitivity ``Delta theta = sqrt(d + 2) * beta * pi``
(paper §V-B step 3).  Lemma 2 bounds the induced DP relaxation by
``delta' <= 1 - beta``.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_probability

__all__ = [
    "direction_sensitivity",
    "per_angle_sensitivity",
    "bound_angles",
    "delta_prime_upper_bound",
]


def per_angle_sensitivity(d: int, beta: float) -> np.ndarray:
    """Per-coordinate sensitivity of the ``d - 1`` angles under bounding factor ``beta``.

    Returns an array of length ``d - 1``: ``beta*pi`` for the first ``d - 2``
    entries and ``2*beta*pi`` for the last.
    """
    if d < 2:
        raise ValueError(f"d must be >= 2, got {d}")
    beta = check_probability("beta", beta)
    sens = np.full(d - 1, beta * np.pi)
    sens[-1] = 2 * beta * np.pi
    return sens


def direction_sensitivity(d: int, beta: float) -> float:
    """Total L2 sensitivity of the direction vector (paper §V-B step 3).

    ``Delta theta = sqrt((d-2)*(beta*pi)^2 + (2*beta*pi)^2) = sqrt(d+2)*beta*pi``
    """
    if d < 2:
        raise ValueError(f"d must be >= 2, got {d}")
    beta = check_probability("beta", beta)
    return float(np.sqrt(d + 2) * beta * np.pi)


def bound_angles(thetas, beta: float) -> np.ndarray:
    """Clamp angle vectors into the beta-bounded privacy region.

    Each polar angle (range ``[0, pi]``) is clamped into the centred interval
    of width ``beta*pi``, i.e. ``[(1-beta)*pi/2, (1+beta)*pi/2]``; the
    azimuthal angle (range ``(-pi, pi]``) into ``[-beta*pi, beta*pi]``.  With
    ``beta = 1`` this is a no-op on canonical angles.  Clamping guarantees
    that the advertised sensitivity :func:`direction_sensitivity` genuinely
    bounds the maximum change of the released angles between neighbouring
    datasets, which is what makes Algorithm 1's noise calibration valid.
    """
    beta = check_probability("beta", beta)
    thetas = np.atleast_2d(np.asarray(thetas, dtype=np.float64)).copy()
    if thetas.shape[1] >= 2:
        half = beta * np.pi / 2
        lead = thetas[:, :-1]
        np.clip(lead, np.pi / 2 - half, np.pi / 2 + half, out=lead)
    np.clip(thetas[:, -1], -beta * np.pi, beta * np.pi, out=thetas[:, -1])
    return thetas


def delta_prime_upper_bound(beta: float) -> float:
    """Upper bound on the extra delta' of GeoDP's direction release (Lemma 2).

    The beta-region fails to cover at most a ``1 - beta`` fraction of the
    direction space even under the worst case of uniformly spread directions,
    hence ``delta' <= 1 - beta``.
    """
    beta = check_probability("beta", beta)
    return 1.0 - beta
