"""Error metrics for perturbed gradients and directions.

Implements Definition 4 of the paper (mean squared error over perturbed
directions) plus the standard vector metrics used throughout the evaluation
(gradient MSE, cosine similarity, angle between vectors).
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_matrix

__all__ = [
    "direction_mse",
    "gradient_mse",
    "cosine_similarity",
    "angle_between",
    "angular_errors",
]


def _paired(name_a: str, a, name_b: str, b) -> tuple[np.ndarray, np.ndarray]:
    a = check_matrix(name_a, np.atleast_2d(np.asarray(a, dtype=np.float64)))
    b = check_matrix(name_b, np.atleast_2d(np.asarray(b, dtype=np.float64)))
    if a.shape != b.shape:
        raise ValueError(f"{name_a} shape {a.shape} != {name_b} shape {b.shape}")
    return a, b


def direction_mse(perturbed_thetas, true_thetas, *, wrap_last: bool = True) -> float:
    """Mean squared error of perturbed directions (Definition 4).

    ``MSE(theta*) = (1/m) * sum_i ||theta_i* - theta_i||^2``

    Parameters
    ----------
    perturbed_thetas, true_thetas:
        ``(m, d-1)`` angle matrices (or single 1-D angle vectors).
    wrap_last:
        When true (default), differences in the final azimuthal angle are
        taken modulo 2*pi so that e.g. ``-pi + 0.01`` and ``pi - 0.01`` count
        as 0.02 apart, matching the circular topology of that coordinate.
    """
    pert, true = _paired("perturbed_thetas", perturbed_thetas, "true_thetas", true_thetas)
    diff = pert - true
    if wrap_last:
        diff[:, -1] = np.mod(diff[:, -1] + np.pi, 2 * np.pi) - np.pi
    return float(np.mean(np.sum(diff**2, axis=1)))


def gradient_mse(perturbed_grads, true_grads) -> float:
    """Mean squared error of perturbed gradients: ``(1/m) sum_i ||g_i* - g_i||^2``."""
    pert, true = _paired("perturbed_grads", perturbed_grads, "true_grads", true_grads)
    return float(np.mean(np.sum((pert - true) ** 2, axis=1)))


def cosine_similarity(a, b) -> np.ndarray:
    """Row-wise cosine similarity between two ``(m, d)`` matrices.

    Zero vectors get similarity 0 (they carry no direction).
    """
    a, b = _paired("a", a, "b", b)
    num = np.sum(a * b, axis=1)
    denom = np.linalg.norm(a, axis=1) * np.linalg.norm(b, axis=1)
    out = np.zeros_like(num)
    nonzero = denom > 0
    out[nonzero] = num[nonzero] / denom[nonzero]
    return np.clip(out, -1.0, 1.0)


def angle_between(a, b) -> np.ndarray:
    """Row-wise angle (radians, in [0, pi]) between two ``(m, d)`` matrices."""
    return np.arccos(cosine_similarity(a, b))


def angular_errors(perturbed_grads, true_grads) -> dict[str, float]:
    """Summary statistics of the angular error between gradient batches.

    Returns mean / median / max angle (radians) between corresponding rows.
    Convenience wrapper used by the experiment reports.
    """
    angles = angle_between(perturbed_grads, true_grads)
    return {
        "mean": float(np.mean(angles)),
        "median": float(np.median(angles)),
        "max": float(np.max(angles)),
    }
