"""Sampling directions on the unit hyper-sphere.

Theorem 3 models averaged gradient *directions* as concentrating around a
mean direction; the von Mises-Fisher (vMF) distribution is the canonical
such model, so the library ships samplers for property tests and synthetic
workloads:

* :func:`sample_uniform_sphere` — uniform on S^{d-1} (normalised Gaussians).
* :func:`sample_von_mises_fisher` — vMF(mu, kappa) via Wood's (1994)
  rejection sampler for the radial component plus a Householder rotation.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import as_rng
from repro.utils.validation import check_positive, check_vector

__all__ = ["sample_uniform_sphere", "sample_von_mises_fisher"]


def sample_uniform_sphere(num: int, dim: int, rng=None) -> np.ndarray:
    """Draw ``num`` unit vectors uniformly from S^{dim-1}."""
    if num < 1 or dim < 2:
        raise ValueError(f"need num >= 1 and dim >= 2, got num={num}, dim={dim}")
    rng = as_rng(rng)
    x = rng.normal(size=(num, dim))
    norms = np.linalg.norm(x, axis=1, keepdims=True)
    # A zero draw has probability 0; guard anyway.
    norms[norms == 0] = 1.0
    return x / norms


def _sample_vmf_radial(num: int, dim: int, kappa: float, rng) -> np.ndarray:
    """Wood's rejection sampler for the cosine w = <x, mu> under vMF."""
    b = (-2.0 * kappa + np.sqrt(4.0 * kappa**2 + (dim - 1.0) ** 2)) / (dim - 1.0)
    x0 = (1.0 - b) / (1.0 + b)
    c = kappa * x0 + (dim - 1.0) * np.log(1.0 - x0**2)

    out = np.empty(num)
    filled = 0
    while filled < num:
        batch = max(num - filled, 16)
        z = rng.beta((dim - 1.0) / 2.0, (dim - 1.0) / 2.0, size=batch)
        w = (1.0 - (1.0 + b) * z) / (1.0 - (1.0 - b) * z)
        u = rng.random(batch)
        accept = kappa * w + (dim - 1.0) * np.log(1.0 - x0 * w) - c >= np.log(u)
        accepted = w[accept]
        take = min(len(accepted), num - filled)
        out[filled : filled + take] = accepted[:take]
        filled += take
    return out


def sample_von_mises_fisher(num: int, mu, kappa: float, rng=None) -> np.ndarray:
    """Draw ``num`` unit vectors from vMF(mu, kappa).

    Parameters
    ----------
    mu:
        Mean direction (any nonzero vector; normalised internally).
    kappa:
        Concentration (> 0).  Larger kappa pulls samples toward ``mu``;
        kappa -> 0 approaches the uniform distribution.
    """
    mu = check_vector("mu", mu, min_dim=2)
    norm = np.linalg.norm(mu)
    if norm == 0:
        raise ValueError("mu must be nonzero")
    mu = mu / norm
    kappa = check_positive("kappa", kappa)
    if num < 1:
        raise ValueError(f"num must be >= 1, got {num}")
    rng = as_rng(rng)
    dim = mu.shape[0]

    w = _sample_vmf_radial(num, dim, kappa, rng)
    # Uniform directions orthogonal to e1, then scale to sqrt(1 - w^2).
    v = sample_uniform_sphere(num, dim - 1, rng) if dim > 2 else np.where(
        rng.random((num, 1)) < 0.5, 1.0, -1.0
    )
    samples = np.empty((num, dim))
    samples[:, 0] = w
    samples[:, 1:] = np.sqrt(np.maximum(0.0, 1.0 - w**2))[:, None] * v

    # Householder reflection mapping e1 to mu.
    e1 = np.zeros(dim)
    e1[0] = 1.0
    u = e1 - mu
    u_norm = np.linalg.norm(u)
    if u_norm > 1e-12:
        u /= u_norm
        samples = samples - 2.0 * np.outer(samples @ u, u)
    return samples
