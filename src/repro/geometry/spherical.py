"""Hyper-spherical (d-spherical) coordinate conversions.

A d-dimensional vector ``g = (g_1, ..., g_d)`` is represented by one
magnitude ``r = ||g||_2`` and ``d - 1`` angles ``theta = (theta_1, ...,
theta_{d-1})`` (paper Eq. 24-25):

.. math::

    \\theta_z = \\operatorname{arctan2}\\Big(\\sqrt{\\sum_{k=z+1}^{d} g_k^2},
                                             g_z\\Big)  \\quad 1 \\le z \\le d-2

    \\theta_{d-1} = \\operatorname{arctan2}(g_d, g_{d-1})

so the leading ``d - 2`` angles lie in ``[0, pi]`` (the arctan2 first argument
is a norm, hence non-negative) and the final angle lies in ``(-pi, pi]``.
The inverse map (Eq. 27) is

.. math::

    g_1 = r\\cos\\theta_1, \\qquad
    g_z = r\\Big(\\prod_{i<z}\\sin\\theta_i\\Big)\\cos\\theta_z, \\qquad
    g_d = r\\prod_{i=1}^{d-1}\\sin\\theta_i.

Both directions are fully vectorised; the batch variants operate on ``(m, d)``
matrices of gradients at once, which is what makes GeoDP's conversions O(d)
per gradient in practice (paper §V-B complexity discussion).

The ``undefined`` arctan2(0, 0) case of Eq. 26 is mapped to 0, matching
numpy's convention; a zero tail with ``g_z = 0`` therefore yields angle 0 and
round-trips to the same (zero) coordinates.

The numeric kernels live behind :mod:`repro.backend` (``spherical_decompose``
/ ``spherical_compose``); this module validates and dispatches.  The default
reference backend reproduces the historical implementation bit-for-bit;
accelerated backends are parity-gated by ``tests/backend/``.
"""

from __future__ import annotations

import numpy as np

from repro.backend import get_backend
from repro.utils.validation import check_matrix, check_vector

__all__ = [
    "to_spherical",
    "to_cartesian",
    "to_spherical_batch",
    "to_cartesian_batch",
    "canonicalize_angles",
]


def to_spherical(g) -> tuple[float, np.ndarray]:
    """Convert one d-dimensional vector to ``(magnitude, angles)``.

    Parameters
    ----------
    g:
        1-D array-like with ``d >= 2`` entries.

    Returns
    -------
    (float, ndarray)
        The magnitude ``||g||`` and the ``d - 1`` angles of Eq. 25.
    """
    g = check_vector("g", g, min_dim=2)
    r, theta = to_spherical_batch(g[None, :])
    return float(r[0]), theta[0]


def to_cartesian(magnitude: float, theta) -> np.ndarray:
    """Convert ``(magnitude, angles)`` back to rectangular coordinates (Eq. 27)."""
    theta = check_vector("theta", theta, min_dim=1)
    g = to_cartesian_batch(np.asarray([magnitude], dtype=np.float64), theta[None, :])
    return g[0]


def to_spherical_batch(grads) -> tuple[np.ndarray, np.ndarray]:
    """Convert a batch of gradients ``(m, d)`` to magnitudes ``(m,)`` and angles ``(m, d-1)``.

    The tail norms ``sqrt(sum_{k>z} g_k^2)`` are computed with a reversed
    cumulative sum of squares, so the whole conversion is O(m*d).
    """
    grads = check_matrix("grads", grads)
    _, d = grads.shape
    if d < 2:
        raise ValueError(f"gradients must have dimension >= 2, got d={d}")
    return get_backend().spherical_decompose(grads)


def to_cartesian_batch(magnitudes, thetas) -> np.ndarray:
    """Convert batches of magnitudes ``(m,)`` and angles ``(m, d-1)`` to gradients ``(m, d)``."""
    magnitudes = np.asarray(magnitudes, dtype=np.float64)
    thetas = check_matrix("thetas", thetas)
    if magnitudes.ndim != 1 or magnitudes.shape[0] != thetas.shape[0]:
        raise ValueError(
            f"magnitudes shape {magnitudes.shape} incompatible with thetas {thetas.shape}"
        )
    return get_backend().spherical_compose(magnitudes, thetas)


def canonicalize_angles(thetas) -> np.ndarray:
    """Map possibly-noised angles into canonical ranges, preserving direction.

    After additive Gaussian noise, angles may leave their natural ranges
    (polar angles in ``[0, pi]``, azimuth in ``(-pi, pi]``).  Eq. 27 is well
    defined for any real angles, so this is only needed when *comparing*
    angle vectors (e.g. Definition 4's MSE), but the fix-up must preserve the
    represented vector: folding a polar angle from ``(pi, 2*pi)`` back to
    ``(0, pi)`` keeps its cosine but flips its sine, i.e. negates the whole
    downstream sub-vector.  The negation is propagated as the antipodal map
    on the remaining angles (every later polar angle ``t -> pi - t``, which
    keeps the flag pending, and finally azimuth ``t -> t + pi``), so the
    output angles reconstruct exactly the same cartesian vector.

    The input's dimensionality is preserved: a single angle vector ``(d-1,)``
    comes back as ``(d-1,)``, a batch ``(m, d-1)`` as ``(m, d-1)``.
    """
    thetas = np.asarray(thetas, dtype=np.float64)
    single = thetas.ndim == 1
    if single:
        thetas = thetas[None, :]
    elif thetas.ndim != 2:
        raise ValueError(f"thetas must be 1-D or 2-D, got shape {thetas.shape}")
    if thetas.shape[1] == 0:
        raise ValueError("thetas must have at least one angle column")
    # The fold itself is a backend kernel (row-parallel hot loop); see
    # ReferenceBackend.canonicalize_angles for the fold-parity algebra.
    out = get_backend().canonicalize_angles(np.ascontiguousarray(thetas))
    return out[0] if single else out
