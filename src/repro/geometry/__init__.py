"""Hyper-spherical coordinate substrate (paper §V-A).

Converts d-dimensional gradients to/from ``(magnitude, direction)`` pairs,
computes directional error metrics (Definition 4), and implements the
bounding-factor privacy region that determines GeoDP's direction sensitivity
(Algorithm 1, step 2).
"""

from repro.geometry.spherical import (
    to_spherical,
    to_cartesian,
    to_spherical_batch,
    to_cartesian_batch,
    canonicalize_angles,
)
from repro.geometry.metrics import (
    direction_mse,
    gradient_mse,
    cosine_similarity,
    angle_between,
    angular_errors,
)
from repro.geometry.bounding import (
    direction_sensitivity,
    per_angle_sensitivity,
    bound_angles,
    delta_prime_upper_bound,
)
from repro.geometry.sampling import sample_uniform_sphere, sample_von_mises_fisher
from repro.geometry.statistics import (
    circular_mean,
    circular_variance,
    estimate_vmf_kappa,
    mean_direction,
    resultant_length,
)

__all__ = [
    "to_spherical",
    "to_cartesian",
    "to_spherical_batch",
    "to_cartesian_batch",
    "canonicalize_angles",
    "direction_mse",
    "gradient_mse",
    "cosine_similarity",
    "angle_between",
    "angular_errors",
    "direction_sensitivity",
    "per_angle_sensitivity",
    "bound_angles",
    "delta_prime_upper_bound",
    "sample_uniform_sphere",
    "sample_von_mises_fisher",
    "circular_mean",
    "circular_variance",
    "estimate_vmf_kappa",
    "mean_direction",
    "resultant_length",
]
