"""Ghost-clipping execution helpers shared by the DP optimizers.

The ghost fast path replaces "materialize the ``(B, P)`` per-sample
gradient matrix, clip, sum" with two backward passes over the model
(:meth:`repro.nn.Sequential.loss_and_clipped_grad_sum`): one that computes
per-sample gradient *norms* from layer-local quantities, and one that
re-runs backward with the loss-output gradients scaled by the clipping
factors.  Gradient memory drops from O(B*P) to O(P); the DP release —
sensitivity, noise draw, accounting — is untouched because the clipped sum
is numerically the same quantity.

These helpers centralize the telemetry bookkeeping (``clip`` span,
clipping diagnostics from the ghost norms, ``ghost_*`` counters) so
:class:`~repro.core.dpsgd.DpSgdOptimizer`,
:class:`~repro.core.geodp.GeoDpSgdOptimizer` and
:class:`~repro.core.geodp_adam.GeoDpAdamOptimizer` route through one
implementation.
"""

from __future__ import annotations

import numpy as np

from repro.telemetry.diagnostics import record_clipping
from repro.telemetry.tracing import joint_span

__all__ = ["GRAD_MODES", "check_grad_mode", "ghost_clipped_sum", "ghost_step"]

#: Recognized gradient execution modes.  ``materialize`` is the default and
#: preserves bit-identical seed behaviour; ``ghost`` is the opt-in fast path;
#: ``sparse`` is the embedding-scale touched-rows path, driven by
#: :class:`repro.sparse.SparseTrainer` (the core Trainer rejects it).
GRAD_MODES = ("materialize", "ghost", "sparse")


def check_grad_mode(grad_mode: str) -> str:
    """Validate a ``grad_mode`` string and return it."""
    if grad_mode not in GRAD_MODES:
        raise ValueError(
            f"grad_mode must be one of {GRAD_MODES}, got {grad_mode!r}"
        )
    return grad_mode


def ghost_clipped_sum(optimizer, model, x, y) -> tuple[np.ndarray, np.ndarray]:
    """Clip-and-sum one batch through the ghost path, with telemetry.

    Returns ``(per-sample losses (B,), clipped gradient sum (P,))``.  The
    optimizer's clipping strategy observes the ghost norms exactly as it
    would on the materialized path (adaptive thresholds follow the same
    trajectory), and an attached recorder gets the same clipping
    diagnostics plus ``ghost_clipped_sums`` / ``ghost_samples`` counters.
    """
    recorder = getattr(optimizer, "recorder", None)
    tracer = getattr(optimizer, "tracer", None)
    if recorder is None and tracer is None:
        losses, summed, _ = model.loss_and_clipped_grad_sum(x, y, optimizer.clipping)
        return losses, summed
    with joint_span(recorder, tracer, "ghost"):
        losses, summed, norms = model.loss_and_clipped_grad_sum(
            x, y, optimizer.clipping
        )
    if recorder is not None:
        record_clipping(recorder, None, optimizer.clipping.sensitivity(), norms=norms)
        recorder.increment("ghost_clipped_sums")
        recorder.increment("ghost_samples", len(norms))
    return losses, summed


def ghost_step(optimizer, params, model, x, y) -> tuple[np.ndarray, float]:
    """One full DP step via the ghost path; returns ``(params, mean loss)``.

    Equivalent to ``optimizer.step(params, per_sample_grads)`` with the
    materialized gradients of ``(x, y)`` — same noise draw, same accountant
    update — but with O(P) gradient memory.
    """
    losses, summed = ghost_clipped_sum(optimizer, model, x, y)
    new_params = optimizer.step_presummed(params, summed, len(losses))
    batch_loss = float(np.mean(losses)) if losses.size else float("nan")
    return new_params, batch_loss
