"""The paper's primary contribution: GeoDP, plus the DP-SGD baseline stack.

* :mod:`repro.core.perturbation` — the perturbation primitives (classic DP
  noise, Eq. 8, and GeoDP's geometric noise, Algorithm 1 steps 6-9).
* :mod:`repro.core.dpsgd` / :mod:`repro.core.geodp` — optimizers.
* :mod:`repro.core.sgd` — non-private SGD/Momentum/Adam and DP-Adam.
* :mod:`repro.core.techniques` — IS [67] and SUR [68] training optimisations.
* :mod:`repro.core.trainer` — the training loop tying everything together.
* :mod:`repro.core.theory` — Theorem 1's efficiency-difference decomposition.
"""

from repro.core.perturbation import (
    perturb_dp,
    perturb_geodp,
    perturb_dp_batch,
    perturb_geodp_batch,
    clip_gradients,
)
from repro.core.dpsgd import DpSgdOptimizer
from repro.core.geodp import GeoDpSgdOptimizer
from repro.core.sgd import SgdOptimizer, AdamOptimizer, DpAdamOptimizer
from repro.core.geodp_adam import GeoDpAdamOptimizer
from repro.core.schedules import (
    ConstantSchedule,
    CosineDecay,
    ExponentialDecay,
    LinearDecay,
    Schedule,
    ScheduledOptimizer,
    StepDecay,
)
from repro.core.techniques import ImportanceSampling, SelectiveUpdateRelease
from repro.core.trainer import Trainer, TrainingHistory
from repro.core.federated import FederatedTrainer
from repro.core.theory import (
    model_efficiency,
    efficiency_difference,
    expected_item_a,
)

__all__ = [
    "perturb_dp",
    "perturb_geodp",
    "perturb_dp_batch",
    "perturb_geodp_batch",
    "clip_gradients",
    "DpSgdOptimizer",
    "GeoDpSgdOptimizer",
    "SgdOptimizer",
    "AdamOptimizer",
    "DpAdamOptimizer",
    "GeoDpAdamOptimizer",
    "Schedule",
    "ConstantSchedule",
    "LinearDecay",
    "ExponentialDecay",
    "StepDecay",
    "CosineDecay",
    "ScheduledOptimizer",
    "ImportanceSampling",
    "SelectiveUpdateRelease",
    "Trainer",
    "TrainingHistory",
    "FederatedTrainer",
    "model_efficiency",
    "efficiency_difference",
    "expected_item_a",
]
