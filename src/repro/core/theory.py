"""Theorem 1's efficiency-difference decomposition and related quantities.

Theorem 1 measures the per-iteration efficiency gap between DP-SGD and
noise-free SGD (the "ED"):

.. math::

    \\|w_{t+1}^* - w^\\star\\|^2 - \\|w_{t+1} - w^\\star\\|^2
    = \\eta^2\\underbrace{(\\|\\tilde g^*\\|^2 - \\|\\tilde g\\|^2)}_{A}
      + 2\\eta\\underbrace{\\langle \\tilde g^* - \\tilde g,
        w^\\star - w_t\\rangle}_{B}

Item A captures the noise-scale effect (reducible by tuning ``eta``, ``C``,
``B``); Item B the *directional* effect, which Corollary 2 shows those
knobs cannot reduce — the motivation for GeoDP.  This module computes the
decomposition empirically for any pair of clean/noisy gradients, plus the
closed-form expectation of Item A for Gaussian noise, so experiments and
tests can verify the theorem numerically.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_positive, check_vector

__all__ = ["model_efficiency", "efficiency_difference", "expected_item_a"]


def model_efficiency(w, w_star) -> float:
    """Definition 3: squared distance to the optimum, ``||w - w*||^2``."""
    w = check_vector("w", w)
    w_star = check_vector("w_star", w_star)
    if w.shape != w_star.shape:
        raise ValueError(f"w shape {w.shape} != w_star shape {w_star.shape}")
    return float(np.sum((w - w_star) ** 2))


def efficiency_difference(
    w_t,
    w_star,
    clean_gradient,
    noisy_gradient,
    learning_rate: float,
) -> dict[str, float]:
    """Empirical Theorem-1 decomposition for one iteration.

    Returns ``item_a``, ``item_b``, ``total`` (``= eta^2 A + 2 eta B``) and
    the directly computed gap ``direct`` (which tests assert equals
    ``total`` up to floating point).
    """
    w_t = check_vector("w_t", w_t)
    w_star = check_vector("w_star", w_star)
    g = check_vector("clean_gradient", clean_gradient)
    g_noisy = check_vector("noisy_gradient", noisy_gradient)
    eta = check_positive("learning_rate", learning_rate)

    item_a = float(np.sum(g_noisy**2) - np.sum(g**2))
    item_b = float(np.dot(g_noisy - g, w_star - w_t))
    total = eta**2 * item_a + 2 * eta * item_b

    w_next_noisy = w_t - eta * g_noisy
    w_next_clean = w_t - eta * g
    direct = model_efficiency(w_next_noisy, w_star) - model_efficiency(
        w_next_clean, w_star
    )
    return {"item_a": item_a, "item_b": item_b, "total": total, "direct": direct}


def expected_item_a(
    noise_multiplier: float, clip_norm: float, batch_size: int, dim: int
) -> float:
    """Closed-form expectation of Item A under zero-mean Gaussian noise.

    With ``n = (C/B) n_sigma`` and ``n_sigma ~ N(0, sigma^2 I_d)``,
    ``E[A] = E[2 <n, g> + ||n||^2] = d * (C * sigma / B)^2`` — strictly
    positive whenever noise is added, which is Corollary 1's reason DP-SGD
    cannot stay at the optimum.
    """
    noise_multiplier = check_positive("noise_multiplier", noise_multiplier, strict=False)
    clip_norm = check_positive("clip_norm", clip_norm)
    if batch_size < 1 or dim < 1:
        raise ValueError("batch_size and dim must be >= 1")
    return dim * (clip_norm * noise_multiplier / batch_size) ** 2
