"""GeoDP-SGD optimizer (the paper's Algorithm 1).

Per iteration:

1. clip each per-sample gradient and average: ``g_tilde`` (steps 5);
2. convert ``g_tilde`` to hyper-spherical coordinates ``(|g|, theta)``
   (step 6);
3. the bounding factor ``beta`` fixes the direction sensitivity
   ``Delta theta = sqrt(d+2) * beta * pi`` (step 7);
4. perturb magnitude and direction separately (step 8):
   ``|g|* = |g| + (C/B) n_sigma``,
   ``theta* = theta + (Delta theta / B) n_sigma``;
5. convert back and descend (steps 9-10).

With the same noise multiplier as DP-SGD, the direction — which Theorem 1
shows is what actually drives model efficiency — receives unbiased,
``beta``-controllable noise instead of the biased accumulation classic DP
induces (Lemma 1).
"""

from __future__ import annotations

import numpy as np

from repro.backend import workspace
from repro.core.perturbation import perturb_geodp
from repro.geometry.bounding import (
    delta_prime_upper_bound,
    direction_sensitivity,
    per_angle_sensitivity,
)
from repro.privacy.clipping import ClippingStrategy, FlatClipping
from repro.telemetry.diagnostics import record_clipping, record_release
from repro.telemetry.tracing import joint_span
from repro.utils.rng import as_rng
from repro.utils.validation import check_matrix, check_positive, check_probability

__all__ = ["GeoDpSgdOptimizer"]


class GeoDpSgdOptimizer:
    """GeoDP-SGD on flat parameter vectors (Algorithm 1)."""

    requires_per_sample = True

    def __init__(
        self,
        learning_rate: float,
        clipping: float | ClippingStrategy,
        noise_multiplier: float,
        beta: float,
        rng=None,
        *,
        accountant=None,
        sample_rate: float | None = None,
        sensitivity_mode: str = "total",
        lot_size: int | None = None,
        momentum: float = 0.0,
        recorder=None,
        tracer=None,
        ledger=None,
        grad_mode: str = "materialize",
    ):
        from repro.core.ghost import check_grad_mode

        self.recorder = recorder
        self.tracer = tracer
        self.ledger = ledger
        self.grad_mode = check_grad_mode(grad_mode)
        self.learning_rate = check_positive("learning_rate", learning_rate)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = momentum
        self._velocity: np.ndarray | None = None
        if isinstance(clipping, (int, float)):
            clipping = FlatClipping(float(clipping))
        self.clipping = clipping
        self.noise_multiplier = check_positive(
            "noise_multiplier", noise_multiplier, strict=False
        )
        self.beta = check_probability("beta", beta)
        if sensitivity_mode not in ("total", "per_angle"):
            raise ValueError(
                f"sensitivity_mode must be 'total' or 'per_angle', got {sensitivity_mode!r}"
            )
        self.sensitivity_mode = sensitivity_mode
        self.rng = as_rng(rng)
        self.accountant = accountant
        self.sample_rate = sample_rate
        if accountant is not None and sample_rate is None:
            raise ValueError("sample_rate is required when an accountant is attached")
        if lot_size is not None and lot_size < 1:
            raise ValueError(f"lot_size must be >= 1, got {lot_size}")
        self.lot_size = lot_size
        self.last_noisy_gradient: np.ndarray | None = None

    def direction_sensitivity(self, d: int) -> float:
        """``Delta theta`` for a ``d``-dimensional gradient at this ``beta``."""
        return direction_sensitivity(d, self.beta)

    @property
    def delta_prime(self) -> float:
        """Lemma 2's bound on the extra delta of the direction release."""
        return delta_prime_upper_bound(self.beta)

    def clipped_sum(self, per_sample_grads) -> np.ndarray:
        """Clip per-sample gradients and sum them (the accumulation unit)."""
        grads = check_matrix("per_sample_grads", per_sample_grads)
        if grads.shape[0] == 0:
            return np.zeros(grads.shape[1])
        if self.recorder is None and self.tracer is None:
            return self.clipping.clip(grads).sum(axis=0)
        with joint_span(self.recorder, self.tracer, "clip"):
            clipped, norms = self.clipping.clip_with_norms(grads)
            summed = clipped.sum(axis=0)
        if self.recorder is not None:
            record_clipping(
                self.recorder, grads, self.clipping.sensitivity(), norms=norms
            )
        return summed

    def ghost_clipped_sum(self, model, x, y) -> tuple[np.ndarray, np.ndarray]:
        """Clip-and-sum one batch via the ghost fast path (no ``(B, P)``).

        GeoDP only needs the *averaged* clipped gradient before its
        spherical conversion (Algorithm 1 step 5), so the ghost sum feeds
        :meth:`noisy_gradient_presummed` unchanged.
        """
        from repro.core.ghost import ghost_clipped_sum

        return ghost_clipped_sum(self, model, x, y)

    def step_ghost(self, params: np.ndarray, model, x, y) -> tuple[np.ndarray, float]:
        """One GeoDP update via the ghost path; returns ``(params, mean loss)``."""
        from repro.core.ghost import ghost_step

        return ghost_step(self, params, model, x, y)

    def _noise_split(self, d: int, denominator: int) -> dict[str, float]:
        """GeoDP's spherical noise split: magnitude vs direction noise std."""
        sigma = self.noise_multiplier
        if self.sensitivity_mode == "total":
            dir_sens = direction_sensitivity(d, self.beta)
        else:
            dir_sens = float(np.mean(per_angle_sensitivity(d, self.beta)))
        return {
            "geodp_beta": self.beta,
            "geodp_magnitude_noise_scale": sigma * self.clipping.sensitivity() / denominator,
            "geodp_direction_noise_scale": sigma * dir_sens / denominator,
        }

    def noisy_gradient_presummed(self, clipped_sum: np.ndarray, count: int) -> np.ndarray:
        """Algorithm 1 steps 6-9 on an already clipped-and-summed gradient."""
        denominator = self.lot_size if self.lot_size is not None else count
        if denominator < 1:
            raise ValueError(
                "empty batch with no lot_size: set lot_size for Poisson sampling"
            )
        workspace.note_release_shape(self, clipped_sum.shape)
        if self.recorder is None and self.tracer is None:
            # Workspace-pooled average (bit-identical to ``clipped_sum /
            # denominator``); the buffer is recycled once the release no
            # longer references it.
            avg = workspace.take(clipped_sum.shape)
            np.divide(clipped_sum, denominator, out=avg)
            noisy = perturb_geodp(
                avg,
                self.clipping.sensitivity(),
                self.noise_multiplier,
                denominator,
                self.beta,
                self.rng,
                clip=False,  # per-sample clipping already bounded the average
                sensitivity_mode=self.sensitivity_mode,
            )
            workspace.give(avg)
            return noisy
        avg = clipped_sum / denominator
        with joint_span(self.recorder, self.tracer, "noise"):
            noisy = perturb_geodp(
                avg,
                self.clipping.sensitivity(),
                self.noise_multiplier,
                denominator,
                self.beta,
                self.rng,
                clip=False,  # per-sample clipping already bounded the average
                sensitivity_mode=self.sensitivity_mode,
                tracer=self.tracer,
            )
        if self.recorder is not None:
            record_release(
                self.recorder,
                avg,
                noisy,
                sigma=self.noise_multiplier,
                sensitivity=self.clipping.sensitivity(),
                extras=self._noise_split(len(avg), denominator),
            )
        return noisy

    def noisy_gradient(self, per_sample_grads) -> np.ndarray:
        """Algorithm 1 steps 5-9 on one batch of per-sample gradients."""
        grads = check_matrix("per_sample_grads", per_sample_grads)
        return self.noisy_gradient_presummed(self.clipped_sum(grads), grads.shape[0])

    def _descend(self, params: np.ndarray, noisy: np.ndarray) -> np.ndarray:
        """(Optionally momentum-accelerated) descent on the DP release."""
        if self.momentum == 0.0:
            return params - self.learning_rate * noisy
        if self._velocity is None:
            self._velocity = np.zeros_like(params)
        self._velocity = self.momentum * self._velocity + noisy
        return params - self.learning_rate * self._velocity

    #: Mechanism label written into ledger entries.
    ledger_mechanism = "geodp"

    def _ledger_meta(self) -> dict:
        """Beta and calibration mode, so a ledger audit sees the mechanism."""
        return {"beta": self.beta, "sensitivity_mode": self.sensitivity_mode}

    def _account_release(self) -> None:
        """Record one DP release with the accountant and the ledger."""
        if self.accountant is not None:
            self.accountant.step(max(self.noise_multiplier, 1e-12), self.sample_rate)
        if self.ledger is not None:
            self.ledger.record_release(
                mechanism=self.ledger_mechanism,
                sigma=self.noise_multiplier,
                sensitivity=self.clipping.sensitivity(),
                sample_rate=0.0 if self.sample_rate is None else self.sample_rate,
                accountant=self.accountant,
                meta=self._ledger_meta(),
            )
        if self.recorder is not None:
            # Per-mechanism release counter for the live metric surface
            # (release mix across gaussian/geodp under one registry).
            self.recorder.increment(f"releases_{self.ledger_mechanism}")

    def step(self, params: np.ndarray, per_sample_grads) -> np.ndarray:
        """One GeoDP-SGD update; returns the new parameter vector."""
        noisy = self.noisy_gradient(per_sample_grads)
        self.last_noisy_gradient = noisy
        self._account_release()
        return self._descend(params, noisy)

    def step_presummed(self, params: np.ndarray, clipped_sum: np.ndarray, count: int) -> np.ndarray:
        """One update from an accumulated clipped sum (gradient accumulation)."""
        noisy = self.noisy_gradient_presummed(clipped_sum, count)
        self.last_noisy_gradient = noisy
        self._account_release()
        return self._descend(params, noisy)

    def step_sparse(self, params: np.ndarray, dense_sum: np.ndarray, count: int, sparse) -> np.ndarray:
        """One sparse GeoDP update: geometric noise on the active subvector.

        The dense average and the touched embedding rows are perturbed
        jointly as one averaged gradient (Algorithm 1 on the active
        coordinates); untouched rows accrue deferred Gaussian cover noise
        through ``sparse.lazy``.  Accounting and the ledger entry are
        identical to the dense path.  Returns the new dense params.
        """
        from repro.sparse.release import geodp_sparse_release

        denominator = self.lot_size if self.lot_size is not None else count
        if denominator < 1:
            raise ValueError(
                "empty batch with no lot_size: set lot_size for Poisson sampling"
            )
        noisy = geodp_sparse_release(self, dense_sum, sparse, denominator)
        self.last_noisy_gradient = noisy
        self._account_release()
        return self._descend(params, noisy)

    def state_dict(self) -> dict:
        """Mutable optimizer state for checkpointing (see :mod:`repro.checkpoint`)."""
        from repro.core.sgd import _copy_or_none
        from repro.utils.rng import get_rng_state

        return {
            "velocity": _copy_or_none(self._velocity),
            "lot_size": None if self.lot_size is None else int(self.lot_size),
            "rng": get_rng_state(self.rng),
            "clipping": self.clipping.state_dict(),
            "accountant": (
                None if self.accountant is None else self.accountant.state_dict()
            ),
            "ledger": None if self.ledger is None else self.ledger.state_dict(),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore state captured by :meth:`state_dict`."""
        from repro.core.sgd import _copy_or_none
        from repro.utils.rng import set_rng_state

        self._velocity = _copy_or_none(state["velocity"])
        self.lot_size = None if state["lot_size"] is None else int(state["lot_size"])
        set_rng_state(self.rng, state["rng"])
        self.clipping.load_state_dict(state["clipping"])
        if state["accountant"] is not None:
            if self.accountant is None:
                raise ValueError("snapshot has accountant state but none is attached")
            self.accountant.load_state_dict(state["accountant"])
        # Snapshots from before the ledger existed have no "ledger" key.
        if state.get("ledger") is not None:
            if self.ledger is None:
                raise ValueError("snapshot has ledger state but none is attached")
            self.ledger.load_state_dict(state["ledger"])

    def __repr__(self) -> str:
        return (
            f"GeoDpSgdOptimizer(lr={self.learning_rate}, clipping={self.clipping!r}, "
            f"sigma={self.noise_multiplier}, beta={self.beta})"
        )
