"""Learning-rate and noise-multiplier schedules.

The paper notes (§IV) that "existing works apply lower noise scale when
DP-SGD is about to converge" to shrink Item A near the optimum.  These
schedules implement that pattern for both the learning rate and the noise
multiplier; :class:`ScheduledOptimizer` wraps any optimizer from
:mod:`repro.core` and updates its hyper-parameters each step.

Accounting note: a *decreasing* noise multiplier costs more privacy per
step; the wrapper keeps the wrapped optimizer's accountant in the loop so
the heterogeneous steps are composed correctly (the RDP accountant already
supports per-step multipliers).
"""

from __future__ import annotations

import math

from repro.utils.validation import check_positive

__all__ = [
    "Schedule",
    "ConstantSchedule",
    "LinearDecay",
    "ExponentialDecay",
    "StepDecay",
    "CosineDecay",
    "ScheduledOptimizer",
]


class Schedule:
    """Maps an iteration index (0-based) to a hyper-parameter value."""

    def value(self, step: int) -> float:
        raise NotImplementedError

    def __call__(self, step: int) -> float:
        if step < 0:
            raise ValueError(f"step must be >= 0, got {step}")
        return self.value(step)


class ConstantSchedule(Schedule):
    """Always returns ``value``."""

    def __init__(self, value: float):
        self._value = check_positive("value", value, strict=False)

    def value(self, step: int) -> float:
        return self._value


class LinearDecay(Schedule):
    """Linear interpolation from ``start`` to ``end`` over ``total_steps``."""

    def __init__(self, start: float, end: float, total_steps: int):
        self.start = check_positive("start", start, strict=False)
        self.end = check_positive("end", end, strict=False)
        if total_steps < 1:
            raise ValueError(f"total_steps must be >= 1, got {total_steps}")
        self.total_steps = total_steps

    def value(self, step: int) -> float:
        frac = min(step / self.total_steps, 1.0)
        return self.start + (self.end - self.start) * frac


class ExponentialDecay(Schedule):
    """``start * decay^step``, floored at ``minimum``."""

    def __init__(self, start: float, decay: float, *, minimum: float = 0.0):
        self.start = check_positive("start", start)
        if not 0 < decay <= 1:
            raise ValueError(f"decay must be in (0, 1], got {decay}")
        self.decay = decay
        self.minimum = check_positive("minimum", minimum, strict=False)

    def value(self, step: int) -> float:
        return max(self.start * self.decay**step, self.minimum)


class StepDecay(Schedule):
    """Multiply by ``factor`` every ``period`` steps."""

    def __init__(self, start: float, factor: float, period: int):
        self.start = check_positive("start", start)
        self.factor = check_positive("factor", factor)
        if period < 1:
            raise ValueError(f"period must be >= 1, got {period}")
        self.period = period

    def value(self, step: int) -> float:
        return self.start * self.factor ** (step // self.period)


class CosineDecay(Schedule):
    """Cosine annealing from ``start`` to ``end`` over ``total_steps``."""

    def __init__(self, start: float, end: float, total_steps: int):
        self.start = check_positive("start", start, strict=False)
        self.end = check_positive("end", end, strict=False)
        if total_steps < 1:
            raise ValueError(f"total_steps must be >= 1, got {total_steps}")
        self.total_steps = total_steps

    def value(self, step: int) -> float:
        frac = min(step / self.total_steps, 1.0)
        return self.end + (self.start - self.end) * 0.5 * (1 + math.cos(math.pi * frac))


class ScheduledOptimizer:
    """Wrap an optimizer, driving its hyper-parameters from schedules.

    Parameters
    ----------
    optimizer:
        Any optimizer with ``learning_rate`` (and optionally
        ``noise_multiplier``) attributes and a ``step(params, grads)``.
    learning_rate / noise_multiplier:
        Optional :class:`Schedule` instances; missing ones leave the wrapped
        optimizer's value untouched.
    """

    def __init__(
        self,
        optimizer,
        *,
        learning_rate: Schedule | None = None,
        noise_multiplier: Schedule | None = None,
    ):
        self.optimizer = optimizer
        self.lr_schedule = learning_rate
        self.noise_schedule = noise_multiplier
        if noise_multiplier is not None and not hasattr(optimizer, "noise_multiplier"):
            raise ValueError(
                f"{type(optimizer).__name__} has no noise_multiplier to schedule"
            )
        self.step_count = 0

    @property
    def requires_per_sample(self) -> bool:
        return getattr(self.optimizer, "requires_per_sample", False)

    def step(self, params, grads):
        """Update hyper-parameters for this step, then delegate."""
        if self.lr_schedule is not None:
            self.optimizer.learning_rate = self.lr_schedule(self.step_count)
        if self.noise_schedule is not None:
            self.optimizer.noise_multiplier = self.noise_schedule(self.step_count)
        self.step_count += 1
        return self.optimizer.step(params, grads)

    def __getattr__(self, name):
        # Delegate everything else (last_noisy_gradient, accountant, ...).
        return getattr(self.optimizer, name)

    def __repr__(self) -> str:
        return f"ScheduledOptimizer({self.optimizer!r})"
