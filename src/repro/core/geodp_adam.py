"""GeoDP-Adam: the paper's named future-work direction (§VII).

"As for future work, we plan to study the impact of mainstream training
optimizations, such as Adam optimizer [54], on GeoDP."  This module
implements the natural composition: the per-iteration released quantity is
GeoDP's geometrically perturbed averaged gradient (identical privacy
analysis to GeoDP-SGD), which then drives Adam's moment estimates instead
of a plain SGD step.
"""

from __future__ import annotations

import numpy as np

from repro.backend import workspace
from repro.core.perturbation import perturb_geodp
from repro.core.sgd import AdamOptimizer
from repro.geometry.bounding import (
    delta_prime_upper_bound,
    direction_sensitivity,
    per_angle_sensitivity,
)
from repro.privacy.clipping import ClippingStrategy, FlatClipping
from repro.telemetry.diagnostics import record_clipping, record_release
from repro.telemetry.tracing import joint_span
from repro.utils.rng import as_rng
from repro.utils.validation import check_matrix, check_positive, check_probability

__all__ = ["GeoDpAdamOptimizer"]


class GeoDpAdamOptimizer(AdamOptimizer):
    """Adam driven by GeoDP-perturbed gradients."""

    requires_per_sample = True

    def __init__(
        self,
        learning_rate: float,
        clipping: float | ClippingStrategy,
        noise_multiplier: float,
        beta: float,
        rng=None,
        *,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
        accountant=None,
        sample_rate: float | None = None,
        sensitivity_mode: str = "per_angle",
        recorder=None,
        tracer=None,
        ledger=None,
        grad_mode: str = "materialize",
    ):
        from repro.core.ghost import check_grad_mode

        super().__init__(learning_rate, beta1=beta1, beta2=beta2, eps=eps)
        self.recorder = recorder
        self.tracer = tracer
        self.ledger = ledger
        self.grad_mode = check_grad_mode(grad_mode)
        if isinstance(clipping, (int, float)):
            clipping = FlatClipping(float(clipping))
        self.clipping = clipping
        self.noise_multiplier = check_positive(
            "noise_multiplier", noise_multiplier, strict=False
        )
        self.beta = check_probability("beta", beta)
        if sensitivity_mode not in ("total", "per_angle"):
            raise ValueError(
                f"sensitivity_mode must be 'total' or 'per_angle', got {sensitivity_mode!r}"
            )
        self.sensitivity_mode = sensitivity_mode
        self.rng = as_rng(rng)
        self.accountant = accountant
        self.sample_rate = sample_rate
        if accountant is not None and sample_rate is None:
            raise ValueError("sample_rate is required when an accountant is attached")
        self.last_noisy_gradient: np.ndarray | None = None

    @property
    def delta_prime(self) -> float:
        """Lemma 2's bound on the direction release's extra delta."""
        return delta_prime_upper_bound(self.beta)

    def _noise_split(self, d: int, batch_size: int) -> dict[str, float]:
        """GeoDP's spherical noise split: magnitude vs direction noise std."""
        sigma = self.noise_multiplier
        if self.sensitivity_mode == "total":
            dir_sens = direction_sensitivity(d, self.beta)
        else:
            dir_sens = float(np.mean(per_angle_sensitivity(d, self.beta)))
        return {
            "geodp_beta": self.beta,
            "geodp_magnitude_noise_scale": sigma * self.clipping.sensitivity() / batch_size,
            "geodp_direction_noise_scale": sigma * dir_sens / batch_size,
        }

    def clipped_sum(self, per_sample_grads) -> np.ndarray:
        """Clip per-sample gradients and sum them (the accumulation unit)."""
        grads = check_matrix("per_sample_grads", per_sample_grads)
        if grads.shape[0] == 0:
            return np.zeros(grads.shape[1])
        with joint_span(self.recorder, self.tracer, "clip"):
            clipped, norms = self.clipping.clip_with_norms(grads)
            summed = clipped.sum(axis=0)
        record_clipping(
            self.recorder, grads, self.clipping.sensitivity(), norms=norms
        )
        return summed

    def noisy_gradient_presummed(self, clipped_sum: np.ndarray, count: int) -> np.ndarray:
        """GeoDP perturbation of an already clipped-and-summed gradient."""
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        workspace.note_release_shape(self, clipped_sum.shape)
        if self.recorder is None and self.tracer is None:
            # Workspace-pooled average (bit-identical to ``clipped_sum /
            # count``), recycled once the release no longer references it.
            avg = workspace.take(clipped_sum.shape)
            np.divide(clipped_sum, count, out=avg)
            noisy = perturb_geodp(
                avg,
                self.clipping.sensitivity(),
                self.noise_multiplier,
                count,
                self.beta,
                self.rng,
                clip=False,
                sensitivity_mode=self.sensitivity_mode,
            )
            workspace.give(avg)
            return noisy
        avg = clipped_sum / count
        with joint_span(self.recorder, self.tracer, "noise"):
            noisy = perturb_geodp(
                avg,
                self.clipping.sensitivity(),
                self.noise_multiplier,
                count,
                self.beta,
                self.rng,
                clip=False,
                sensitivity_mode=self.sensitivity_mode,
                tracer=self.tracer,
            )
        if self.recorder is not None:
            record_release(
                self.recorder,
                avg,
                noisy,
                sigma=self.noise_multiplier,
                sensitivity=self.clipping.sensitivity(),
                extras=self._noise_split(len(avg), count),
            )
        return noisy

    #: Mechanism label written into ledger entries (the released quantity is
    #: GeoDP's perturbed gradient; Adam is post-processing).
    ledger_mechanism = "geodp"

    def _ledger_meta(self) -> dict:
        """Beta and calibration mode, so a ledger audit sees the mechanism."""
        return {"beta": self.beta, "sensitivity_mode": self.sensitivity_mode}

    def _account_release(self) -> None:
        """Record one DP release with the accountant and the ledger."""
        if self.accountant is not None:
            self.accountant.step(max(self.noise_multiplier, 1e-12), self.sample_rate)
        if self.ledger is not None:
            self.ledger.record_release(
                mechanism=self.ledger_mechanism,
                sigma=self.noise_multiplier,
                sensitivity=self.clipping.sensitivity(),
                sample_rate=0.0 if self.sample_rate is None else self.sample_rate,
                accountant=self.accountant,
                meta=self._ledger_meta(),
            )
        if self.recorder is not None:
            # Per-mechanism release counter for the live metric surface
            # (release mix across gaussian/geodp under one registry).
            self.recorder.increment(f"releases_{self.ledger_mechanism}")

    def step_presummed(self, params: np.ndarray, clipped_sum: np.ndarray, count: int) -> np.ndarray:
        """One Adam update from an accumulated clipped sum."""
        noisy = self.noisy_gradient_presummed(clipped_sum, count)
        self.last_noisy_gradient = noisy
        self._account_release()
        return AdamOptimizer.step(self, params, noisy)

    def step_sparse(self, params: np.ndarray, dense_sum: np.ndarray, count: int, sparse) -> np.ndarray:
        """One sparse GeoDP-Adam update (DLRM-style hybrid).

        The release is GeoDP's geometric perturbation of the active
        subvector, as in :meth:`GeoDpSgdOptimizer.step_sparse`.  Adam's
        moment estimates cover only the dense block; the embedding rows
        take a plain SGD step at ``learning_rate`` — lazily-noised rows
        cannot maintain per-row moments without densifying the state
        (the standard sparse-table hybrid).  Returns the new dense params.
        """
        from repro.sparse.release import geodp_sparse_release

        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        noisy = geodp_sparse_release(self, dense_sum, sparse, count)
        self.last_noisy_gradient = noisy
        self._account_release()
        return AdamOptimizer.step(self, params, noisy)

    def step(self, params: np.ndarray, per_sample_grads) -> np.ndarray:
        """GeoDP perturbation of the clipped average, then an Adam update."""
        grads = check_matrix("per_sample_grads", per_sample_grads)
        return self.step_presummed(params, self.clipped_sum(grads), grads.shape[0])

    def ghost_clipped_sum(self, model, x, y) -> tuple[np.ndarray, np.ndarray]:
        """Clip-and-sum one batch via the ghost fast path (no ``(B, P)``)."""
        from repro.core.ghost import ghost_clipped_sum

        return ghost_clipped_sum(self, model, x, y)

    def step_ghost(self, params: np.ndarray, model, x, y) -> tuple[np.ndarray, float]:
        """One GeoDP-Adam update via the ghost path; returns ``(params, mean loss)``."""
        from repro.core.ghost import ghost_step

        return ghost_step(self, params, model, x, y)

    def state_dict(self) -> dict:
        """Adam moments plus noise stream, clipping and accountant state."""
        from repro.utils.rng import get_rng_state

        state = AdamOptimizer.state_dict(self)
        state["rng"] = get_rng_state(self.rng)
        state["clipping"] = self.clipping.state_dict()
        state["accountant"] = (
            None if self.accountant is None else self.accountant.state_dict()
        )
        state["ledger"] = None if self.ledger is None else self.ledger.state_dict()
        return state

    def load_state_dict(self, state: dict) -> None:
        """Restore state captured by :meth:`state_dict`."""
        from repro.utils.rng import set_rng_state

        AdamOptimizer.load_state_dict(self, {k: state[k] for k in ("m", "v", "t")})
        set_rng_state(self.rng, state["rng"])
        self.clipping.load_state_dict(state["clipping"])
        if state["accountant"] is not None:
            if self.accountant is None:
                raise ValueError("snapshot has accountant state but none is attached")
            self.accountant.load_state_dict(state["accountant"])
        # Snapshots from before the ledger existed have no "ledger" key.
        if state.get("ledger") is not None:
            if self.ledger is None:
                raise ValueError("snapshot has ledger state but none is attached")
            self.ledger.load_state_dict(state["ledger"])

    def __repr__(self) -> str:
        return (
            f"GeoDpAdamOptimizer(lr={self.learning_rate}, clipping={self.clipping!r}, "
            f"sigma={self.noise_multiplier}, beta={self.beta})"
        )
