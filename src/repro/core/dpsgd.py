"""Classic DP-SGD optimizer (Abadi et al. 2016; paper Eq. 8).

Per iteration: clip each per-sample gradient to norm ``C``, sum, add
``N(0, sigma^2 C^2 I)``, divide by ``B``, and take an SGD step.  Privacy is
tracked by an optional :class:`~repro.privacy.accountant.RdpAccountant`.
"""

from __future__ import annotations

import numpy as np

from repro.backend import workspace
from repro.privacy.clipping import ClippingStrategy, FlatClipping
from repro.telemetry.diagnostics import record_clipping, record_release
from repro.telemetry.tracing import joint_span
from repro.utils.rng import as_rng
from repro.utils.validation import check_matrix, check_positive

__all__ = ["DpSgdOptimizer"]


class DpSgdOptimizer:
    """Differentially private SGD on flat parameter vectors.

    Parameters
    ----------
    learning_rate:
        Step size ``eta``.
    clipping:
        Either a clipping threshold ``C`` (float — flat clipping, Eq. 6) or
        any :class:`~repro.privacy.clipping.ClippingStrategy`.
    noise_multiplier:
        Noise multiplier ``sigma``; the per-coordinate noise std of the
        summed gradient is ``sigma * sensitivity``.
    accountant / sample_rate:
        When both are given, every :meth:`step` records one subsampled
        Gaussian release with the accountant.
    lot_size:
        Fixed denominator for the average.  Required for Poisson sampling
        (where the realised batch size is data-dependent, so dividing by it
        would break the sensitivity analysis); also used with gradient
        accumulation.  ``None`` (default) divides by the actual batch size,
        correct for fixed-size batches.
    recorder:
        Optional :class:`~repro.telemetry.MetricsRecorder`.  When attached,
        every step records clipping statistics (pre-clip norm, clipped
        fraction) and release geometry (noise-to-signal ratio, cosine
        similarity / angular deviation between the clean averaged gradient
        and the released one) plus the sensitivity and sigma used.  Purely
        observational: the recorder never touches the RNG, so instrumented
        runs are bit-identical to uninstrumented ones.
    tracer:
        Optional :class:`~repro.telemetry.tracing.Tracer`.  When attached,
        the clip and noise phases of every step become hierarchical spans
        (nested under the trainer's lot span when the trainer attached the
        tracer).  Observational only, like the recorder.
    ledger:
        Optional :class:`~repro.privacy.ledger.ReleaseLedger`.  When
        attached, every DP release (each :meth:`step` /
        :meth:`step_presummed`) appends one hash-chained entry recording
        sigma, sensitivity, sample rate and the accountant's ε-at-release,
        auditable afterwards with
        :func:`~repro.privacy.ledger.verify_ledger`.
    grad_mode:
        ``"materialize"`` (default) computes the full ``(B, P)`` per-sample
        gradient matrix and preserves bit-identical seed behaviour;
        ``"ghost"`` asks the trainer to route through the ghost-clipping
        fast path (:meth:`step_ghost` / :meth:`ghost_clipped_sum`), which
        clips and sums without materializing the matrix — O(P) gradient
        memory, same DP release.  See ``docs/performance.md``.
    """

    #: Trainer uses this to decide which gradient API to call.
    requires_per_sample = True

    def __init__(
        self,
        learning_rate: float,
        clipping: float | ClippingStrategy,
        noise_multiplier: float,
        rng=None,
        *,
        accountant=None,
        sample_rate: float | None = None,
        lot_size: int | None = None,
        momentum: float = 0.0,
        recorder=None,
        tracer=None,
        ledger=None,
        grad_mode: str = "materialize",
    ):
        from repro.core.ghost import check_grad_mode

        self.recorder = recorder
        self.tracer = tracer
        self.ledger = ledger
        self.grad_mode = check_grad_mode(grad_mode)
        self.learning_rate = check_positive("learning_rate", learning_rate)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = momentum
        self._velocity: np.ndarray | None = None
        if isinstance(clipping, (int, float)):
            clipping = FlatClipping(float(clipping))
        self.clipping = clipping
        self.noise_multiplier = check_positive(
            "noise_multiplier", noise_multiplier, strict=False
        )
        self.rng = as_rng(rng)
        self.accountant = accountant
        self.sample_rate = sample_rate
        if accountant is not None and sample_rate is None:
            raise ValueError("sample_rate is required when an accountant is attached")
        if lot_size is not None and lot_size < 1:
            raise ValueError(f"lot_size must be >= 1, got {lot_size}")
        self.lot_size = lot_size
        #: Noisy averaged gradient of the most recent step (for diagnostics).
        self.last_noisy_gradient: np.ndarray | None = None

    def clipped_sum(self, per_sample_grads) -> np.ndarray:
        """Clip per-sample gradients and sum them (the accumulation unit)."""
        grads = check_matrix("per_sample_grads", per_sample_grads)
        if grads.shape[0] == 0:
            return np.zeros(grads.shape[1])
        if self.recorder is None and self.tracer is None:
            return self.clipping.clip(grads).sum(axis=0)
        with joint_span(self.recorder, self.tracer, "clip"):
            clipped, norms = self.clipping.clip_with_norms(grads)
            summed = clipped.sum(axis=0)
        if self.recorder is not None:
            record_clipping(
                self.recorder, grads, self.clipping.sensitivity(), norms=norms
            )
        return summed

    def ghost_clipped_sum(self, model, x, y) -> tuple[np.ndarray, np.ndarray]:
        """Clip-and-sum one batch via the ghost fast path (no ``(B, P)``).

        Returns ``(per-sample losses, clipped gradient sum)``; see
        :func:`repro.core.ghost.ghost_clipped_sum`.
        """
        from repro.core.ghost import ghost_clipped_sum

        return ghost_clipped_sum(self, model, x, y)

    def step_ghost(self, params: np.ndarray, model, x, y) -> tuple[np.ndarray, float]:
        """One DP-SGD update via the ghost path; returns ``(params, mean loss)``."""
        from repro.core.ghost import ghost_step

        return ghost_step(self, params, model, x, y)

    def noisy_gradient_presummed(self, clipped_sum: np.ndarray, count: int) -> np.ndarray:
        """Noise an already clipped-and-summed gradient (Eq. 8 aggregation).

        ``count`` is the number of samples in the sum; ignored when a fixed
        ``lot_size`` is configured.
        """
        denominator = self.lot_size if self.lot_size is not None else count
        if denominator < 1:
            raise ValueError(
                "empty batch with no lot_size: set lot_size for Poisson sampling"
            )
        workspace.note_release_shape(self, clipped_sum.shape)
        scale = self.noise_multiplier * self.clipping.sensitivity()
        if self.recorder is None and self.tracer is None:
            if scale == 0:
                return (clipped_sum + 0.0) / denominator
            # Workspace-pooled release: same RNG stream and element-wise
            # arithmetic as ``(clipped_sum + rng.normal(0, scale, shape)) /
            # denominator``, with zero steady-state allocation.
            noisy = workspace.take(clipped_sum.shape)
            self.rng.standard_normal(out=noisy)
            noisy *= scale
            np.add(clipped_sum, noisy, out=noisy)
            noisy /= denominator
            return noisy
        with joint_span(self.recorder, self.tracer, "noise"):
            noise = (
                self.rng.normal(0.0, scale, size=clipped_sum.shape)
                if scale > 0
                else 0.0
            )
            noisy = (clipped_sum + noise) / denominator
        if self.recorder is not None:
            record_release(
                self.recorder,
                clipped_sum / denominator,
                noisy,
                sigma=self.noise_multiplier,
                sensitivity=self.clipping.sensitivity(),
            )
        return noisy

    def noisy_gradient(self, per_sample_grads) -> np.ndarray:
        """Clip, aggregate and noise per-sample gradients into one update direction."""
        grads = check_matrix("per_sample_grads", per_sample_grads)
        return self.noisy_gradient_presummed(self.clipped_sum(grads), grads.shape[0])

    def _descend(self, params: np.ndarray, noisy: np.ndarray) -> np.ndarray:
        """Apply the (optionally momentum-accelerated) descent step.

        Momentum is applied to the already-noised gradient, so the privacy
        analysis is unchanged (post-processing of the DP release).
        """
        if self.momentum == 0.0:
            return params - self.learning_rate * noisy
        if self._velocity is None:
            self._velocity = np.zeros_like(params)
        self._velocity = self.momentum * self._velocity + noisy
        return params - self.learning_rate * self._velocity

    #: Mechanism label written into ledger entries.
    ledger_mechanism = "gaussian"

    def _ledger_meta(self) -> dict:
        """Mechanism-specific annotations for ledger entries (overridable)."""
        return {}

    def _account_release(self) -> None:
        """Record one DP release with the accountant and the ledger.

        The ledger entry is appended *after* the accountant step so its
        ε-at-release includes the release itself — exactly what a replay
        through a fresh accountant reproduces.
        """
        if self.accountant is not None:
            self.accountant.step(max(self.noise_multiplier, 1e-12), self.sample_rate)
        if self.ledger is not None:
            self.ledger.record_release(
                mechanism=self.ledger_mechanism,
                sigma=self.noise_multiplier,
                sensitivity=self.clipping.sensitivity(),
                sample_rate=0.0 if self.sample_rate is None else self.sample_rate,
                accountant=self.accountant,
                meta=self._ledger_meta(),
            )
        if self.recorder is not None:
            # Per-mechanism release counter for the live metric surface
            # (release mix across gaussian/geodp under one registry).
            self.recorder.increment(f"releases_{self.ledger_mechanism}")

    def step(self, params: np.ndarray, per_sample_grads) -> np.ndarray:
        """One DP-SGD update; returns the new parameter vector."""
        noisy = self.noisy_gradient(per_sample_grads)
        self.last_noisy_gradient = noisy
        self._account_release()
        return self._descend(params, noisy)

    def step_presummed(self, params: np.ndarray, clipped_sum: np.ndarray, count: int) -> np.ndarray:
        """One update from an accumulated clipped sum (gradient accumulation)."""
        noisy = self.noisy_gradient_presummed(clipped_sum, count)
        self.last_noisy_gradient = noisy
        self._account_release()
        return self._descend(params, noisy)

    def step_sparse(self, params: np.ndarray, dense_sum: np.ndarray, count: int, sparse) -> np.ndarray:
        """One sparse DP-SGD update: dense block + touched embedding rows.

        ``params`` / ``dense_sum`` cover only the non-embedding parameters;
        ``sparse`` is a :class:`repro.sparse.release.SparseRelease` whose
        table is updated in place (touched rows now, untouched rows' noise
        deferred).  One release, one accountant step, one ledger entry —
        identical to the dense path's record.  Returns the new dense params.
        """
        from repro.sparse.release import gaussian_sparse_release

        denominator = self.lot_size if self.lot_size is not None else count
        noisy = self.noisy_gradient_presummed(dense_sum, count)
        gaussian_sparse_release(self, sparse, denominator)
        self.last_noisy_gradient = noisy
        self._account_release()
        return self._descend(params, noisy)

    def state_dict(self) -> dict:
        """Mutable optimizer state for checkpointing (see :mod:`repro.checkpoint`).

        Covers everything a resumed run needs to continue bit-identically:
        momentum velocity, the fixed lot size, the noise stream's
        bit-generator state, and the nested clipping / accountant state.
        """
        from repro.core.sgd import _copy_or_none
        from repro.utils.rng import get_rng_state

        return {
            "velocity": _copy_or_none(self._velocity),
            "lot_size": None if self.lot_size is None else int(self.lot_size),
            "rng": get_rng_state(self.rng),
            "clipping": self.clipping.state_dict(),
            "accountant": (
                None if self.accountant is None else self.accountant.state_dict()
            ),
            "ledger": None if self.ledger is None else self.ledger.state_dict(),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore state captured by :meth:`state_dict`."""
        from repro.core.sgd import _copy_or_none
        from repro.utils.rng import set_rng_state

        self._velocity = _copy_or_none(state["velocity"])
        self.lot_size = None if state["lot_size"] is None else int(state["lot_size"])
        set_rng_state(self.rng, state["rng"])
        self.clipping.load_state_dict(state["clipping"])
        if state["accountant"] is not None:
            if self.accountant is None:
                raise ValueError("snapshot has accountant state but none is attached")
            self.accountant.load_state_dict(state["accountant"])
        # Snapshots from before the ledger existed have no "ledger" key.
        if state.get("ledger") is not None:
            if self.ledger is None:
                raise ValueError("snapshot has ledger state but none is attached")
            self.ledger.load_state_dict(state["ledger"])

    def __repr__(self) -> str:
        return (
            f"DpSgdOptimizer(lr={self.learning_rate}, clipping={self.clipping!r}, "
            f"sigma={self.noise_multiplier})"
        )
