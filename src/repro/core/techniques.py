"""Iterative training optimisations the paper composes with DP and GeoDP.

* :class:`ImportanceSampling` — IS, after DPIS (Wei et al., CCS 2022,
  ref [67]): per-iteration batches are drawn with probability proportional
  to each candidate's (clipped) gradient norm, focusing the privacy budget
  on informative samples.
* :class:`SelectiveUpdateRelease` — SUR, after DPSUR (Fu et al., VLDB 2024,
  ref [68]): a candidate update is only *released* (applied) if the noisy
  change in validation loss indicates progress; rejected updates are rolled
  back.  The accept test itself is noised, as in the original mechanism.

Both are orthogonal to the perturbation scheme, which is exactly the paper's
point — Tables II/III show GeoDP composing with them the same way DP does.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import as_rng
from repro.utils.validation import check_positive

__all__ = ["ImportanceSampling", "SelectiveUpdateRelease"]


class ImportanceSampling:
    """Gradient-norm-proportional batch selection (IS).

    Given per-sample gradient norms for a candidate pool, draws a batch with
    probability proportional to ``min(norm, clip_norm) + floor`` — samples
    whose gradients are clipped anyway contribute equal weight, and the
    ``floor`` keeps every sample selectable (required for the privacy
    amplification argument of DPIS).
    """

    def __init__(self, clip_norm: float, *, floor: float = 1e-3):
        self.clip_norm = check_positive("clip_norm", clip_norm)
        self.floor = check_positive("floor", floor)

    def selection_probabilities(self, norms) -> np.ndarray:
        """Normalised selection probabilities for the given per-sample norms."""
        norms = np.asarray(norms, dtype=np.float64)
        if norms.ndim != 1 or norms.size == 0:
            raise ValueError(f"norms must be a non-empty vector, got shape {norms.shape}")
        weights = np.minimum(norms, self.clip_norm) + self.floor
        return weights / weights.sum()

    def select(self, norms, batch_size: int, rng=None) -> np.ndarray:
        """Draw ``batch_size`` indices (without replacement) by importance."""
        norms = np.asarray(norms, dtype=np.float64)
        if not 1 <= batch_size <= norms.size:
            raise ValueError(
                f"batch_size must be in [1, {norms.size}], got {batch_size}"
            )
        probs = self.selection_probabilities(norms)
        return as_rng(rng).choice(norms.size, size=batch_size, replace=False, p=probs)

    def __repr__(self) -> str:
        return f"ImportanceSampling(clip_norm={self.clip_norm})"


class SelectiveUpdateRelease:
    """Accept/reject candidate updates by noisy validation-loss improvement (SUR).

    After a candidate step, compare validation loss before/after; accept iff
    ``delta_loss + Lap-or-Gauss noise <= threshold``.  A small positive
    ``threshold`` tolerates noise-induced regressions; statistics are kept
    for the experiment reports.
    """

    def __init__(
        self,
        *,
        threshold: float = 0.0,
        noise_std: float = 0.0,
        rng=None,
    ):
        self.threshold = float(threshold)
        self.noise_std = check_positive("noise_std", noise_std, strict=False)
        self._rng = as_rng(rng)
        self.accepted = 0
        self.rejected = 0

    def should_accept(self, loss_before: float, loss_after: float) -> bool:
        """Noisy accept test on the loss change; updates acceptance counters."""
        delta = float(loss_after) - float(loss_before)
        if self.noise_std > 0:
            delta += float(self._rng.normal(0.0, self.noise_std))
        accept = delta <= self.threshold
        if accept:
            self.accepted += 1
        else:
            self.rejected += 1
        return accept

    @property
    def acceptance_rate(self) -> float:
        """Fraction of candidate updates accepted so far (1.0 before any test)."""
        total = self.accepted + self.rejected
        return self.accepted / total if total else 1.0

    def state_dict(self) -> dict:
        """Mutable state (counters + noise stream) for checkpointing."""
        from repro.utils.rng import get_rng_state

        return {
            "accepted": int(self.accepted),
            "rejected": int(self.rejected),
            "rng": get_rng_state(self._rng),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore state captured by :meth:`state_dict`."""
        from repro.utils.rng import set_rng_state

        self.accepted = int(state["accepted"])
        self.rejected = int(state["rejected"])
        set_rng_state(self._rng, state["rng"])

    def __repr__(self) -> str:
        return (
            f"SelectiveUpdateRelease(threshold={self.threshold}, "
            f"noise_std={self.noise_std})"
        )
