"""Federated training with per-client private gradient releases.

The paper names federated learning as the extension target for GeoDP
(§VII, ref [69]).  :class:`FederatedTrainer` simulates cross-silo federated
averaging: the global model is broadcast, each sampled client computes
per-sample gradients on a local batch, clips, averages and *privatises its
release* (classic DP or GeoDP), and the server averages the releases.
Privacy is record-level per client; each client carries its own RDP
accountant, stepped only on the rounds it participates in.
"""

from __future__ import annotations

import numpy as np

from repro.core.perturbation import perturb_dp, perturb_geodp
from repro.privacy.accountant import RdpAccountant
from repro.privacy.clipping import ClippingStrategy, FlatClipping
from repro.utils.rng import as_rng, spawn_rngs
from repro.utils.validation import check_positive, check_probability

__all__ = ["FederatedTrainer"]


class FederatedTrainer:
    """Federated averaging with DP/GeoDP client releases.

    Parameters
    ----------
    model:
        Global model (a :class:`repro.nn.Sequential`); updated in place.
    client_shards:
        List of :class:`repro.data.Dataset`, one per client (disjoint).
    scheme:
        ``"none"`` (no privacy), ``"dp"`` or ``"geodp"``.
    local_batch_size:
        Per-client batch size per round.
    clients_per_round:
        Number of clients sampled each round (default: all).
    beta / sensitivity_mode:
        GeoDP parameters (ignored for other schemes).
    """

    def __init__(
        self,
        model,
        client_shards,
        *,
        scheme: str = "geodp",
        learning_rate: float = 1.0,
        clipping: float | ClippingStrategy = 0.1,
        noise_multiplier: float = 1.0,
        local_batch_size: int = 32,
        clients_per_round: int | None = None,
        beta: float = 0.1,
        sensitivity_mode: str = "per_angle",
        rng=None,
    ):
        if scheme not in ("none", "dp", "geodp"):
            raise ValueError(f"scheme must be none/dp/geodp, got {scheme!r}")
        if not client_shards:
            raise ValueError("need at least one client shard")
        self.model = model
        self.shards = list(client_shards)
        self.scheme = scheme
        self.learning_rate = check_positive("learning_rate", learning_rate)
        if isinstance(clipping, (int, float)):
            clipping = FlatClipping(float(clipping))
        self.clipping = clipping
        self.noise_multiplier = check_positive(
            "noise_multiplier", noise_multiplier, strict=False
        )
        self.local_batch_size = local_batch_size
        num_clients = len(self.shards)
        self.clients_per_round = (
            num_clients if clients_per_round is None else clients_per_round
        )
        if not 1 <= self.clients_per_round <= num_clients:
            raise ValueError(
                f"clients_per_round must be in [1, {num_clients}], got "
                f"{self.clients_per_round}"
            )
        self.beta = check_probability("beta", beta)
        self.sensitivity_mode = sensitivity_mode
        self.rng = as_rng(rng)
        self._client_rngs = spawn_rngs(self.rng, num_clients)
        #: One accountant per client (stepped on participation only).
        self.accountants = [RdpAccountant() for _ in self.shards]
        self.rounds_run = 0

    # ------------------------------------------------------------- internals
    def _client_release(self, client: int, params: np.ndarray) -> np.ndarray:
        shard = self.shards[client]
        rng = self._client_rngs[client]
        batch_size = min(self.local_batch_size, len(shard))
        idx = rng.choice(len(shard), size=batch_size, replace=False)
        x, y = shard.batch(idx)

        self.model.set_params(params)
        _, per_sample = self.model.loss_and_per_sample_gradients(x, y)
        clipped = self.clipping.clip(per_sample)
        avg = clipped.mean(axis=0)

        if self.scheme == "none":
            return avg
        sample_rate = batch_size / len(shard)
        self.accountants[client].step(
            max(self.noise_multiplier, 1e-12), min(sample_rate, 1.0)
        )
        if self.scheme == "dp":
            return perturb_dp(
                avg, self.clipping.sensitivity(), self.noise_multiplier,
                batch_size, rng, clip=False,
            )
        return perturb_geodp(
            avg, self.clipping.sensitivity(), self.noise_multiplier,
            batch_size, self.beta, rng, clip=False,
            sensitivity_mode=self.sensitivity_mode,
        )

    # --------------------------------------------------------------- public
    def round(self) -> np.ndarray:
        """Run one federated round; returns the aggregated update direction."""
        params = self.model.get_params()
        chosen = self.rng.choice(
            len(self.shards), size=self.clients_per_round, replace=False
        )
        updates = [self._client_release(c, params) for c in chosen]
        aggregate = np.mean(updates, axis=0)
        self.model.set_params(params - self.learning_rate * aggregate)
        self.rounds_run += 1
        return aggregate

    def train(self, num_rounds: int) -> list[float]:
        """Run ``num_rounds`` rounds; returns the aggregate-norm trace."""
        if num_rounds < 1:
            raise ValueError(f"num_rounds must be >= 1, got {num_rounds}")
        norms = []
        for _ in range(num_rounds):
            norms.append(float(np.linalg.norm(self.round())))
        return norms

    def client_epsilons(self, delta: float) -> list[float]:
        """Per-client epsilon spent so far at ``delta``."""
        return [acc.get_epsilon(delta) for acc in self.accountants]
