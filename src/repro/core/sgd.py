"""Non-private optimizers and DP-Adam.

The paper's noise-free baseline is mini-batch SGD without momentum (§II-B);
Momentum/Adam are provided as substrate for the "future work" direction the
paper names (DP-Adam [54]) and for the ablation benchmarks.
"""

from __future__ import annotations

import numpy as np

from repro.privacy.clipping import ClippingStrategy, FlatClipping
from repro.utils.rng import as_rng
from repro.utils.validation import check_in_range, check_matrix, check_positive

__all__ = ["SgdOptimizer", "AdamOptimizer", "DpAdamOptimizer"]


def _copy_or_none(value) -> np.ndarray | None:
    """Defensive copy of an optional state array (checkpoint helper)."""
    return None if value is None else np.asarray(value, dtype=np.float64).copy()


class SgdOptimizer:
    """Plain SGD, optionally with classical momentum."""

    requires_per_sample = False

    def __init__(self, learning_rate: float, *, momentum: float = 0.0):
        self.learning_rate = check_positive("learning_rate", learning_rate)
        self.momentum = check_in_range("momentum", momentum, 0.0, 1.0, inclusive_high=False)
        self._velocity: np.ndarray | None = None

    def step(self, params: np.ndarray, grad: np.ndarray) -> np.ndarray:
        """One (momentum-)SGD update on the mean gradient."""
        if self.momentum == 0.0:
            return params - self.learning_rate * grad
        if self._velocity is None:
            self._velocity = np.zeros_like(params)
        self._velocity = self.momentum * self._velocity + grad
        return params - self.learning_rate * self._velocity

    def state_dict(self) -> dict:
        """Mutable optimizer state for checkpointing (see :mod:`repro.checkpoint`)."""
        return {"velocity": _copy_or_none(self._velocity)}

    def load_state_dict(self, state: dict) -> None:
        """Restore state captured by :meth:`state_dict`."""
        self._velocity = _copy_or_none(state["velocity"])

    def __repr__(self) -> str:
        return f"SgdOptimizer(lr={self.learning_rate}, momentum={self.momentum})"


class AdamOptimizer:
    """Adam (Kingma & Ba 2015) on mean gradients."""

    requires_per_sample = False

    def __init__(
        self,
        learning_rate: float = 1e-3,
        *,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ):
        self.learning_rate = check_positive("learning_rate", learning_rate)
        self.beta1 = check_in_range("beta1", beta1, 0.0, 1.0, inclusive_high=False)
        self.beta2 = check_in_range("beta2", beta2, 0.0, 1.0, inclusive_high=False)
        self.eps = check_positive("eps", eps)
        self._m: np.ndarray | None = None
        self._v: np.ndarray | None = None
        self._t = 0

    def _moments(self, grad: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        if self._m is None:
            self._m = np.zeros_like(grad)
            self._v = np.zeros_like(grad)
        self._t += 1
        self._m = self.beta1 * self._m + (1 - self.beta1) * grad
        self._v = self.beta2 * self._v + (1 - self.beta2) * grad**2
        m_hat = self._m / (1 - self.beta1**self._t)
        v_hat = self._v / (1 - self.beta2**self._t)
        return m_hat, v_hat

    def step(self, params: np.ndarray, grad: np.ndarray) -> np.ndarray:
        """One Adam update on the mean gradient."""
        m_hat, v_hat = self._moments(grad)
        return params - self.learning_rate * m_hat / (np.sqrt(v_hat) + self.eps)

    def state_dict(self) -> dict:
        """Mutable optimizer state for checkpointing (see :mod:`repro.checkpoint`)."""
        return {
            "m": _copy_or_none(self._m),
            "v": _copy_or_none(self._v),
            "t": int(self._t),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore state captured by :meth:`state_dict`."""
        self._m = _copy_or_none(state["m"])
        self._v = _copy_or_none(state["v"])
        self._t = int(state["t"])

    def __repr__(self) -> str:
        return f"AdamOptimizer(lr={self.learning_rate})"


class DpAdamOptimizer(AdamOptimizer):
    """DP-Adam: per-sample clip + Gaussian noise, then Adam moments (ref [54]).

    The privacy analysis is identical to DP-SGD (the noisy averaged gradient
    is the only data-dependent quantity entering the moments), so the same
    accountant applies.
    """

    requires_per_sample = True

    def __init__(
        self,
        learning_rate: float,
        clipping: float | ClippingStrategy,
        noise_multiplier: float,
        rng=None,
        *,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
        accountant=None,
        sample_rate: float | None = None,
    ):
        super().__init__(learning_rate, beta1=beta1, beta2=beta2, eps=eps)
        if isinstance(clipping, (int, float)):
            clipping = FlatClipping(float(clipping))
        self.clipping = clipping
        self.noise_multiplier = check_positive(
            "noise_multiplier", noise_multiplier, strict=False
        )
        self.rng = as_rng(rng)
        self.accountant = accountant
        self.sample_rate = sample_rate
        if accountant is not None and sample_rate is None:
            raise ValueError("sample_rate is required when an accountant is attached")

    def step(self, params: np.ndarray, per_sample_grads) -> np.ndarray:
        """Clip + noise the batch gradient, then apply Adam."""
        grads = check_matrix("per_sample_grads", per_sample_grads)
        batch_size = grads.shape[0]
        clipped = self.clipping.clip(grads)
        summed = clipped.sum(axis=0)
        scale = self.noise_multiplier * self.clipping.sensitivity()
        noise = self.rng.normal(0.0, scale, size=summed.shape) if scale > 0 else 0.0
        noisy_avg = (summed + noise) / batch_size
        if self.accountant is not None:
            self.accountant.step(max(self.noise_multiplier, 1e-12), self.sample_rate)
        return super().step(params, noisy_avg)

    def state_dict(self) -> dict:
        """Adam moments plus noise stream, clipping and accountant state."""
        from repro.utils.rng import get_rng_state

        state = super().state_dict()
        state["rng"] = get_rng_state(self.rng)
        state["clipping"] = self.clipping.state_dict()
        state["accountant"] = (
            None if self.accountant is None else self.accountant.state_dict()
        )
        return state

    def load_state_dict(self, state: dict) -> None:
        from repro.utils.rng import set_rng_state

        super().load_state_dict({k: state[k] for k in ("m", "v", "t")})
        set_rng_state(self.rng, state["rng"])
        self.clipping.load_state_dict(state["clipping"])
        if state["accountant"] is not None:
            if self.accountant is None:
                raise ValueError("snapshot has accountant state but none is attached")
            self.accountant.load_state_dict(state["accountant"])

    def __repr__(self) -> str:
        return (
            f"DpAdamOptimizer(lr={self.learning_rate}, clipping={self.clipping!r}, "
            f"sigma={self.noise_multiplier})"
        )
