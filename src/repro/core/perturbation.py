"""Gradient perturbation primitives.

Two perturbation schemes act on an *averaged clipped* gradient
``g_tilde = (1/B) sum_j clip(g_j)``:

* :func:`perturb_dp` — classic DP-SGD (paper Eq. 8):
  ``g* = g_tilde + (C/B) * n_sigma`` with ``n_sigma ~ N(0, sigma^2 I_d)``.
* :func:`perturb_geodp` — GeoDP (Algorithm 1, steps 6-9): convert to
  hyper-spherical coordinates, perturb magnitude and direction separately,

  ``|g|* = |g_tilde| + (C/B) * n_sigma``
  ``theta* = theta + (sqrt(d+2) * beta * pi / B) * n_sigma``

  then convert back.  The direction noise scale is the bounded-region
  sensitivity of §V-B; ``beta`` trades directional accuracy (smaller noise)
  against the coverage failure probability ``delta' <= 1 - beta`` (Lemma 2).

The ``*_batch`` variants perturb ``m`` gradients at once — this is the
workhorse of the Figure 1/3/4 MSE experiments, where every synthetic
gradient plays the role of one averaged batch gradient.
"""

from __future__ import annotations

import numpy as np

from repro.backend import get_backend, workspace
from repro.geometry.bounding import (
    bound_angles,
    direction_sensitivity,
    per_angle_sensitivity,
)
from repro.geometry.spherical import to_cartesian_batch, to_spherical_batch
from repro.telemetry.tracing import maybe_span
from repro.utils.rng import as_rng
from repro.utils.validation import check_matrix, check_positive, check_probability

__all__ = [
    "clip_gradients",
    "perturb_dp",
    "perturb_geodp",
    "perturb_dp_batch",
    "perturb_geodp_batch",
    "perturb_geodp_active",
]


def clip_gradients(grads, clip_norm: float) -> np.ndarray:
    """Flat-clip each row of ``grads`` to L2 norm at most ``clip_norm`` (Eq. 6).

    All working memory comes from the :mod:`repro.backend.workspace` arena
    (the returned buffer is owned by the caller); the in-place formulation
    is bit-identical to the historical ``np.linalg.norm`` expression.
    """
    grads = check_matrix("grads", grads)
    clip_norm = check_positive("clip_norm", clip_norm)
    m = grads.shape[0]
    out = workspace.take(grads.shape)
    with workspace.scratch(grads.shape) as sq, workspace.scratch(m) as scale:
        np.multiply(grads, grads, out=sq)
        np.add.reduce(sq, axis=1, out=scale)
        np.sqrt(scale, out=scale)
        scale /= clip_norm
        np.maximum(scale, 1.0, out=scale)
        np.divide(1.0, scale, out=scale)
        np.multiply(grads, scale[:, None], out=out)
    return out


def perturb_dp_batch(
    grads,
    clip_norm: float,
    noise_multiplier: float,
    batch_size: int,
    rng=None,
    *,
    clip: bool = True,
) -> np.ndarray:
    """Classic DP perturbation of ``m`` averaged gradients (Eq. 8).

    Each row is clipped (unless ``clip=False``) and released as
    ``g_tilde + (C/B) * N(0, sigma^2 I)``.
    """
    grads = check_matrix("grads", grads)
    clip_norm = check_positive("clip_norm", clip_norm)
    noise_multiplier = check_positive("noise_multiplier", noise_multiplier, strict=False)
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    rng = as_rng(rng)

    clipped = clip_gradients(grads, clip_norm) if clip else grads
    if noise_multiplier == 0:
        # sigma = 0 must consume no randomness, matching the optimizers'
        # noiseless path, so DP runs and their noise-free baselines share
        # one RNG stream.  Copy so callers never alias the input.
        return clipped if clip else clipped.copy()
    # Draw into a workspace buffer and scale in place: bit-identical to
    # ``clipped + (C/B) * rng.normal(0, sigma, shape)`` (same stream, same
    # element-wise arithmetic) with zero steady-state allocation.
    out = workspace.take(clipped.shape)
    rng.standard_normal(out=out)
    out *= noise_multiplier
    out *= clip_norm / batch_size
    out += clipped
    if clip:
        workspace.give(clipped)
    return out


def perturb_geodp_batch(
    grads,
    clip_norm: float,
    noise_multiplier: float,
    batch_size: int,
    beta: float,
    rng=None,
    *,
    clip: bool = True,
    sensitivity_mode: str = "total",
    clamp_to_region: bool = False,
    tracer=None,
) -> np.ndarray:
    """GeoDP perturbation of ``m`` averaged gradients (Algorithm 1 steps 6-9).

    Magnitudes and all ``d - 1`` angles receive independent Gaussian noise
    with the scales of Algorithm 1 step 8; the result is converted back to
    rectangular coordinates.

    ``sensitivity_mode`` selects the direction-noise calibration:

    * ``"total"`` (default) — Algorithm 1 exactly as stated: every angle's
      noise scale is the *total* L2 sensitivity ``sqrt(d+2) * beta * pi / B``.
    * ``"per_angle"`` — each angle is scaled by its own range from step 7
      (``beta*pi/B`` for polar angles, ``2*beta*pi/B`` for the azimuth).
      The paper's reported experiment results (e.g. beta = 0.1 winning at
      d ~ 21,840) are only consistent with this calibration; with the
      stated total-sensitivity scale those same beta values lose badly.
      See EXPERIMENTS.md for the full analysis of the discrepancy.

    ``clamp_to_region`` controls how the bounded direction region is
    enforced.  Algorithm 1 as written does not clamp — directions outside
    the beta-region are covered by the delta' relaxation (Lemma 2).  With
    ``clamp_to_region=True`` the clean angles are first clamped into the
    fixed centred beta-region (``bound_angles``), which makes the
    advertised sensitivity hold unconditionally at the cost of biasing
    directions that lie outside the region.

    ``tracer`` (an optional :class:`~repro.telemetry.tracing.Tracer`) times
    the spherical-coordinate work as ``"spherical"`` phase spans (one fused
    span on the hot path, one per conversion on the sigma-0 / clamped
    paths); it never touches the RNG.

    The hot path dispatches to the active :mod:`repro.backend` kernel
    (``geodp_perturb``); the backend never draws randomness, so switching
    backends cannot change which random numbers the release consumes.
    """
    grads = check_matrix("grads", grads)
    clip_norm = check_positive("clip_norm", clip_norm)
    noise_multiplier = check_positive("noise_multiplier", noise_multiplier, strict=False)
    beta = check_probability("beta", beta)
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    rng = as_rng(rng)

    clipped = clip_gradients(grads, clip_norm) if clip else grads

    m, d = clipped.shape
    mag_scale = clip_norm / batch_size
    if sensitivity_mode == "total":
        dir_scale = direction_sensitivity(d, beta) / batch_size
    elif sensitivity_mode == "per_angle":
        dir_scale = per_angle_sensitivity(d, beta)[None, :] / batch_size
    else:
        raise ValueError(
            f"sensitivity_mode must be 'total' or 'per_angle', got {sensitivity_mode!r}"
        )

    if noise_multiplier == 0 or clamp_to_region:
        # Explicit round trip: sigma = 0 keeps the spherical conversion so
        # the numerical path is unchanged (and consumes no randomness, see
        # perturb_dp_batch); clamping has to edit the clean angles between
        # the two conversions, so the fused kernel does not apply.
        with maybe_span(tracer, "spherical"):
            magnitudes, thetas = to_spherical_batch(clipped)
        if clamp_to_region:
            thetas = bound_angles(thetas, beta)
        if noise_multiplier == 0:
            with maybe_span(tracer, "spherical"):
                out = to_cartesian_batch(magnitudes, thetas)
            if clip:
                workspace.give(clipped)
            return out
        noisy_mag = magnitudes + mag_scale * rng.normal(
            0.0, noise_multiplier, size=magnitudes.shape
        )
        noisy_theta = thetas + dir_scale * rng.normal(
            0.0, noise_multiplier, size=thetas.shape
        )
        with maybe_span(tracer, "spherical"):
            return to_cartesian_batch(noisy_mag, noisy_theta)

    # Hot path: draw the noise here — same order, shapes and scaling as the
    # explicit path above, so every backend consumes the identical RNG
    # stream — then hand the deterministic fused kernel to the backend.
    # The reference backend is literally decompose -> add -> compose,
    # bit-identical to the historical implementation.  Noise buffers come
    # from the workspace arena; drawing with ``standard_normal(out=...)``
    # and scaling in place consumes the same stream and produces the same
    # bits as ``scale * rng.normal(0, sigma, shape)``.
    mag_noise = workspace.take(m)
    rng.standard_normal(out=mag_noise)
    mag_noise *= noise_multiplier
    mag_noise *= mag_scale
    theta_noise = workspace.take((m, d - 1))
    rng.standard_normal(out=theta_noise)
    theta_noise *= noise_multiplier
    theta_noise *= dir_scale
    with maybe_span(tracer, "spherical"):
        out = get_backend().geodp_perturb(clipped, mag_noise, theta_noise)
    workspace.give(mag_noise)
    workspace.give(theta_noise)
    if clip:
        workspace.give(clipped)
    return out


def perturb_dp(
    grad,
    clip_norm: float,
    noise_multiplier: float,
    batch_size: int,
    rng=None,
    *,
    clip: bool = True,
) -> np.ndarray:
    """Classic DP perturbation of a single averaged gradient (Eq. 8)."""
    grad = np.asarray(grad, dtype=np.float64)
    return perturb_dp_batch(
        grad[None, :], clip_norm, noise_multiplier, batch_size, rng, clip=clip
    )[0]


def perturb_geodp(
    grad,
    clip_norm: float,
    noise_multiplier: float,
    batch_size: int,
    beta: float,
    rng=None,
    *,
    clip: bool = True,
    sensitivity_mode: str = "total",
    tracer=None,
) -> np.ndarray:
    """GeoDP perturbation of a single averaged gradient (Algorithm 1)."""
    grad = np.asarray(grad, dtype=np.float64)
    return perturb_geodp_batch(
        grad[None, :],
        clip_norm,
        noise_multiplier,
        batch_size,
        beta,
        rng,
        clip=clip,
        sensitivity_mode=sensitivity_mode,
        tracer=tracer,
    )[0]


def perturb_geodp_active(
    dense_avg,
    row_avg,
    clip_norm: float,
    noise_multiplier: float,
    batch_size: int,
    beta: float,
    rng=None,
    *,
    sensitivity_mode: str = "total",
    tracer=None,
) -> tuple[np.ndarray, np.ndarray]:
    """GeoDP perturbation of a sparse release's *active subvector*.

    A sparse embedding step releases the dense-parameter average together
    with only the *touched* embedding rows.  Geometrically those form one
    averaged gradient — the untouched coordinates are exactly zero and
    carry no signal — so the spherical decomposition operates on the
    concatenation ``[dense_avg, row_avg.ravel()]`` and the result is split
    back.  ``row_avg`` is ``(R, dim)``; the per-sample clipping already
    bounded the full gradient (including the zero coordinates), so the
    active subvector's norm is bounded by the same ``clip_norm``.

    Returns ``(noisy_dense_avg, noisy_row_avg)``.  Deferred Gaussian cover
    noise for the untouched rows is the caller's concern
    (:mod:`repro.sparse`); this helper only perturbs the active part, and
    consumes RNG draws exactly like :func:`perturb_geodp` on a
    ``dense_avg.size + row_avg.size``-dimensional gradient.
    """
    dense_avg = np.asarray(dense_avg, dtype=np.float64)
    row_avg = np.asarray(row_avg, dtype=np.float64)
    if row_avg.size == 0:
        noisy = perturb_geodp(
            dense_avg,
            clip_norm,
            noise_multiplier,
            batch_size,
            beta,
            rng,
            clip=False,
            sensitivity_mode=sensitivity_mode,
            tracer=tracer,
        )
        return noisy, row_avg.copy()
    active = np.concatenate([dense_avg, row_avg.ravel()])
    noisy = perturb_geodp(
        active,
        clip_norm,
        noise_multiplier,
        batch_size,
        beta,
        rng,
        clip=False,
        sensitivity_mode=sensitivity_mode,
        tracer=tracer,
    )
    split = dense_avg.size
    return noisy[:split], noisy[split:].reshape(row_avg.shape)
