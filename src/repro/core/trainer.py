"""Training loop tying model, optimizer, sampler, accountant and techniques.

The trainer is deliberately simple: one uniform minibatch per iteration
(the paper's setting), per-sample or mean gradients depending on what the
optimizer requires, optional importance sampling of the batch (IS) and
optional selective update/release (SUR).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

import numpy as np

from repro.core.techniques import ImportanceSampling, SelectiveUpdateRelease
from repro.data.sampling import minibatch_indices
from repro.telemetry.diagnostics import record_clipping
from repro.telemetry.tracing import joint_span, maybe_span
from repro.utils.rng import as_rng

__all__ = ["Trainer", "TrainingHistory"]

#: Optimizer attributes that the descent step mutates (momentum velocity,
#: Adam moments).  SUR must roll these back together with the parameters
#: when it rejects an update, otherwise the rejected noisy gradient keeps
#: steering every subsequent accepted step through the momentum buffer.
_UPDATE_STATE_ATTRS = ("_velocity", "_m", "_v", "_t")


def _unwrap_optimizer(optimizer):
    """Follow ScheduledOptimizer-style wrappers to the stateful optimizer."""
    inner = getattr(optimizer, "optimizer", None)
    return inner if inner is not None else optimizer


def _capture_update_state(optimizer) -> dict:
    """Copy the optimizer attributes mutated by a descent step."""
    optimizer = _unwrap_optimizer(optimizer)
    state = {}
    for name in _UPDATE_STATE_ATTRS:
        if hasattr(optimizer, name):
            value = getattr(optimizer, name)
            state[name] = value.copy() if isinstance(value, np.ndarray) else value
    return state


def _restore_update_state(optimizer, state: dict) -> None:
    """Undo a descent step's mutations (inverse of :func:`_capture_update_state`)."""
    optimizer = _unwrap_optimizer(optimizer)
    for name, value in state.items():
        setattr(optimizer, name, value.copy() if isinstance(value, np.ndarray) else value)


@dataclass
class TrainingHistory:
    """Metrics recorded during :meth:`Trainer.train`."""

    #: Mean train-batch loss per iteration.
    losses: list[float] = field(default_factory=list)
    #: ``(iteration, accuracy)`` pairs at evaluation points.
    test_accuracy: list[tuple[int, float]] = field(default_factory=list)
    #: Total iterations run.
    iterations: int = 0
    #: SUR acceptance rate, if SUR was active.
    sur_acceptance_rate: float | None = None

    @property
    def final_loss(self) -> float:
        """Last recorded training loss."""
        if not self.losses:
            raise ValueError("no losses recorded")
        return self.losses[-1]

    @property
    def final_accuracy(self) -> float:
        """Last recorded test accuracy."""
        if not self.test_accuracy:
            raise ValueError("no accuracy recorded")
        return self.test_accuracy[-1][1]


class Trainer:
    """Iteration-driven trainer for :class:`repro.nn.Sequential` models.

    Parameters
    ----------
    model:
        The model to train (modified in place).
    optimizer:
        Any optimizer from :mod:`repro.core`; its ``requires_per_sample``
        attribute selects the gradient path.
    train_data / test_data:
        :class:`repro.data.Dataset` instances.
    batch_size:
        Mini-batch size ``B``.
    importance_sampling:
        Optional :class:`ImportanceSampling`.  A candidate pool of
        ``pool_factor * B`` samples is drawn uniformly; the batch is then
        chosen from the pool by gradient-norm importance, reusing the pool's
        per-sample gradients (no second backward pass).
    sur:
        Optional :class:`SelectiveUpdateRelease`; rejected updates are rolled
        back.  Validation uses a fixed held-out slice of the training data.
    augment:
        Optional callable applied to each training batch's inputs (e.g. a
        :class:`repro.data.Augmenter`).  Label-preserving augmentation does
        not change the privacy analysis (one clipped gradient per sample).
    parallel_grad_workers:
        Opt-in parallel per-sample gradient computation: shard each lot's
        microbatch chunks across this many worker processes through
        :class:`repro.runtime.ParallelGradientMap`.  Requires
        ``microbatch_size`` (the chunks are the unit of sharding) and is
        incompatible with ``augment`` (whose random stream is consumed
        chunk-by-chunk in the parent).  Results are bit-identical to the
        serial loop for any worker count; on worker failure the trainer
        falls back to the serial loop automatically.  Call :meth:`close`
        (or use the trainer as a context manager) to release the workers.
    grad_mode:
        Gradient execution mode for per-sample (DP) optimizers.
        ``"materialize"`` computes the full ``(B, P)`` per-sample gradient
        matrix (bit-identical to historical behaviour); ``"ghost"`` clips
        and sums through the ghost-norm fast path — two backward passes,
        O(P) gradient memory, same DP release (see ``docs/performance.md``).
        ``None`` (default) inherits the optimizer's own ``grad_mode``
        attribute, so an optimizer built with ``grad_mode="ghost"`` routes
        the whole training loop through the fast path.  Ghost mode requires
        a clipping strategy expressible as per-sample factors
        (``supports_ghost``); with e.g. per-layer clipping the trainer
        falls back to ``"materialize"`` with a warning.  It cannot combine
        with ``importance_sampling`` (which reuses the materialized pool
        gradients) or ``parallel_grad_workers`` (whose workers materialize
        per-sample gradients; see ``docs/parallelism.md``).
    telemetry:
        Optional :class:`~repro.telemetry.MetricsRecorder`.  When given,
        every iteration emits a :class:`~repro.telemetry.StepTrace` with the
        phase timings (``sample`` / ``forward_backward`` / ``step``, plus the
        optimizer's nested ``clip`` / ``noise`` spans) and the step's scalar
        diagnostics.  If the optimizer has a ``recorder`` slot that is still
        unset, the trainer attaches this recorder to it so DP release
        geometry (noise-to-signal, angular deviation, ...) lands in the same
        trace.  Telemetry never consumes randomness: instrumented runs are
        bit-identical to uninstrumented ones.
    tracer:
        Optional :class:`~repro.telemetry.Tracer`.  When given, every
        :meth:`train` call is recorded as a hierarchical span tree — a
        ``run`` span containing ``epoch`` spans containing per-iteration
        ``lot`` spans containing the phase spans (``sample`` /
        ``forward_backward`` / ``step`` plus the optimizer's ``clip`` /
        ``spherical`` / ``noise`` and the ``ghost`` / ``checkpoint``
        phases) — exportable to Chrome trace-event JSON.  Like the
        recorder, the tracer is attached to the optimizer's ``tracer`` slot
        if still unset, and never consumes randomness.  The tracer's
        ``granularity`` bounds the recorded depth (``"lot"`` skips the
        per-phase spans — the cheap setting; see ``docs/observability.md``).
    """

    def __init__(
        self,
        model,
        optimizer,
        train_data,
        *,
        batch_size: int,
        test_data=None,
        rng=None,
        importance_sampling: ImportanceSampling | None = None,
        sur: SelectiveUpdateRelease | None = None,
        pool_factor: int = 2,
        sur_eval_size: int = 256,
        augment=None,
        sampling: str = "uniform",
        microbatch_size: int | None = None,
        parallel_grad_workers: int | None = None,
        telemetry=None,
        tracer=None,
        grad_mode: str | None = None,
    ):
        if batch_size < 1 or batch_size > len(train_data):
            raise ValueError(
                f"batch_size must be in [1, {len(train_data)}], got {batch_size}"
            )
        if pool_factor < 1:
            raise ValueError(f"pool_factor must be >= 1, got {pool_factor}")
        self.model = model
        self.optimizer = optimizer
        self.train_data = train_data
        self.test_data = test_data
        self.batch_size = batch_size
        self.rng = as_rng(rng)
        self.importance_sampling = importance_sampling
        self.sur = sur
        self.pool_factor = pool_factor
        self.augment = augment
        if sampling not in ("uniform", "poisson"):
            raise ValueError(f"sampling must be 'uniform' or 'poisson', got {sampling!r}")
        if sampling == "poisson":
            if importance_sampling is not None:
                raise ValueError("poisson sampling cannot combine with importance sampling")
            if not getattr(optimizer, "requires_per_sample", False):
                raise ValueError("poisson sampling requires a per-sample (DP) optimizer")
            # Poisson batches vary in size, so the aggregation denominator
            # must be the fixed expected lot size, not the realised count.
            if getattr(optimizer, "lot_size", None) is None and hasattr(
                optimizer, "lot_size"
            ):
                optimizer.lot_size = batch_size
        self.sampling = sampling
        from repro.core.ghost import check_grad_mode

        if grad_mode is None:
            grad_mode = getattr(optimizer, "grad_mode", "materialize")
        self.grad_mode = check_grad_mode(grad_mode)
        if self.grad_mode == "sparse":
            # The core trainer round-trips the *full* flat parameter vector
            # every iteration — O(vocab * dim) per step, which defeats the
            # touched-rows scaling the sparse path exists for.
            raise ValueError(
                "grad_mode='sparse' is driven by repro.sparse.SparseTrainer, "
                "which updates embedding rows in place; the core Trainer's "
                "full parameter round-trip would scale with the table size"
            )
        if self.grad_mode == "ghost":
            if not getattr(optimizer, "requires_per_sample", False) or not hasattr(
                optimizer, "ghost_clipped_sum"
            ):
                raise ValueError(
                    f"{type(optimizer).__name__} does not support grad_mode='ghost'"
                )
            if importance_sampling is not None:
                raise ValueError(
                    "grad_mode='ghost' cannot combine with importance sampling: "
                    "batch selection reuses the materialized pool gradients"
                )
            if parallel_grad_workers is not None:
                raise ValueError(
                    "grad_mode='ghost' cannot combine with parallel_grad_workers: "
                    "the worker pool shards materialized per-sample gradients "
                    "(see docs/parallelism.md)"
                )
            clipping = getattr(optimizer, "clipping", None)
            if clipping is not None and not getattr(clipping, "supports_ghost", False):
                warnings.warn(
                    f"{type(clipping).__name__} needs the full per-sample "
                    "gradient matrix; falling back to grad_mode='materialize'",
                    RuntimeWarning,
                    stacklevel=2,
                )
                self.grad_mode = "materialize"
                if telemetry is not None:
                    telemetry.increment("ghost_fallbacks")
        if microbatch_size is not None:
            if microbatch_size < 1:
                raise ValueError(f"microbatch_size must be >= 1, got {microbatch_size}")
            if importance_sampling is not None:
                raise ValueError("microbatching cannot combine with importance sampling")
            if not hasattr(optimizer, "clipped_sum"):
                raise ValueError(
                    f"{type(optimizer).__name__} does not support gradient accumulation"
                )
        self.microbatch_size = microbatch_size
        if parallel_grad_workers is not None:
            if int(parallel_grad_workers) < 1:
                raise ValueError(
                    f"parallel_grad_workers must be >= 1, got {parallel_grad_workers}"
                )
            if microbatch_size is None:
                raise ValueError(
                    "parallel_grad_workers requires microbatch_size (the "
                    "microbatch chunks are the unit of parallel sharding)"
                )
            if augment is not None:
                raise ValueError(
                    "parallel_grad_workers cannot combine with augment: the "
                    "augmenter's random stream is consumed chunk-by-chunk"
                )
            if not hasattr(optimizer, "clipping"):
                raise ValueError(
                    f"{type(optimizer).__name__} exposes no clipping strategy; "
                    "parallel gradient sharding needs one"
                )
        self.parallel_grad_workers = parallel_grad_workers
        self._gradmap = None
        self.telemetry = telemetry
        if telemetry is not None and getattr(optimizer, "recorder", None) is None:
            if hasattr(optimizer, "recorder"):
                optimizer.recorder = telemetry
        self.tracer = tracer
        if tracer is not None and getattr(optimizer, "tracer", None) is None:
            if hasattr(optimizer, "tracer"):
                optimizer.tracer = tracer
        if sur is not None:
            eval_n = min(sur_eval_size, len(train_data))
            eval_idx = self.rng.choice(len(train_data), size=eval_n, replace=False)
            self._sur_eval = train_data.batch(eval_idx)
        else:
            self._sur_eval = None
        if parallel_grad_workers is not None:
            from repro.runtime.gradmap import ParallelGradientMap

            # Construct eagerly so model/worker validation errors surface at
            # init; the worker pool itself starts lazily on the first lot.
            self._gradmap = ParallelGradientMap(
                model, train_data, workers=parallel_grad_workers, telemetry=telemetry
            )

    # ------------------------------------------------------------ lifecycle
    def close(self) -> None:
        """Release the parallel gradient workers (no-op when not used)."""
        if self._gradmap is not None:
            self._gradmap.close()
            self._gradmap = None

    def __enter__(self) -> "Trainer":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    # ------------------------------------------------------------------ steps
    def _span(self, name: str):
        """Joint recorder + tracer span for one phase (no-op when both off)."""
        return joint_span(self.telemetry, self.tracer, name)

    def _draw_indices(self, n: int) -> np.ndarray:
        if self.sampling == "poisson":
            from repro.data.sampling import poisson_indices

            return poisson_indices(n, min(self.batch_size / n, 1.0), self.rng)
        return minibatch_indices(n, self.batch_size, self.rng)

    def _accumulated_step(self, params: np.ndarray, idx: np.ndarray) -> tuple[np.ndarray, float]:
        """Gradient-accumulation path: clip+sum per microbatch, noise once.

        The chunks of one lot are one DP release, so adaptive clipping is
        bracketed with ``begin_lot``/``end_lot``: every chunk is clipped at
        the same frozen threshold (which is what ``sensitivity()`` reports
        when the noise is calibrated) and the threshold adapts once per
        optimizer step, not once per microbatch.
        """
        clipping = getattr(self.optimizer, "clipping", None)
        if clipping is not None:
            clipping.begin_lot()
        total = np.zeros(self.model.num_params)
        losses: list[float] = []
        try:
            outs = None
            if self._gradmap is not None and self._gradmap.available and clipping is not None:
                from repro.runtime.jobs import chunk_ranges

                chunks = [
                    idx[start:stop]
                    for start, stop in chunk_ranges(len(idx), self.microbatch_size)
                ]
                with self._span("parallel_grad"):
                    outs = self._gradmap.map_chunks(params, chunks, clipping)
            if outs is not None:
                # Reduce in chunk-index order: same additions in the same
                # order as the serial loop below, hence bit-identical sums.
                # The workers clipped against pickled copies; replaying the
                # observed norms here keeps the parent's adaptive-clipping
                # state on the serial trajectory.
                recorder = getattr(self.optimizer, "recorder", None)
                for chunk_sum, chunk_losses, norms in outs:
                    clipping.observe(norms)
                    if recorder is not None:
                        record_clipping(
                            recorder, None, clipping.sensitivity(), norms=norms
                        )
                    total += chunk_sum
                    losses.extend(chunk_losses.tolist())
            else:
                for start in range(0, len(idx), self.microbatch_size):
                    chunk = idx[start : start + self.microbatch_size]
                    with self._span("sample"):
                        x, y = self.train_data.batch(chunk)
                        if self.augment is not None:
                            x = self.augment(x)
                    if self.grad_mode == "ghost":
                        with self._span("forward_backward"):
                            chunk_losses, chunk_sum = self.optimizer.ghost_clipped_sum(
                                self.model, x, y
                            )
                        total += chunk_sum
                    else:
                        with self._span("forward_backward"):
                            chunk_losses, grads = self.model.loss_and_per_sample_gradients(x, y)
                        total += self.optimizer.clipped_sum(grads)
                    losses.extend(chunk_losses.tolist())
        finally:
            if clipping is not None:
                clipping.end_lot()
        with self._span("step"):
            new_params = self.optimizer.step_presummed(params, total, len(idx))
        batch_loss = float(np.mean(losses)) if losses else float("nan")
        return new_params, batch_loss

    def _ghost_step(self, params: np.ndarray, idx: np.ndarray) -> tuple[np.ndarray, float]:
        """Ghost fast path: clip-and-sum without the ``(B, P)`` matrix.

        Same sampling, same denominator and same noise stream as the
        materialized step — only the clipped sum is computed differently,
        so losses track the materialized path to floating-point tolerance.
        """
        with self._span("sample"):
            x, y = self.train_data.batch(idx)
            if self.augment is not None and len(idx):
                x = self.augment(x)
        with self._span("forward_backward"):
            losses, clipped_sum = self.optimizer.ghost_clipped_sum(self.model, x, y)
        with self._span("step"):
            new_params = self.optimizer.step_presummed(params, clipped_sum, len(idx))
        batch_loss = float(np.mean(losses)) if len(losses) else float("nan")
        return new_params, batch_loss

    def _per_sample_step(self, params: np.ndarray) -> tuple[np.ndarray, float]:
        n = len(self.train_data)
        if self.microbatch_size is not None or self.sampling == "poisson":
            idx = self._draw_indices(n)
            if self.microbatch_size is not None:
                return self._accumulated_step(params, idx)
            if self.grad_mode == "ghost":
                return self._ghost_step(params, idx)
            with self._span("sample"):
                x, y = self.train_data.batch(idx)
                if self.augment is not None and len(idx):
                    x = self.augment(x)
            if len(idx):
                with self._span("forward_backward"):
                    losses, grads = self.model.loss_and_per_sample_gradients(x, y)
                batch_loss = float(np.mean(losses))
            else:
                # Empty Poisson batch: the mechanism still releases pure
                # noise (sum of zero clipped gradients plus Gaussian).
                grads = np.zeros((0, self.model.num_params))
                batch_loss = float("nan")
            with self._span("step"):
                return self.optimizer.step(params, grads), batch_loss
        if self.grad_mode == "ghost":
            return self._ghost_step(params, minibatch_indices(n, self.batch_size, self.rng))
        if self.importance_sampling is not None:
            with self._span("sample"):
                pool_size = min(self.pool_factor * self.batch_size, n)
                pool_idx = minibatch_indices(n, pool_size, self.rng)
                x, y = self.train_data.batch(pool_idx)
                if self.augment is not None:
                    x = self.augment(x)
            with self._span("forward_backward"):
                losses, grads = self.model.loss_and_per_sample_gradients(x, y)
            norms = np.linalg.norm(grads, axis=1)
            chosen = self.importance_sampling.select(norms, self.batch_size, self.rng)
            losses, grads = losses[chosen], grads[chosen]
        else:
            with self._span("sample"):
                idx = minibatch_indices(n, self.batch_size, self.rng)
                x, y = self.train_data.batch(idx)
                if self.augment is not None:
                    x = self.augment(x)
            with self._span("forward_backward"):
                losses, grads = self.model.loss_and_per_sample_gradients(x, y)
        with self._span("step"):
            new_params = self.optimizer.step(params, grads)
        return new_params, float(np.mean(losses))

    def _mean_step(self, params: np.ndarray) -> tuple[np.ndarray, float]:
        with self._span("sample"):
            idx = minibatch_indices(len(self.train_data), self.batch_size, self.rng)
            x, y = self.train_data.batch(idx)
            if self.augment is not None:
                x = self.augment(x)
        with self._span("forward_backward"):
            loss, grad = self.model.loss_and_gradient(x, y)
        with self._span("step"):
            new_params = self.optimizer.step(params, grad)
        return new_params, loss

    def train_epochs(self, num_epochs: int, *, eval_every: int = 0) -> TrainingHistory:
        """Convenience: run ``ceil(N / B) * num_epochs`` iterations."""
        if num_epochs < 1:
            raise ValueError(f"num_epochs must be >= 1, got {num_epochs}")
        steps_per_epoch = -(-len(self.train_data) // self.batch_size)
        return self.train(steps_per_epoch * num_epochs, eval_every=eval_every)

    def train(
        self,
        num_iterations: int,
        *,
        eval_every: int = 0,
        checkpoint_every: int = 0,
        checkpoint_dir=None,
        resume: bool = True,
    ) -> TrainingHistory:
        """Run ``num_iterations`` optimizer steps; returns the metric history.

        Parameters
        ----------
        eval_every:
            Evaluate on ``test_data`` every this many iterations (0: never).
        checkpoint_every / checkpoint_dir:
            When both are set, a full training-state snapshot (see
            :mod:`repro.checkpoint`) is written atomically to
            ``checkpoint_dir`` every ``checkpoint_every`` iterations.
        resume:
            When ``checkpoint_dir`` holds a valid snapshot (at or before
            ``num_iterations``), restore it and continue from there instead
            of starting over; corrupted or partial snapshot files are
            skipped with a warning.  The resumed run is bit-identical to an
            uninterrupted one.  Pass ``resume=False`` to ignore existing
            snapshots (they are then overwritten as training progresses).
        """
        with maybe_span(self.tracer, "run", "run"):
            return self._train_inner(
                num_iterations,
                eval_every=eval_every,
                checkpoint_every=checkpoint_every,
                checkpoint_dir=checkpoint_dir,
                resume=resume,
            )

    def _train_inner(
        self,
        num_iterations: int,
        *,
        eval_every: int,
        checkpoint_every: int,
        checkpoint_dir,
        resume: bool,
    ) -> TrainingHistory:
        if num_iterations < 1:
            raise ValueError(f"num_iterations must be >= 1, got {num_iterations}")
        if checkpoint_every < 0:
            raise ValueError(f"checkpoint_every must be >= 0, got {checkpoint_every}")
        if checkpoint_every and checkpoint_dir is None:
            raise ValueError("checkpoint_every requires checkpoint_dir")
        history = TrainingHistory()
        start_iteration = 0
        if checkpoint_dir is not None:
            from pathlib import Path

            from repro.checkpoint import (
                capture_training_state,
                latest_snapshot,
                restore_training_state,
                save_snapshot,
                snapshot_path,
            )

            checkpoint_dir = Path(checkpoint_dir)
            checkpoint_dir.mkdir(parents=True, exist_ok=True)
            if resume:
                found = latest_snapshot(
                    checkpoint_dir,
                    max_iteration=num_iterations,
                    telemetry=self.telemetry,
                )
                if found is not None:
                    _, snapshot_state = found
                    # Tracer-only span: the recorder's own state is being
                    # replaced by the snapshot here, so it cannot time this.
                    with maybe_span(self.tracer, "checkpoint"):
                        history, start_iteration = restore_training_state(
                            self, snapshot_state
                        )
        per_sample = getattr(self.optimizer, "requires_per_sample", False)
        recorder = self.telemetry
        tracer = self.tracer
        trace_epochs = tracer is not None and tracer.enabled("epoch")
        steps_per_epoch = -(-len(self.train_data) // self.batch_size)
        epoch_cm = None
        epoch_index: int | None = None

        try:
            for iteration in range(start_iteration + 1, num_iterations + 1):
                if trace_epochs:
                    epoch = (iteration - 1) // steps_per_epoch
                    if epoch != epoch_index:
                        if epoch_cm is not None:
                            epoch_cm.__exit__(None, None, None)
                        epoch_cm = tracer.span("epoch", "epoch")
                        epoch_cm.__enter__().meta["index"] = float(epoch)
                        epoch_index = epoch
                with maybe_span(tracer, "lot", "lot") as lot:
                    if lot is not None:
                        lot.meta["iteration"] = float(iteration)
                    if recorder is not None:
                        recorder.start_step(iteration)
                    params = self.model.get_params()
                    if self.sur is not None:
                        loss_before = self.model.mean_loss(*self._sur_eval)
                        # The descent step also advances momentum/Adam
                        # buffers; a rejected update must roll those back
                        # too, or the rejected noisy gradient keeps steering
                        # later accepted steps.
                        update_state = _capture_update_state(self.optimizer)

                    if per_sample:
                        new_params, batch_loss = self._per_sample_step(params)
                    else:
                        new_params, batch_loss = self._mean_step(params)
                    self.model.set_params(new_params)

                    if self.sur is not None:
                        loss_after = self.model.mean_loss(*self._sur_eval)
                        accepted = self.sur.should_accept(loss_before, loss_after)
                        if not accepted:
                            # roll back rejected update
                            self.model.set_params(params)
                            _restore_update_state(self.optimizer, update_state)
                        if recorder is not None:
                            recorder.record("sur_accepted", float(accepted))
                            recorder.increment(
                                "sur_accepted" if accepted else "sur_rejected"
                            )

                    history.losses.append(batch_loss)
                    history.iterations = iteration
                    if (
                        eval_every
                        and self.test_data is not None
                        and iteration % eval_every == 0
                    ):
                        with self._span("eval"):
                            history.test_accuracy.append(
                                (iteration, self.evaluate())
                            )
                        if recorder is not None:
                            recorder.record(
                                "test_accuracy", history.test_accuracy[-1][1]
                            )
                    if recorder is not None:
                        recorder.record("loss", batch_loss)
                        recorder.increment("iterations")
                        recorder.end_step()
                if checkpoint_every and iteration % checkpoint_every == 0:
                    with self._span("checkpoint"):
                        save_snapshot(
                            snapshot_path(checkpoint_dir, iteration),
                            capture_training_state(self, history, iteration),
                        )
        finally:
            if epoch_cm is not None:
                epoch_cm.__exit__(None, None, None)

        if eval_every and self.test_data is not None and (
            not history.test_accuracy or history.test_accuracy[-1][0] != num_iterations
        ):
            history.test_accuracy.append((num_iterations, self.evaluate()))
            if recorder is not None:
                recorder.record(
                    "test_accuracy", history.test_accuracy[-1][1], step=num_iterations
                )
        if self.sur is not None:
            history.sur_acceptance_rate = self.sur.acceptance_rate
        return history

    def evaluate(self, *, max_samples: int | None = None, chunk: int = 512) -> float:
        """Test accuracy, computed in ``chunk``-sized pieces to bound memory."""
        if chunk < 1:
            raise ValueError(f"chunk must be >= 1, got {chunk}")
        if self.test_data is None:
            raise ValueError("no test_data attached")
        x, y = self.test_data.x, self.test_data.y
        if max_samples is not None:
            x, y = x[:max_samples], y[:max_samples]
        correct = 0
        for start in range(0, len(y), chunk):
            preds = self.model.predict(x[start : start + chunk])
            correct += int(np.sum(preds == y[start : start + chunk]))
        return correct / len(y)
