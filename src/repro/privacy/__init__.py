"""Differential-privacy substrate.

Implements the mechanisms, calibration routines, accountants and per-sample
clipping strategies that DP-SGD and GeoDP-SGD are built on.  Everything is
implemented from first principles (no Opacus): the Gaussian mechanism
(paper §III-A), classic and analytic noise calibration, Renyi-DP accounting
for the (Poisson-subsampled) Gaussian mechanism (paper §II-A's RDP [9]),
composition theorems, and the clipping rules the paper benchmarks against
(flat clipping Eq. 6, AUTO-S [58], PSAC [51], quantile-adaptive clipping).
"""

from repro.privacy.mechanisms import GaussianMechanism, LaplaceMechanism
from repro.privacy.calibration import (
    classic_gaussian_sigma,
    analytic_gaussian_sigma,
    gaussian_epsilon,
    analytic_gaussian_delta,
)
from repro.privacy.rdp import (
    DEFAULT_ALPHAS,
    rdp_gaussian,
    rdp_subsampled_gaussian,
    rdp_to_dp,
)
from repro.privacy.accountant import RdpAccountant, GaussianAccountant, PrivacySpent
from repro.privacy.pld import PldAccountant, PrivacyLossDistribution
from repro.privacy.gdp import (
    GdpAccountant,
    dpsgd_gdp_mu,
    gaussian_gdp_mu,
    gdp_delta,
    gdp_epsilon,
)
from repro.privacy.composition import basic_composition, advanced_composition
from repro.privacy.curves import (
    epsilon_curve,
    find_noise_multiplier,
    steps_until_budget,
)
from repro.privacy.local import (
    DuchiMechanism,
    HybridMechanism,
    PiecewiseMechanism,
    RandomizedResponse,
    perturb_vector,
)
from repro.privacy.selection import (
    ExponentialMechanism,
    SparseVectorTechnique,
    report_noisy_max,
)
from repro.privacy.clipping import (
    ClippingStrategy,
    FlatClipping,
    AutoSClipping,
    PsacClipping,
    AdaptiveQuantileClipping,
    PerLayerClipping,
)
from repro.privacy.ledger import (
    GENESIS_HASH,
    LedgerError,
    LedgerVerification,
    ReleaseLedger,
    ReleaseRecord,
    verify_ledger,
)

__all__ = [
    "GaussianMechanism",
    "LaplaceMechanism",
    "classic_gaussian_sigma",
    "analytic_gaussian_sigma",
    "gaussian_epsilon",
    "analytic_gaussian_delta",
    "DEFAULT_ALPHAS",
    "rdp_gaussian",
    "rdp_subsampled_gaussian",
    "rdp_to_dp",
    "RdpAccountant",
    "GaussianAccountant",
    "PrivacySpent",
    "PldAccountant",
    "PrivacyLossDistribution",
    "GdpAccountant",
    "dpsgd_gdp_mu",
    "gaussian_gdp_mu",
    "gdp_delta",
    "gdp_epsilon",
    "basic_composition",
    "advanced_composition",
    "epsilon_curve",
    "find_noise_multiplier",
    "steps_until_budget",
    "DuchiMechanism",
    "HybridMechanism",
    "PiecewiseMechanism",
    "RandomizedResponse",
    "perturb_vector",
    "ExponentialMechanism",
    "SparseVectorTechnique",
    "report_noisy_max",
    "ClippingStrategy",
    "FlatClipping",
    "AutoSClipping",
    "PsacClipping",
    "AdaptiveQuantileClipping",
    "PerLayerClipping",
    "ReleaseLedger",
    "ReleaseRecord",
    "GENESIS_HASH",
    "LedgerError",
    "LedgerVerification",
    "verify_ledger",
]
