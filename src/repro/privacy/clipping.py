"""Per-sample gradient clipping strategies.

All strategies map a matrix of per-sample gradients ``(B, d)`` to clipped
per-sample gradients whose L2 norms are bounded by the strategy's
:meth:`~ClippingStrategy.sensitivity`, which is what calibrates the DP noise.

Implemented strategies:

* :class:`FlatClipping` — the paper's Eq. 6 (Abadi et al.):
  ``g / max(1, ||g|| / C)``.
* :class:`AutoSClipping` — AUTO-S automatic clipping (Bu et al., NeurIPS
  2023, ref [58]): ``C * g / (||g|| + gamma)``; always rescales, never
  truncates, with a stability constant ``gamma``.
* :class:`PsacClipping` — per-sample adaptive clipping (Xia et al., AAAI
  2023, ref [51]): a *non-monotonic* weight
  ``C * ||g|| / (||g||^2 + gamma)`` that attenuates both very large
  gradients (like flat clipping) and very small ones (whose direction is
  mostly noise), concentrating the fixed noise budget on informative
  samples.  Clipped norm ``C * ||g||^2 / (||g||^2 + gamma) < C``.
* :class:`AdaptiveQuantileClipping` — quantile-target adaptive threshold
  (Andrew et al., NeurIPS 2021): ``C`` tracks a target quantile of observed
  per-sample norms by geometric updates.

The returned clipped gradients are *per-sample*; aggregation (sum, then
``+ noise``, then ``/ B``, Eq. 8) happens in the optimizers.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_matrix, check_positive, check_probability

__all__ = [
    "ClippingStrategy",
    "FlatClipping",
    "AutoSClipping",
    "PsacClipping",
    "AdaptiveQuantileClipping",
    "PerLayerClipping",
    "GhostClippingUnsupportedError",
]


class GhostClippingUnsupportedError(ValueError):
    """Raised when a strategy cannot express clipping as per-sample factors.

    The ghost-clipping fast path (:meth:`repro.nn.Sequential.
    loss_and_clipped_grad_sum`) never materializes the ``(B, d)`` per-sample
    gradient matrix; it needs the strategy to reduce to one multiplicative
    factor per sample computed from that sample's pre-clip L2 norm.
    Strategies that inspect sub-vectors (e.g. :class:`PerLayerClipping`)
    raise this error, and callers fall back to the materialized path.
    """


class ClippingStrategy:
    """Interface: clip per-sample gradients and expose the induced sensitivity."""

    #: Whether :meth:`clip_factors` is implemented, i.e. whether the strategy
    #: is expressible as one scale factor per sample from its pre-clip norm
    #: (the requirement of the ghost-clipping fast path).
    supports_ghost = False

    #: Whether :meth:`sensitivity` is the same constant for every release.
    #: The sparse lazy-noise path (:mod:`repro.sparse`) requires this: noise
    #: deferred at step ``t`` is materialized later with the scale
    #: ``sigma * sensitivity``, which must not have drifted in between.
    has_constant_sensitivity = True

    def clip(self, per_sample_grads) -> np.ndarray:
        """Return clipped per-sample gradients with norms <= :meth:`sensitivity`."""
        return self.clip_with_norms(per_sample_grads)[0]

    def clip_factors(self, norms) -> np.ndarray:
        """Per-sample scale factors ``c_i`` from pre-clip L2 norms ``(B,)``.

        Contract: for any gradient matrix ``G`` with row norms ``norms``,
        ``clip(G)[i] == clip_factors(norms)[i] * G[i]`` — which is what lets
        the ghost path obtain ``sum_i c_i g_i`` from a second backward pass
        without ever forming ``G``.  Adaptive strategies update their
        threshold state exactly as :meth:`clip_with_norms` would (one
        observation per call, frozen mid-lot).
        """
        raise GhostClippingUnsupportedError(
            f"{type(self).__name__} cannot clip from norms alone; use the "
            "materialized per-sample gradient path (grad_mode='materialize')"
        )

    def clip_with_norms(self, per_sample_grads) -> tuple[np.ndarray, np.ndarray]:
        """Clip and also return the *pre-clip* per-sample L2 norms.

        The norms are a byproduct of every strategy's own computation;
        returning them lets telemetry record clipping statistics without a
        second pass over the ``(B, d)`` gradient matrix.
        """
        raise NotImplementedError

    def sensitivity(self) -> float:
        """L2 bound on any single clipped per-sample gradient."""
        raise NotImplementedError

    def begin_lot(self) -> None:
        """Mark the start of one logical lot (gradient-accumulation unit).

        Stateless strategies ignore lot boundaries; adaptive strategies use
        them to keep their threshold frozen across the microbatches of one
        optimizer step (one adaptation per DP release, as the sensitivity
        analysis requires).
        """

    def end_lot(self) -> None:
        """Mark the end of the lot opened by :meth:`begin_lot`."""

    def observe(self, norms) -> None:
        """Feed pre-clip per-sample norms to the strategy's adaptation state.

        Stateless strategies ignore observations.  Adaptive strategies use
        this as the single entry point for threshold statistics — it is
        called internally by :meth:`clip_with_norms`, and directly by the
        parallel gradient map, which clips in worker processes (on pickled
        copies) and replays the observed norms on the parent's strategy so
        the adaptive trajectory matches the serial run exactly.
        """

    def state_dict(self) -> dict:
        """Mutable state for checkpointing (empty for stateless strategies)."""
        return {}

    def load_state_dict(self, state: dict) -> None:
        """Restore state captured by :meth:`state_dict`."""
        if state:
            raise ValueError(
                f"{type(self).__name__} is stateless but got state keys "
                f"{sorted(state)}"
            )

    @staticmethod
    def _norms(grads: np.ndarray) -> np.ndarray:
        # Row norms on the hot path: single-pass einsum is ~3x faster than
        # np.linalg.norm(axis=1) on large per-sample gradient matrices.
        return np.sqrt(np.einsum("ij,ij->i", grads, grads))


class FlatClipping(ClippingStrategy):
    """Classic flat clipping of Eq. 6: rescale only gradients above ``C``."""

    supports_ghost = True

    def __init__(self, clip_norm: float):
        self.clip_norm = check_positive("clip_norm", clip_norm)

    def clip_with_norms(self, per_sample_grads) -> tuple[np.ndarray, np.ndarray]:
        grads = check_matrix("per_sample_grads", per_sample_grads)
        norms = self._norms(grads)
        scale = 1.0 / np.maximum(1.0, norms / self.clip_norm)
        return grads * scale[:, None], norms

    def clip_factors(self, norms) -> np.ndarray:
        norms = np.asarray(norms, dtype=np.float64)
        return 1.0 / np.maximum(1.0, norms / self.clip_norm)

    def sensitivity(self) -> float:
        return self.clip_norm

    def __repr__(self) -> str:
        return f"FlatClipping(clip_norm={self.clip_norm})"


class AutoSClipping(ClippingStrategy):
    """AUTO-S automatic clipping: ``C * g / (||g|| + gamma)``.

    Every gradient is rescaled (no hard truncation), which removes the
    clipping-threshold hyper-parameter's sharp failure modes; ``gamma > 0``
    keeps small gradients from being blown up to the full norm ``C`` and
    guarantees the clipped norm stays strictly below ``C``.
    """

    supports_ghost = True

    def __init__(self, clip_norm: float, gamma: float = 0.01):
        self.clip_norm = check_positive("clip_norm", clip_norm)
        self.gamma = check_positive("gamma", gamma)

    def clip_with_norms(self, per_sample_grads) -> tuple[np.ndarray, np.ndarray]:
        grads = check_matrix("per_sample_grads", per_sample_grads)
        norms = self._norms(grads)
        scale = self.clip_norm / (norms + self.gamma)
        return grads * scale[:, None], norms

    def clip_factors(self, norms) -> np.ndarray:
        norms = np.asarray(norms, dtype=np.float64)
        return self.clip_norm / (norms + self.gamma)

    def sensitivity(self) -> float:
        return self.clip_norm

    def __repr__(self) -> str:
        return f"AutoSClipping(clip_norm={self.clip_norm}, gamma={self.gamma})"


class PsacClipping(ClippingStrategy):
    """Per-sample adaptive clipping with a non-monotonic weight function.

    ``clipped = C * ||g|| / (||g||^2 + gamma) * g``; the clipped norm
    ``C * ||g||^2 / (||g||^2 + gamma)`` increases with ``||g||`` but is
    attenuated for tiny gradients, whose directions are dominated by
    stochastic noise.  ``gamma`` sets the norm scale below which samples are
    considered uninformative.
    """

    supports_ghost = True

    def __init__(self, clip_norm: float, gamma: float = 0.01):
        self.clip_norm = check_positive("clip_norm", clip_norm)
        self.gamma = check_positive("gamma", gamma)

    def clip_with_norms(self, per_sample_grads) -> tuple[np.ndarray, np.ndarray]:
        grads = check_matrix("per_sample_grads", per_sample_grads)
        norms = self._norms(grads)
        # ||clipped|| = C * ||g||^2 / (||g||^2 + gamma) < C
        scale = self.clip_norm * norms / (norms**2 + self.gamma)
        return grads * scale[:, None], norms

    def clip_factors(self, norms) -> np.ndarray:
        norms = np.asarray(norms, dtype=np.float64)
        return self.clip_norm * norms / (norms**2 + self.gamma)

    def sensitivity(self) -> float:
        return self.clip_norm

    def __repr__(self) -> str:
        return f"PsacClipping(clip_norm={self.clip_norm}, gamma={self.gamma})"


class AdaptiveQuantileClipping(ClippingStrategy):
    """Quantile-tracking adaptive clipping threshold (Andrew et al. 2021).

    After each logical lot the threshold moves geometrically toward the
    ``target_quantile`` of the observed per-sample norms:

    ``C <- C * exp(-lr * (fraction_below - target_quantile))``

    A *lot* is one DP release.  Without gradient accumulation every
    :meth:`clip` call is its own lot and the threshold updates immediately.
    Under microbatch accumulation the trainer brackets the chunks of one
    optimizer step with :meth:`begin_lot` / :meth:`end_lot`; the threshold
    is then frozen for the whole lot (every chunk clipped at the same ``C``,
    which is also what :meth:`sensitivity` reports for the release) and a
    single geometric update is applied at :meth:`end_lot` from the pooled
    norm statistics.

    In a full DP deployment the ``fraction_below`` statistic is itself
    noised; :meth:`clip` accepts an optional pre-seeded generator through the
    constructor for that purpose.
    """

    supports_ghost = True
    #: The threshold (and with it the sensitivity) moves between releases,
    #: so deferred noise cannot be rescaled correctly afterwards.
    has_constant_sensitivity = False

    def __init__(
        self,
        initial_clip_norm: float,
        target_quantile: float = 0.5,
        learning_rate: float = 0.2,
        *,
        noise_std: float = 0.0,
        rng=None,
    ):
        self.clip_norm = check_positive("initial_clip_norm", initial_clip_norm)
        self.target_quantile = check_probability("target_quantile", target_quantile)
        self.learning_rate = check_positive("learning_rate", learning_rate)
        self.noise_std = check_positive("noise_std", noise_std, strict=False)
        from repro.utils.rng import as_rng

        self._rng = as_rng(rng)
        #: Threshold trajectory, one value per lot (before its update).
        self.history: list[float] = []
        self._lot_active = False
        self._lot_below = 0
        self._lot_count = 0

    def begin_lot(self) -> None:
        if self._lot_active:
            raise RuntimeError("begin_lot() called twice without end_lot()")
        self._lot_active = True
        self._lot_below = 0
        self._lot_count = 0

    def end_lot(self) -> None:
        if not self._lot_active:
            raise RuntimeError("end_lot() called without begin_lot()")
        self._lot_active = False
        if self._lot_count:
            self._update(self._lot_below / self._lot_count, self._lot_count)

    def _update(self, fraction_below: float, count: int) -> None:
        """One geometric threshold update from a lot's pooled norm statistics."""
        self.history.append(self.clip_norm)
        if self.noise_std > 0:
            fraction_below += self._rng.normal(0.0, self.noise_std / count)
        self.clip_norm *= float(
            np.exp(-self.learning_rate * (fraction_below - self.target_quantile))
        )

    def clip_with_norms(self, per_sample_grads) -> tuple[np.ndarray, np.ndarray]:
        grads = check_matrix("per_sample_grads", per_sample_grads)
        norms = self._norms(grads)
        scale = 1.0 / np.maximum(1.0, norms / self.clip_norm)
        clipped = grads * scale[:, None]
        self.observe(norms)
        return clipped, norms

    def clip_factors(self, norms) -> np.ndarray:
        norms = np.asarray(norms, dtype=np.float64)
        # Factors are computed at the current (mid-lot: frozen) threshold
        # *before* the observation, exactly like clip_with_norms.
        factors = 1.0 / np.maximum(1.0, norms / self.clip_norm)
        self.observe(norms)
        return factors

    def observe(self, norms) -> None:
        norms = np.asarray(norms)
        if norms.size == 0:
            return
        if self._lot_active:
            self._lot_below += int(np.sum(norms <= self.clip_norm))
            self._lot_count += len(norms)
        else:
            self._update(float(np.mean(norms <= self.clip_norm)), len(norms))

    def sensitivity(self) -> float:
        """Sensitivity of the release the threshold was last applied to.

        Mid-lot (between :meth:`begin_lot` and :meth:`end_lot`) this is the
        frozen active threshold; otherwise it is the threshold the previous
        lot was clipped with.
        """
        if self._lot_active:
            return self.clip_norm
        return self.history[-1] if self.history else self.clip_norm

    def state_dict(self) -> dict:
        from repro.utils.rng import get_rng_state

        if self._lot_active:
            raise RuntimeError("cannot checkpoint mid-lot; call end_lot() first")
        return {
            "clip_norm": float(self.clip_norm),
            "history": [float(c) for c in self.history],
            "rng": get_rng_state(self._rng),
        }

    def load_state_dict(self, state: dict) -> None:
        from repro.utils.rng import set_rng_state

        self.clip_norm = float(state["clip_norm"])
        self.history = [float(c) for c in state["history"]]
        set_rng_state(self._rng, state["rng"])
        self._lot_active = False
        self._lot_below = 0
        self._lot_count = 0

    def __repr__(self) -> str:
        return (
            f"AdaptiveQuantileClipping(clip_norm={self.clip_norm:.4g}, "
            f"target_quantile={self.target_quantile})"
        )


class PerLayerClipping(ClippingStrategy):
    """Clip each parameter block (layer) to its own threshold.

    ``blocks`` is a list of slices partitioning the flat gradient vector
    (e.g. from :meth:`repro.nn.Sequential.layer_slices`), and
    ``clip_norms`` either one threshold shared by all blocks or one per
    block.  The total L2 sensitivity is ``sqrt(sum_j C_j^2)`` — each block
    changes by at most its own threshold between neighbouring datasets.
    """

    def __init__(self, blocks, clip_norms):
        self.blocks = [b[1] if isinstance(b, tuple) else b for b in blocks]
        if not self.blocks:
            raise ValueError("need at least one block")
        for s in self.blocks:
            if not isinstance(s, slice):
                raise TypeError(f"blocks must be slices, got {type(s)!r}")
        if np.isscalar(clip_norms):
            clip_norms = [float(clip_norms)] * len(self.blocks)
        self.clip_norms = [check_positive("clip_norm", c) for c in clip_norms]
        if len(self.clip_norms) != len(self.blocks):
            raise ValueError(
                f"{len(self.blocks)} blocks but {len(self.clip_norms)} thresholds"
            )

    def clip_with_norms(self, per_sample_grads) -> tuple[np.ndarray, np.ndarray]:
        grads = check_matrix("per_sample_grads", per_sample_grads)
        out = grads.copy()
        covered = 0
        total_sq = np.zeros(grads.shape[0])
        for block, clip_norm in zip(self.blocks, self.clip_norms):
            part = grads[:, block]
            covered += part.shape[1]
            norms_sq = np.einsum("ij,ij->i", part, part)
            total_sq += norms_sq
            scale = 1.0 / np.maximum(1.0, np.sqrt(norms_sq) / clip_norm)
            out[:, block] = part * scale[:, None]
        if covered != grads.shape[1]:
            raise ValueError(
                f"blocks cover {covered} of {grads.shape[1]} coordinates; "
                "per-layer clipping requires a full partition"
            )
        return out, np.sqrt(total_sq)

    def clip_factors(self, norms) -> np.ndarray:
        raise GhostClippingUnsupportedError(
            "PerLayerClipping scales each parameter block by its own factor, "
            "which a single per-sample factor cannot express; use "
            "grad_mode='materialize' (the trainer falls back automatically)"
        )

    def sensitivity(self) -> float:
        return float(np.sqrt(np.sum(np.square(self.clip_norms))))

    def __repr__(self) -> str:
        return (
            f"PerLayerClipping(blocks={len(self.blocks)}, "
            f"sensitivity={self.sensitivity():.4g})"
        )
