"""Local differential privacy (LDP) mechanisms for numeric data.

The paper's index terms include *local differential privacy* and its
related work leans on numeric LDP collection (refs [14] Duchi et al.,
[15] Wang et al. ICDE 2019, [24-27]).  In the federated deployment of
GeoDP (examples/federated_geodp.py) each client's release is local, so
the library ships the standard numeric LDP toolbox:

* :class:`RandomizedResponse` — k-ary randomized response for categorical
  values (generalised RR).
* :class:`DuchiMechanism` — Duchi et al.'s unbiased mechanism for one
  value in ``[-1, 1]``: releases ``+/- (e^eps + 1)/(e^eps - 1)``.
* :class:`PiecewiseMechanism` — Wang et al.'s PM: releases a value in
  ``[-C, C]`` with a piecewise-constant density; unbiased with lower
  variance than Duchi for moderate/large eps.
* :class:`HybridMechanism` — Wang et al.'s HM: mixes PM and Duchi with the
  epsilon-dependent coefficient that minimises worst-case variance.
* :func:`perturb_vector` — the sample-k-dimensions protocol for
  d-dimensional records: perturb ``k`` random coordinates with budget
  ``eps/k`` each and rescale by ``d/k`` to stay unbiased.
"""

from __future__ import annotations

import math

import numpy as np

from repro.utils.rng import as_rng
from repro.utils.validation import check_in_range, check_positive

__all__ = [
    "RandomizedResponse",
    "DuchiMechanism",
    "PiecewiseMechanism",
    "HybridMechanism",
    "perturb_vector",
]


class RandomizedResponse:
    """Generalised (k-ary) randomized response.

    Reports the true category with probability ``e^eps / (e^eps + k - 1)``
    and any other specific category with probability ``1 / (e^eps + k - 1)``.
    """

    def __init__(self, epsilon: float, num_categories: int):
        self.eps = check_positive("epsilon", epsilon)
        if num_categories < 2:
            raise ValueError(f"num_categories must be >= 2, got {num_categories}")
        self.k = num_categories
        e = math.exp(self.eps)
        self.p_true = e / (e + self.k - 1)

    def perturb(self, values, rng=None) -> np.ndarray:
        """Perturb an array of category indices."""
        rng = as_rng(rng)
        values = np.asarray(values, dtype=np.int64)
        if values.min(initial=0) < 0 or values.max(initial=0) >= self.k:
            raise ValueError(f"categories must lie in [0, {self.k})")
        keep = rng.random(values.shape) < self.p_true
        others = rng.integers(0, self.k - 1, size=values.shape)
        # Map the k-1 "other" draws around the true value.
        flipped = others + (others >= values)
        return np.where(keep, values, flipped)

    def estimate_frequencies(self, reports) -> np.ndarray:
        """Unbiased frequency estimates from perturbed reports."""
        reports = np.asarray(reports, dtype=np.int64)
        n = reports.shape[0]
        counts = np.bincount(reports, minlength=self.k) / max(n, 1)
        p = self.p_true
        q = (1.0 - p) / (self.k - 1)
        return (counts - q) / (p - q)


class DuchiMechanism:
    """Duchi et al.'s mechanism for a single value in ``[-1, 1]``.

    Releases ``+A`` with probability ``(t (e^eps - 1) + e^eps + 1) /
    (2 (e^eps + 1))`` and ``-A`` otherwise, where
    ``A = (e^eps + 1)/(e^eps - 1)``; the output is an unbiased estimate.
    """

    def __init__(self, epsilon: float):
        self.eps = check_positive("epsilon", epsilon)
        e = math.exp(self.eps)
        self.magnitude = (e + 1.0) / (e - 1.0)

    def perturb(self, values, rng=None) -> np.ndarray:
        rng = as_rng(rng)
        t = np.asarray(values, dtype=np.float64)
        if np.any(np.abs(t) > 1 + 1e-12):
            raise ValueError("values must lie in [-1, 1]")
        e = math.exp(self.eps)
        p_plus = (t * (e - 1.0) + e + 1.0) / (2.0 * (e + 1.0))
        signs = np.where(rng.random(t.shape) < p_plus, 1.0, -1.0)
        return signs * self.magnitude

    def worst_case_variance(self) -> float:
        """Variance at t = 0 (the worst case): ``A^2``."""
        return self.magnitude**2


class PiecewiseMechanism:
    """Wang et al.'s Piecewise Mechanism for a value in ``[-1, 1]``.

    The output domain is ``[-C, C]`` with ``C = (e^{eps/2} + 1) /
    (e^{eps/2} - 1)``.  With probability ``e^{eps/2}/(e^{eps/2}+1)`` the
    output is uniform on the "centre" interval ``[l(t), r(t)]`` of length
    ``C - 1`` around the true value, otherwise uniform on the remainder of
    ``[-C, C]``; this yields an unbiased estimate with variance
    ``t^2/(e^{eps/2}-1) + (e^{eps/2}+3)/(3 (e^{eps/2}-1)^2)``.
    """

    def __init__(self, epsilon: float):
        self.eps = check_positive("epsilon", epsilon)
        self._ee2 = math.exp(self.eps / 2.0)
        self.c = (self._ee2 + 1.0) / (self._ee2 - 1.0)

    def _centre_bounds(self, t: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        left = (self.c + 1.0) / 2.0 * t - (self.c - 1.0) / 2.0
        return left, left + (self.c - 1.0)

    def perturb(self, values, rng=None) -> np.ndarray:
        rng = as_rng(rng)
        t = np.asarray(values, dtype=np.float64)
        if np.any(np.abs(t) > 1 + 1e-12):
            raise ValueError("values must lie in [-1, 1]")
        left, right = self._centre_bounds(t)
        in_centre = rng.random(t.shape) < self._ee2 / (self._ee2 + 1.0)

        centre_draw = rng.uniform(left, right)
        # Tail: uniform over [-C, l) + (r, C], total length C + 1.
        tail_len_left = left + self.c
        tail_u = rng.uniform(0.0, self.c + 1.0, size=t.shape)
        tail_draw = np.where(
            tail_u < tail_len_left, -self.c + tail_u, right + (tail_u - tail_len_left)
        )
        return np.where(in_centre, centre_draw, tail_draw)

    def variance(self, t: float) -> float:
        """Closed-form output variance at true value ``t``."""
        t = check_in_range("t", t, -1.0, 1.0)
        e = self._ee2
        return t**2 / (e - 1.0) + (e + 3.0) / (3.0 * (e - 1.0) ** 2)

    def worst_case_variance(self) -> float:
        """Variance at |t| = 1."""
        return self.variance(1.0)


class HybridMechanism:
    """Wang et al.'s Hybrid Mechanism: mix PM and Duchi.

    For ``eps > eps* = 0.61`` the client uses PM with probability
    ``1 - e^{-eps/2}`` and Duchi otherwise; for smaller eps it always uses
    Duchi.  The mixture keeps unbiasedness and minimises worst-case
    variance across the eps range.
    """

    _EPS_STAR = 0.61

    def __init__(self, epsilon: float):
        self.eps = check_positive("epsilon", epsilon)
        self.pm = PiecewiseMechanism(epsilon)
        self.duchi = DuchiMechanism(epsilon)
        if self.eps > self._EPS_STAR:
            self.pm_probability = 1.0 - math.exp(-self.eps / 2.0)
        else:
            self.pm_probability = 0.0

    def perturb(self, values, rng=None) -> np.ndarray:
        rng = as_rng(rng)
        t = np.asarray(values, dtype=np.float64)
        use_pm = rng.random(t.shape) < self.pm_probability
        out = np.where(
            use_pm, self.pm.perturb(t, rng), self.duchi.perturb(t, rng)
        )
        return out


def perturb_vector(
    values,
    epsilon: float,
    rng=None,
    *,
    k: int | None = None,
    mechanism: str = "pm",
) -> np.ndarray:
    """Perturb d-dimensional records in ``[-1, 1]^d`` under eps-LDP.

    Implements the sample-k-dimensions protocol (Wang et al. 2019): for each
    record, pick ``k`` coordinates uniformly, perturb each with budget
    ``eps/k`` using the chosen scalar mechanism, scale the outputs by
    ``d/k`` and zero the rest — an unbiased estimate of the record with
    variance far below perturbing all d coordinates at ``eps/d`` each.

    Parameters
    ----------
    values:
        ``(n, d)`` matrix with entries in ``[-1, 1]``.
    k:
        Number of sampled coordinates (default: ``max(1, min(d, eps/2.5))``,
        the paper's recommendation).
    mechanism:
        ``"pm"``, ``"duchi"`` or ``"hybrid"``.
    """
    rng = as_rng(rng)
    epsilon = check_positive("epsilon", epsilon)
    x = np.atleast_2d(np.asarray(values, dtype=np.float64))
    n, d = x.shape
    if np.any(np.abs(x) > 1 + 1e-12):
        raise ValueError("values must lie in [-1, 1]")
    if k is None:
        k = max(1, min(d, int(epsilon / 2.5)))
    if not 1 <= k <= d:
        raise ValueError(f"k must be in [1, {d}], got {k}")

    makers = {
        "pm": PiecewiseMechanism,
        "duchi": DuchiMechanism,
        "hybrid": HybridMechanism,
    }
    if mechanism not in makers:
        raise ValueError(f"mechanism must be one of {sorted(makers)}, got {mechanism!r}")
    mech = makers[mechanism](epsilon / k)

    out = np.zeros_like(x)
    for row in range(n):
        dims = rng.choice(d, size=k, replace=False)
        out[row, dims] = (d / k) * mech.perturb(x[row, dims], rng)
    return out
