"""Gaussian differential privacy (f-DP / mu-GDP) accounting.

Dong, Roth & Su (2019) parametrise privacy by the trade-off curve of a
Gaussian mean-shift test: a mechanism is *mu-GDP* when distinguishing
neighbouring datasets is no easier than distinguishing ``N(0,1)`` from
``N(mu,1)``.  Two standard results are implemented:

* one Gaussian release with multiplier ``sigma`` is ``(1/sigma)``-GDP;
* DP-SGD with sampling rate ``q``, multiplier ``sigma`` and ``T`` steps is
  approximately ``mu``-GDP with (their CLT theorem)

  .. math::

     \\mu = q \\sqrt{T\\,(e^{1/\\sigma^2} - 1)}

* conversion to ``(epsilon, delta)`` uses the closed-form duality

  .. math::

     \\delta(\\epsilon; \\mu) = \\Phi(-\\epsilon/\\mu + \\mu/2)
                               - e^{\\epsilon}\\,\\Phi(-\\epsilon/\\mu - \\mu/2).

The CLT approximation is asymptotic (small ``q``, large ``T``); the test
suite cross-checks it against the RDP accountant in that regime.
"""

from __future__ import annotations

import math

from scipy.stats import norm

from repro.utils.validation import check_positive, check_probability

__all__ = ["gaussian_gdp_mu", "dpsgd_gdp_mu", "gdp_delta", "gdp_epsilon", "GdpAccountant"]


def gaussian_gdp_mu(sigma: float) -> float:
    """mu of one unit-sensitivity Gaussian release: ``1 / sigma``."""
    return 1.0 / check_positive("sigma", sigma)


def dpsgd_gdp_mu(sigma: float, sample_rate: float, steps: int) -> float:
    """CLT approximation of DP-SGD's mu: ``q * sqrt(T (e^{1/sigma^2} - 1))``."""
    sigma = check_positive("sigma", sigma)
    sample_rate = check_probability("sample_rate", sample_rate)
    if steps < 1:
        raise ValueError(f"steps must be >= 1, got {steps}")
    return sample_rate * math.sqrt(steps * math.expm1(1.0 / sigma**2))


def gdp_delta(mu: float, epsilon: float) -> float:
    """delta achieved by a mu-GDP mechanism at a given epsilon (duality)."""
    mu = check_positive("mu", mu)
    epsilon = check_positive("epsilon", epsilon, strict=False)
    return float(
        norm.cdf(-epsilon / mu + mu / 2.0)
        - math.exp(epsilon) * norm.cdf(-epsilon / mu - mu / 2.0)
    )


def gdp_epsilon(mu: float, delta: float, *, tol: float = 1e-10) -> float:
    """Smallest epsilon with ``gdp_delta(mu, epsilon) <= delta``."""
    mu = check_positive("mu", mu)
    delta = check_probability("delta", delta)
    if gdp_delta(mu, 0.0) <= delta:
        return 0.0
    lo, hi = 0.0, 1.0
    while gdp_delta(mu, hi) > delta:
        hi *= 2
        if hi > 1e8:
            raise RuntimeError("epsilon search diverged; mu too large")
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        if gdp_delta(mu, mid) > delta:
            lo = mid
        else:
            hi = mid
        if hi - lo < tol * max(hi, 1.0):
            break
    return hi


class GdpAccountant:
    """mu-GDP accountant for homogeneous DP-SGD runs (CLT approximation).

    Composition of mu-GDP mechanisms is ``sqrt(sum mu_i^2)``-GDP; for the
    homogeneous subsampled case the CLT formula already includes the step
    count, so the accountant just tracks ``steps``.
    """

    def __init__(self, noise_multiplier: float, sample_rate: float):
        self.noise_multiplier = check_positive("noise_multiplier", noise_multiplier)
        self.sample_rate = check_probability("sample_rate", sample_rate)
        self.steps = 0

    def step(self, num_steps: int = 1) -> None:
        """Record ``num_steps`` subsampled Gaussian releases."""
        if num_steps < 1:
            raise ValueError(f"num_steps must be >= 1, got {num_steps}")
        self.steps += num_steps

    @property
    def mu(self) -> float:
        """Current mu of the composed run (0 before any step)."""
        if self.steps == 0:
            return 0.0
        return dpsgd_gdp_mu(self.noise_multiplier, self.sample_rate, self.steps)

    def get_epsilon(self, delta: float) -> float:
        """Composed epsilon at ``delta`` under the CLT approximation."""
        if self.steps == 0:
            return 0.0
        return gdp_epsilon(self.mu, delta)
