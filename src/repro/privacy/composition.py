"""Composition theorems for (epsilon, delta)-DP mechanisms."""

from __future__ import annotations

import math
from collections.abc import Sequence

from repro.utils.validation import check_positive, check_probability

__all__ = ["basic_composition", "advanced_composition"]


def basic_composition(eps_deltas: Sequence[tuple[float, float]]) -> tuple[float, float]:
    """Basic (sequential) composition: epsilons and deltas both add."""
    if not eps_deltas:
        return 0.0, 0.0
    eps_total = 0.0
    delta_total = 0.0
    for eps, delta in eps_deltas:
        eps_total += check_positive("epsilon", eps, strict=False)
        delta_total += check_probability("delta", delta, allow_zero=True)
    return eps_total, delta_total


def advanced_composition(
    epsilon: float,
    delta: float,
    k: int,
    delta_slack: float,
) -> tuple[float, float]:
    """Advanced composition (Dwork, Rothblum & Vadhan 2010).

    ``k``-fold composition of an ``(epsilon, delta)``-DP mechanism satisfies
    ``(epsilon', k*delta + delta_slack)``-DP with

    .. math::

        \\epsilon' = \\epsilon\\sqrt{2k\\ln(1/\\delta_{slack})}
                     + k\\,\\epsilon\\,(e^{\\epsilon} - 1)

    Returns the composed ``(epsilon', delta')`` pair.
    """
    epsilon = check_positive("epsilon", epsilon)
    delta = check_probability("delta", delta, allow_zero=True)
    delta_slack = check_probability("delta_slack", delta_slack)
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    eps_prime = epsilon * math.sqrt(2 * k * math.log(1.0 / delta_slack)) + k * epsilon * (
        math.exp(epsilon) - 1.0
    )
    return eps_prime, k * delta + delta_slack
