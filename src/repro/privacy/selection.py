"""Differentially private selection mechanisms.

The selection primitives behind techniques like SUR's accept test and
hyper-parameter picking under DP:

* :class:`ExponentialMechanism` — select a candidate with probability
  proportional to ``exp(eps * score / (2 * Delta))``.
* :func:`report_noisy_max` — add Gumbel/Laplace noise to scores and return
  the argmax (one-shot, eps-DP; the Gumbel variant is exactly equivalent to
  the exponential mechanism).
* :class:`SparseVectorTechnique` — answer a stream of threshold queries,
  paying only for the (at most ``c``) above-threshold reports (AboveThresh
  / SVT), the classic machinery for adaptive accept/reject streams.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import as_rng
from repro.utils.validation import check_positive

__all__ = ["ExponentialMechanism", "report_noisy_max", "SparseVectorTechnique"]


class ExponentialMechanism:
    """Exponential mechanism over a finite candidate set.

    ``select(scores)`` returns an index with probability proportional to
    ``exp(eps * score_i / (2 * sensitivity))``, which is eps-DP when each
    score's sensitivity is at most ``sensitivity``.
    """

    def __init__(self, epsilon: float, sensitivity: float):
        self.eps = check_positive("epsilon", epsilon)
        self.sensitivity = check_positive("sensitivity", sensitivity)

    def probabilities(self, scores) -> np.ndarray:
        """Selection distribution over the candidates."""
        scores = np.asarray(scores, dtype=np.float64)
        if scores.ndim != 1 or scores.size == 0:
            raise ValueError(f"scores must be a non-empty vector, got {scores.shape}")
        logits = self.eps * scores / (2.0 * self.sensitivity)
        logits -= logits.max()
        weights = np.exp(logits)
        return weights / weights.sum()

    def select(self, scores, rng=None) -> int:
        """Draw one candidate index."""
        probs = self.probabilities(scores)
        return int(as_rng(rng).choice(len(probs), p=probs))


def report_noisy_max(
    scores, epsilon: float, sensitivity: float, rng=None, *, noise: str = "gumbel"
) -> int:
    """Return the index of the noisy maximum score (eps-DP).

    ``noise="gumbel"`` adds Gumbel(2*Delta/eps) noise — distributionally
    identical to the exponential mechanism; ``noise="laplace"`` adds
    Laplace(2*Delta/eps), the classic report-noisy-max.
    """
    scores = np.asarray(scores, dtype=np.float64)
    if scores.ndim != 1 or scores.size == 0:
        raise ValueError(f"scores must be a non-empty vector, got {scores.shape}")
    epsilon = check_positive("epsilon", epsilon)
    sensitivity = check_positive("sensitivity", sensitivity)
    rng = as_rng(rng)
    scale = 2.0 * sensitivity / epsilon
    if noise == "gumbel":
        noisy = scores + rng.gumbel(0.0, scale, size=scores.shape)
    elif noise == "laplace":
        noisy = scores + rng.laplace(0.0, scale, size=scores.shape)
    else:
        raise ValueError(f"noise must be 'gumbel' or 'laplace', got {noise!r}")
    return int(np.argmax(noisy))


class SparseVectorTechnique:
    """AboveThreshold / SVT for a stream of sensitivity-1 queries.

    Answers up to ``cutoff`` above-threshold reports under total budget
    ``epsilon`` (split half on the threshold, half on the queries).  After
    the cutoff the object refuses further queries — the caller must budget
    a new instance.
    """

    def __init__(self, epsilon: float, threshold: float, *, cutoff: int = 1, rng=None):
        self.eps = check_positive("epsilon", epsilon)
        self.threshold = float(threshold)
        if cutoff < 1:
            raise ValueError(f"cutoff must be >= 1, got {cutoff}")
        self.cutoff = cutoff
        self._rng = as_rng(rng)
        eps1 = self.eps / 2.0
        self._eps2 = self.eps / 2.0
        self._noisy_threshold = self.threshold + self._rng.laplace(0.0, 1.0 / eps1)
        self.answered_above = 0
        self.queries_seen = 0

    @property
    def exhausted(self) -> bool:
        """True once ``cutoff`` above-threshold answers have been spent."""
        return self.answered_above >= self.cutoff

    def query(self, value: float) -> bool:
        """Noisy 'is value above threshold?'; True costs budget."""
        if self.exhausted:
            raise RuntimeError(
                "SVT budget exhausted: all above-threshold answers spent"
            )
        self.queries_seen += 1
        noisy = float(value) + self._rng.laplace(
            0.0, 2.0 * self.cutoff / self._eps2
        )
        if noisy >= self._noisy_threshold:
            self.answered_above += 1
            return True
        return False

    def __repr__(self) -> str:
        return (
            f"SparseVectorTechnique(eps={self.eps}, threshold={self.threshold}, "
            f"cutoff={self.cutoff}, spent={self.answered_above})"
        )
