"""Privacy-loss-distribution (PLD) accounting via numerical composition.

The paper's ref [53] (Gopi, Lee & Wutschitz, NeurIPS 2021, "Numerical
composition of differential privacy") composes mechanisms by convolving
their *privacy loss distributions* instead of bounding Renyi moments; for
DP-SGD-sized compositions the resulting epsilon is tighter than RDP.  This
module implements a self-contained pessimistic-discretisation variant for
the Poisson-subsampled Gaussian mechanism:

1. The privacy loss of one release is ``L(x) = log(P(x)/Q(x))`` where, for
   sampling rate ``q`` and noise multiplier ``sigma``,
   ``P = (1-q) N(0, sigma^2) + q N(1, sigma^2)`` and ``Q = N(0, sigma^2)``
   (the standard dominating pair; both adjacency directions are evaluated
   and the worse epsilon reported).
2. The loss is discretised onto a uniform grid with *pessimistic rounding*
   (losses rounded up, out-of-range mass moved to ``+infinity``), so the
   computed delta is an upper bound.
3. ``k``-fold composition is the ``k``-th convolution power of the
   discretised pmf, computed with one FFT (`pmf -> fft -> power -> ifft`).
4. ``delta(eps) = Pr[L = inf] + E[(1 - e^{eps - L})_+]`` on the composed
   distribution; ``epsilon(delta)`` inverts it by binary search.
"""

from __future__ import annotations

import math

import numpy as np

from repro.utils.validation import check_positive, check_probability

__all__ = ["PrivacyLossDistribution", "PldAccountant"]


class PrivacyLossDistribution:
    """Discretised PLD of one Poisson-subsampled Gaussian release."""

    def __init__(
        self,
        noise_multiplier: float,
        sample_rate: float,
        *,
        grid_step: float = 1e-3,
        tail_sigmas: float = 12.0,
        x_points: int = 200_000,
    ):
        self.sigma = check_positive("noise_multiplier", noise_multiplier)
        self.q = check_probability("sample_rate", sample_rate)
        self.grid_step = check_positive("grid_step", grid_step)

        # Integration grid over the output space, covering both mixture
        # components' mass.
        lo = -tail_sigmas * self.sigma
        hi = 1.0 + tail_sigmas * self.sigma
        x = np.linspace(lo, hi, x_points)
        dx = x[1] - x[0]

        log_ratio_gauss = (2.0 * x - 1.0) / (2.0 * self.sigma**2)  # log N1/N0
        # L(x) = log((1-q) + q * e^{log_ratio}), stable in both tails.
        loss = np.logaddexp(math.log1p(-self.q), math.log(self.q) + log_ratio_gauss) \
            if self.q < 1.0 else log_ratio_gauss

        def normal_pdf(z, mean):
            return np.exp(-((z - mean) ** 2) / (2 * self.sigma**2)) / (
                self.sigma * math.sqrt(2 * math.pi)
            )

        pdf_p = (1.0 - self.q) * normal_pdf(x, 0.0) + self.q * normal_pdf(x, 1.0)
        pdf_q = normal_pdf(x, 0.0)

        # Direction 1 (remove): x ~ P, loss = log(P/Q) = loss.
        # Direction 2 (add):    x ~ Q, loss = log(Q/P) = -loss.
        self._pmf_remove, self._offset_remove, self._inf_remove = self._discretise(
            loss, pdf_p * dx
        )
        self._pmf_add, self._offset_add, self._inf_add = self._discretise(
            -loss, pdf_q * dx
        )

    _TAIL_TRIM = 1e-15

    def _discretise(self, losses: np.ndarray, masses: np.ndarray):
        """Bucket (loss, mass) pairs onto the grid, rounding losses up.

        The support is trimmed to keep FFT composition cheap: high-loss tail
        mass below ``_TAIL_TRIM`` moves to ``+infinity`` and low-loss tail
        mass is folded into the lowest kept bucket — both adjustments only
        ever increase the reported delta (pessimistic).
        """
        total = masses.sum()
        inf_mass = max(0.0, 1.0 - total)  # integration truncation -> +inf
        k = np.ceil(losses / self.grid_step).astype(np.int64)  # pessimistic
        k_min, k_max = int(k.min()), int(k.max())
        pmf = np.zeros(k_max - k_min + 1)
        np.add.at(pmf, k - k_min, masses)

        cumulative = np.cumsum(pmf)
        lo = int(np.searchsorted(cumulative, self._TAIL_TRIM))
        # tail_from_top[i] = mass strictly after index i; keep through the
        # first index whose strict tail is below the trim threshold.
        tail_from_top = cumulative[-1] - cumulative
        hi = int(np.searchsorted(-tail_from_top, -self._TAIL_TRIM)) + 1
        hi = max(min(hi, len(pmf)), lo + 1)
        inf_mass += float(pmf[hi:].sum())
        low_mass = float(pmf[:lo].sum())
        pmf = pmf[lo : hi].copy()
        pmf[0] += low_mass
        return pmf, k_min + lo, inf_mass

    @staticmethod
    def _compose_pmf(pmf: np.ndarray, offset: int, inf_mass: float, k: int):
        """k-fold convolution power via FFT; returns (pmf, offset, inf_mass)."""
        if k == 1:
            return pmf, offset, inf_mass
        out_len = k * (len(pmf) - 1) + 1
        n = 1 << (out_len - 1).bit_length()
        spectrum = np.fft.rfft(pmf, n)
        composed = np.fft.irfft(spectrum**k, n)[:out_len]
        # FFT roundoff can produce tiny negatives; clamp (pessimistic: the
        # clamped mass is dropped from the finite part, never from delta).
        np.maximum(composed, 0.0, out=composed)
        inf_total = 1.0 - (1.0 - inf_mass) ** k
        return composed, k * offset, inf_total

    @staticmethod
    def _delta_from_pmf(
        pmf: np.ndarray, offset: int, inf_mass: float, grid_step: float, eps: float
    ) -> float:
        losses = (offset + np.arange(len(pmf))) * grid_step
        above = losses > eps
        delta = inf_mass + float(
            np.sum(pmf[above] * -np.expm1(eps - losses[above]))
        )
        return min(max(delta, 0.0), 1.0)

    def delta(self, eps: float, num_steps: int = 1) -> float:
        """Upper bound on delta at ``eps`` after ``num_steps`` compositions."""
        if num_steps < 1:
            raise ValueError(f"num_steps must be >= 1, got {num_steps}")
        worst = 0.0
        for pmf, offset, inf in (
            (self._pmf_remove, self._offset_remove, self._inf_remove),
            (self._pmf_add, self._offset_add, self._inf_add),
        ):
            cp, co, ci = self._compose_pmf(pmf, offset, inf, num_steps)
            worst = max(worst, self._delta_from_pmf(cp, co, ci, self.grid_step, eps))
        return worst

    def epsilon(self, delta: float, num_steps: int = 1, *, tol: float = 1e-4) -> float:
        """Smallest eps with ``delta(eps) <= delta`` after composition."""
        delta = check_probability("delta", delta)
        # Compose once per direction, then binary search on eps.
        composed = []
        for pmf, offset, inf in (
            (self._pmf_remove, self._offset_remove, self._inf_remove),
            (self._pmf_add, self._offset_add, self._inf_add),
        ):
            composed.append(self._compose_pmf(pmf, offset, inf, num_steps))

        def delta_at(eps: float) -> float:
            return max(
                self._delta_from_pmf(cp, co, ci, self.grid_step, eps)
                for cp, co, ci in composed
            )

        if delta_at(0.0) <= delta:
            return 0.0
        lo, hi = 0.0, 1.0
        while delta_at(hi) > delta:
            hi *= 2
            if hi > 1e6:
                raise RuntimeError("epsilon search diverged; mechanism too loud")
        for _ in range(200):
            mid = 0.5 * (lo + hi)
            if delta_at(mid) > delta:
                lo = mid
            else:
                hi = mid
            if hi - lo < tol * max(hi, 1.0):
                break
        return hi


class PldAccountant:
    """Accountant composing identical subsampled-Gaussian steps via PLD.

    A drop-in alternative to :class:`~repro.privacy.accountant.RdpAccountant`
    for the common homogeneous case (one ``(sigma, q)`` for the whole run);
    typically reports a tighter epsilon at DP-SGD step counts.

    Accuracy note: pessimistic rounding adds up to ``grid_step`` per
    composition, i.e. ``steps * grid_step`` in the worst case, so pick
    ``grid_step`` well below ``target_accuracy / steps`` (the default 1e-4
    is adequate up to a few thousand steps).
    """

    def __init__(
        self,
        noise_multiplier: float,
        sample_rate: float,
        *,
        grid_step: float = 1e-4,
    ):
        self._pld = PrivacyLossDistribution(
            noise_multiplier, sample_rate, grid_step=grid_step
        )
        self.noise_multiplier = noise_multiplier
        self.sample_rate = sample_rate
        self.steps = 0

    def step(self, num_steps: int = 1) -> None:
        """Record ``num_steps`` releases."""
        if num_steps < 1:
            raise ValueError(f"num_steps must be >= 1, got {num_steps}")
        self.steps += num_steps

    def get_epsilon(self, delta: float) -> float:
        """Composed epsilon at ``delta`` for the recorded steps."""
        if self.steps == 0:
            return 0.0
        return self._pld.epsilon(delta, self.steps)

    def get_delta(self, epsilon: float) -> float:
        """Composed delta at ``epsilon`` for the recorded steps."""
        if self.steps == 0:
            return 0.0
        return self._pld.delta(epsilon, self.steps)
