"""Privacy accountants composing per-iteration losses across training.

The RDP accountant is the one the paper relies on ("Renyi Differential
Privacy allows us to more accurately estimate the cumulative privacy loss of
the whole training process", §II-A).  The naive Gaussian accountant (classic
+ advanced composition) is included as a baseline so the benefit of RDP
accounting can itself be demonstrated and tested.

Both DP-SGD and GeoDP-SGD are accounted the same way: every iteration is one
(subsampled) Gaussian release with the configured noise multiplier.  GeoDP
additionally carries the directional relaxation ``delta'`` (Lemma 2), exposed
separately through :meth:`PrivacySpent.delta_prime`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.privacy.calibration import gaussian_epsilon
from repro.privacy.composition import advanced_composition, basic_composition
from repro.privacy.rdp import DEFAULT_ALPHAS, rdp_subsampled_gaussian, rdp_to_dp
from repro.utils.validation import check_positive, check_probability

__all__ = ["PrivacySpent", "RdpAccountant", "GaussianAccountant"]


@dataclass(frozen=True)
class PrivacySpent:
    """A concrete privacy guarantee reported by an accountant."""

    epsilon: float
    delta: float
    #: Extra failure mass from GeoDP's bounded direction region (Lemma 2);
    #: zero for classic DP-SGD or beta = 1.
    delta_prime: float = 0.0
    #: Renyi order that realised the bound (RDP accountant only).
    best_alpha: float | None = None

    @property
    def total_delta(self) -> float:
        """The full ``delta + delta'`` of Theorem 5."""
        return self.delta + self.delta_prime

    def __str__(self) -> str:
        extra = f" + delta'={self.delta_prime:.3g}" if self.delta_prime else ""
        return f"(epsilon={self.epsilon:.4g}, delta={self.delta:.3g}{extra})"


class RdpAccountant:
    """Tracks cumulative RDP of repeated subsampled-Gaussian releases.

    Usage::

        acc = RdpAccountant()
        for _ in range(steps):
            acc.step(noise_multiplier=1.0, sample_rate=256/60000)
        spent = acc.get_privacy_spent(delta=1e-5)
    """

    def __init__(self, alphas=DEFAULT_ALPHAS):
        self.alphas = tuple(alphas)
        self._rdp = np.zeros(len(self.alphas))
        #: (noise_multiplier, sample_rate, num_steps) tuples, for inspection.
        self.history: list[tuple[float, float, int]] = []

    def step(self, noise_multiplier: float, sample_rate: float, num_steps: int = 1) -> None:
        """Record ``num_steps`` releases at the given multiplier and rate."""
        noise_multiplier = check_positive("noise_multiplier", noise_multiplier)
        sample_rate = check_probability("sample_rate", sample_rate)
        if num_steps < 1:
            raise ValueError(f"num_steps must be >= 1, got {num_steps}")
        self._rdp += num_steps * rdp_subsampled_gaussian(
            sample_rate, noise_multiplier, self.alphas
        )
        self.history.append((noise_multiplier, sample_rate, num_steps))

    @property
    def total_steps(self) -> int:
        """Total number of releases recorded so far."""
        return sum(n for _, _, n in self.history)

    def cost_of(
        self,
        noise_multiplier: float,
        sample_rate: float,
        num_steps: int = 1,
        *,
        delta: float,
    ) -> float:
        """Projected ε *after* hypothetically adding ``num_steps`` releases.

        Pure pre-composition: the accountant's own state is untouched, so
        admission controllers can ask "what would this job cost?" without
        deep-copying the accountant.  The returned value is bit-identical
        to calling :meth:`step` with the same arguments followed by
        :meth:`get_epsilon` (the hypothetical RDP curve is built with the
        same additions in the same order).
        """
        noise_multiplier = check_positive("noise_multiplier", noise_multiplier)
        sample_rate = check_probability("sample_rate", sample_rate)
        if num_steps < 1:
            raise ValueError(f"num_steps must be >= 1, got {num_steps}")
        rdp = self._rdp + num_steps * rdp_subsampled_gaussian(
            sample_rate, noise_multiplier, self.alphas
        )
        eps, _ = rdp_to_dp(self.alphas, rdp, delta)
        return eps

    def get_epsilon(self, delta: float) -> float:
        """Best epsilon achievable at ``delta`` for the recorded history."""
        if not self.history:
            return 0.0
        eps, _ = rdp_to_dp(self.alphas, self._rdp, delta)
        return eps

    def get_privacy_spent(self, delta: float, *, delta_prime: float = 0.0) -> PrivacySpent:
        """Full :class:`PrivacySpent` record, optionally carrying GeoDP's delta'."""
        if not self.history:
            return PrivacySpent(0.0, delta, delta_prime)
        eps, alpha = rdp_to_dp(self.alphas, self._rdp, delta)
        return PrivacySpent(eps, delta, delta_prime, alpha)

    def rdp_curve(self) -> np.ndarray:
        """Copy of the accumulated RDP values (one per order)."""
        return self._rdp.copy()

    def state_dict(self) -> dict:
        """Accumulated RDP curve + step history for checkpointing.

        Restoring this state makes the epsilon reported after a resumed run
        bit-identical to an uninterrupted run's: the accumulated per-order
        RDP values are saved as a float array (exact binary round-trip) and
        the step history is replayed verbatim.
        """
        return {
            "alphas": [float(a) for a in self.alphas],
            "rdp": self._rdp.copy(),
            "history": [
                [float(nm), float(q), int(n)] for nm, q, n in self.history
            ],
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore state captured by :meth:`state_dict`."""
        alphas = tuple(float(a) for a in state["alphas"])
        if alphas != tuple(float(a) for a in self.alphas):
            raise ValueError(
                "snapshot was taken with different Renyi orders; rebuild the "
                "accountant with the same alphas to resume"
            )
        rdp = np.asarray(state["rdp"], dtype=np.float64)
        if rdp.shape != self._rdp.shape:
            raise ValueError(
                f"snapshot RDP curve has shape {rdp.shape}, expected {self._rdp.shape}"
            )
        self._rdp = rdp.copy()
        self.history = [(float(nm), float(q), int(n)) for nm, q, n in state["history"]]


@dataclass
class GaussianAccountant:
    """Naive accountant: per-step tight Gaussian epsilon + composition.

    Composes ``steps`` identical Gaussian releases either with basic
    composition (epsilons add) or advanced composition (sqrt(k) scaling at
    the cost of extra delta).  Mostly useful as a pedagogical baseline — the
    RDP accountant dominates it for DP-SGD-sized step counts, which the test
    suite asserts.
    """

    noise_multiplier: float
    steps: int = 0
    _per_step_delta_frac: float = field(default=0.5, repr=False)

    def step(self, num_steps: int = 1) -> None:
        """Record ``num_steps`` full-batch Gaussian releases."""
        if num_steps < 1:
            raise ValueError(f"num_steps must be >= 1, got {num_steps}")
        self.steps += num_steps

    def state_dict(self) -> dict:
        """Step counter for checkpointing."""
        return {"steps": int(self.steps)}

    def load_state_dict(self, state: dict) -> None:
        """Restore state captured by :meth:`state_dict`."""
        self.steps = int(state["steps"])

    def get_epsilon(self, delta: float, *, method: str = "advanced") -> float:
        """Composed epsilon at total failure probability ``delta``."""
        delta = check_probability("delta", delta)
        if self.steps == 0:
            return 0.0
        if method == "basic":
            per_step_delta = delta / self.steps
            eps0 = gaussian_epsilon(self.noise_multiplier, per_step_delta)
            return basic_composition([(eps0, per_step_delta)] * self.steps)[0]
        if method == "advanced":
            # Split delta between the per-step failure mass and the
            # composition slack.
            slack = delta * self._per_step_delta_frac
            per_step_delta = (delta - slack) / self.steps
            eps0 = gaussian_epsilon(self.noise_multiplier, per_step_delta)
            eps, _ = advanced_composition(eps0, per_step_delta, self.steps, slack)
            return eps
        raise ValueError(f"unknown composition method {method!r}")
