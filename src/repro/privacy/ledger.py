"""Append-only, hash-chained ledger of DP noise releases.

Privacy accounting in the optimizers lives in mutable accountant state — a
cumulative RDP curve.  That state answers "what is ε now?" but not "what
sequence of releases produced it?", and it cannot be audited after the
fact.  The :class:`ReleaseLedger` turns each noise release into a durable
record — mechanism, σ, sensitivity, sample rate, step count, and the
cumulative ε *at the moment of release* as reported by the live
:class:`~repro.privacy.accountant.RdpAccountant` — chained together with
SHA-256 hashes so any tampering (edit, deletion, reordering) breaks the
chain.

:func:`verify_ledger` closes the loop: it replays the recorded releases
through a *fresh* accountant and checks that the recomputed ε matches both
the ledger's own recorded trajectory and the trainer's live accountant to
within ``1e-9`` — privacy accounting becomes an auditable artifact instead
of trusted state.

The ledger is persisted through :mod:`repro.checkpoint` snapshots (the
optimizers include it in their ``state_dict``) and survives resume with the
hash chain intact, and it exports through
:func:`repro.telemetry.export_trace` for offline verification by the
``repro report`` CLI subcommand.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace

from repro.privacy.accountant import RdpAccountant
from repro.privacy.rdp import DEFAULT_ALPHAS

__all__ = [
    "GENESIS_HASH",
    "LedgerError",
    "LedgerVerification",
    "ReleaseLedger",
    "ReleaseRecord",
    "verify_ledger",
]

#: ``prev_hash`` of the first entry (no predecessor).
GENESIS_HASH = "0" * 64


class LedgerError(ValueError):
    """A ledger failed an integrity or replay check."""


def _canonical(payload: dict) -> str:
    """Deterministic JSON serialisation used for hashing."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class ReleaseRecord:
    """One noise release, hash-chained to its predecessor.

    ``epsilon`` is the cumulative privacy loss reported by the live
    accountant immediately after this release (``None`` when the release
    was recorded without an accountant attached).  ``entry_hash`` is
    ``sha256(prev_hash + canonical-json(payload))`` where the payload is
    every field except the hashes themselves.

    ``namespace`` tags the record with the tenant (or other logical owner)
    it belongs to, so one process can interleave several tenants in one
    chain without ambiguity.  The empty default is *omitted* from the
    hashed payload, which keeps every pre-namespace ledger verifying
    byte-for-byte.

    A record with ``num_steps == 0`` is a non-spending **annotation** — an
    auditable chain entry (e.g. a refused admission) that consumes no
    privacy budget and is skipped by replay verification.
    """

    index: int
    mechanism: str
    sigma: float
    sensitivity: float
    sample_rate: float
    num_steps: int
    epsilon: float | None
    prev_hash: str
    entry_hash: str
    meta: dict = field(default_factory=dict)
    namespace: str = ""

    @property
    def is_annotation(self) -> bool:
        """Whether this entry spends no budget (``num_steps == 0``)."""
        return self.num_steps == 0

    def payload(self) -> dict:
        """The hashed portion of the record."""
        payload = {
            "index": int(self.index),
            "mechanism": self.mechanism,
            "sigma": float(self.sigma),
            "sensitivity": float(self.sensitivity),
            "sample_rate": float(self.sample_rate),
            "num_steps": int(self.num_steps),
            "epsilon": None if self.epsilon is None else float(self.epsilon),
            "meta": dict(self.meta),
        }
        if self.namespace:
            payload["namespace"] = str(self.namespace)
        return payload

    def compute_hash(self) -> str:
        """Recompute this record's hash from its predecessor link + payload."""
        digest = hashlib.sha256()
        digest.update(self.prev_hash.encode("ascii"))
        digest.update(_canonical(self.payload()).encode("utf-8"))
        return digest.hexdigest()

    def to_dict(self) -> dict:
        """Plain-dict form for export / checkpointing."""
        return {**self.payload(), "prev_hash": self.prev_hash, "entry_hash": self.entry_hash}

    @classmethod
    def from_dict(cls, payload: dict) -> "ReleaseRecord":
        """Inverse of :meth:`to_dict`."""
        epsilon = payload.get("epsilon")
        return cls(
            index=int(payload["index"]),
            mechanism=str(payload["mechanism"]),
            sigma=float(payload["sigma"]),
            sensitivity=float(payload["sensitivity"]),
            sample_rate=float(payload["sample_rate"]),
            num_steps=int(payload["num_steps"]),
            epsilon=None if epsilon is None else float(epsilon),
            prev_hash=str(payload["prev_hash"]),
            entry_hash=str(payload["entry_hash"]),
            meta=dict(payload.get("meta", {})),
            namespace=str(payload.get("namespace", "")),
        )


class ReleaseLedger:
    """Tamper-evident, append-only record of every DP noise release.

    ``delta`` fixes the failure probability at which per-release ε values
    are evaluated; it must match the δ the run is finally reported at for
    the recorded trajectory to be the run's ε curve.

    ``namespace`` is the default tenant tag applied to every record this
    ledger appends (overridable per record); the empty default preserves
    the historical hashing exactly.
    """

    def __init__(self, *, delta: float = 1e-5, namespace: str = ""):
        if not 0.0 < delta < 1.0:
            raise ValueError(f"delta must be in (0, 1), got {delta}")
        self.delta = float(delta)
        self.namespace = str(namespace)
        self.entries: list[ReleaseRecord] = []

    @property
    def head(self) -> str:
        """Hash of the newest entry (genesis hash when empty)."""
        return self.entries[-1].entry_hash if self.entries else GENESIS_HASH

    def record_release(
        self,
        *,
        mechanism: str,
        sigma: float,
        sensitivity: float,
        sample_rate: float,
        num_steps: int = 1,
        accountant: RdpAccountant | None = None,
        meta: dict | None = None,
        namespace: str | None = None,
    ) -> ReleaseRecord:
        """Append one release; called by the optimizers after accounting.

        ``accountant`` (the live one, already stepped for this release)
        supplies ε-at-release via ``get_epsilon(self.delta)``.  Returns the
        chained record.  ``namespace`` defaults to the ledger's own.
        """
        if num_steps < 1:
            raise ValueError(f"num_steps must be >= 1, got {num_steps}")
        return self._append(
            mechanism=str(mechanism),
            sigma=float(sigma),
            sensitivity=float(sensitivity),
            sample_rate=float(sample_rate),
            num_steps=int(num_steps),
            accountant=accountant,
            meta=meta,
            namespace=namespace,
        )

    def record_annotation(
        self,
        *,
        kind: str,
        accountant: RdpAccountant | None = None,
        meta: dict | None = None,
        namespace: str | None = None,
    ) -> ReleaseRecord:
        """Append an auditable, **non-spending** chain entry.

        Annotations (``num_steps == 0``, mechanism ``annotation.<kind>``)
        record decisions that must be tamper-evident without representing
        a noise release — e.g. a refused admission.  Replay verification
        skips them when recomposing ε, but still checks that the ε they
        recorded matches the cumulative ε at that point in the chain.
        """
        return self._append(
            mechanism=f"annotation.{kind}",
            sigma=0.0,
            sensitivity=0.0,
            sample_rate=0.0,
            num_steps=0,
            accountant=accountant,
            meta=meta,
            namespace=namespace,
        )

    def _append(
        self,
        *,
        mechanism: str,
        sigma: float,
        sensitivity: float,
        sample_rate: float,
        num_steps: int,
        accountant: RdpAccountant | None,
        meta: dict | None,
        namespace: str | None,
    ) -> ReleaseRecord:
        epsilon = None if accountant is None else float(accountant.get_epsilon(self.delta))
        record = ReleaseRecord(
            index=len(self.entries),
            mechanism=mechanism,
            sigma=sigma,
            sensitivity=sensitivity,
            sample_rate=sample_rate,
            num_steps=num_steps,
            epsilon=epsilon,
            prev_hash=self.head,
            entry_hash="",
            meta=dict(meta or {}),
            namespace=self.namespace if namespace is None else str(namespace),
        )
        record = replace(record, entry_hash=record.compute_hash())
        self.entries.append(record)
        return record

    def verify_chain(self) -> None:
        """Raise :class:`LedgerError` unless the hash chain is intact."""
        prev = GENESIS_HASH
        for position, record in enumerate(self.entries):
            if record.index != position:
                raise LedgerError(
                    f"entry at position {position} carries index {record.index}"
                )
            if record.prev_hash != prev:
                raise LedgerError(
                    f"entry {position} links to {record.prev_hash[:12]}..., "
                    f"expected {prev[:12]}..."
                )
            expected = record.compute_hash()
            if record.entry_hash != expected:
                raise LedgerError(
                    f"entry {position} hash mismatch: recorded "
                    f"{record.entry_hash[:12]}..., recomputed {expected[:12]}..."
                )
            prev = record.entry_hash

    def epsilon_trajectory(self) -> list[tuple[int, float]]:
        """``(cumulative steps, ε-at-release)`` points for recorded entries.

        Entries recorded without an accountant (ε unknown) are skipped.
        """
        points: list[tuple[int, float]] = []
        steps = 0
        for record in self.entries:
            steps += record.num_steps
            if record.epsilon is not None:
                points.append((steps, record.epsilon))
        return points

    def __len__(self) -> int:
        return len(self.entries)

    def __repr__(self) -> str:
        return (
            f"ReleaseLedger(entries={len(self.entries)}, delta={self.delta}, "
            f"head={self.head[:12]}...)"
        )

    # --------------------------------------------------------- checkpointing
    def state_dict(self) -> dict:
        """Full ledger contents for checkpointing / export."""
        state = {
            "delta": self.delta,
            "entries": [record.to_dict() for record in self.entries],
        }
        if self.namespace:
            state["namespace"] = self.namespace
        return state

    def load_state_dict(self, state: dict) -> None:
        """Restore a captured ledger and re-verify its hash chain."""
        self.delta = float(state["delta"])
        self.namespace = str(state.get("namespace", ""))
        self.entries = [ReleaseRecord.from_dict(p) for p in state["entries"]]
        self.verify_chain()


@dataclass(frozen=True)
class LedgerVerification:
    """Outcome of :func:`verify_ledger`."""

    ok: bool
    num_entries: int
    #: ε recorded at the newest release (``None`` if no entry carried one).
    recorded_epsilon: float | None
    #: ε recomputed by replaying the ledger through a fresh accountant.
    replayed_epsilon: float | None
    #: ε reported by the live accountant, when one was passed in.
    accountant_epsilon: float | None
    error: str | None = None

    def __str__(self) -> str:
        if self.ok:
            eps = "n/a" if self.replayed_epsilon is None else f"{self.replayed_epsilon:.6g}"
            return f"ledger verified: {self.num_entries} releases, epsilon={eps}"
        return f"ledger verification FAILED: {self.error}"


def verify_ledger(
    ledger: ReleaseLedger,
    accountant: RdpAccountant | None = None,
    *,
    tol: float = 1e-9,
    strict: bool = True,
) -> LedgerVerification:
    """Audit a release ledger by replay.

    Checks three things: (1) the hash chain is intact; (2) replaying the
    recorded releases through a *fresh* :class:`RdpAccountant` reproduces
    the newest recorded ε-at-release to within ``tol``; (3) when the live
    ``accountant`` is given, its current ε also matches the replay to
    within ``tol`` — i.e. the ledger accounts for everything the accountant
    has seen.  σ values are replayed as ``max(σ, 1e-12)``, mirroring how
    the optimizers account a zero-noise ablation.  Non-spending annotation
    entries (``num_steps == 0``) contribute nothing to the replayed
    composition, but any ε they recorded must still equal the cumulative ε
    at their position in the chain.

    With ``strict=True`` (default) a failed check raises
    :class:`LedgerError`; otherwise the failure is reported in the returned
    :class:`LedgerVerification`.
    """

    def outcome(ok, replayed, recorded, live, error=None):
        result = LedgerVerification(
            ok=ok,
            num_entries=len(ledger.entries),
            recorded_epsilon=recorded,
            replayed_epsilon=replayed,
            accountant_epsilon=live,
            error=error,
        )
        if strict and not ok:
            raise LedgerError(error)
        return result

    try:
        ledger.verify_chain()
    except LedgerError as exc:
        return outcome(False, None, None, None, error=str(exc))

    alphas = accountant.alphas if accountant is not None else DEFAULT_ALPHAS
    replay = RdpAccountant(alphas=alphas)
    recorded: float | None = None
    for record in ledger.entries:
        if record.num_steps > 0:
            replay.step(
                max(record.sigma, 1e-12), record.sample_rate, num_steps=record.num_steps
            )
        if record.epsilon is not None:
            recorded = record.epsilon
            replayed = replay.get_epsilon(ledger.delta)
            if abs(replayed - record.epsilon) > tol:
                return outcome(
                    False,
                    replayed,
                    record.epsilon,
                    None,
                    error=(
                        f"entry {record.index}: recorded epsilon "
                        f"{record.epsilon!r} but replay gives {replayed!r} "
                        f"(|diff| > {tol})"
                    ),
                )
    replayed = replay.get_epsilon(ledger.delta) if ledger.entries else None
    live: float | None = None
    if accountant is not None:
        live = accountant.get_epsilon(ledger.delta)
        reference = replayed if replayed is not None else 0.0
        if abs(live - reference) > tol:
            return outcome(
                False,
                replayed,
                recorded,
                live,
                error=(
                    f"live accountant reports epsilon {live!r} but ledger "
                    f"replay gives {reference!r} (|diff| > {tol})"
                ),
            )
    return outcome(True, replayed, recorded, live)
