"""Renyi differential privacy (RDP) of the (subsampled) Gaussian mechanism.

The paper uses RDP [9, 53] to "more accurately estimate the cumulative
privacy loss of the whole training process" (§II-A).  This module implements:

* :func:`rdp_gaussian` — RDP of the plain Gaussian mechanism,
  ``rho(alpha) = alpha / (2 sigma^2)`` for unit sensitivity.
* :func:`rdp_subsampled_gaussian` — RDP of the Poisson-subsampled Gaussian
  mechanism at integer orders, via the exact binomial expansion of Mironov,
  Talwar & Zhang (2019), computed in log-space for numerical stability:

  .. math::

     \\rho(\\alpha) = \\frac{1}{\\alpha - 1}\\,\\log
        \\sum_{i=0}^{\\alpha} \\binom{\\alpha}{i} (1-q)^{\\alpha-i} q^i
        \\exp\\Big(\\frac{i(i-1)}{2\\sigma^2}\\Big)

* :func:`rdp_to_dp` — conversion from an RDP curve to ``(epsilon, delta)``
  using the improved bound of Balle et al. (2020) (the conversion Opacus
  uses), minimised over orders.
"""

from __future__ import annotations

import math
from functools import lru_cache

import numpy as np
from scipy.special import binom, gammaln, log_ndtr, logsumexp

from repro.utils.validation import check_positive, check_probability

__all__ = [
    "DEFAULT_ALPHAS",
    "SUBSAMPLED_CURVE_CACHE_SIZE",
    "rdp_gaussian",
    "rdp_subsampled_gaussian",
    "rdp_to_dp",
    "subsampled_curve_cache_info",
    "subsampled_curve_cache_clear",
]

# Renyi orders: fractional orders just above 1 (where the conversion is
# tightest for large budgets), dense integers where subsampling
# amplification bites, plus sparse large orders for very low-noise regimes.
DEFAULT_ALPHAS: tuple[float, ...] = (
    tuple(1 + x / 10.0 for x in range(1, 10))
    + tuple(range(2, 64))
    + (64, 80, 96, 128, 160, 192, 256, 384, 512, 1024)
)


def rdp_gaussian(alpha: float, sigma: float) -> float:
    """RDP of the Gaussian mechanism with unit sensitivity at order ``alpha``."""
    if alpha <= 1:
        raise ValueError(f"alpha must be > 1, got {alpha}")
    sigma = check_positive("sigma", sigma)
    return alpha / (2.0 * sigma**2)


def _log_binom(n: int, k: np.ndarray) -> np.ndarray:
    return gammaln(n + 1) - gammaln(k + 1) - gammaln(n - k + 1)


def _log_erfc(x: float) -> float:
    """log(erfc(x)) = log(2 * Phi(-sqrt(2) x)), stable for large |x|."""
    return math.log(2.0) + float(log_ndtr(-math.sqrt(2.0) * x))


def _log_add(a: float, b: float) -> float:
    if a == -math.inf:
        return b
    if b == -math.inf:
        return a
    return float(np.logaddexp(a, b))


def _log_sub(a: float, b: float) -> float:
    """log(e^a - e^b) for a >= b."""
    if b == -math.inf:
        return a
    if a == b:
        return -math.inf
    if a < b:
        raise ValueError("log_sub requires a >= b")
    return a + math.log1p(-math.exp(b - a))


def _rdp_int_order(q: float, sigma: float, alpha: int) -> float:
    """Exact binomial expansion for integer orders (Mironov et al. 2019)."""
    i = np.arange(alpha + 1)
    log_terms = (
        _log_binom(alpha, i)
        + i * math.log(q)
        + (alpha - i) * math.log1p(-q)
        + i * (i - 1) / (2.0 * sigma**2)
    )
    return float(logsumexp(log_terms)) / (alpha - 1)


def _rdp_frac_order(q: float, sigma: float, alpha: float) -> float:
    """Fractional-order computation via the two-series expansion.

    Implements the `A(alpha)` integral split of Mironov, Talwar & Zhang
    (2019), Section 3.3 (the computation TF-privacy/Opacus use): the real
    line is cut at ``z0 = sigma^2 log(1/q - 1) + 1/2`` and each side is
    expanded into a (generally alternating) binomial series whose terms are
    accumulated in log space.
    """
    log_a0, log_a1 = -math.inf, -math.inf
    z0 = sigma**2 * math.log(1.0 / q - 1.0) + 0.5
    sqrt2s = math.sqrt(2.0) * sigma
    log_q, log_1mq = math.log(q), math.log1p(-q)

    i = 0
    while True:
        coef = binom(alpha, i)
        if coef == 0.0:
            break
        log_coef = math.log(abs(coef))
        j = alpha - i

        log_t0 = log_coef + i * log_q + j * log_1mq
        log_t1 = log_coef + j * log_q + i * log_1mq

        log_e0 = math.log(0.5) + _log_erfc((i - z0) / sqrt2s)
        log_e1 = math.log(0.5) + _log_erfc((z0 - j) / sqrt2s)

        log_s0 = log_t0 + (i * i - i) / (2.0 * sigma**2) + log_e0
        log_s1 = log_t1 + (j * j - j) / (2.0 * sigma**2) + log_e1

        if coef > 0:
            log_a0 = _log_add(log_a0, log_s0)
            log_a1 = _log_add(log_a1, log_s1)
        else:
            log_a0 = _log_sub(log_a0, log_s0)
            log_a1 = _log_sub(log_a1, log_s1)

        i += 1
        if max(log_s0, log_s1) < -30 and i > alpha:
            break
    return _log_add(log_a0, log_a1) / (alpha - 1)


def rdp_subsampled_gaussian(q: float, sigma: float, alphas=DEFAULT_ALPHAS) -> np.ndarray:
    """RDP curve of the Poisson-subsampled Gaussian mechanism.

    Parameters
    ----------
    q:
        Poisson sampling rate (expected fraction of the dataset per step).
    sigma:
        Noise multiplier (noise std = sigma * clipping norm).
    alphas:
        Iterable of Renyi orders > 1; integer orders use the exact binomial
        expansion, fractional orders the two-series computation of Mironov
        et al. (2019).

    Returns
    -------
    ndarray
        ``rho(alpha)`` for each requested order.
    """
    q = check_probability("q", q, allow_zero=True)
    sigma = check_positive("sigma", sigma)

    alphas = np.asarray(list(alphas), dtype=np.float64)
    if np.any(alphas <= 1):
        raise ValueError("all Renyi orders must be > 1")

    if q == 0.0:
        return np.zeros(len(alphas))
    if q == 1.0:
        return np.array([rdp_gaussian(a, sigma) for a in alphas])

    return _subsampled_curve(q, sigma, tuple(alphas.tolist())).copy()


#: Bound on memoized subsampled-RDP curves.  Each cached entry is one
#: small float64 array (~64 orders), so the cache tops out around 256 KiB;
#: the explicit bound exists so a parameter sweep over thousands of
#: (q, sigma) pairs evicts rather than grows without limit
#: (least-recently-used first — tested in ``tests/privacy/test_rdp.py``).
SUBSAMPLED_CURVE_CACHE_SIZE = 512


@lru_cache(maxsize=SUBSAMPLED_CURVE_CACHE_SIZE)
def _subsampled_curve(q: float, sigma: float, alphas: tuple) -> np.ndarray:
    """Memoized curve for one (q, sigma, alphas) triple.

    The per-order series expansions cost ~10ms per curve, and callers
    (notably budget-server admission, which evaluates the same mechanism
    parameters for every decision) re-request identical triples heavily.
    Cached arrays are returned by copy from the public wrapper.
    """
    out = np.empty(len(alphas))
    for idx, alpha in enumerate(alphas):
        if alpha == int(alpha):
            out[idx] = _rdp_int_order(q, sigma, int(alpha))
        else:
            out[idx] = _rdp_frac_order(q, sigma, float(alpha))
    return out


def subsampled_curve_cache_info():
    """Hit/miss/size statistics of the subsampled-curve memo (``functools``
    ``CacheInfo``); ``maxsize`` is :data:`SUBSAMPLED_CURVE_CACHE_SIZE`."""
    return _subsampled_curve.cache_info()


def subsampled_curve_cache_clear() -> None:
    """Drop every memoized subsampled-RDP curve (tests, memory pressure)."""
    _subsampled_curve.cache_clear()


def rdp_to_dp(alphas, rdp, delta: float) -> tuple[float, float]:
    """Convert an RDP curve to an ``(epsilon, delta)`` guarantee.

    Uses the improved conversion (Balle et al. 2020, Prop. 12):

    .. math::

        \\epsilon = \\rho(\\alpha) + \\frac{\\log(1/\\delta)
        + (\\alpha-1)\\log(1 - 1/\\alpha) - \\log(\\alpha)}{\\alpha - 1}

    minimised over the supplied orders.

    Returns
    -------
    (float, float)
        The best epsilon (clamped at 0) and the order that achieved it.
    """
    delta = check_probability("delta", delta)
    alphas = np.asarray(list(alphas), dtype=np.float64)
    rdp = np.asarray(list(rdp), dtype=np.float64)
    if alphas.shape != rdp.shape or alphas.size == 0:
        raise ValueError("alphas and rdp must be equal-length, non-empty")

    eps = (
        rdp
        + (np.log(1.0 / delta) + (alphas - 1) * np.log1p(-1.0 / alphas) - np.log(alphas))
        / (alphas - 1)
    )
    best = int(np.argmin(eps))
    return float(max(0.0, eps[best])), float(alphas[best])
