"""Additive-noise DP mechanisms on scalars and vectors.

The paper perturbs gradients with the Gaussian mechanism (§III-A): a query
with L2-sensitivity ``Delta`` released as ``q + N(0, (Delta * sigma)^2 I)``
where ``sigma`` is the *noise multiplier*.  The Laplace mechanism is included
for completeness of the substrate (pure epsilon-DP baselines and tests).
"""

from __future__ import annotations

import numpy as np

from repro.privacy.calibration import classic_gaussian_sigma, gaussian_epsilon
from repro.utils.rng import as_rng
from repro.utils.validation import check_positive

__all__ = ["GaussianMechanism", "LaplaceMechanism"]


class GaussianMechanism:
    """Gaussian mechanism with L2 sensitivity ``sensitivity`` and multiplier ``sigma``.

    The released value is ``value + N(0, (sensitivity * sigma)^2)`` per
    coordinate.  Construct either from an explicit noise multiplier
    (``sigma=...``) or from a privacy target (``epsilon=..., delta=...``),
    in which case the classic calibration ``sigma = sqrt(2 ln(1.25/delta))
    / epsilon`` is used (paper §III-A).
    """

    def __init__(
        self,
        sensitivity: float,
        *,
        sigma: float | None = None,
        epsilon: float | None = None,
        delta: float | None = None,
    ):
        self.sensitivity = check_positive("sensitivity", sensitivity)
        if sigma is not None:
            if epsilon is not None or delta is not None:
                raise ValueError("pass either sigma or (epsilon, delta), not both")
            self.sigma = check_positive("sigma", sigma)
        else:
            if epsilon is None or delta is None:
                raise ValueError("pass either sigma or both epsilon and delta")
            # classic_gaussian_sigma already includes the sensitivity factor;
            # divide back out since self.sigma is the bare multiplier.
            self.sigma = classic_gaussian_sigma(epsilon, delta, 1.0)

    @property
    def noise_scale(self) -> float:
        """Standard deviation of the added noise (``sensitivity * sigma``)."""
        return self.sensitivity * self.sigma

    def perturb(self, value, rng=None) -> np.ndarray:
        """Release ``value`` with i.i.d. Gaussian noise on every coordinate."""
        rng = as_rng(rng)
        value = np.asarray(value, dtype=np.float64)
        return value + rng.normal(0.0, self.noise_scale, size=value.shape)

    def epsilon(self, delta: float) -> float:
        """Tight (analytic) epsilon of one release of this mechanism at ``delta``."""
        return gaussian_epsilon(self.sigma, delta)

    def __repr__(self) -> str:
        return (
            f"GaussianMechanism(sensitivity={self.sensitivity}, sigma={self.sigma})"
        )


class LaplaceMechanism:
    """Laplace mechanism with L1 sensitivity ``sensitivity`` and budget ``epsilon``.

    Released value is ``value + Lap(sensitivity / epsilon)`` per coordinate,
    satisfying pure ``epsilon``-DP.
    """

    def __init__(self, sensitivity: float, epsilon: float):
        self.sensitivity = check_positive("sensitivity", sensitivity)
        self.eps = check_positive("epsilon", epsilon)

    @property
    def noise_scale(self) -> float:
        """Scale parameter ``b`` of the Laplace noise."""
        return self.sensitivity / self.eps

    def perturb(self, value, rng=None) -> np.ndarray:
        """Release ``value`` with i.i.d. Laplace noise on every coordinate."""
        rng = as_rng(rng)
        value = np.asarray(value, dtype=np.float64)
        return value + rng.laplace(0.0, self.noise_scale, size=value.shape)

    def __repr__(self) -> str:
        return f"LaplaceMechanism(sensitivity={self.sensitivity}, epsilon={self.eps})"
