"""Privacy-curve utilities: budget planning for DP-SGD training runs.

* :func:`find_noise_multiplier` — smallest sigma achieving a target
  ``(epsilon, delta)`` for a given sampling rate and step count (the inverse
  problem practitioners actually solve; Opacus's ``get_noise_multiplier``).
* :func:`epsilon_curve` — epsilon after each of a sequence of step counts,
  for plotting privacy-vs-epochs trade-offs.
* :func:`steps_until_budget` — how many steps a configuration can run
  before exhausting a target epsilon.
"""

from __future__ import annotations

import numpy as np

from repro.privacy.rdp import DEFAULT_ALPHAS, rdp_subsampled_gaussian, rdp_to_dp
from repro.utils.validation import check_positive, check_probability

__all__ = ["find_noise_multiplier", "epsilon_curve", "steps_until_budget"]


def _composed_epsilon(sigma: float, sample_rate: float, steps: int, delta: float) -> float:
    rdp = steps * rdp_subsampled_gaussian(sample_rate, sigma, DEFAULT_ALPHAS)
    eps, _ = rdp_to_dp(DEFAULT_ALPHAS, rdp, delta)
    return eps


def find_noise_multiplier(
    target_epsilon: float,
    delta: float,
    sample_rate: float,
    steps: int,
    *,
    sigma_max: float = 1e4,
    tol: float = 1e-4,
) -> float:
    """Smallest noise multiplier with epsilon(steps) <= ``target_epsilon``.

    Binary search over the RDP-composed epsilon.  Raises if even
    ``sigma_max`` cannot reach the target (e.g. absurd step counts).
    """
    target_epsilon = check_positive("target_epsilon", target_epsilon)
    delta = check_probability("delta", delta)
    sample_rate = check_probability("sample_rate", sample_rate)
    if steps < 1:
        raise ValueError(f"steps must be >= 1, got {steps}")

    lo, hi = 1e-3, 2.0
    while _composed_epsilon(hi, sample_rate, steps, delta) > target_epsilon:
        hi *= 2
        if hi > sigma_max:
            raise RuntimeError(
                f"cannot reach epsilon={target_epsilon} within sigma <= {sigma_max}"
            )
    for _ in range(100):
        mid = 0.5 * (lo + hi)
        if _composed_epsilon(mid, sample_rate, steps, delta) > target_epsilon:
            lo = mid
        else:
            hi = mid
        if hi - lo < tol * hi:
            break
    return hi


def epsilon_curve(
    sigma: float,
    sample_rate: float,
    step_counts,
    delta: float,
) -> np.ndarray:
    """Epsilon after each step count in ``step_counts`` (monotone increasing)."""
    sigma = check_positive("sigma", sigma)
    sample_rate = check_probability("sample_rate", sample_rate)
    delta = check_probability("delta", delta)
    step_counts = np.asarray(list(step_counts), dtype=np.int64)
    if np.any(step_counts < 0):
        raise ValueError("step counts must be non-negative")

    per_step = rdp_subsampled_gaussian(sample_rate, sigma, DEFAULT_ALPHAS)
    out = np.empty(len(step_counts))
    for i, steps in enumerate(step_counts):
        if steps == 0:
            out[i] = 0.0
        else:
            eps, _ = rdp_to_dp(DEFAULT_ALPHAS, steps * per_step, delta)
            out[i] = eps
    return out


def steps_until_budget(
    sigma: float,
    sample_rate: float,
    target_epsilon: float,
    delta: float,
    *,
    max_steps: int = 10**7,
) -> int:
    """Largest step count whose composed epsilon stays <= ``target_epsilon``.

    Returns 0 when even one step exceeds the budget.
    """
    sigma = check_positive("sigma", sigma)
    target_epsilon = check_positive("target_epsilon", target_epsilon)
    per_step = rdp_subsampled_gaussian(sample_rate, sigma, DEFAULT_ALPHAS)

    def eps_at(steps: int) -> float:
        eps, _ = rdp_to_dp(DEFAULT_ALPHAS, steps * per_step, delta)
        return eps

    if eps_at(1) > target_epsilon:
        return 0
    lo, hi = 1, 2
    while eps_at(hi) <= target_epsilon:
        lo = hi
        hi *= 2
        if hi > max_steps:
            return max_steps
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if eps_at(mid) <= target_epsilon:
            lo = mid
        else:
            hi = mid
    return lo
