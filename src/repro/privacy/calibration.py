"""Noise calibration for the Gaussian mechanism.

Two calibrations are provided:

* :func:`classic_gaussian_sigma` — the textbook bound used in the paper
  (§III-A): ``sigma = Delta * sqrt(2 ln(1.25/delta)) / epsilon``, valid for
  ``epsilon < 1``.
* :func:`analytic_gaussian_sigma` — the tight calibration of Balle & Wang
  (ICML 2018), valid for any ``epsilon > 0``, obtained by numerically
  inverting the exact Gaussian trade-off curve

  .. math::

     \\delta(\\epsilon; \\sigma) = \\Phi\\!\\Big(\\frac{\\Delta}{2\\sigma}
     - \\frac{\\epsilon\\sigma}{\\Delta}\\Big)
     - e^{\\epsilon}\\,\\Phi\\!\\Big(-\\frac{\\Delta}{2\\sigma}
     - \\frac{\\epsilon\\sigma}{\\Delta}\\Big).

:func:`gaussian_epsilon` inverts the same curve in the other direction
(epsilon from a known multiplier), which is how accountants report the
privacy of a single release.
"""

from __future__ import annotations

import math

from scipy.stats import norm

from repro.utils.validation import check_positive, check_probability

__all__ = [
    "classic_gaussian_sigma",
    "analytic_gaussian_delta",
    "analytic_gaussian_sigma",
    "gaussian_epsilon",
]


def classic_gaussian_sigma(epsilon: float, delta: float, sensitivity: float = 1.0) -> float:
    """Classic Gaussian-mechanism noise scale ``Delta * sqrt(2 ln(1.25/delta)) / epsilon``.

    Only valid for ``epsilon < 1`` (the regime of the original analysis);
    larger budgets should use :func:`analytic_gaussian_sigma`.
    """
    epsilon = check_positive("epsilon", epsilon)
    delta = check_probability("delta", delta)
    sensitivity = check_positive("sensitivity", sensitivity)
    if epsilon >= 1:
        raise ValueError(
            f"classic calibration requires epsilon < 1 (got {epsilon}); "
            "use analytic_gaussian_sigma for larger budgets"
        )
    return sensitivity * math.sqrt(2 * math.log(1.25 / delta)) / epsilon


def analytic_gaussian_delta(sigma: float, epsilon: float, sensitivity: float = 1.0) -> float:
    """Exact delta achieved by a Gaussian mechanism at a given ``epsilon``.

    Balle & Wang (2018), Theorem 8.  ``sigma`` is the *bare multiplier*; the
    noise standard deviation is ``sigma * sensitivity``.
    """
    sigma = check_positive("sigma", sigma)
    epsilon = check_positive("epsilon", epsilon, strict=False)
    sensitivity = check_positive("sensitivity", sensitivity)
    # Work in units of sensitivity: mu = Delta / (sigma * Delta) = 1 / sigma.
    a = sensitivity / (2 * sigma * sensitivity)
    b = epsilon * sigma * sensitivity / sensitivity
    return float(norm.cdf(a - b) - math.exp(epsilon) * norm.cdf(-a - b))


def analytic_gaussian_sigma(
    epsilon: float,
    delta: float,
    sensitivity: float = 1.0,
    *,
    tol: float = 1e-12,
) -> float:
    """Smallest noise multiplier achieving ``(epsilon, delta)``-DP (tight calibration).

    Binary search on the exact trade-off curve of
    :func:`analytic_gaussian_delta`; the returned value times ``sensitivity``
    is the required noise standard deviation.
    """
    epsilon = check_positive("epsilon", epsilon)
    delta = check_probability("delta", delta)
    sensitivity = check_positive("sensitivity", sensitivity)

    lo, hi = 1e-6, 1.0
    while analytic_gaussian_delta(hi, epsilon) > delta:
        hi *= 2
        if hi > 1e12:
            raise RuntimeError("analytic calibration failed to bracket sigma")
    while analytic_gaussian_delta(lo, epsilon) < delta and lo > 1e-300:
        lo /= 2
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        if analytic_gaussian_delta(mid, epsilon) > delta:
            lo = mid
        else:
            hi = mid
        if hi - lo < tol * hi:
            break
    return hi * sensitivity


def gaussian_epsilon(
    sigma: float,
    delta: float,
    sensitivity: float = 1.0,
    *,
    tol: float = 1e-12,
) -> float:
    """Tight epsilon of one Gaussian release with multiplier ``sigma`` at ``delta``.

    Inverts the analytic trade-off curve by binary search on epsilon.  Note
    that the effective multiplier is ``sigma`` regardless of ``sensitivity``
    because the noise scales with the sensitivity.
    """
    sigma = check_positive("sigma", sigma)
    delta = check_probability("delta", delta)
    check_positive("sensitivity", sensitivity)

    if analytic_gaussian_delta(sigma, 0.0) <= delta:
        return 0.0
    lo, hi = 0.0, 1.0
    while analytic_gaussian_delta(sigma, hi) > delta:
        hi *= 2
        if hi > 1e9:
            raise RuntimeError(
                f"epsilon exceeds 1e9 for sigma={sigma}, delta={delta}; "
                "the mechanism is effectively non-private"
            )
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        if analytic_gaussian_delta(sigma, mid) > delta:
            lo = mid
        else:
            hi = mid
        if hi - lo < tol * max(hi, 1.0):
            break
    return hi
