"""Quickstart: train a differentially private logistic regression with GeoDP.

Runs in under a minute on a laptop CPU.  Trains the same model three ways —
noise-free SGD, classic DP-SGD and GeoDP-SGD — and reports test accuracy and
the (epsilon, delta) spent.

Usage::

    python examples/quickstart.py
"""

from repro import DpSgdOptimizer, GeoDpSgdOptimizer, RdpAccountant, SgdOptimizer, Trainer
from repro.data import make_mnist_like, train_test_split
from repro.models import build_logistic_regression
from repro.utils import format_table


def train_one(name, optimizer, train, test, iterations=150, batch_size=256):
    model = build_logistic_regression((1, 16, 16), rng=0)
    trainer = Trainer(
        model, optimizer, train, test_data=test, batch_size=batch_size, rng=1
    )
    history = trainer.train(iterations, eval_every=iterations)
    return [name, history.final_loss, history.final_accuracy]


def main():
    # Procedural MNIST substitute (offline stand-in for the real dataset).
    data = make_mnist_like(2000, rng=0, size=16)
    train, test = train_test_split(data, rng=0)

    sigma, clip, lr = 1.0, 0.1, 4.0
    sample_rate = 256 / len(train)
    accountant = RdpAccountant()

    rows = [
        train_one("SGD (no noise)", SgdOptimizer(lr), train, test),
        train_one(
            f"DP-SGD (sigma={sigma})",
            DpSgdOptimizer(
                lr, clip, sigma, rng=2, accountant=accountant, sample_rate=sample_rate
            ),
            train,
            test,
        ),
        train_one(
            f"GeoDP-SGD (sigma={sigma}, beta=0.1)",
            GeoDpSgdOptimizer(
                lr, clip, sigma, beta=0.1, rng=2, sensitivity_mode="per_angle"
            ),
            train,
            test,
        ),
    ]
    print(format_table(["method", "final loss", "test accuracy"], rows))
    print(f"\nDP-SGD privacy spent: {accountant.get_privacy_spent(delta=1e-5)}")
    print("GeoDP spends the same Gaussian budget plus delta' <= 1 - beta (Lemma 2).")


if __name__ == "__main__":
    main()
