"""Local differential privacy for distributed statistics collection.

The paper's related work (and index terms) lean heavily on LDP numeric
collection; this example exercises the library's LDP toolbox on the task
those mechanisms were designed for — estimating population statistics from
privatised client reports:

1. mean estimation of bounded numeric attributes with the Duchi, Piecewise
   and Hybrid mechanisms at several budgets,
2. frequency estimation of a categorical attribute with k-ary randomized
   response,
3. multidimensional records via the sample-k-dimensions protocol.

Usage::

    python examples/ldp_collection.py
"""

import numpy as np

from repro.privacy import (
    DuchiMechanism,
    HybridMechanism,
    PiecewiseMechanism,
    RandomizedResponse,
    perturb_vector,
)
from repro.utils import format_table

N = 40_000


def mean_estimation(rng):
    true_values = np.clip(rng.normal(0.3, 0.4, size=N), -1, 1)
    rows = []
    for eps in (0.5, 1.0, 4.0):
        for name, mech in [
            ("Duchi", DuchiMechanism(eps)),
            ("Piecewise", PiecewiseMechanism(eps)),
            ("Hybrid", HybridMechanism(eps)),
        ]:
            reports = mech.perturb(true_values, rng)
            rows.append([eps, name, reports.mean(), abs(reports.mean() - true_values.mean())])
    print(
        format_table(
            ["epsilon", "mechanism", "estimated mean", "abs error"],
            rows,
            title=f"Mean estimation from {N} LDP reports (true mean "
            f"{true_values.mean():.4f})",
        )
    )


def frequency_estimation(rng):
    true_freq = np.array([0.45, 0.25, 0.2, 0.1])
    values = rng.choice(4, size=N, p=true_freq)
    rows = []
    for eps in (0.5, 2.0):
        rr = RandomizedResponse(eps, num_categories=4)
        est = rr.estimate_frequencies(rr.perturb(values, rng))
        rows.append([eps] + [f"{e:.3f}" for e in est])
    print()
    print(
        format_table(
            ["epsilon", "class 0", "class 1", "class 2", "class 3"],
            rows,
            title=f"Frequency estimation (true: {true_freq.tolist()})",
        )
    )


def vector_records(rng):
    d = 8
    true_mean = np.linspace(-0.6, 0.6, d)
    records = np.clip(true_mean + rng.normal(0, 0.2, size=(N, d)), -1, 1)
    estimate = perturb_vector(records, epsilon=4.0, rng=rng, k=2).mean(axis=0)
    print()
    print(
        format_table(
            ["coordinate", "true mean", "LDP estimate"],
            [[i, true_mean[i], estimate[i]] for i in range(d)],
            title="Sample-k-dimensions protocol, d=8, k=2, epsilon=4",
        )
    )


def main():
    rng = np.random.default_rng(0)
    mean_estimation(rng)
    frequency_estimation(rng)
    vector_records(rng)


if __name__ == "__main__":
    main()
