"""Private text classification with GeoDP (second modality).

A fastText-style bag-of-embeddings classifier on the synthetic topic
dataset, trained non-privately, with DP-SGD, and with GeoDP-SGD.  Shows
that the geometric perturbation is model-agnostic: the per-sample gradient
of the embedding table clips and perturbs exactly like a dense layer's.

Usage::

    python examples/text_classification.py
"""

from repro import DpSgdOptimizer, GeoDpSgdOptimizer, SgdOptimizer, Trainer
from repro.data import make_text_like, train_test_split
from repro.models import build_text_classifier
from repro.utils import format_table

VOCAB, CLASSES = 64, 4
ITERS, BATCH = 200, 64
SIGMA, CLIP = 1.0, 0.1


def run(name, optimizer, train, test):
    model = build_text_classifier(VOCAB, CLASSES, embedding_dim=16, rng=0)
    trainer = Trainer(model, optimizer, train, test_data=test, batch_size=BATCH, rng=1)
    history = trainer.train(ITERS, eval_every=ITERS)
    return [name, history.final_loss, history.final_accuracy]


def main():
    data = make_text_like(1500, rng=0, num_classes=CLASSES, vocab_size=VOCAB)
    train, test = train_test_split(data, rng=0)

    rows = [
        run("SGD (no noise)", SgdOptimizer(2.0), train, test),
        run(
            f"DP-SGD (sigma={SIGMA:g})",
            DpSgdOptimizer(2.0, CLIP, SIGMA, rng=2),
            train,
            test,
        ),
        run(
            f"GeoDP-SGD (sigma={SIGMA:g}, beta=0.1)",
            GeoDpSgdOptimizer(
                2.0, CLIP, SIGMA, beta=0.1, rng=2, sensitivity_mode="per_angle"
            ),
            train,
            test,
        ),
    ]
    print(
        format_table(
            ["method", "final loss", "test accuracy"],
            rows,
            title=f"Topic classification: {CLASSES} classes, vocab {VOCAB}",
        )
    )


if __name__ == "__main__":
    main()
