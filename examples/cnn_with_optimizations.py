"""Private CNN training with stacked optimisations (paper Table II workflow).

Trains the paper's CNN on the MNIST-like dataset with GeoDP, then layers on
the optimisation techniques the paper composes in Table II:

* AUTO-S / PSAC clipping instead of flat clipping,
* importance sampling (IS) of the mini-batch,
* selective update/release (SUR) of candidate steps.

This is the "healthcare images" scenario from the paper's introduction:
a model trained on sensitive images where every gradient must be privatised.

Usage::

    python examples/cnn_with_optimizations.py
"""

from repro import GeoDpSgdOptimizer, Trainer
from repro.core import ImportanceSampling, SelectiveUpdateRelease
from repro.data import make_mnist_like, train_test_split
from repro.models import build_cnn
from repro.privacy import AutoSClipping, PsacClipping
from repro.utils import format_table

SIGMA = 1.0
CLIP = 0.1
BETA = 0.1
ITERS = 100
BATCH = 64


def run(label, clipping=CLIP, use_is=False, use_sur=False):
    model = build_cnn((1, 16, 16), channels=(4, 8), rng=0)
    optimizer = GeoDpSgdOptimizer(
        2.0, clipping, SIGMA, beta=BETA, rng=2, sensitivity_mode="per_angle"
    )
    trainer = Trainer(
        model,
        optimizer,
        TRAIN,
        test_data=TEST,
        batch_size=BATCH,
        rng=3,
        importance_sampling=ImportanceSampling(CLIP) if use_is else None,
        sur=SelectiveUpdateRelease(noise_std=0.01, rng=4) if use_sur else None,
    )
    history = trainer.train(ITERS, eval_every=ITERS)
    sur_rate = (
        f"{history.sur_acceptance_rate:.0%}" if history.sur_acceptance_rate else "-"
    )
    return [label, history.final_accuracy, sur_rate]


def main():
    global TRAIN, TEST
    data = make_mnist_like(1500, rng=0, size=16)
    TRAIN, TEST = train_test_split(data, rng=0)

    rows = [
        run("GeoDP (flat clipping)"),
        run("GeoDP + AUTO-S", clipping=AutoSClipping(CLIP)),
        run("GeoDP + PSAC", clipping=PsacClipping(CLIP)),
        run("GeoDP + IS", use_is=True),
        run("GeoDP + SUR", use_sur=True),
        run("GeoDP + SUR + PSAC", clipping=PsacClipping(CLIP), use_sur=True),
    ]
    print(
        format_table(
            ["configuration", "test accuracy", "SUR acceptance"],
            rows,
            title=f"GeoDP CNN, sigma={SIGMA}, beta={BETA}, {ITERS} iterations",
        )
    )


if __name__ == "__main__":
    main()
