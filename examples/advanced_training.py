"""Advanced private-training features in one pipeline.

Combines the production-scale machinery the library ships beyond the basic
loop:

* **Poisson sampling** with a fixed lot size (the sampling the RDP/PLD
  amplification analysis actually assumes),
* **gradient accumulation** (microbatching) so huge logical batches fit in
  memory — how the paper's B = 16384 runs are executed at `paper` scale,
* a **decaying noise-multiplier schedule** (§IV's practice of lowering the
  noise near convergence),
* the **PLD accountant** (numerical composition, the paper's ref [53]) next
  to the RDP accountant for the same run.

Usage::

    python examples/advanced_training.py
"""

from repro.core import DpSgdOptimizer, LinearDecay, ScheduledOptimizer, Trainer
from repro.data import make_mnist_like, train_test_split
from repro.models import build_logistic_regression
from repro.privacy import PldAccountant, RdpAccountant
from repro.utils import format_table

SIGMA0, SIGMA1 = 4.0, 1.0
CLIP, BATCH, ITERS = 0.1, 128, 150


def main():
    data = make_mnist_like(2000, rng=0, size=16)
    train, test = train_test_split(data, rng=0)
    sample_rate = BATCH / len(train)

    rdp = RdpAccountant()
    base = DpSgdOptimizer(
        4.0, CLIP, SIGMA0, rng=1, accountant=rdp, sample_rate=sample_rate
    )
    optimizer = ScheduledOptimizer(
        base, noise_multiplier=LinearDecay(SIGMA0, SIGMA1, ITERS)
    )

    model = build_logistic_regression((1, 16, 16), rng=0)
    trainer = Trainer(
        model,
        optimizer,
        train,
        test_data=test,
        batch_size=BATCH,
        rng=2,
        sampling="poisson",     # fixed lot size set automatically
        microbatch_size=32,     # 4 accumulation chunks per logical batch
    )
    history = trainer.train(ITERS, eval_every=ITERS)

    # Account the same run with PLD at the *initial* (worst-case) sigma for
    # a like-for-like comparison of the two accountants.
    pld = PldAccountant(SIGMA1, sample_rate)  # pessimistic: final sigma
    pld.step(ITERS)

    print(
        format_table(
            ["metric", "value"],
            [
                ["final train-batch loss", history.final_loss],
                ["test accuracy", history.final_accuracy],
                ["epsilon (RDP, heterogeneous sigmas)", rdp.get_epsilon(1e-5)],
                [f"epsilon (PLD at sigma={SIGMA1:g} throughout)", pld.get_epsilon(1e-5)],
            ],
            title=(
                f"Poisson + accumulation + noise decay {SIGMA0:g}->{SIGMA1:g}, "
                f"{ITERS} iterations, lot {BATCH}"
            ),
        )
    )
    print(
        "\nNote: the RDP accountant composes each step at its scheduled "
        "sigma; the PLD bound shown assumes the loudest (final) sigma for "
        "every step, hence it is an upper bound on the same run."
    )


if __name__ == "__main__":
    main()
