"""Direction-preservation study: why GeoDP exists (paper Figures 1 and 4).

Perturbs a batch of synthetic training gradients with classic DP and with
GeoDP at several bounding factors, then reports the MSE of the perturbed
*directions* (Definition 4) and of the perturbed gradients themselves.
The table shows the paper's headline geometry result: a small enough beta
makes GeoDP better on BOTH metrics, while beta = 1 in high dimension loses.

Usage::

    python examples/direction_preservation.py
"""

import numpy as np

from repro.core import clip_gradients, perturb_dp_batch, perturb_geodp_batch
from repro.data import synthetic_gradient_batch
from repro.geometry import direction_mse, gradient_mse, to_spherical_batch
from repro.utils import format_table


def main():
    dim, batch_size, sigma, clip_norm = 2000, 2048, 1.0, 0.1
    rng = np.random.default_rng(0)

    grads = clip_gradients(synthetic_gradient_batch(200, dim, rng), clip_norm)
    _, theta_true = to_spherical_batch(grads)

    dp = perturb_dp_batch(grads, clip_norm, sigma, batch_size, rng, clip=False)
    _, theta_dp = to_spherical_batch(dp)
    dp_theta = direction_mse(theta_dp, theta_true)
    dp_g = gradient_mse(dp, grads)

    rows = [["DP", "-", dp_theta, dp_g, "-"]]
    for beta in (1.0, 0.1, 0.03, 0.01, 0.003):
        geo = perturb_geodp_batch(
            grads, clip_norm, sigma, batch_size, beta, rng, clip=False
        )
        _, theta_geo = to_spherical_batch(geo)
        geo_theta = direction_mse(theta_geo, theta_true)
        geo_g = gradient_mse(geo, grads)
        wins = "yes" if (geo_theta < dp_theta and geo_g < dp_g) else "no"
        rows.append(["GeoDP", beta, geo_theta, geo_g, wins])

    print(
        format_table(
            ["scheme", "beta", "MSE(direction)", "MSE(gradient)", "beats DP on both"],
            rows,
            title=f"d={dim}, B={batch_size}, sigma={sigma}, C={clip_norm}",
        )
    )
    print(
        "\nLemma 1 in action: shrinking beta always produces a setting where "
        "GeoDP preserves the descent direction better than classic DP."
    )


if __name__ == "__main__":
    main()
