"""Membership-inference evaluation: measuring what DP actually buys.

The paper motivates DP-SGD with membership-inference attacks (§I).  This
example trains the same model four ways — plain SGD, DP-SGD at two noise
levels, and GeoDP — then attacks each with the loss-threshold MIA and
reports test accuracy next to the attacker's membership advantage.  The
trade-off the paper optimises is exactly this pair: GeoDP aims to keep the
advantage low (same DP guarantee) while giving up less accuracy.

Usage::

    python examples/membership_inference.py
"""

from repro import DpSgdOptimizer, GeoDpSgdOptimizer, SgdOptimizer, Trainer
from repro.attacks import LossThresholdAttack, membership_advantage
from repro.data import make_mnist_like, train_test_split
from repro.models import build_logistic_regression
from repro.utils import format_table

ITERS = 400
BATCH = 32
CLIP = 0.1


def evaluate(name, optimizer, members, non_members):
    model = build_logistic_regression((1, 16, 16), rng=0)
    Trainer(model, optimizer, members, batch_size=BATCH, rng=1).train(ITERS)
    attack = LossThresholdAttack().fit(model, non_members)
    advantage = membership_advantage(
        attack.score(model, members.x, members.y),
        attack.score(model, non_members.x, non_members.y),
    )
    accuracy = model.accuracy(non_members.x, non_members.y)
    return [name, accuracy, advantage]


def main():
    data = make_mnist_like(300, rng=0, size=16)
    members, non_members = train_test_split(data, test_fraction=0.5, rng=0)

    rows = [
        evaluate("SGD (no privacy)", SgdOptimizer(2.0), members, non_members),
        evaluate(
            "DP-SGD sigma=1", DpSgdOptimizer(2.0, CLIP, 1.0, rng=2), members, non_members
        ),
        evaluate(
            "DP-SGD sigma=5", DpSgdOptimizer(2.0, CLIP, 5.0, rng=2), members, non_members
        ),
        evaluate(
            "GeoDP sigma=5, beta=0.1",
            GeoDpSgdOptimizer(
                2.0, CLIP, 5.0, beta=0.1, rng=2, sensitivity_mode="per_angle"
            ),
            members,
            non_members,
        ),
    ]
    print(
        format_table(
            ["training", "held-out accuracy", "MIA advantage"],
            rows,
            title=f"Loss-threshold membership inference ({ITERS} iterations)",
        )
    )
    print(
        "\nAdvantage 0 = attacker no better than chance. DP noise suppresses"
        "\nthe membership signal; GeoDP keeps it suppressed at better utility."
    )


if __name__ == "__main__":
    main()
