"""Federated learning with GeoDP clients (the paper's future-work direction).

Uses :class:`repro.core.FederatedTrainer`: each client holds a private
shard of the MNIST-like data, computes per-sample gradients locally,
privatises the averaged gradient with GeoDP (or classic DP) before sending
it to the server, and the server averages the privatised client updates.
Each client carries its own RDP accountant, so per-client (epsilon, delta)
is reported at the end.

Usage::

    python examples/federated_geodp.py
"""

import numpy as np

from repro.core import FederatedTrainer
from repro.data import make_mnist_like, train_test_split
from repro.models import build_logistic_regression
from repro.utils import format_table

NUM_CLIENTS = 5
ROUNDS = 80
SIGMA = 1.0


def run_federation(scheme, shards, test, seed=0):
    model = build_logistic_regression((1, 16, 16), rng=0)
    trainer = FederatedTrainer(
        model,
        shards,
        scheme=scheme,
        learning_rate=4.0,
        clipping=0.1,
        noise_multiplier=SIGMA,
        local_batch_size=64,
        beta=0.1,
        rng=seed,
    )
    trainer.train(ROUNDS)
    accuracy = model.accuracy(test.x, test.y)
    worst_eps = max(trainer.client_epsilons(1e-5))
    return accuracy, worst_eps


def main():
    data = make_mnist_like(2000, rng=0, size=16)
    train, test = train_test_split(data, rng=0)
    bounds = np.linspace(0, len(train), NUM_CLIENTS + 1).astype(int)
    shards = [train.subset(np.arange(lo, hi)) for lo, hi in zip(bounds, bounds[1:])]

    rows = []
    for label, scheme in [
        ("federated SGD (no privacy)", "none"),
        ("federated DP-SGD", "dp"),
        ("federated GeoDP (beta=0.1)", "geodp"),
    ]:
        accuracy, worst_eps = run_federation(scheme, shards, test)
        rows.append([label, accuracy, worst_eps if scheme != "none" else "-"])

    print(
        format_table(
            ["aggregation", "test accuracy", "worst client epsilon"],
            rows,
            title=(
                f"{NUM_CLIENTS} clients x {ROUNDS} rounds, sigma={SIGMA}, "
                f"C=0.1, delta=1e-5"
            ),
        )
    )


if __name__ == "__main__":
    main()
