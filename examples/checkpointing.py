"""Checkpointing a private training run and resuming it.

Long DP training runs need restartable state: the model parameters, the
training history, and — crucially — the privacy spent so far, so the
resumed run keeps accounting from where it left off rather than resetting
epsilon to zero.

Two levels are shown: portable parameter checkpoints with a manually
replayed accountant (phases 1-2), and the ``repro.checkpoint`` subsystem
(phase 3), which snapshots the *complete* training state automatically and
resumes a killed run bit-identically to one that was never interrupted.

Usage::

    python examples/checkpointing.py
"""

import tempfile
from pathlib import Path

from repro import DpSgdOptimizer, RdpAccountant, Trainer
from repro.data import make_mnist_like, train_test_split
from repro.models import build_logistic_regression
from repro.utils import load_checkpoint, load_history, save_checkpoint, save_history

SIGMA, CLIP, BATCH = 1.0, 0.1, 128
PHASE_ITERS = 100


def make_trainer(model, accountant, train, test, sample_rate, seed):
    optimizer = DpSgdOptimizer(
        4.0, CLIP, SIGMA, rng=seed, accountant=accountant, sample_rate=sample_rate
    )
    return Trainer(model, optimizer, train, test_data=test, batch_size=BATCH, rng=seed)


def main():
    data = make_mnist_like(2000, rng=0, size=16)
    train, test = train_test_split(data, rng=0)
    sample_rate = BATCH / len(train)
    workdir = Path(tempfile.mkdtemp(prefix="repro_ckpt_"))

    # ---- Phase 1: train, then checkpoint everything. -----------------------
    model = build_logistic_regression((1, 16, 16), rng=0)
    accountant = RdpAccountant()
    history = make_trainer(model, accountant, train, test, sample_rate, seed=1).train(
        PHASE_ITERS, eval_every=PHASE_ITERS
    )
    save_checkpoint(
        workdir / "model.npz",
        model,
        metadata={
            "iterations": history.iterations,
            "noise_multiplier": SIGMA,
            "accountant_steps": accountant.total_steps,
            "sample_rate": sample_rate,
        },
    )
    save_history(workdir / "history.json", history)
    print(
        f"phase 1: acc {history.final_accuracy:.3f}, "
        f"epsilon {accountant.get_epsilon(1e-5):.3f} "
        f"-> checkpointed to {workdir}"
    )

    # ---- Phase 2: fresh process simulation — restore and continue. ---------
    restored = build_logistic_regression((1, 16, 16), rng=99)  # different init
    _, meta = load_checkpoint(workdir / "model.npz", restored)
    old_history = load_history(workdir / "history.json")

    resumed_accountant = RdpAccountant()
    resumed_accountant.step(  # replay the privacy already spent
        meta["noise_multiplier"], meta["sample_rate"], num_steps=meta["accountant_steps"]
    )
    trainer = make_trainer(restored, resumed_accountant, train, test, sample_rate, seed=2)
    more = trainer.train(PHASE_ITERS, eval_every=PHASE_ITERS)

    total_iters = old_history.iterations + more.iterations
    print(
        f"phase 2: acc {more.final_accuracy:.3f} after {total_iters} total "
        f"iterations, cumulative epsilon {resumed_accountant.get_epsilon(1e-5):.3f}"
    )
    print(
        "\nThe resumed accountant includes phase 1's steps, so the reported "
        "epsilon covers the whole training history."
    )

    # ---- Phase 3: automatic full-state snapshots (repro.checkpoint). -------
    # The manual route above carries parameters + replayed privacy spend, but
    # the resumed run is a *different* run (fresh RNG streams, reset momentum).
    # The checkpoint subsystem snapshots everything and resumes bit-identically.
    ckpt_dir = workdir / "snapshots"

    def fresh_run():
        model = build_logistic_regression((1, 16, 16), rng=0)
        accountant = RdpAccountant()
        trainer = make_trainer(model, accountant, train, test, sample_rate, seed=1)
        return model, accountant, trainer

    model_a, acc_a, trainer_a = fresh_run()
    uninterrupted = trainer_a.train(2 * PHASE_ITERS)

    _, _, trainer_b = fresh_run()
    trainer_b.train(  # "crashes" at PHASE_ITERS + 30; snapshots every 25
        PHASE_ITERS + 30, checkpoint_every=25, checkpoint_dir=ckpt_dir
    )
    model_c, acc_c, trainer_c = fresh_run()  # new process: rebuild, same seeds
    resumed = trainer_c.train(
        2 * PHASE_ITERS, checkpoint_every=25, checkpoint_dir=ckpt_dir
    )

    identical = (
        (model_c.get_params() == model_a.get_params()).all()
        and resumed.losses == uninterrupted.losses
        and acc_c.get_epsilon(1e-5) == acc_a.get_epsilon(1e-5)
    )
    print(
        f"\nphase 3: killed at iteration {PHASE_ITERS + 30}, resumed from "
        f"snapshot, finished {resumed.iterations} iterations; bit-identical "
        f"to the uninterrupted run: {identical}"
    )


if __name__ == "__main__":
    main()
