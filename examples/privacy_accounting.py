"""Privacy accounting walkthrough.

Shows the full accounting toolchain the library provides:

1. calibrating Gaussian noise for a one-shot release (classic vs analytic),
2. tracking a DP-SGD training run with the RDP accountant,
3. comparing against naive (advanced-composition) accounting,
4. GeoDP's extra delta' from the bounded direction region (Lemma 2).

Usage::

    python examples/privacy_accounting.py
"""

from repro.geometry import delta_prime_upper_bound
from repro.privacy import (
    GaussianAccountant,
    RdpAccountant,
    analytic_gaussian_sigma,
    classic_gaussian_sigma,
    gaussian_epsilon,
)
from repro.utils import format_table


def main():
    delta = 1e-5

    # 1. One-shot calibration: analytic is strictly tighter.
    rows = []
    for eps in (0.3, 0.8):
        rows.append(
            [
                eps,
                classic_gaussian_sigma(eps, delta),
                analytic_gaussian_sigma(eps, delta),
            ]
        )
    print(
        format_table(
            ["target epsilon", "classic sigma", "analytic sigma"],
            rows,
            title=f"Gaussian calibration at delta={delta}",
        )
    )

    # 2. A DP-SGD run: 60 epochs on N=60000 at B=600 (q=0.01), sigma=1.0.
    accountant = RdpAccountant()
    epochs, steps_per_epoch, q, sigma = 60, 100, 0.01, 1.0
    rows = []
    for epoch in (1, 10, 30, 60):
        target_steps = epoch * steps_per_epoch
        while accountant.total_steps < target_steps:
            accountant.step(sigma, q)
        rows.append([epoch, accountant.total_steps, accountant.get_epsilon(delta)])
    print()
    print(
        format_table(
            ["epoch", "steps", "epsilon (RDP)"],
            rows,
            title=f"DP-SGD accounting: q={q}, sigma={sigma}, delta={delta}",
        )
    )

    # 3. Naive accounting of the same run (ignoring subsampling) explodes.
    naive = GaussianAccountant(noise_multiplier=sigma)
    naive.step(num_steps=epochs * steps_per_epoch)
    print(
        f"\nNaive advanced composition for the same run: "
        f"epsilon = {naive.get_epsilon(delta):.1f} "
        f"(vs RDP {accountant.get_epsilon(delta):.2f})"
    )

    # 4. GeoDP's direction relaxation.
    print("\nGeoDP delta' bounds (Lemma 2):")
    for beta in (0.9, 0.5, 0.1):
        spent = accountant.get_privacy_spent(delta, delta_prime=delta_prime_upper_bound(beta))
        print(f"  beta={beta}: {spent}")
    print(
        "\nNote: one release per iteration, same sigma => GeoDP's epsilon "
        "matches DP-SGD's; only delta grows by delta' (Theorem 5)."
    )


if __name__ == "__main__":
    main()
