"""Telemetry overhead benchmarks.

The recorder sits on the training hot path, so its cost must be noise: the
headline check trains the paper's MNIST-like logistic-regression workload
for 200 DP-SGD iterations with and without a recorder attached and asserts
the instrumented run is less than 5% slower.  Micro-benchmarks cover the
individual recorder operations.

Measurement notes: on shared machines wall-clock noise is one-sided (CPU
steal only ever slows a chunk down), so a naive A/B comparison of two long
runs is hopelessly biased by whichever run caught the quieter window.  The
two variants are therefore interleaved in small chunks and summarised by
two robust, differently-biased estimators — the ratio of per-variant chunk
minima, and the median of adjacent-pair chunk ratios — and the overhead
claim is checked against the smaller of the two.
"""

import statistics
import time

import numpy as np
import pytest

from repro.core import DpSgdOptimizer, Trainer
from repro.data import make_mnist_like, train_test_split
from repro.models import build_logistic_regression
from repro.telemetry import MetricsRecorder, Tracer, export_trace, load_trace

ITERATIONS = 200
BATCH = 512  # paper-style large lots; per-sample work dominates each step
MAX_OVERHEAD = 0.05
MAX_TRACED_OVERHEAD = 0.15  # recorder + lot-granularity span tracing
CHUNK = 5  # iterations per timed chunk; ITERATIONS/CHUNK chunks per variant


@pytest.fixture(scope="module")
def workload():
    data = make_mnist_like(4000, rng=0, size=12)
    train, _ = train_test_split(data, rng=0)
    return train


def _make_trainer(train, telemetry, tracer=None):
    model = build_logistic_regression((1, 12, 12), rng=0)
    optimizer = DpSgdOptimizer(1.0, 0.1, 1.0, rng=2)
    return Trainer(
        model,
        optimizer,
        train,
        batch_size=BATCH,
        rng=1,
        telemetry=telemetry,
        tracer=tracer,
    )


def _timed(fn):
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def _interleaved_overhead(bare, instrumented, report, name, label, budget):
    """Interleave the two trainers in chunks; report and bound the overhead."""
    bare.train(CHUNK)
    instrumented.train(CHUNK)  # warm caches before timing

    bare_chunks, inst_chunks = [], []
    for _ in range(ITERATIONS // CHUNK):
        bare_chunks.append(_timed(lambda: bare.train(CHUNK)))
        inst_chunks.append(_timed(lambda: instrumented.train(CHUNK)))

    by_minima = min(inst_chunks) / min(bare_chunks) - 1.0
    by_median = (
        statistics.median(i / b for i, b in zip(inst_chunks, bare_chunks)) - 1.0
    )
    overhead = min(by_minima, by_median)
    report(
        name,
        "\n".join(
            [
                f"{label}, {ITERATIONS}-iteration DP-SGD LR run "
                f"(batch {BATCH}, interleaved {CHUNK}-iteration chunks):",
                f"  bare chunk min:         {min(bare_chunks) * 1e3:.1f} ms",
                f"  instrumented chunk min: {min(inst_chunks) * 1e3:.1f} ms",
                f"  overhead (chunk minima):  {by_minima:+.2%}",
                f"  overhead (median ratio):  {by_median:+.2%}",
                f"  overhead:                 {overhead:+.2%} (budget {budget:.0%})",
            ]
        ),
    )
    assert overhead < budget


def test_recorder_overhead_under_5_percent(workload, report):
    _interleaved_overhead(
        _make_trainer(workload, None),
        _make_trainer(workload, MetricsRecorder()),
        report,
        "bench_telemetry",
        "telemetry overhead",
        MAX_OVERHEAD,
    )


def test_tracing_disabled_overhead_under_5_percent(workload, report):
    """A run-granularity tracer gates every hot-path span with a dict lookup.

    ``granularity="run"`` is tracing in its "installed but disabled" state:
    lot and phase spans never open (one gate check each), tracemalloc is
    off, and only the per-``train()``-call run span survives.  That must
    cost under 5%, like the recorder.
    """
    _interleaved_overhead(
        _make_trainer(workload, None),
        _make_trainer(workload, None, tracer=Tracer(granularity="run")),
        report,
        "bench_tracing_disabled",
        "tracing overhead (granularity='run', tracemalloc off)",
        MAX_OVERHEAD,
    )


def test_tracing_lot_overhead_under_15_percent(workload, report):
    """Recorder plus lot-granularity span tracing stays under 15% overhead."""
    _interleaved_overhead(
        _make_trainer(workload, None),
        _make_trainer(
            workload, MetricsRecorder(), tracer=Tracer(granularity="lot")
        ),
        report,
        "bench_tracing_lot",
        "recorder + tracing overhead (granularity='lot', tracemalloc off)",
        MAX_TRACED_OVERHEAD,
    )


def test_record_point(benchmark):
    recorder = MetricsRecorder()
    benchmark(recorder.record, "loss", 1.0)


def test_span(benchmark):
    recorder = MetricsRecorder()

    def spanned():
        with recorder.span("clip"):
            pass

    benchmark(spanned)


def test_full_step_trace(benchmark):
    recorder = MetricsRecorder()
    iteration = iter(range(10**9))

    def step():
        recorder.start_step(next(iteration))
        recorder.record("loss", 1.0)
        with recorder.span("clip"):
            pass
        recorder.end_step()

    benchmark(step)


def test_export_load_round_trip(benchmark, tmp_path):
    recorder = MetricsRecorder()
    for i in range(1, ITERATIONS + 1):
        recorder.start_step(i)
        for name in ("loss", "clipped_fraction", "angular_deviation"):
            recorder.record(name, float(i))
        with recorder.span("clip"):
            pass
        recorder.end_step()
    path = tmp_path / "trace.jsonl"

    def round_trip():
        export_trace(path, recorder)
        return load_trace(path)

    loaded = benchmark(round_trip)
    assert np.allclose(loaded.values("loss"), recorder.values("loss"))
