"""Benchmark regenerating Figure 3: MSE sweeps over sigma, dimension, batch."""

from repro.experiments import format_fig3, run_fig3


def test_fig3(benchmark, bench_scale, report):
    result = benchmark.pedantic(
        run_fig3, args=(bench_scale,), kwargs={"rng": 0}, rounds=1, iterations=1
    )
    report("fig3", format_fig3(result))

    # Shape 1: GeoDP's direction MSE is monotone in beta at every sweep point.
    for panel in result["panels"].values():
        by_x = {}
        for row in panel["rows"]:
            by_x.setdefault(row["x"], {})[row["beta"]] = row["geo_theta"]
        for per_beta in by_x.values():
            betas = sorted(per_beta)
            values = [per_beta[b] for b in betas]
            assert values == sorted(values)

    # Shape 2: at the smallest beta GeoDP wins directions everywhere
    # (Fig 3 c/f/i after beta tuning).
    smallest = min(result["betas"])
    for panel in result["panels"].values():
        for row in panel["rows"]:
            if row["beta"] == smallest:
                assert row["geo_theta"] < row["dp_theta"]

    # Shape 3: larger batches shrink GeoDP's direction MSE (Fig 3 g-i).
    batch_rows = [
        r for r in result["panels"]["batch"]["rows"] if r["beta"] == smallest
    ]
    batch_rows.sort(key=lambda r: r["x"])
    assert batch_rows[-1]["geo_theta"] < batch_rows[0]["geo_theta"]
