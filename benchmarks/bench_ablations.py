"""Ablation benchmarks for the design choices DESIGN.md calls out.

1. Direction-noise calibration: Algorithm 1's stated *total* L2 sensitivity
   versus the *per-angle* calibration the paper's experiments imply.  The
   per-angle mode must give strictly smaller direction MSE at the same beta,
   and the total mode must match it when beta is shrunk by ~sqrt(d+2).
2. Clipping strategies: flat vs AUTO-S vs PSAC under the same noise — all
   must respect the sensitivity bound while differing in signal retention.
3. Accountants: PLD (ref [53]) vs mu-GDP (CLT) vs RDP vs naive advanced
   composition at DP-SGD step counts.
"""

import numpy as np
import pytest

from repro.core import perturb_geodp_batch
from repro.data import synthetic_gradient_batch
from repro.experiments.common import mse_comparison
from repro.geometry import direction_mse, to_spherical_batch
from repro.privacy import (
    AutoSClipping,
    FlatClipping,
    GaussianAccountant,
    GdpAccountant,
    PldAccountant,
    PsacClipping,
    RdpAccountant,
)
from repro.utils.tables import format_table


def test_sensitivity_mode_ablation(benchmark, report):
    d, beta, sigma, batch = 2000, 0.1, 1.0, 2048
    grads = synthetic_gradient_batch(60, d, rng=0)
    _, theta0 = to_spherical_batch(grads)

    def measure(mode):
        out = perturb_geodp_batch(
            grads, 10.0, sigma, batch, beta, np.random.default_rng(1),
            clip=False, sensitivity_mode=mode,
        )
        _, theta = to_spherical_batch(out)
        return direction_mse(theta, theta0)

    total = benchmark.pedantic(measure, args=("total",), rounds=1, iterations=1)
    per_angle = measure("per_angle")
    # Shrinking beta by sqrt(d+2) in total mode reproduces per-angle noise on
    # the polar angles (the azimuth differs by its factor-2 range).
    equivalent = perturb_geodp_batch(
        grads, 10.0, sigma, batch, beta / np.sqrt(d + 2),
        np.random.default_rng(1), clip=False, sensitivity_mode="total",
    )
    _, theta_eq = to_spherical_batch(equivalent)
    eq_mse = direction_mse(theta_eq, theta0)

    report(
        "ablation_sensitivity_mode",
        format_table(
            ["mode", "direction MSE"],
            [
                [f"total (Alg. 1, beta={beta})", total],
                [f"per_angle (beta={beta})", per_angle],
                [f"total (beta={beta}/sqrt(d+2))", eq_mse],
            ],
            title="Ablation: GeoDP direction-noise calibration",
        ),
    )
    assert per_angle < total
    assert eq_mse == pytest.approx(per_angle, rel=0.5)


def test_clipping_strategy_ablation(benchmark, report):
    rng = np.random.default_rng(0)
    grads = rng.normal(size=(256, 500)) * rng.uniform(0.01, 3.0, size=(256, 1))
    clip_norm = 0.5
    strategies = {
        "flat": FlatClipping(clip_norm),
        "AUTO-S": AutoSClipping(clip_norm),
        "PSAC": PsacClipping(clip_norm),
    }

    def run_all():
        return {name: s.clip(grads) for name, s in strategies.items()}

    clipped = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    clean_mean = grads.mean(axis=0)
    for name, out in clipped.items():
        norms = np.linalg.norm(out, axis=1)
        cos = float(
            np.dot(out.mean(axis=0), clean_mean)
            / (np.linalg.norm(out.mean(axis=0)) * np.linalg.norm(clean_mean))
        )
        rows.append([name, norms.max(), norms.mean(), cos])
        assert norms.max() <= clip_norm + 1e-9  # sensitivity respected
    report(
        "ablation_clipping",
        format_table(
            ["strategy", "max norm", "mean norm", "cos(mean, clean mean)"],
            rows,
            title=f"Ablation: clipping strategies at C={clip_norm}",
        ),
    )


def test_accountant_ablation(benchmark, report):
    sigma, q, steps = 1.0, 0.02, 500

    def epsilons():
        rdp = RdpAccountant()
        rdp.step(sigma, q, num_steps=steps)
        naive = GaussianAccountant(noise_multiplier=sigma)
        naive.step(num_steps=steps)
        pld = PldAccountant(sigma, q, grid_step=1e-4)
        pld.step(steps)
        gdp = GdpAccountant(sigma, q)
        gdp.step(steps)
        return (
            pld.get_epsilon(1e-5),
            gdp.get_epsilon(1e-5),
            rdp.get_epsilon(1e-5),
            naive.get_epsilon(1e-5, method="advanced"),
        )

    eps_pld, eps_gdp, eps_rdp, eps_naive = benchmark.pedantic(
        epsilons, rounds=1, iterations=1
    )
    report(
        "ablation_accountant",
        format_table(
            ["accountant", "epsilon at delta=1e-5"],
            [
                ["PLD (numerical composition, ref [53])", eps_pld],
                ["mu-GDP (CLT approximation)", eps_gdp],
                ["RDP", eps_rdp],
                ["advanced composition (no subsampling gain)", eps_naive],
            ],
            title=(
                f"Ablation: accountants, {steps} steps at sigma={sigma}, q={q}"
            ),
        ),
    )
    assert eps_pld < eps_rdp < eps_naive
    assert 0 < eps_gdp < eps_naive
