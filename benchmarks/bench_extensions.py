"""Benchmarks for the extension experiments (beyond the paper's tables).

* Privacy-utility frontier: DP vs GeoDP at calibrated equal-epsilon budgets.
* Membership inference: DP noise must measurably reduce attack advantage.
"""

from repro.experiments import (
    format_concentration,
    format_mia,
    format_privacy_utility,
    run_concentration,
    run_mia,
    run_privacy_utility,
)


def test_privacy_utility_frontier(benchmark, bench_scale, report):
    result = benchmark.pedantic(
        run_privacy_utility, args=(bench_scale,), kwargs={"rng": 0}, rounds=1, iterations=1
    )
    report("privacy_utility", format_privacy_utility(result))

    rows = result["rows"]
    # Calibration sanity: larger budgets need less noise.
    sigmas = [r["sigma"] for r in sorted(rows, key=lambda r: r["epsilon"])]
    assert sigmas == sorted(sigmas, reverse=True)
    # Utility grows (weakly) along the frontier for both methods.
    accs_dp = [r["dp"] for r in sorted(rows, key=lambda r: r["epsilon"])]
    assert accs_dp[-1] >= accs_dp[0] - 0.05
    # GeoDP is competitive at every budget.
    for r in rows:
        assert r["geodp"] >= r["dp"] - 0.1


def test_membership_inference(benchmark, bench_scale, report):
    result = benchmark.pedantic(
        run_mia, args=(bench_scale,), kwargs={"rng": 0}, rounds=1, iterations=1
    )
    report("mia", format_mia(result))

    by_label = {r["label"]: r for r in result["rows"]}
    plain = next(v for k, v in by_label.items() if k.startswith("SGD"))
    dp = next(v for k, v in by_label.items() if k.startswith("DP-SGD"))
    geo = next(v for k, v in by_label.items() if k.startswith("GeoDP"))

    # DP noise must measurably shrink the attacker's advantage.
    assert dp["advantage"] < plain["advantage"]
    assert geo["advantage"] < plain["advantage"]
    # GeoDP's utility at the same sigma is at least DP's (within noise).
    assert geo["accuracy"] >= dp["accuracy"] - 0.1


def test_direction_concentration(benchmark, bench_scale, report):
    result = benchmark.pedantic(
        run_concentration, args=(bench_scale,), kwargs={"rng": 0}, rounds=1, iterations=1
    )
    report("concentration", format_concentration(result))

    uniform_r = result["uniform"]["resultant_length"]
    rows = result["rows"]
    assert rows, "no batch sizes produced enough groups"
    # Theorem 3's premise: real gradient directions concentrate far above
    # the uniform baseline, and batch averaging concentrates them further.
    for r in rows:
        assert r["resultant_length"] > 2 * uniform_r
    assert rows[-1]["resultant_length"] >= rows[0]["resultant_length"] - 0.05
