"""Benchmark regenerating Figure 4: bounding-factor effectiveness."""

from repro.experiments import format_fig4, run_fig4
from repro.experiments.fig4 import crossover_beta


def test_fig4(benchmark, bench_scale, report):
    result = benchmark.pedantic(
        run_fig4, args=(bench_scale,), kwargs={"rng": 0}, rounds=1, iterations=1
    )
    report("fig4", format_fig4(result))

    # Lemma 1 / Figure 4's claim: for every dimension there exists a beta at
    # which GeoDP beats DP on BOTH direction and gradient MSE.
    for dim in result["dims"]:
        assert crossover_beta(result, dim) is not None, f"no double win at d={dim}"

    # The crossover beta shrinks (weakly) as dimensionality grows.
    dims = sorted(result["dims"])
    betas = [crossover_beta(result, d) for d in dims]
    assert betas[-1] <= betas[0]
