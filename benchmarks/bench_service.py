"""Budget-server admission throughput and latency gates.

Admission control sits on every submission path of the budget server, so
it has a hard speed floor: a single-process server must sustain at least
``MIN_DECISIONS_PER_SECOND`` admission decisions per second over a mixed
stream (several mechanism shapes, two tenants, including refusals), with
a p95 per-decision latency below ``MAX_P95_LATENCY_SECONDS``.  The stream
deliberately reuses a small set of (σ, sample-rate) pairs — the shape of
real tenant traffic — which exercises the memoized RDP curve cache in
:mod:`repro.privacy.rdp`; the first evaluation of each pair is done in a
warm-up pass so the timed region measures the sustained rate.

``service_section()`` packages the numbers for ``run_all.py``'s
``BENCH_<n>.json`` archives, where ``compare.gate_service`` enforces both
floors on every archived run.
"""

from __future__ import annotations

import time

import pytest

from repro.service import BudgetServer, JobSpec

pytestmark = pytest.mark.service

#: Admission decisions per second a single process must sustain.
MIN_DECISIONS_PER_SECOND = 200.0
#: p95 per-decision latency ceiling (seconds).
MAX_P95_LATENCY_SECONDS = 0.05


def _mixed_stream() -> list[JobSpec]:
    """A representative submission mix: 4 mechanism shapes + refusals."""
    bulk = [
        JobSpec(tenant="bulk", sigma=sigma, sample_rate=rate, steps=steps)
        for sigma, rate, steps in (
            (1.1, 0.01, 100),
            (0.9, 0.02, 50),
            (1.5, 0.005, 200),
            (2.0, 0.04, 25),
        )
    ]
    # The capped tenant's budget fits nothing: every submission is a
    # refusal, so annotation chaining is part of the measured mix.
    return bulk + [JobSpec(tenant="capped", sigma=1.0, sample_rate=0.02, steps=100)]


def service_section(*, decisions: int = 500) -> dict:
    """Admission throughput/latency numbers for ``BENCH_<n>.json``."""
    server = BudgetServer()  # in-memory: admission only, nothing dispatched
    server.add_tenant("bulk", epsilon_budget=1e9)
    server.add_tenant("capped", epsilon_budget=1e-4)
    stream = _mixed_stream()
    for spec in stream:  # warm-up: fill the per-(σ, q) RDP curve cache
        server.submit(spec)

    latencies = []
    start = time.perf_counter()
    for i in range(decisions):
        spec = stream[i % len(stream)]
        before = time.perf_counter()
        server.submit(spec)
        latencies.append(time.perf_counter() - before)
    elapsed = time.perf_counter() - start

    latencies.sort()
    p50 = latencies[len(latencies) // 2]
    p95 = latencies[min(len(latencies) - 1, int(0.95 * len(latencies)))]
    refused = server.queue.counts()["refused"]
    return {
        "decisions": decisions,
        "refused": refused,
        "decisions_per_second": decisions / elapsed,
        "p95_latency_seconds": p95,
        "benchmarks": {
            "admission_decision_p50": {"seconds": p50},
            "admission_decision_p95": {"seconds": p95},
        },
    }


def test_admission_throughput_floor(report):
    section = service_section()
    per_second = section["decisions_per_second"]
    p95 = section["p95_latency_seconds"]
    report(
        "bench_service",
        f"budget-server admission over a mixed 2-tenant stream "
        f"({section['decisions']} decisions, {section['refused']} refused)\n"
        f"throughput {per_second:10.0f} decisions/s (floor "
        f"{MIN_DECISIONS_PER_SECOND:.0f}/s)\n"
        f"p95        {p95 * 1e3:10.3f} ms/decision (ceiling "
        f"{MAX_P95_LATENCY_SECONDS * 1e3:.0f} ms)",
    )
    assert per_second >= MIN_DECISIONS_PER_SECOND, (
        f"admission sustained only {per_second:.0f} decisions/s "
        f"(required >= {MIN_DECISIONS_PER_SECOND:.0f})"
    )
    assert p95 <= MAX_P95_LATENCY_SECONDS, (
        f"p95 admission latency {p95:.4f}s exceeds "
        f"{MAX_P95_LATENCY_SECONDS}s"
    )


def test_every_decision_stays_audited():
    """Speed may not cost auditability: the whole stream replays exactly."""
    section = service_section(decisions=50)
    assert section["refused"] > 0
    server = BudgetServer()
    server.add_tenant("bulk", epsilon_budget=1e9)
    server.add_tenant("capped", epsilon_budget=1e-4)
    for i in range(50):
        server.submit(_mixed_stream()[i % 5])
    for verification in server.verify(tol=1e-9).values():
        assert verification.ok
