"""Thread-scaling and zero-allocation benchmarks for the kernel hot paths.

``threads_section()`` produces the ``"threads"`` mapping archived by
``run_all.py`` and gated by ``compare.gate_threads``:

* **Byte equality** — the headline kernels are executed under 1, 2 and 4
  configured threads with identical inputs (and, for the perturbation,
  identically seeded RNG streams); every output must be *byte-identical*.
  This is the determinism contract of :mod:`repro.backend.threads` and is
  gated unconditionally, on any machine.
* **Speedup** — median wall time of the headline kernels at 1 thread vs
  ``min(4, cpu_count)`` threads.  The ratio is recorded always but only
  *gated* (>= 1.8x) when the machine actually has >= 4 CPUs — a
  single-core CI box cannot show parallel speedup and must not fail.
* **Steady-state allocation** — tracemalloc peak of one
  ``perturb_geodp_batch`` release *after* the workspace arena is warm.
  With pooling, the only steady-state allocation is the output buffer the
  caller keeps, so the peak must sit far below the ~23 MB the same release
  allocated before the arena existed (``compare.RELEASE_STEADY_PEAK_CEILING``).

The section also snapshots the :mod:`repro.backend.workspace` counters so
archives document the arena hit rate.
"""

from __future__ import annotations

import os
import time
import tracemalloc

import numpy as np

#: Kernel shape for the scaling measurements — matches the headline
#: ``perturb_geodp_batch`` benchmark in ``run_all.py``.
SHAPE = (64, 5000)

#: Thread counts exercised for the byte-equality check.
EQUALITY_THREAD_COUNTS = (1, 2, 4)


def _median_seconds(fn, repeats: int) -> float:
    fn()  # warm-up
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return float(np.median(times))


def _build_ghost_inputs():
    from repro.data import make_mnist_like
    from repro.models import build_cnn
    from repro.privacy.clipping import FlatClipping

    batch = 64
    data = make_mnist_like(batch, rng=0, size=16)
    model = build_cnn((1, 16, 16), num_classes=100, channels=(16, 32), rng=0)
    y = np.random.default_rng(1).integers(0, 100, size=batch)
    clipping = FlatClipping(1.0)

    def ghost():
        _, summed, _ = model.loss_and_clipped_grad_sum(data.x, y, clipping)
        return summed

    return ghost


def threads_section(repeats: int = 5) -> dict:
    """Measure thread determinism, scaling and steady-state allocation."""
    from repro.backend import get_backend, use_backend, use_num_threads, workspace
    from repro.core import perturb_geodp_batch

    cpu_count = os.cpu_count() or 1
    target_threads = min(4, cpu_count)

    rng_seed = 7
    grads = np.random.default_rng(0).normal(size=SHAPE) * 0.01

    with use_backend("auto"):
        backend_name = get_backend().name

        def perturb():
            return perturb_geodp_batch(
                grads, 0.1, 1.0, 1024, 0.1, np.random.default_rng(rng_seed)
            )

        ghost = _build_ghost_inputs()

        # --- byte equality across thread counts (identical RNG streams) ---
        byte_equal = True
        with use_num_threads(1):
            perturb_base = perturb().tobytes()
            ghost_base = ghost().tobytes()
        for n in EQUALITY_THREAD_COUNTS[1:]:
            with use_num_threads(n):
                byte_equal &= perturb().tobytes() == perturb_base
                byte_equal &= ghost().tobytes() == ghost_base

        # --- scaling: 1 thread vs min(4, cpu_count) ---
        speedup = {}
        for name, fn in (("perturb_geodp_batch", perturb), ("ghost_clipped_sum", ghost)):
            with use_num_threads(1):
                t1 = _median_seconds(fn, repeats)
            with use_num_threads(target_threads):
                tn = _median_seconds(fn, repeats)
            speedup[name] = {
                "t1_seconds": t1,
                "tn_seconds": tn,
                "threads": target_threads,
                "speedup": t1 / tn if tn > 0 else 1.0,
            }

        # --- steady-state release allocation (arena warm) ---
        with use_num_threads(1):
            workspace.reset_stats()
            perturb()
            perturb()  # two warm-ups so every (shape, dtype) key is pooled
            tracemalloc.start()
            perturb()
            _, steady_peak = tracemalloc.get_traced_memory()
            tracemalloc.stop()
            arena = workspace.stats()

    return {
        "cpu_count": cpu_count,
        "backend": backend_name,
        "shape": list(SHAPE),
        "byte_equal": bool(byte_equal),
        "speedup": speedup,
        "release_steady_peak_bytes": int(steady_peak),
        "workspace": arena,
    }


if __name__ == "__main__":
    import json

    print(json.dumps(threads_section(), indent=2))
