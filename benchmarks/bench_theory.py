"""Benchmark validating the paper's theory section numerically."""

from repro.experiments import format_theory_validation, run_theory_validation


def test_theory_validation(benchmark, bench_scale, report):
    result = benchmark.pedantic(
        run_theory_validation,
        args=(bench_scale,),
        kwargs={"rng": 0},
        rounds=1,
        iterations=1,
    )
    report("theory_validation", format_theory_validation(result))
    for row in result["rows"]:
        assert row["holds"], f"theory claim failed: {row['claim']} ({row['value']})"
