"""Shared configuration for the benchmark suite.

The benchmarks regenerate every table and figure of the paper's evaluation.
``REPRO_BENCH_SCALE`` selects the parameter preset (``smoke`` by default,
``ci`` or ``paper`` for longer runs); each bench prints the regenerated
table through ``capsys.disabled()`` so it is visible in the normal
``pytest benchmarks/ --benchmark-only`` output, and writes it to
``results/<name>.txt`` for the record.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def bench_scale() -> str:
    """Experiment scale for this benchmark session."""
    scale = os.environ.get("REPRO_BENCH_SCALE", "smoke")
    if scale not in ("smoke", "ci", "paper"):
        raise ValueError(f"REPRO_BENCH_SCALE must be smoke/ci/paper, got {scale!r}")
    return scale


@pytest.fixture()
def report(capsys):
    """Print a regenerated table to the live terminal and archive it."""

    def _report(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        with capsys.disabled():
            print(f"\n{text}\n")

    return _report
