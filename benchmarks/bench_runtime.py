"""Parallel-runtime benchmarks.

The headline check runs an 8-cell training grid (one noise-free reference
plus one DP-SGD row across seven noise levels) serially and with two
worker processes, asserts the parallel run is at least 1.5x faster, and —
because determinism is this subsystem's contract — that both runs produce
identical tables.  Skipped on single-core machines, where forked workers
merely time-slice one core.  Micro-benchmarks cover the job-runner
dispatch overhead.
"""

import os
import time

import pytest

from repro.data import make_mnist_like, train_test_split
from repro.experiments.training_grid import MethodSpec, run_grid
from repro.models import build_logistic_regression
from repro.runtime import make_jobs, parallel_available, run_jobs

MIN_SPEEDUP = 1.5
SIGMAS = (0.5, 1.0, 2.0, 3.0, 5.0, 8.0, 10.0)  # 7 cells + reference = 8
ITERATIONS = 40
WORKERS = 2


@pytest.fixture(scope="module")
def workload():
    data = make_mnist_like(3000, rng=0, size=12)
    return train_test_split(data, rng=0)


def _grid(workload, workers):
    train, test = workload
    return run_grid(
        [MethodSpec("DP (B=512)", "dp", 512)],
        lambda: build_logistic_regression((1, 12, 12), rng=0),
        train,
        test,
        sigmas=SIGMAS,
        iterations=ITERATIONS,
        learning_rate=1.0,
        clip_norm=0.1,
        rng=7,
        workers=workers,
    )


def test_grid_speedup_with_two_workers(workload, report):
    if (os.cpu_count() or 1) < 2:
        pytest.skip("speedup needs at least 2 cores")
    if not parallel_available():
        pytest.skip("fork start method unavailable")

    start = time.perf_counter()
    serial = _grid(workload, workers=1)
    serial_s = time.perf_counter() - start

    start = time.perf_counter()
    parallel = _grid(workload, workers=WORKERS)
    parallel_s = time.perf_counter() - start

    assert parallel == serial  # speed must not touch the numbers
    speedup = serial_s / parallel_s
    report(
        "bench_runtime",
        "\n".join(
            [
                f"parallel grid runtime, {len(SIGMAS) + 1}-cell DP-SGD LR grid "
                f"({ITERATIONS} iterations per cell, {WORKERS} workers, "
                f"{os.cpu_count()} cores):",
                f"  serial:   {serial_s:.2f} s",
                f"  parallel: {parallel_s:.2f} s",
                f"  speedup:  {speedup:.2f}x (floor {MIN_SPEEDUP}x)",
                "  results bit-identical: yes",
            ]
        ),
    )
    assert speedup >= MIN_SPEEDUP


def test_run_jobs_serial_dispatch_overhead(benchmark):
    """Per-job overhead of the runner itself, serial path."""
    jobs = make_jobs(list(range(256)), rng=0)
    result = benchmark(run_jobs, _triple, jobs, workers=1)
    assert result[255] == 765


def _triple(job):
    return job.payload * 3
