"""Benchmark regenerating Figure 1: GeoDP vs DP MSEs across noise multipliers."""

from repro.experiments import format_fig1, run_fig1


def test_fig1(benchmark, bench_scale, report):
    result = benchmark.pedantic(
        run_fig1, args=(bench_scale,), kwargs={"rng": 0}, rounds=1, iterations=1
    )
    report("fig1", format_fig1(result))

    # Qualitative shape of Figure 1: GeoDP better preserves directions,
    # DP better preserves raw gradient values.
    for row in result["rows"]:
        assert row["geo_theta"] < row["dp_theta"], f"direction win fails at {row}"
        assert row["dp_g"] < row["geo_g"], f"gradient win fails at {row}"
