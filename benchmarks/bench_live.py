"""Live observability overhead benchmarks.

The live layer (registry mirroring + per-step HealthMonitor evaluation)
attaches to an already-instrumented run, so its budget is measured
*relative to a recorder-only run*: the same interleaved-chunk protocol as
``bench_telemetry`` (two robust, differently-biased estimators; overhead
checked against the smaller) trains the paper's MNIST-like workload with
a plain recorder vs a recorder bound to a :class:`MetricsRegistry` with
the default alert rules evaluated every step, and asserts the live run
is less than 5% slower in steady state.

``live_section()`` packages the overhead plus scrape/evaluation latency
micro-numbers for ``run_all.py``'s ``BENCH_<n>.json`` archives, where
``compare.gate_live`` enforces the overhead ceiling on every archived
run.
"""

from __future__ import annotations

import statistics
import time

from repro.core import DpSgdOptimizer, Trainer
from repro.data import make_mnist_like, train_test_split
from repro.models import build_logistic_regression
from repro.telemetry import MetricsRecorder
from repro.telemetry.live import (
    HealthMonitor,
    MetricsRegistry,
    default_training_rules,
    render_prometheus,
)

ITERATIONS = 200
BATCH = 512  # paper-style large lots; per-sample work dominates each step
MAX_OVERHEAD = 0.05
CHUNK = 5  # iterations per timed chunk


def _workload(samples: int = 4000):
    data = make_mnist_like(samples, rng=0, size=12)
    train, _ = train_test_split(data, rng=0)
    return train


def _make_trainer(train, *, live: bool):
    recorder = MetricsRecorder()
    if live:
        registry = MetricsRegistry()
        monitor = HealthMonitor(registry, default_training_rules())
        monitor.watch(recorder)  # binds the registry + per-step evaluate
    model = build_logistic_regression((1, 12, 12), rng=0)
    optimizer = DpSgdOptimizer(1.0, 0.1, 1.0, rng=2)
    return Trainer(
        model, optimizer, train, batch_size=BATCH, rng=1, telemetry=recorder
    )


def _timed(fn):
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def live_overhead(*, iterations: int = ITERATIONS, train=None) -> dict:
    """Steady-state live-layer overhead via interleaved chunk timing."""
    if train is None:
        train = _workload()
    bare = _make_trainer(train, live=False)
    live = _make_trainer(train, live=True)
    bare.train(CHUNK)
    live.train(CHUNK)  # warm caches before timing

    bare_chunks, live_chunks = [], []
    for _ in range(iterations // CHUNK):
        bare_chunks.append(_timed(lambda: bare.train(CHUNK)))
        live_chunks.append(_timed(lambda: live.train(CHUNK)))

    by_minima = min(live_chunks) / min(bare_chunks) - 1.0
    by_median = (
        statistics.median(lv / b for lv, b in zip(live_chunks, bare_chunks)) - 1.0
    )
    return {
        "iterations": iterations,
        "bare_chunk_min_seconds": min(bare_chunks),
        "live_chunk_min_seconds": min(live_chunks),
        "overhead_by_minima": by_minima,
        "overhead_by_median": by_median,
        "overhead_fraction": min(by_minima, by_median),
    }


def _populated_registry(steps: int = 100) -> tuple[MetricsRegistry, HealthMonitor]:
    """A registry shaped like a real run's, for scrape/evaluate timing."""
    registry = MetricsRegistry()
    monitor = HealthMonitor(registry, default_training_rules())
    for step in range(steps):
        registry.observe_series("clipped_fraction", 0.4, step=step)
        registry.observe_series("noise_to_signal", 1.2, step=step)
        registry.observe_series("angular_deviation", 1.4, step=step)
        registry.observe_series("loss", 0.7, step=step)
        registry.set_gauge(
            "service_tenant_epsilon_spent", 0.01 * step, step=step,
            labels={"tenant": "bulk"},
        )
        registry.inc("releases_gaussian")
    return registry, monitor


def _p95(samples: list[float]) -> float:
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, int(0.95 * len(ordered)))]


def live_section(*, iterations: int = 100) -> dict:
    """Live-layer numbers for ``BENCH_<n>.json`` archives."""
    detail = live_overhead(iterations=iterations, train=_workload(2000))
    registry, monitor = _populated_registry()
    evaluate_times = [_timed(lambda: monitor.evaluate(step=0)) for _ in range(50)]
    render_times = [_timed(lambda: render_prometheus(registry)) for _ in range(50)]
    return {
        "overhead_fraction": detail["overhead_fraction"],
        "overhead_by_minima": detail["overhead_by_minima"],
        "overhead_by_median": detail["overhead_by_median"],
        "evaluate_p95_seconds": _p95(evaluate_times),
        "render_p95_seconds": _p95(render_times),
        "benchmarks": {
            "monitor_evaluate_p95": {"seconds": _p95(evaluate_times)},
            "prometheus_render_p95": {"seconds": _p95(render_times)},
        },
    }


def test_live_overhead_under_5_percent(report):
    detail = live_overhead()
    report(
        "bench_live",
        "\n".join(
            [
                f"live registry + per-step HealthMonitor vs recorder-only, "
                f"{detail['iterations']}-iteration DP-SGD LR run "
                f"(batch {BATCH}, interleaved {CHUNK}-iteration chunks):",
                f"  recorder chunk min: {detail['bare_chunk_min_seconds'] * 1e3:.1f} ms",
                f"  live chunk min:     {detail['live_chunk_min_seconds'] * 1e3:.1f} ms",
                f"  overhead (chunk minima): {detail['overhead_by_minima']:+.2%}",
                f"  overhead (median ratio): {detail['overhead_by_median']:+.2%}",
                f"  overhead:                {detail['overhead_fraction']:+.2%} "
                f"(budget {MAX_OVERHEAD:.0%})",
            ]
        ),
    )
    assert detail["overhead_fraction"] < MAX_OVERHEAD


def test_scrape_latency_is_submillisecond_scale(report):
    """Rendering a realistic registry must stay cheap enough to scrape
    every few seconds without perturbing the run."""
    registry, monitor = _populated_registry()
    evaluate_times = [_timed(lambda: monitor.evaluate(step=0)) for _ in range(50)]
    render_times = [_timed(lambda: render_prometheus(registry)) for _ in range(50)]
    report(
        "bench_live_scrape",
        f"monitor evaluate p95 {_p95(evaluate_times) * 1e3:8.3f} ms\n"
        f"prometheus render p95 {_p95(render_times) * 1e3:8.3f} ms",
    )
    assert _p95(evaluate_times) < 0.05
    assert _p95(render_times) < 0.05


def test_observe_series(benchmark):
    registry = MetricsRegistry()
    steps = iter(range(10**9))
    benchmark(lambda: registry.observe_series("clipped_fraction", 0.4, step=next(steps)))


def test_monitor_evaluate(benchmark):
    registry, monitor = _populated_registry()
    benchmark(monitor.evaluate, step=0)


def test_render_prometheus(benchmark):
    registry, _ = _populated_registry()
    benchmark(render_prometheus, registry)
