"""Compare the newest perf baseline against the oldest and flag regressions.

Usage::

    python benchmarks/compare.py [--dir DIR] [--baseline PATH] [--candidate PATH]
    python benchmarks/compare.py --max-time-regression 0.25 --max-mem-regression 0.5

``benchmarks/run_all.py`` archives each run as ``BENCH_<n>.json``; this
script diffs the newest file (the candidate) against the lowest-numbered
one (the baseline) benchmark by benchmark and exits nonzero when any
shared benchmark regresses by more than 25% wall time or 50% allocation
peak.  Benchmarks present on only one side are reported but never fail
the comparison, so adding a new benchmark doesn't break the gate.

Archives may carry per-backend sections (``"backends": {name: {...}}``,
see ``run_all.py``).  Each backend is compared against *its own* section
of the baseline (old archives without sections contribute only the
top-level reference mapping), and a second, within-candidate gate checks
that every accelerated backend actually earns its keep: the headline
kernels (``HEADLINE_BENCHMARKS``) must be strictly faster than the
reference backend in the same run, and no kernel may run more than 10%
slower than reference.  An accelerated backend that loses to pure numpy
exits nonzero.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Default regression thresholds (fractional increase over baseline).
MAX_TIME_REGRESSION = 0.25
MAX_MEM_REGRESSION = 0.50

#: Wall-time denominators below this are floored before computing a
#: regression ratio.  Sub-millisecond medians are dominated by timer and
#: scheduler noise — a kernel that moves from 0.1 ms to 0.2 ms reads as a
#: "2x regression" while being entirely jitter — so ratios are taken
#: against ``max(baseline, MIN_TIME_SECONDS)``.  Genuine regressions of
#: fast kernels still trip the gate once they cost real time.
MIN_TIME_SECONDS = 1e-3

#: Thread-scaling gate (see ``bench_threads.threads_section``): with at
#: least this many CPUs, the headline kernels must reach this speedup at
#: min(4, cpu_count) threads over 1 thread.  Byte equality across thread
#: counts is gated unconditionally, whatever the core count.
MIN_THREAD_GATE_CPUS = 4
MIN_THREAD_SPEEDUP = 1.8

#: Ceiling on the steady-state (arena-warm) allocation peak of one
#: ``perturb_geodp_batch`` release.  BENCH_1 measured 23 041 638 peak
#: bytes for the same release before the workspace arena existed; the
#: issue requires at least a 5x reduction.
RELEASE_STEADY_PEAK_CEILING = 23_041_638 // 5

#: Kernels an accelerated backend must run strictly faster than reference.
HEADLINE_BENCHMARKS = ("perturb_geodp_batch", "ghost_clipped_sum")

#: Slack for non-headline kernels under an accelerated backend (they may
#: not be optimized, but must never cost more than this over reference).
#: Matches MAX_TIME_REGRESSION: several benchmarks share code across
#: backends, so the difference is pure timing noise.
MAX_ACCELERATED_SLOWDOWN = 0.25

#: The sparse training step must beat the dense ghost step whenever the
#: archive's touch rate is at or below this fraction of the table.
MAX_SPARSE_TOUCH_RATE = 0.10

#: Budget-server admission floors (see ``bench_service.service_section``).
MIN_SERVICE_DECISIONS_PER_SEC = 200.0
MAX_SERVICE_P95_SECONDS = 0.05

#: Live observability ceilings (see ``bench_live.live_section``): the
#: registry + per-step HealthMonitor may add at most this fraction over a
#: recorder-only run, and one scrape render / rule evaluation must stay
#: below this latency so scraping never perturbs the run.
MAX_LIVE_OVERHEAD = 0.05
MAX_LIVE_SCRAPE_P95_SECONDS = 0.05

_BENCH_RE = re.compile(r"^BENCH_(\d+)\.json$")


def bench_files(directory) -> list[Path]:
    """``BENCH_<n>.json`` files in ``directory``, sorted by ``n`` ascending."""
    found = []
    for entry in Path(directory).iterdir():
        match = _BENCH_RE.match(entry.name)
        if match:
            found.append((int(match.group(1)), entry))
    return [path for _, path in sorted(found)]


def load_benchmarks(path) -> dict:
    """The ``benchmarks`` mapping of one archived run."""
    payload = json.loads(Path(path).read_text())
    benchmarks = payload.get("benchmarks")
    if not isinstance(benchmarks, dict):
        raise ValueError(f"{path} has no 'benchmarks' mapping")
    return benchmarks


def load_backend_sections(path) -> dict:
    """Per-backend benchmark sections of one archive.

    Pre-backend archives have no ``backends`` key; their top-level
    ``benchmarks`` mapping *is* the reference backend, so it is returned
    as the ``reference`` section — old baselines stay comparable.
    """
    payload = json.loads(Path(path).read_text())
    sections = payload.get("backends")
    if isinstance(sections, dict) and sections:
        return sections
    return {"reference": load_benchmarks(path)}


def describe_env(path) -> str:
    """One-line machine context from an archive's header fields.

    Archives written since the threading work record ``cpu_count``, the
    ``REPRO_THREADS`` setting and backend availability; older archives
    yield an empty string.  Regression ratios are only meaningful between
    comparable machines, so the report surfaces the context.
    """
    payload = json.loads(Path(path).read_text())
    bits = []
    for key in ("cpu_count", "num_threads", "threads_env"):
        if payload.get(key) is not None:
            bits.append(f"{key}={payload[key]}")
    available = payload.get("backends_available")
    if isinstance(available, dict):
        names = ",".join(sorted(name for name, ok in available.items() if ok))
        bits.append(f"backends={names}")
    return "  ".join(bits)


def compare(
    baseline: dict,
    candidate: dict,
    *,
    max_time_regression: float = MAX_TIME_REGRESSION,
    max_mem_regression: float = MAX_MEM_REGRESSION,
) -> tuple[list[str], list[str]]:
    """Diff two benchmark mappings; returns ``(report lines, failures)``."""
    lines = []
    failures = []
    shared = sorted(set(baseline) & set(candidate))
    for name in shared:
        base, cand = baseline[name], candidate[name]
        # Floor sub-millisecond baselines: ratios against timer jitter are
        # meaningless (see MIN_TIME_SECONDS).
        base_seconds = max(base["seconds"], MIN_TIME_SECONDS)
        time_ratio = cand["seconds"] / base_seconds
        mem_ratio = (
            cand["peak_bytes"] / base["peak_bytes"] if base["peak_bytes"] > 0 else 1.0
        )
        problems = []
        if time_ratio > 1.0 + max_time_regression:
            problems.append(f"TIME REGRESSION (> +{max_time_regression:.0%})")
            failures.append(f"{name}: time {time_ratio:.2f}x baseline")
        if mem_ratio > 1.0 + max_mem_regression:
            problems.append(f"MEM REGRESSION (> +{max_mem_regression:.0%})")
            failures.append(f"{name}: peak memory {mem_ratio:.2f}x baseline")
        verdict = " + ".join(problems) if problems else "ok"
        lines.append(
            f"{name:28s} time {time_ratio:6.2f}x   mem {mem_ratio:6.2f}x   {verdict}"
        )
    for name in sorted(set(candidate) - set(baseline)):
        lines.append(f"{name:28s} (new benchmark; no baseline)")
    for name in sorted(set(baseline) - set(candidate)):
        lines.append(f"{name:28s} (missing from candidate)")
    if not shared:
        lines.append("(no shared benchmarks to compare)")
    return lines, failures


def compare_files(
    baseline_path,
    candidate_path,
    *,
    max_time_regression: float = MAX_TIME_REGRESSION,
    max_mem_regression: float = MAX_MEM_REGRESSION,
) -> tuple[str, bool]:
    """Compare two archive files section by section; returns ``(report, ok)``.

    Every backend section of the candidate is diffed against the same
    backend's section in the baseline; sections with no baseline (e.g. a
    newly available backend) are reported but never fail.
    """
    base_sections = load_backend_sections(baseline_path)
    cand_sections = load_backend_sections(candidate_path)
    header = [
        f"baseline:  {baseline_path}",
        f"candidate: {candidate_path}",
    ]
    env = describe_env(candidate_path)
    if env:
        header.append(f"candidate environment: {env}")
    lines: list[str] = []
    failures: list[str] = []
    for backend in sorted(cand_sections):
        lines.append("")
        if backend not in base_sections:
            lines.append(f"[{backend}] (new backend section; no baseline)")
            continue
        lines.append(f"[{backend}] vs its own baseline section")
        section_lines, section_failures = compare(
            base_sections[backend],
            cand_sections[backend],
            max_time_regression=max_time_regression,
            max_mem_regression=max_mem_regression,
        )
        lines.extend(f"  {line}" for line in section_lines)
        failures.extend(f"[{backend}] {failure}" for failure in section_failures)
    for backend in sorted(set(base_sections) - set(cand_sections)):
        lines.append("")
        lines.append(f"[{backend}] (missing from candidate)")
    footer = (
        ["", "PASS: no perf regressions"]
        if not failures
        else ["", "FAIL:"] + [f"  - {failure}" for failure in failures]
    )
    return "\n".join(header + lines + footer), not failures


def gate_accelerated(
    sections: dict,
    *,
    headline: tuple = HEADLINE_BENCHMARKS,
    max_slowdown: float = MAX_ACCELERATED_SLOWDOWN,
) -> tuple[list[str], list[str]]:
    """Within-run gate: accelerated backends must beat the reference.

    For every non-reference section, each headline kernel must be
    strictly faster than the reference section of the same run, and no
    shared kernel may exceed reference time by ``max_slowdown``.
    Returns ``(report lines, failures)``.
    """
    lines: list[str] = []
    failures: list[str] = []
    reference = sections.get("reference")
    if reference is None:
        return ["(no reference section; accelerated gate skipped)"], []
    for backend in sorted(sections):
        if backend == "reference":
            continue
        lines.append(f"[{backend}] vs reference (same run)")
        for name in sorted(set(reference) & set(sections[backend])):
            ref_s = reference[name]["seconds"]
            cand_s = sections[backend][name]["seconds"]
            ratio = cand_s / ref_s if ref_s > 0 else 1.0
            if name in headline:
                ok = ratio < 1.0
                verdict = "ok (beats reference)" if ok else "FAIL: must beat reference"
                if not ok:
                    failures.append(
                        f"[{backend}] {name}: {ratio:.2f}x reference (headline "
                        "kernel must be < 1.00x)"
                    )
            else:
                ok = ratio <= 1.0 + max_slowdown
                verdict = "ok" if ok else f"FAIL: > +{max_slowdown:.0%} over reference"
                if not ok:
                    failures.append(f"[{backend}] {name}: {ratio:.2f}x reference")
            lines.append(f"  {name:28s} time {ratio:6.2f}x reference   {verdict}")
    if not lines:
        lines.append("(no accelerated backend sections; gate skipped)")
    return lines, failures


def gate_accelerated_file(path, **kwargs) -> tuple[str, bool]:
    """Run :func:`gate_accelerated` on one archive; returns ``(report, ok)``."""
    lines, failures = gate_accelerated(load_backend_sections(path), **kwargs)
    header = [f"accelerated-backend gate: {path}", ""]
    footer = (
        ["", "PASS: accelerated backends beat reference"]
        if not failures
        else ["", "FAIL:"] + [f"  - {failure}" for failure in failures]
    )
    return "\n".join(header + lines + footer), not failures


def gate_sparse(
    section: dict | None, *, max_touch_rate: float = MAX_SPARSE_TOUCH_RATE
) -> tuple[list[str], list[str]]:
    """Within-run gate: the sparse step must beat the dense step.

    ``section`` is an archive's ``"sparse"`` mapping (see
    ``bench_sparse.sparse_section``); archives without one pass trivially.
    At touch rates at or below ``max_touch_rate`` the sparse training step
    must be strictly faster than the dense ghost step of the same run —
    if deferred noise or the compacted gradients stop paying for
    themselves, the archive fails.  Returns ``(report lines, failures)``.
    """
    if not section:
        return ["(no sparse section; sparse gate skipped)"], []
    touch_rate = float(section.get("touch_rate", 1.0))
    benchmarks = section.get("benchmarks", {})
    dense = benchmarks.get("dense_step", {}).get("seconds")
    sparse = benchmarks.get("sparse_step", {}).get("seconds")
    if dense is None or sparse is None:
        return ["(sparse section lacks dense_step/sparse_step; gate skipped)"], []
    ratio = sparse / dense if dense > 0 else float("inf")
    line = (
        f"sparse_step {ratio:6.2f}x dense_step at touch rate {touch_rate:.1%} "
        f"(vocab {section.get('vocab_size', '?')})"
    )
    if touch_rate > max_touch_rate:
        return [line + f"   (touch rate > {max_touch_rate:.0%}; gate skipped)"], []
    if ratio < 1.0:
        return [line + "   ok (beats dense)"], []
    failure = (
        f"sparse_step: {ratio:.2f}x dense_step at touch rate {touch_rate:.1%} "
        f"(must be < 1.00x at <= {max_touch_rate:.0%})"
    )
    return [line + "   FAIL: must beat dense"], [failure]


def gate_sparse_file(path, **kwargs) -> tuple[str, bool]:
    """Run :func:`gate_sparse` on one archive; returns ``(report, ok)``."""
    payload = json.loads(Path(path).read_text())
    lines, failures = gate_sparse(payload.get("sparse"), **kwargs)
    header = [f"sparse-training gate: {path}", ""]
    footer = (
        ["", "PASS: sparse step beats dense"]
        if not failures
        else ["", "FAIL:"] + [f"  - {failure}" for failure in failures]
    )
    return "\n".join(header + lines + footer), not failures


def gate_threads(
    section: dict | None,
    *,
    min_speedup: float = MIN_THREAD_SPEEDUP,
    min_cpus: int = MIN_THREAD_GATE_CPUS,
    max_steady_peak: int = RELEASE_STEADY_PEAK_CEILING,
) -> tuple[list[str], list[str]]:
    """Within-run gate: threading must be deterministic, scaling, and lean.

    ``section`` is an archive's ``"threads"`` mapping (see
    ``bench_threads.threads_section``); archives without one pass
    trivially.  Three checks:

    * ``byte_equal`` must be true — outputs identical across thread
      counts.  Gated unconditionally; a machine's core count cannot
      excuse a determinism break.
    * Each recorded headline speedup must reach ``min_speedup`` — but
      only when the archived run had at least ``min_cpus`` CPUs, since a
      smaller machine physically cannot scale.
    * ``release_steady_peak_bytes`` must not exceed ``max_steady_peak``
      (the pre-arena allocation peak divided by the required reduction).
    """
    if not section:
        return ["(no threads section; thread gate skipped)"], []
    lines: list[str] = []
    failures: list[str] = []
    cpu_count = int(section.get("cpu_count", 1))

    byte_equal = section.get("byte_equal")
    ok = byte_equal is True
    lines.append(
        f"byte equality across thread counts: {byte_equal}   "
        f"{'ok' if ok else 'FAIL'}"
    )
    if not ok:
        failures.append(
            "threads: outputs differ across thread counts (determinism break)"
        )

    for name, entry in sorted(section.get("speedup", {}).items()):
        speedup = float(entry.get("speedup", 0.0))
        threads = entry.get("threads", "?")
        line = (
            f"{name:28s} {speedup:5.2f}x at {threads} threads "
            f"(floor {min_speedup:.1f}x with >= {min_cpus} CPUs)"
        )
        if cpu_count < min_cpus:
            lines.append(line + f"   (only {cpu_count} CPUs; speedup gate skipped)")
        elif speedup >= min_speedup:
            lines.append(line + "   ok")
        else:
            lines.append(line + "   FAIL")
            failures.append(
                f"threads: {name} speedup {speedup:.2f}x at {threads} threads "
                f"(must be >= {min_speedup:.1f}x with {cpu_count} CPUs)"
            )

    steady = section.get("release_steady_peak_bytes")
    if steady is not None:
        steady = int(steady)
        ok = steady <= max_steady_peak
        lines.append(
            f"steady-state release peak {steady / 2**20:8.2f} MiB "
            f"(ceiling {max_steady_peak / 2**20:.2f} MiB)   {'ok' if ok else 'FAIL'}"
        )
        if not ok:
            failures.append(
                f"threads: steady-state release peak {steady} bytes "
                f"(must be <= {max_steady_peak})"
            )
    return lines, failures


def gate_threads_file(path, **kwargs) -> tuple[str, bool]:
    """Run :func:`gate_threads` on one archive; returns ``(report, ok)``."""
    payload = json.loads(Path(path).read_text())
    lines, failures = gate_threads(payload.get("threads"), **kwargs)
    header = [f"thread-determinism/scaling gate: {path}", ""]
    footer = (
        ["", "PASS: threading is deterministic and within its floors"]
        if not failures
        else ["", "FAIL:"] + [f"  - {failure}" for failure in failures]
    )
    return "\n".join(header + lines + footer), not failures


def gate_service(
    section: dict | None,
    *,
    min_per_second: float = MIN_SERVICE_DECISIONS_PER_SEC,
    max_p95_seconds: float = MAX_SERVICE_P95_SECONDS,
) -> tuple[list[str], list[str]]:
    """Within-run gate: budget-server admission must stay fast.

    ``section`` is an archive's ``"service"`` mapping (see
    ``bench_service.service_section``); archives without one pass
    trivially.  The archived run must have sustained at least
    ``min_per_second`` admission decisions per second with a p95
    per-decision latency at or below ``max_p95_seconds``.  Returns
    ``(report lines, failures)``.
    """
    if not section:
        return ["(no service section; admission gate skipped)"], []
    per_second = section.get("decisions_per_second")
    p95 = section.get("p95_latency_seconds")
    if per_second is None or p95 is None:
        return ["(service section lacks throughput/latency; gate skipped)"], []
    lines = []
    failures = []
    per_second, p95 = float(per_second), float(p95)
    ok = per_second >= min_per_second
    lines.append(
        f"admission throughput {per_second:10.0f} decisions/s "
        f"(floor {min_per_second:.0f}/s)   {'ok' if ok else 'FAIL'}"
    )
    if not ok:
        failures.append(
            f"admission: {per_second:.0f} decisions/s "
            f"(must be >= {min_per_second:.0f})"
        )
    ok = p95 <= max_p95_seconds
    lines.append(
        f"admission p95 latency {p95 * 1e3:9.3f} ms "
        f"(ceiling {max_p95_seconds * 1e3:.0f} ms)   {'ok' if ok else 'FAIL'}"
    )
    if not ok:
        failures.append(
            f"admission: p95 latency {p95:.4f}s "
            f"(must be <= {max_p95_seconds}s)"
        )
    return lines, failures


def gate_service_file(path, **kwargs) -> tuple[str, bool]:
    """Run :func:`gate_service` on one archive; returns ``(report, ok)``."""
    payload = json.loads(Path(path).read_text())
    lines, failures = gate_service(payload.get("service"), **kwargs)
    header = [f"budget-server admission gate: {path}", ""]
    footer = (
        ["", "PASS: admission stays within its speed floors"]
        if not failures
        else ["", "FAIL:"] + [f"  - {failure}" for failure in failures]
    )
    return "\n".join(header + lines + footer), not failures


def gate_live(
    section: dict | None,
    *,
    max_overhead: float = MAX_LIVE_OVERHEAD,
    max_scrape_p95_seconds: float = MAX_LIVE_SCRAPE_P95_SECONDS,
) -> tuple[list[str], list[str]]:
    """Within-run gate: live observability must stay near-free.

    ``section`` is an archive's ``"live"`` mapping (see
    ``bench_live.live_section``); archives without one pass trivially.
    The archived run's steady-state overhead (registry mirroring plus
    per-step alert evaluation, relative to a recorder-only run) must be
    under ``max_overhead``, and both the rule-evaluation and
    Prometheus-render p95 latencies must be at or below
    ``max_scrape_p95_seconds``.  Returns ``(report lines, failures)``.
    """
    if not section:
        return ["(no live section; observability gate skipped)"], []
    overhead = section.get("overhead_fraction")
    if overhead is None:
        return ["(live section lacks overhead_fraction; gate skipped)"], []
    lines = []
    failures = []
    overhead = float(overhead)
    ok = overhead < max_overhead
    lines.append(
        f"live-layer overhead {overhead:+10.2%} "
        f"(budget {max_overhead:.0%})   {'ok' if ok else 'FAIL'}"
    )
    if not ok:
        failures.append(
            f"live: overhead {overhead:+.2%} (must be < {max_overhead:.0%})"
        )
    for key, label in (
        ("evaluate_p95_seconds", "rule evaluation"),
        ("render_p95_seconds", "prometheus render"),
    ):
        p95 = section.get(key)
        if p95 is None:
            continue
        p95 = float(p95)
        ok = p95 <= max_scrape_p95_seconds
        lines.append(
            f"{label} p95 {p95 * 1e3:9.3f} ms "
            f"(ceiling {max_scrape_p95_seconds * 1e3:.0f} ms)   "
            f"{'ok' if ok else 'FAIL'}"
        )
        if not ok:
            failures.append(
                f"live: {label} p95 {p95:.4f}s "
                f"(must be <= {max_scrape_p95_seconds}s)"
            )
    return lines, failures


def gate_live_file(path, **kwargs) -> tuple[str, bool]:
    """Run :func:`gate_live` on one archive; returns ``(report, ok)``."""
    payload = json.loads(Path(path).read_text())
    lines, failures = gate_live(payload.get("live"), **kwargs)
    header = [f"live observability gate: {path}", ""]
    footer = (
        ["", "PASS: live observability stays within its ceilings"]
        if not failures
        else ["", "FAIL:"] + [f"  - {failure}" for failure in failures]
    )
    return "\n".join(header + lines + footer), not failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--dir", default=str(REPO_ROOT), metavar="DIR",
        help="directory holding BENCH_<n>.json archives (default: repo root)",
    )
    parser.add_argument("--baseline", default=None, help="explicit baseline file")
    parser.add_argument("--candidate", default=None, help="explicit candidate file")
    parser.add_argument(
        "--max-time-regression", type=float, default=MAX_TIME_REGRESSION,
        help="allowed fractional wall-time increase (default: 0.25)",
    )
    parser.add_argument(
        "--max-mem-regression", type=float, default=MAX_MEM_REGRESSION,
        help="allowed fractional peak-memory increase (default: 0.5)",
    )
    args = parser.parse_args(argv)

    baseline, candidate = args.baseline, args.candidate
    if baseline is None or candidate is None:
        files = bench_files(args.dir)
        if len(files) < 2:
            print(
                f"need at least two BENCH_<n>.json files in {args.dir} "
                f"(found {len(files)}); run benchmarks/run_all.py twice"
            )
            return 0
        baseline = baseline or files[0]
        candidate = candidate or files[-1]

    report, ok = compare_files(
        baseline,
        candidate,
        max_time_regression=args.max_time_regression,
        max_mem_regression=args.max_mem_regression,
    )
    print(report)
    gate_report, gate_ok = gate_accelerated_file(candidate)
    print(f"\n{gate_report}")
    sparse_report, sparse_ok = gate_sparse_file(candidate)
    print(f"\n{sparse_report}")
    service_report, service_ok = gate_service_file(candidate)
    print(f"\n{service_report}")
    threads_report, threads_ok = gate_threads_file(candidate)
    print(f"\n{threads_report}")
    live_report, live_ok = gate_live_file(candidate)
    print(f"\n{live_report}")
    return 0 if (
        ok and gate_ok and sparse_ok and service_ok and threads_ok and live_ok
    ) else 1


if __name__ == "__main__":
    sys.exit(main())
