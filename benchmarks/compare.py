"""Compare the newest perf baseline against the oldest and flag regressions.

Usage::

    python benchmarks/compare.py [--dir DIR] [--baseline PATH] [--candidate PATH]
    python benchmarks/compare.py --max-time-regression 0.25 --max-mem-regression 0.5

``benchmarks/run_all.py`` archives each run as ``BENCH_<n>.json``; this
script diffs the newest file (the candidate) against the lowest-numbered
one (the baseline) benchmark by benchmark and exits nonzero when any
shared benchmark regresses by more than 25% wall time or 50% allocation
peak.  Benchmarks present on only one side are reported but never fail
the comparison, so adding a new benchmark doesn't break the gate.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Default regression thresholds (fractional increase over baseline).
MAX_TIME_REGRESSION = 0.25
MAX_MEM_REGRESSION = 0.50

_BENCH_RE = re.compile(r"^BENCH_(\d+)\.json$")


def bench_files(directory) -> list[Path]:
    """``BENCH_<n>.json`` files in ``directory``, sorted by ``n`` ascending."""
    found = []
    for entry in Path(directory).iterdir():
        match = _BENCH_RE.match(entry.name)
        if match:
            found.append((int(match.group(1)), entry))
    return [path for _, path in sorted(found)]


def load_benchmarks(path) -> dict:
    """The ``benchmarks`` mapping of one archived run."""
    payload = json.loads(Path(path).read_text())
    benchmarks = payload.get("benchmarks")
    if not isinstance(benchmarks, dict):
        raise ValueError(f"{path} has no 'benchmarks' mapping")
    return benchmarks


def compare(
    baseline: dict,
    candidate: dict,
    *,
    max_time_regression: float = MAX_TIME_REGRESSION,
    max_mem_regression: float = MAX_MEM_REGRESSION,
) -> tuple[list[str], list[str]]:
    """Diff two benchmark mappings; returns ``(report lines, failures)``."""
    lines = []
    failures = []
    shared = sorted(set(baseline) & set(candidate))
    for name in shared:
        base, cand = baseline[name], candidate[name]
        time_ratio = cand["seconds"] / base["seconds"] if base["seconds"] > 0 else 1.0
        mem_ratio = (
            cand["peak_bytes"] / base["peak_bytes"] if base["peak_bytes"] > 0 else 1.0
        )
        problems = []
        if time_ratio > 1.0 + max_time_regression:
            problems.append(f"TIME REGRESSION (> +{max_time_regression:.0%})")
            failures.append(f"{name}: time {time_ratio:.2f}x baseline")
        if mem_ratio > 1.0 + max_mem_regression:
            problems.append(f"MEM REGRESSION (> +{max_mem_regression:.0%})")
            failures.append(f"{name}: peak memory {mem_ratio:.2f}x baseline")
        verdict = " + ".join(problems) if problems else "ok"
        lines.append(
            f"{name:28s} time {time_ratio:6.2f}x   mem {mem_ratio:6.2f}x   {verdict}"
        )
    for name in sorted(set(candidate) - set(baseline)):
        lines.append(f"{name:28s} (new benchmark; no baseline)")
    for name in sorted(set(baseline) - set(candidate)):
        lines.append(f"{name:28s} (missing from candidate)")
    if not shared:
        lines.append("(no shared benchmarks to compare)")
    return lines, failures


def compare_files(
    baseline_path,
    candidate_path,
    *,
    max_time_regression: float = MAX_TIME_REGRESSION,
    max_mem_regression: float = MAX_MEM_REGRESSION,
) -> tuple[str, bool]:
    """Compare two archive files; returns ``(report text, ok)``."""
    lines, failures = compare(
        load_benchmarks(baseline_path),
        load_benchmarks(candidate_path),
        max_time_regression=max_time_regression,
        max_mem_regression=max_mem_regression,
    )
    header = [
        f"baseline:  {baseline_path}",
        f"candidate: {candidate_path}",
        "",
    ]
    footer = (
        ["", "PASS: no perf regressions"]
        if not failures
        else ["", "FAIL:"] + [f"  - {failure}" for failure in failures]
    )
    return "\n".join(header + lines + footer), not failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--dir", default=str(REPO_ROOT), metavar="DIR",
        help="directory holding BENCH_<n>.json archives (default: repo root)",
    )
    parser.add_argument("--baseline", default=None, help="explicit baseline file")
    parser.add_argument("--candidate", default=None, help="explicit candidate file")
    parser.add_argument(
        "--max-time-regression", type=float, default=MAX_TIME_REGRESSION,
        help="allowed fractional wall-time increase (default: 0.25)",
    )
    parser.add_argument(
        "--max-mem-regression", type=float, default=MAX_MEM_REGRESSION,
        help="allowed fractional peak-memory increase (default: 0.5)",
    )
    args = parser.parse_args(argv)

    baseline, candidate = args.baseline, args.candidate
    if baseline is None or candidate is None:
        files = bench_files(args.dir)
        if len(files) < 2:
            print(
                f"need at least two BENCH_<n>.json files in {args.dir} "
                f"(found {len(files)}); run benchmarks/run_all.py twice"
            )
            return 0
        baseline = baseline or files[0]
        candidate = candidate or files[-1]

    report, ok = compare_files(
        baseline,
        candidate,
        max_time_regression=args.max_time_regression,
        max_mem_regression=args.max_mem_regression,
    )
    print(report)
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
