"""Benchmark regenerating Figure 5: LR training curves under DP vs GeoDP."""

import numpy as np

from repro.experiments import format_fig5, run_fig5
from repro.experiments.fig5 import _tail_mean


def test_fig5(benchmark, bench_scale, report):
    result = benchmark.pedantic(
        run_fig5, args=(bench_scale,), kwargs={"rng": 0}, rounds=1, iterations=1
    )
    report("fig5", format_fig5(result))

    # Panel (a): noise-free SGD is the best curve; GeoDP at the larger batch
    # stays within tolerance of the best DP curve (at sigma = 1 both schemes
    # are clipping-limited, as in the paper's panel).
    a = {name: _tail_mean(curve) for name, curve in result["panels"]["a"].items()}
    clean = a.pop("no-noise")
    assert clean <= min(a.values()) + 0.05
    geo_large = min(v for k, v in a.items() if k.startswith("geodp"))
    dp_best = min(v for k, v in a.items() if k.startswith("dp"))
    assert geo_large <= dp_best + 0.15

    # Panel (b): at sigma = 10 the tighter bounding factor strictly helps
    # GeoDP (the paper's beta = 1 -> 0.5 move).
    b = {name: _tail_mean(curve) for name, curve in result["panels"]["b"].items()}
    beta_loose, beta_tight = result["betas_b"]
    assert b[f"geodp beta={beta_tight}"] <= b[f"geodp beta={beta_loose}"] + 1e-9

    # Panel (c): shrinking sigma cannot push DP past its clipped-SGD limit,
    # while GeoDP at sigma = 0.01 reaches (near) that same limit.
    c = {name: _tail_mean(curve) for name, curve in result["panels"]["c"].items()}
    assert c["dp sigma=0.01"] >= c["clipped-sgd"] - 0.05
    assert c["geodp sigma=0.01"] <= c["clipped-sgd"] + 0.15
    assert c["geodp sigma=0.01"] <= c["geodp sigma=0.1"] + 0.05

    # All curves stay finite.
    for curves in result["panels"].values():
        for curve in curves.values():
            assert np.isfinite(curve).all()
