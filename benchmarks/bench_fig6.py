"""Benchmark regenerating Figure 6: perturbation runtime grid."""

from repro.experiments import format_fig6, run_fig6


def test_fig6(benchmark, bench_scale, report):
    result = benchmark.pedantic(
        run_fig6, args=(bench_scale,), kwargs={"rng": 0}, rounds=1, iterations=1
    )
    report("fig6", format_fig6(result))

    rows = result["rows"]
    # GeoDP pays a conversion overhead: it should essentially never be
    # meaningfully faster than DP at the same geometry.
    for r in rows:
        assert r["geodp_seconds"] > 0.5 * r["dp_seconds"]

    # Dimensionality increases runtime for both schemes (paper's dominant factor).
    dims = sorted({r["dim"] for r in rows})
    if len(dims) > 1:
        def mean_time(dim, key):
            sel = [r[key] for r in rows if r["dim"] == dim]
            return sum(sel) / len(sel)

        assert mean_time(dims[-1], "geodp_seconds") > mean_time(dims[0], "geodp_seconds")
        assert mean_time(dims[-1], "dp_seconds") > mean_time(dims[0], "dp_seconds")
