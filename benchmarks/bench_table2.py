"""Benchmark regenerating Table II: CNN on MNIST-like accuracy grid."""

from repro.experiments import format_table2, run_table2


def _acc(result, label_prefix, sigma):
    for row in result["rows"]:
        if row["label"].startswith(label_prefix):
            return row["accuracies"][sigma]
    raise KeyError(label_prefix)


def test_table2(benchmark, bench_scale, report):
    result = benchmark.pedantic(
        run_table2, args=(bench_scale,), kwargs={"rng": 0}, rounds=1, iterations=1
    )
    report("table2", format_table2(result))

    sigma_low = min(result["sigmas"])  # the friendlier noise level
    rows = {r["label"]: r["accuracies"] for r in result["rows"]}

    # Shape 1: the noise-free reference upper-bounds (within noise) everything.
    best_private = max(acc[sigma_low] for acc in rows.values())
    assert result["noise_free"] >= best_private - 0.15

    # Shape 2: GeoDP with the good beta at the large batch is at least
    # competitive with plain DP at the same batch (the headline of Table II).
    geo_labels = [l for l in rows if l.startswith("GeoDP (B=") and "beta=0.1" in l]
    dp_labels = [l for l in rows if l.startswith("DP (B=")]
    geo_best = max(rows[l][sigma_low] for l in geo_labels)
    dp_best = max(rows[l][sigma_low] for l in dp_labels)
    assert geo_best >= dp_best - 0.08

    # Shape 3: the bad beta hurts GeoDP relative to the good beta
    # (Table II's 96.47% -> 60.31% collapse, directionally).
    bad_label = next(l for l in rows if "beta=0.5" in l)
    good_same_batch = next(
        l for l in geo_labels if l.split(",")[0] == bad_label.split(",")[0]
    )
    assert rows[bad_label][sigma_low] <= rows[good_same_batch][sigma_low] + 0.05

    # Shape 4: every accuracy is a valid probability and the grid is complete.
    assert len(result["rows"]) == 15
    for acc in rows.values():
        for sigma in result["sigmas"]:
            assert 0.0 <= acc[sigma] <= 1.0
