"""Ghost clipping vs materialized per-sample gradients: speed and memory.

The headline claim of the ghost fast path is O(P) gradient memory instead
of O(B*P) with no change to the DP release.  ``test_ghost_wins`` measures
both sides directly (median wall time + tracemalloc peak) and asserts the
ghost path is at least 1.3x faster *or* allocates at least 2x less peak
memory; ``test_ghost_sum_matches`` pins the numerical agreement the
speedup is not allowed to cost.
"""

import time
import tracemalloc

import numpy as np
import pytest

from repro.data import make_mnist_like
from repro.models import build_cnn
from repro.privacy.clipping import (
    AdaptiveQuantileClipping,
    AutoSClipping,
    FlatClipping,
    PsacClipping,
)

BATCH = 64
NUM_CLASSES = 100  # a wide head puts the model in ghost's regime: P >> activations


@pytest.fixture(scope="module")
def setup():
    data = make_mnist_like(BATCH, rng=0, size=16)
    model = build_cnn((1, 16, 16), num_classes=NUM_CLASSES, channels=(16, 32), rng=0)
    y = np.random.default_rng(1).integers(0, NUM_CLASSES, size=BATCH)
    return model, data.x, y


def materialized_clipped_sum(model, x, y, clipping):
    _, grads = model.loss_and_per_sample_gradients(x, y)
    return clipping.clip(grads).sum(axis=0)


def ghost_clipped_sum(model, x, y, clipping):
    _, summed, _ = model.loss_and_clipped_grad_sum(x, y, clipping)
    return summed


def measure(fn, repeats=5):
    """(median seconds, tracemalloc peak bytes) for one callable."""
    fn()  # warm caches outside the timed region
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    tracemalloc.start()
    fn()
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return float(np.median(times)), peak


def test_ghost_wins(setup, report):
    model, x, y = setup
    mat_time, mat_peak = measure(
        lambda: materialized_clipped_sum(model, x, y, FlatClipping(1.0))
    )
    ghost_time, ghost_peak = measure(
        lambda: ghost_clipped_sum(model, x, y, FlatClipping(1.0))
    )
    speedup = mat_time / ghost_time
    mem_ratio = mat_peak / ghost_peak
    report(
        "bench_ghost",
        "Ghost clipping vs materialized per-sample gradients "
        f"(CNN, B={BATCH}, P={model.num_params})\n"
        f"materialized: {mat_time * 1e3:8.2f} ms  peak {mat_peak / 2**20:7.2f} MiB\n"
        f"ghost:        {ghost_time * 1e3:8.2f} ms  peak {ghost_peak / 2**20:7.2f} MiB\n"
        f"speedup {speedup:.2f}x, peak-memory ratio {mem_ratio:.2f}x",
    )
    assert speedup >= 1.3 or mem_ratio >= 2.0, (
        f"ghost path shows no win: {speedup:.2f}x speed, {mem_ratio:.2f}x memory"
    )


@pytest.mark.parametrize(
    "make",
    [
        lambda: FlatClipping(1.0),
        lambda: AutoSClipping(1.0),
        lambda: PsacClipping(1.0),
        lambda: AdaptiveQuantileClipping(1.0),
    ],
    ids=["flat", "autos", "psac", "adaptive"],
)
def test_ghost_sum_matches(setup, make):
    model, x, y = setup
    ref = materialized_clipped_sum(model, x, y, make())
    got = ghost_clipped_sum(model, x, y, make())
    rel = np.abs(got - ref).max() / (np.abs(ref).max() + 1e-30)
    assert rel <= 1e-8, f"ghost sum deviates by {rel:.2e} relative"


def test_materialized_step(benchmark, setup):
    model, x, y = setup
    benchmark(materialized_clipped_sum, model, x, y, FlatClipping(1.0))


def test_ghost_step(benchmark, setup):
    model, x, y = setup
    benchmark(ghost_clipped_sum, model, x, y, FlatClipping(1.0))
