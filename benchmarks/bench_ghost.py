"""Ghost clipping vs materialized per-sample gradients: speed and memory.

The headline claim of the ghost fast path is O(P) gradient memory instead
of O(B*P) with no change to the DP release.  ``test_ghost_wins`` measures
both sides directly (median wall time + tracemalloc peak) and asserts the
ghost path keeps its 2x peak-memory win *without* giving up speed (at
least 1.0x the materialized path — the cached-upstream second backward
plus the backend accumulate kernels removed ghost's old speed penalty);
``test_ghost_sum_matches`` pins the numerical agreement the speedup is
not allowed to cost.  ``test_geodp_step_competitive`` checks the other
acceptance bound of the backend layer: a fused GeoDP perturbation costs
at most 1.5x a classic DP-SGD perturbation under a compiled backend.
"""

import gc
import time
import tracemalloc

import numpy as np
import pytest

from repro.backend import get_backend, use_backend
from repro.core import perturb_dp_batch, perturb_geodp_batch
from repro.data import make_mnist_like
from repro.models import build_cnn
from repro.privacy.clipping import (
    AdaptiveQuantileClipping,
    AutoSClipping,
    FlatClipping,
    PsacClipping,
)

BATCH = 64
NUM_CLASSES = 100  # a wide head puts the model in ghost's regime: P >> activations


@pytest.fixture(scope="module")
def setup():
    data = make_mnist_like(BATCH, rng=0, size=16)
    model = build_cnn((1, 16, 16), num_classes=NUM_CLASSES, channels=(16, 32), rng=0)
    y = np.random.default_rng(1).integers(0, NUM_CLASSES, size=BATCH)
    return model, data.x, y


def materialized_clipped_sum(model, x, y, clipping):
    _, grads = model.loss_and_per_sample_gradients(x, y)
    return clipping.clip(grads).sum(axis=0)


def ghost_clipped_sum(model, x, y, clipping):
    _, summed, _ = model.loss_and_clipped_grad_sum(x, y, clipping)
    return summed


def _best_times(fn_a, fn_b, repeats=20):
    """Minimum wall seconds for two callables, measured interleaved.

    Alternating A/B within each repetition keeps slow drift in machine
    state (frequency scaling, cache pressure from other processes) from
    landing on one side only, which matters when the two minima feed a
    ratio bound.
    """
    fn_a()
    fn_b()
    times_a, times_b = [], []
    for _ in range(repeats):
        start = time.perf_counter()
        fn_a()
        times_a.append(time.perf_counter() - start)
        start = time.perf_counter()
        fn_b()
        times_b.append(time.perf_counter() - start)
    return min(times_a), min(times_b)


def measure(fn, repeats=5):
    """(median seconds, tracemalloc peak bytes) for one callable."""
    fn()  # warm caches outside the timed region
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    tracemalloc.start()
    fn()
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return float(np.median(times)), peak


def test_ghost_wins(setup, report):
    model, x, y = setup
    # The speed bound is a property of the accelerated ghost kernels, so
    # measure under the best available backend ("auto" resolves to fused
    # at worst, which is always available).  The materialized path does
    # not dispatch to backend kernels and is unaffected by the selection.
    with use_backend("auto"):
        backend = get_backend().name
        mat_time, mat_peak = measure(
            lambda: materialized_clipped_sum(model, x, y, FlatClipping(1.0))
        )
        ghost_time, ghost_peak = measure(
            lambda: ghost_clipped_sum(model, x, y, FlatClipping(1.0))
        )
    speedup = mat_time / ghost_time
    mem_ratio = mat_peak / ghost_peak
    report(
        "bench_ghost",
        "Ghost clipping vs materialized per-sample gradients "
        f"(CNN, B={BATCH}, P={model.num_params}, backend={backend!r})\n"
        f"materialized: {mat_time * 1e3:8.2f} ms  peak {mat_peak / 2**20:7.2f} MiB\n"
        f"ghost:        {ghost_time * 1e3:8.2f} ms  peak {ghost_peak / 2**20:7.2f} MiB\n"
        f"speedup {speedup:.2f}x, peak-memory ratio {mem_ratio:.2f}x",
    )
    assert speedup >= 1.0 and mem_ratio >= 2.0, (
        f"ghost must match materialize speed and halve peak memory: "
        f"{speedup:.2f}x speed, {mem_ratio:.2f}x memory"
    )


def test_geodp_step_competitive(report):
    """Fused GeoDP perturbation <= 1.5x DP-SGD perturbation (compiled backend).

    The spherical round trip is GeoDP's only extra cost per release (the
    noise draw counts are identical: d values per row either way), so with
    the round trip fused into one compiled pass the premium over classic
    DP-SGD must be bounded.  Skipped when only pure-numpy backends are
    available — the bound is a property of the compiled kernels.
    """
    with use_backend("auto"):
        backend = get_backend()
        if backend.name not in ("numba", "cext"):
            pytest.skip(f"no compiled backend available (best: {backend.name!r})")
        grads = np.random.default_rng(0).normal(size=(64, 5000)) * 0.01
        noise_rng = np.random.default_rng(2)
        # Release garbage left behind by earlier benchmarks in the same
        # process — allocator churn from the ghost/materialize runs
        # otherwise inflates the GeoDP side by ~10%.
        gc.collect()
        # Interleaved best-of-N wall time: both sides are deterministic
        # CPU work, so the minimum is the noise-robust estimator for a
        # ratio bound.
        dp_time, geodp_time = _best_times(
            lambda: perturb_dp_batch(grads, 0.1, 1.0, 1024, noise_rng),
            lambda: perturb_geodp_batch(grads, 0.1, 1.0, 1024, 0.1, noise_rng),
        )
    ratio = geodp_time / dp_time
    report(
        "bench_ghost_geodp_step",
        f"GeoDP vs DP-SGD perturbation under backend {backend.name!r} "
        f"(m=64, d=5000)\n"
        f"perturb_dp_batch:    {dp_time * 1e3:8.2f} ms\n"
        f"perturb_geodp_batch: {geodp_time * 1e3:8.2f} ms\n"
        f"ratio {ratio:.2f}x (bound: 1.5x)",
    )
    assert ratio <= 1.5, (
        f"fused GeoDP step costs {ratio:.2f}x a DP-SGD step (bound 1.5x)"
    )


@pytest.mark.parametrize(
    "make",
    [
        lambda: FlatClipping(1.0),
        lambda: AutoSClipping(1.0),
        lambda: PsacClipping(1.0),
        lambda: AdaptiveQuantileClipping(1.0),
    ],
    ids=["flat", "autos", "psac", "adaptive"],
)
def test_ghost_sum_matches(setup, make):
    model, x, y = setup
    ref = materialized_clipped_sum(model, x, y, make())
    got = ghost_clipped_sum(model, x, y, make())
    rel = np.abs(got - ref).max() / (np.abs(ref).max() + 1e-30)
    assert rel <= 1e-8, f"ghost sum deviates by {rel:.2e} relative"


def test_materialized_step(benchmark, setup):
    model, x, y = setup
    benchmark(materialized_clipped_sum, model, x, y, FlatClipping(1.0))


def test_ghost_step(benchmark, setup):
    model, x, y = setup
    benchmark(ghost_clipped_sum, model, x, y, FlatClipping(1.0))
