"""Micro-benchmarks of the library's hot paths.

These are proper repeated-timing benchmarks (not one-shot experiment
drivers): spherical conversion, the two perturbation primitives, per-sample
gradient computation, and the RDP accountant.
"""

import numpy as np
import pytest

from repro.core import perturb_dp_batch, perturb_geodp_batch
from repro.data import make_mnist_like
from repro.geometry import to_cartesian_batch, to_spherical_batch
from repro.models import build_cnn
from repro.privacy import RdpAccountant


@pytest.fixture(scope="module")
def grads():
    return np.random.default_rng(0).normal(size=(64, 5000)) * 0.01


def test_spherical_conversion(benchmark, grads):
    benchmark(to_spherical_batch, grads)


def test_cartesian_conversion(benchmark, grads):
    r, theta = to_spherical_batch(grads)
    benchmark(to_cartesian_batch, r, theta)


def test_round_trip_preserves(benchmark, grads):
    def round_trip():
        r, theta = to_spherical_batch(grads)
        return to_cartesian_batch(r, theta)

    out = benchmark(round_trip)
    assert np.allclose(out, grads, atol=1e-9)


def test_perturb_dp(benchmark, grads):
    rng = np.random.default_rng(1)
    benchmark(perturb_dp_batch, grads, 0.1, 1.0, 1024, rng)


def test_perturb_geodp(benchmark, grads):
    rng = np.random.default_rng(1)
    benchmark(perturb_geodp_batch, grads, 0.1, 1.0, 1024, 0.1, rng)


def test_per_sample_gradients_cnn(benchmark):
    data = make_mnist_like(32, rng=0, size=16)
    model = build_cnn((1, 16, 16), channels=(4, 8), rng=0)
    benchmark(model.loss_and_per_sample_gradients, data.x, data.y)


def test_rdp_accounting_1000_steps(benchmark):
    def account():
        acc = RdpAccountant()
        acc.step(1.0, 0.01, num_steps=1000)
        return acc.get_epsilon(1e-5)

    eps = benchmark(account)
    assert eps > 0
