"""Checkpointing overhead benchmarks.

Periodic snapshots are only viable if they cost almost nothing amortised
over training: the headline check trains the paper's MNIST-like
logistic-regression workload for 200 DP-SGD iterations with and without
``checkpoint_every=50`` and asserts the checkpointed run is less than 5%
slower.  Micro-benchmarks cover the snapshot save/load primitives.

Measurement notes: same interleaved-chunk methodology as
``bench_telemetry.py`` — wall-clock noise on shared machines is one-sided,
so the two variants alternate in chunks and the overhead claim is checked
against the smaller of two robust estimators (ratio of per-variant chunk
minima, median of adjacent-pair chunk ratios).  Each chunk is one
``train()`` call of ``CHUNK`` iterations with ``resume=False`` (iteration
numbering restarts per call, so resuming would skip the work being timed);
``CHUNK == checkpoint_every`` so every checkpointed chunk writes exactly
one snapshot.
"""

import statistics
import time

import numpy as np
import pytest

from repro.checkpoint import (
    capture_training_state,
    load_snapshot,
    restore_training_state,
    save_snapshot,
)
from repro.core import DpSgdOptimizer, Trainer, TrainingHistory
from repro.data import make_mnist_like, train_test_split
from repro.models import build_logistic_regression

ITERATIONS = 200
BATCH = 512  # paper-style large lots; per-sample work dominates each step
MAX_OVERHEAD = 0.05
CHECKPOINT_EVERY = 50
CHUNK = CHECKPOINT_EVERY  # one snapshot per checkpointed chunk


@pytest.fixture(scope="module")
def workload():
    data = make_mnist_like(4000, rng=0, size=12)
    train, _ = train_test_split(data, rng=0)
    return train


def _make_trainer(train):
    model = build_logistic_regression((1, 12, 12), rng=0)
    optimizer = DpSgdOptimizer(1.0, 0.1, 1.0, rng=2)
    return Trainer(model, optimizer, train, batch_size=BATCH, rng=1)


def _timed(fn):
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def test_checkpoint_overhead_under_5_percent(workload, report, tmp_path):
    bare = _make_trainer(workload)
    checkpointed = _make_trainer(workload)
    bare.train(CHUNK)
    checkpointed.train(
        CHUNK, checkpoint_every=CHECKPOINT_EVERY, checkpoint_dir=tmp_path,
        resume=False,
    )  # warm caches (and the snapshot write path) before timing

    bare_chunks, ckpt_chunks = [], []
    for _ in range(ITERATIONS // CHUNK):
        bare_chunks.append(_timed(lambda: bare.train(CHUNK)))
        ckpt_chunks.append(
            _timed(
                lambda: checkpointed.train(
                    CHUNK,
                    checkpoint_every=CHECKPOINT_EVERY,
                    checkpoint_dir=tmp_path,
                    resume=False,
                )
            )
        )

    by_minima = min(ckpt_chunks) / min(bare_chunks) - 1.0
    by_median = (
        statistics.median(c / b for c, b in zip(ckpt_chunks, bare_chunks)) - 1.0
    )
    overhead = min(by_minima, by_median)
    report(
        "bench_checkpoint",
        "\n".join(
            [
                f"checkpoint overhead, {ITERATIONS}-iteration DP-SGD LR run "
                f"(batch {BATCH}, snapshot every {CHECKPOINT_EVERY} iterations, "
                f"interleaved {CHUNK}-iteration chunks):",
                f"  bare chunk min:         {min(bare_chunks) * 1e3:.1f} ms",
                f"  checkpointed chunk min: {min(ckpt_chunks) * 1e3:.1f} ms",
                f"  overhead (chunk minima):  {by_minima:+.2%}",
                f"  overhead (median ratio):  {by_median:+.2%}",
                f"  overhead:                 {overhead:+.2%} "
                f"(budget {MAX_OVERHEAD:.0%})",
            ]
        ),
    )
    assert overhead < MAX_OVERHEAD


def _trained_state(workload, iterations=5):
    trainer = _make_trainer(workload)
    history = trainer.train(iterations)
    return trainer, capture_training_state(trainer, history, iterations)


def test_capture_training_state(benchmark, workload):
    trainer = _make_trainer(workload)
    history = trainer.train(5)
    benchmark(capture_training_state, trainer, history, 5)


def test_save_snapshot(benchmark, workload, tmp_path):
    _, state = _trained_state(workload)
    benchmark(save_snapshot, tmp_path / "snap.npz", state)


def test_load_snapshot(benchmark, workload, tmp_path):
    _, state = _trained_state(workload)
    path = save_snapshot(tmp_path / "snap.npz", state)
    loaded = benchmark(load_snapshot, path)
    assert np.array_equal(loaded["model_params"], state["model_params"])


def test_restore_training_state(benchmark, workload, tmp_path):
    _, state = _trained_state(workload)
    state = load_snapshot(save_snapshot(tmp_path / "snap.npz", state))
    fresh = _make_trainer(workload)

    history, iteration = benchmark(restore_training_state, fresh, state)
    assert iteration == 5
    assert isinstance(history, TrainingHistory)
