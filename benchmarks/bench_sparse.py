"""Sparse embedding-scale DP training: speed scaling and exactness gates.

The sparse pipeline's claim is that step cost scales with the rows a lot
*touches*, not the table size: per-sample embedding gradients stay as
compacted ``(sample, row, value)`` triples, touched rows are clipped,
noised and updated in place, and untouched rows' DP cover noise is
deferred.  ``test_sparse_beats_dense`` pins the headline number — at a 1%
touch rate on a 100k-row table the sparse step must be at least 5x faster
than the dense ghost-path step (same model, same lot stream, same DP
release).  ``test_sparse_step_independent_of_vocab`` pins the asymptotic
shape: growing the table 5x at a fixed touched-row count must not grow
the sparse step proportionally.

The speed is not allowed to cost correctness:
``test_ledger_epsilon_parity`` replays dense and sparse release ledgers
to the same epsilon (1e-9), and ``test_lazy_matches_eager`` checks that a
lazy run's finalized parameters match the eager (flush-every-step)
reference to 1e-8 in ``"replay"`` noise mode.

``sparse_section()`` packages the dense/sparse step timings for
``run_all.py``'s ``BENCH_<n>.json`` archives, where
``compare.gate_sparse`` enforces the sparse-beats-dense invariant on
every archived run at touch rates up to 10%.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.dpsgd import DpSgdOptimizer
from repro.core.geodp import GeoDpSgdOptimizer
from repro.core.geodp_adam import GeoDpAdamOptimizer
from repro.core.trainer import Trainer
from repro.data import make_click_log, train_test_split
from repro.models.text import build_text_classifier
from repro.privacy.accountant import RdpAccountant
from repro.privacy.ledger import ReleaseLedger, verify_ledger
from repro.sparse import SparseTrainer

pytestmark = pytest.mark.sparse

VOCAB = 100_000
DIM = 16
TOUCH_RATE = 0.01
BATCH = 50
MIN_SPEEDUP = 5.0


def _data(vocab: int, touch_rate: float, *, samples: int = 400, seed: int = 1):
    data = make_click_log(
        samples,
        rng=np.random.default_rng(seed),
        vocab_size=vocab,
        seq_length=20,
        touch_rate=touch_rate,
        padding_idx=0,
    )
    return train_test_split(data, rng=np.random.default_rng(3))


def _trainer(sparse: bool, train, vocab: int, *, scheme: str = "dp", ledger=None,
             lazy: bool = True, noise_mode: str = "aggregate", dim: int = DIM):
    model = build_text_classifier(
        vocab, 2, embedding_dim=dim, padding_idx=0, rng=np.random.default_rng(0)
    )
    kwargs = dict(
        learning_rate=0.5,
        clipping=1.0,
        noise_multiplier=0.7,
        rng=np.random.default_rng(2),
        grad_mode="sparse" if sparse else "ghost",
    )
    if ledger is not None:
        kwargs.update(
            ledger=ledger, accountant=RdpAccountant(), sample_rate=BATCH / len(train)
        )
    if scheme == "geodp":
        opt = GeoDpSgdOptimizer(beta=0.02, **kwargs)
    elif scheme == "geodp_adam":
        kwargs.pop("grad_mode")
        opt = GeoDpAdamOptimizer(
            beta=0.02, grad_mode="sparse" if sparse else "ghost", **kwargs
        )
    else:
        opt = DpSgdOptimizer(**kwargs)
    if sparse:
        trainer = SparseTrainer(
            model, opt, train, batch_size=BATCH, rng=np.random.default_rng(4),
            lazy=lazy, noise_mode=noise_mode, noise_seed=7,
        )
    else:
        trainer = Trainer(
            model, opt, train, batch_size=BATCH, rng=np.random.default_rng(4)
        )
    return trainer, opt


def _step_seconds(trainer, steps: int = 10) -> float:
    trainer.train(2)  # warm-up
    times = []
    for _ in range(steps):
        start = time.perf_counter()
        trainer.train(1)
        times.append(time.perf_counter() - start)
    return float(np.median(times))


def sparse_section(
    *, vocab: int = VOCAB, dim: int = DIM, touch_rate: float = TOUCH_RATE,
    steps: int = 10,
) -> dict:
    """Dense vs sparse step timings for ``BENCH_<n>.json`` archives."""
    train, _ = _data(vocab, touch_rate)
    dense, _ = _trainer(False, train, vocab, dim=dim)
    sparse, _ = _trainer(True, train, vocab, dim=dim)
    dense_seconds = _step_seconds(dense, steps)
    sparse_seconds = _step_seconds(sparse, steps)
    return {
        "vocab_size": vocab,
        "dim": dim,
        "touch_rate": touch_rate,
        "benchmarks": {
            "dense_step": {"seconds": dense_seconds},
            "sparse_step": {"seconds": sparse_seconds},
        },
    }


def test_sparse_beats_dense(report):
    """At a 1% touch rate on 100k rows the sparse step wins >= 5x."""
    section = sparse_section()
    dense = section["benchmarks"]["dense_step"]["seconds"]
    sparse = section["benchmarks"]["sparse_step"]["seconds"]
    speedup = dense / sparse
    report(
        "bench_sparse",
        f"sparse vs dense DP step (vocab={VOCAB}, dim={DIM}, touch={TOUCH_RATE:.0%})\n"
        f"dense  {dense * 1e3:8.2f} ms/step\n"
        f"sparse {sparse * 1e3:8.2f} ms/step\n"
        f"speedup {speedup:.1f}x (floor {MIN_SPEEDUP:.0f}x)",
    )
    assert speedup >= MIN_SPEEDUP, (
        f"sparse step only {speedup:.1f}x faster than dense "
        f"(required >= {MIN_SPEEDUP}x)"
    )


def test_sparse_step_independent_of_vocab():
    """5x the table at the same touched-row count: step cost must not follow.

    The *absolute* support (touchable rows) is pinned while the table
    grows from 20k to 100k rows, so a touched-rows-scaling step stays
    flat; anything proportional to ``vocab`` (dense noise, full-table
    scatter) would grow ~5x.  Threshold 3x leaves room for timing noise.
    """
    small_vocab, big_vocab = 20_000, 100_000
    support = 200  # absolute touchable rows, same for both tables
    times = {}
    for vocab in (small_vocab, big_vocab):
        train, _ = _data(vocab, support / vocab)
        trainer, _ = _trainer(True, train, vocab)
        times[vocab] = _step_seconds(trainer)
    assert times[big_vocab] <= 3.0 * times[small_vocab], (
        f"sparse step grew {times[big_vocab] / times[small_vocab]:.1f}x when "
        f"the table grew 5x at fixed touched rows"
    )


@pytest.mark.parametrize("scheme", ["dp", "geodp", "geodp_adam"])
def test_ledger_epsilon_parity(scheme):
    """Sparse and dense runs replay their ledgers to the same epsilon."""
    vocab = 2_000
    train, _ = _data(vocab, 0.05, samples=120)
    epsilons = {}
    for sparse in (False, True):
        ledger = ReleaseLedger()
        trainer, opt = _trainer(sparse, train, vocab, scheme=scheme, ledger=ledger)
        trainer.train(6)
        if sparse:
            trainer.finalize()
        verdict = verify_ledger(ledger, opt.accountant)
        assert verdict.ok
        epsilons[sparse] = verdict.replayed_epsilon
    assert abs(epsilons[False] - epsilons[True]) <= 1e-9


@pytest.mark.parametrize("scheme", ["dp", "geodp", "geodp_adam"])
def test_lazy_matches_eager(scheme):
    """Lazy deferral with replay noise finalizes to the eager parameters."""
    vocab = 2_000
    train, _ = _data(vocab, 0.05, samples=120)
    params = {}
    for lazy in (False, True):
        trainer, _ = _trainer(
            True, train, vocab, scheme=scheme, lazy=lazy, noise_mode="replay"
        )
        trainer.train(8)
        trainer.finalize()
        params[lazy] = trainer.model.get_params()
    assert np.max(np.abs(params[False] - params[True])) <= 1e-8
