"""Benchmark regenerating Table III: ResNet on CIFAR-like accuracy grid."""

from repro.experiments import format_table3, run_table3


def test_table3(benchmark, bench_scale, report):
    result = benchmark.pedantic(
        run_table3, args=(bench_scale,), kwargs={"rng": 0}, rounds=1, iterations=1
    )
    report("table3", format_table3(result))

    rows = {r["label"]: r["accuracies"] for r in result["rows"]}
    sigma_low = min(result["sigmas"])

    # Complete 15-row grid with valid accuracies.
    assert len(result["rows"]) == 15
    for acc in rows.values():
        for sigma in result["sigmas"]:
            assert 0.0 <= acc[sigma] <= 1.0

    # GeoDP (good beta, large batch) is competitive with DP at the small
    # multipliers of Table III.
    geo_labels = [l for l in rows if l.startswith("GeoDP (B=") and "beta=0.1" in l]
    dp_labels = [l for l in rows if l.startswith("DP (B=")]
    geo_best = max(rows[l][sigma_low] for l in geo_labels)
    dp_best = max(rows[l][sigma_low] for l in dp_labels)
    assert geo_best >= dp_best - 0.1

    # Noise-free reference bounds the private runs (within tolerance).
    assert result["noise_free"] >= geo_best - 0.15
