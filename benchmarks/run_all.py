"""Run the library's core micro-benchmarks and archive a perf baseline.

Usage::

    PYTHONPATH=src python benchmarks/run_all.py [--repeats N] [--out DIR]

Each benchmark is measured for wall time (median of ``--repeats`` runs
after one warm-up) and allocation peak (``tracemalloc``), and the results
are written to ``BENCH_<n>.json`` in the repo root — ``n`` is the first
unused integer, so successive runs accumulate a comparable history.  When
a history exists, the new run is diffed against the oldest archive through
``benchmarks/compare.py`` and regressions (>25% time, >50% peak memory)
fail the run with a nonzero exit::

    {
      "benchmarks": {
        "ghost_clipped_sum": {"seconds": 0.0123, "peak_bytes": 1234567},
        ...
      },
      "backends": {
        "reference": { ... same shape as "benchmarks" ... },
        "fused": { ... },
        "cext": { ... }
      }
    }

The top-level ``benchmarks`` mapping is always the *reference* backend
(back-compatible with pre-backend archives); ``backends`` holds one
section per available :mod:`repro.backend` so each backend is gated
against its own history, and accelerated backends are additionally gated
against the reference section of the same run (see ``compare.py``).  A
``sparse`` section (``bench_sparse.sparse_section``) times the sparse
embedding-scale training step against the dense ghost step; the sparse
step must beat dense at touch rates up to 10% (``compare.gate_sparse``).
A ``service`` section (``bench_service.service_section``) measures
budget-server admission throughput and p95 latency over a mixed
two-tenant stream; ``compare.gate_service`` enforces >= 200 decisions/s
and a 50ms p95 ceiling.  A ``live`` section (``bench_live.live_section``) measures the live
observability layer (registry mirroring + per-step alert evaluation)
against a recorder-only run plus scrape/evaluate p95 latency;
``compare.gate_live`` enforces a 5% overhead ceiling.  A ``threads`` section
(``bench_threads.threads_section``) checks byte-identical outputs across
thread counts, headline-kernel speedup at min(4, cpu_count) threads, and
the steady-state (workspace-arena-warm) allocation peak of one GeoDP
release; ``compare.gate_threads`` enforces determinism unconditionally,
the 1.8x speedup floor only on machines with >= 4 CPUs, and the
allocation ceiling always.  The archive header records ``cpu_count``,
the ``REPRO_THREADS`` setting and backend availability so regression
comparisons carry their machine context.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
import tracemalloc
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))


def build_benchmarks() -> dict:
    """Name -> zero-argument callable for every tracked hot path."""
    from repro.core import perturb_dp_batch, perturb_geodp_batch
    from repro.data import make_mnist_like
    from repro.geometry import (
        canonicalize_angles,
        to_cartesian_batch,
        to_spherical_batch,
    )
    from repro.models import build_cnn
    from repro.privacy.clipping import FlatClipping

    rng = np.random.default_rng(0)
    grads = rng.normal(size=(64, 5000)) * 0.01
    mags, thetas = to_spherical_batch(grads)
    noised = thetas + rng.normal(0.0, 2.0, size=thetas.shape)

    batch = 64
    data = make_mnist_like(batch, rng=0, size=16)
    model = build_cnn((1, 16, 16), num_classes=100, channels=(16, 32), rng=0)
    y = np.random.default_rng(1).integers(0, 100, size=batch)
    noise_rng = np.random.default_rng(2)

    def materialized_clipped_sum():
        _, per_sample = model.loss_and_per_sample_gradients(data.x, y)
        return FlatClipping(1.0).clip(per_sample).sum(axis=0)

    def ghost_clipped_sum():
        _, summed, _ = model.loss_and_clipped_grad_sum(data.x, y, FlatClipping(1.0))
        return summed

    return {
        "to_spherical_batch": lambda: to_spherical_batch(grads),
        "to_cartesian_batch": lambda: to_cartesian_batch(mags, thetas),
        "canonicalize_angles": lambda: canonicalize_angles(noised),
        "perturb_dp_batch": lambda: perturb_dp_batch(grads, 0.1, 1.0, 1024, noise_rng),
        "perturb_geodp_batch": lambda: perturb_geodp_batch(
            grads, 0.1, 1.0, 1024, 0.1, noise_rng
        ),
        "materialized_clipped_sum": materialized_clipped_sum,
        "ghost_clipped_sum": ghost_clipped_sum,
    }


def measure(fn, repeats: int) -> dict:
    """Median wall seconds and tracemalloc peak bytes for one callable."""
    fn()  # warm-up outside the timed region
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    tracemalloc.start()
    fn()
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return {"seconds": float(np.median(times)), "peak_bytes": int(peak)}


def next_output_path(out_dir: Path) -> Path:
    n = 0
    while (out_dir / f"BENCH_{n}.json").exists():
        n += 1
    return out_dir / f"BENCH_{n}.json"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repeats", type=int, default=5, help="timed runs per bench")
    parser.add_argument(
        "--out", default=str(REPO_ROOT), metavar="DIR", help="output directory"
    )
    args = parser.parse_args(argv)
    if args.repeats < 1:
        parser.error("--repeats must be >= 1")

    from repro.backend import THREADS_ENV, available_backends, get_num_threads, use_backend

    backends = [name for name, ok in available_backends().items() if ok]
    sections: dict[str, dict] = {}
    for backend_name in backends:
        print(f"[backend: {backend_name}]")
        section = {}
        with use_backend(backend_name):
            # Rebuild per backend: setup (spherical decompose of the probe
            # gradients, model state) must run under the measured backend.
            for name, fn in build_benchmarks().items():
                section[name] = measure(fn, args.repeats)
                print(
                    f"  {name:28s} {section[name]['seconds'] * 1e3:9.3f} ms   "
                    f"{section[name]['peak_bytes'] / 2**20:8.2f} MiB peak"
                )
        sections[backend_name] = section

    print("[sparse]")
    from bench_sparse import sparse_section

    sparse = sparse_section(steps=max(args.repeats, 5))
    for name, entry in sparse["benchmarks"].items():
        print(f"  {name:28s} {entry['seconds'] * 1e3:9.3f} ms")

    print("[service]")
    from bench_service import service_section

    service = service_section()
    print(
        f"  {'admission_throughput':28s} "
        f"{service['decisions_per_second']:9.0f} decisions/s"
    )
    for name, entry in service["benchmarks"].items():
        print(f"  {name:28s} {entry['seconds'] * 1e3:9.3f} ms")

    print("[live]")
    from bench_live import live_section

    live = live_section()
    print(f"  {'overhead_fraction':28s} {live['overhead_fraction']:+9.2%}")
    for name, entry in live["benchmarks"].items():
        print(f"  {name:28s} {entry['seconds'] * 1e3:9.3f} ms")

    print("[threads]")
    from bench_threads import threads_section

    threads = threads_section(repeats=args.repeats)
    print(f"  byte_equal: {threads['byte_equal']}")
    for name, entry in threads["speedup"].items():
        print(
            f"  {name:28s} {entry['speedup']:5.2f}x at {entry['threads']} threads"
        )
    print(
        f"  {'release_steady_peak':28s} "
        f"{threads['release_steady_peak_bytes'] / 2**20:8.2f} MiB"
    )

    path = next_output_path(Path(args.out))
    path.write_text(
        json.dumps(
            {
                "python": platform.python_version(),
                "numpy": np.__version__,
                "repeats": args.repeats,
                # Machine context: regression ratios only mean something
                # between comparable machines, and the thread gate needs
                # to know how many CPUs the archived run actually had.
                "cpu_count": os.cpu_count() or 1,
                "num_threads": get_num_threads(),
                "threads_env": os.environ.get(THREADS_ENV),
                "backends_available": available_backends(),
                # Top-level mapping stays the reference backend so old
                # archives (which predate the backend layer) remain
                # comparable baselines.
                "benchmarks": sections["reference"],
                "backends": sections,
                "sparse": sparse,
                "service": service,
                "threads": threads,
                "live": live,
            },
            indent=2,
        )
        + "\n"
    )
    print(f"wrote {path}")

    from compare import (
        bench_files,
        compare_files,
        gate_accelerated_file,
        gate_live_file,
        gate_service_file,
        gate_sparse_file,
        gate_threads_file,
    )

    ok = True
    history = bench_files(Path(args.out))
    if len(history) > 1:
        report, ok = compare_files(history[0], path)
        print(f"\n{report}")
    gate_report, gate_ok = gate_accelerated_file(path)
    print(f"\n{gate_report}")
    sparse_report, sparse_ok = gate_sparse_file(path)
    print(f"\n{sparse_report}")
    service_report, service_ok = gate_service_file(path)
    print(f"\n{service_report}")
    threads_report, threads_ok = gate_threads_file(path)
    print(f"\n{threads_report}")
    live_report, live_ok = gate_live_file(path)
    print(f"\n{live_report}")
    return 0 if (
        ok and gate_ok and sparse_ok and service_ok and threads_ok and live_ok
    ) else 1


if __name__ == "__main__":
    sys.exit(main())
