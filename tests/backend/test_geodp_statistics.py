"""Statistical regression tests for the fused GeoDP perturbation kernels.

An accelerated kernel could pass pointwise parity on a finite grid and
still be wrong in the large (e.g. a misplaced noise term that cancels on
the tested seeds).  These tests re-run the chi-square/moment machinery of
``tests/privacy/test_mechanism_statistics`` against the *released*
vectors of every accelerated backend: the empirical magnitude and angle
noise distributions must match the calibrated scales of Algorithm 1.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backend import use_backend
from repro.core.perturbation import perturb_geodp_batch
from repro.geometry.bounding import direction_sensitivity
from repro.geometry.spherical import to_spherical_batch

from tests.backend.conftest import parity_backends
from tests.privacy.test_mechanism_statistics import chi2_variance_bounds

pytestmark = pytest.mark.backend

#: Enough draws for the 1e-6-level chi-square bounds to be tight (~1%).
N_SAMPLES = 200_000

CLIP, SIGMA, BATCH, BETA = 1.0, 0.5, 32, 0.2


@pytest.fixture(params=parity_backends() or ["fused"])
def backend_name(request):
    return request.param


def _released(backend_name, d, seed, m=N_SAMPLES):
    """Perturb ``m`` copies of one fixed direction; return the releases."""
    base = np.linspace(1.0, 2.0, d)
    base /= np.linalg.norm(base) / 0.8  # norm 0.8 < CLIP: clipping inactive
    grads = np.tile(base, (m, 1))
    rng = np.random.default_rng(seed)
    with use_backend(backend_name):
        out = perturb_geodp_batch(grads, CLIP, SIGMA, BATCH, BETA, rng)
    return base, out


def test_released_magnitude_noise_variance(backend_name):
    """||release|| - ||g|| ~ N(0, (sigma*C/B)^2) under the fused kernel."""
    base, out = _released(backend_name, d=8, seed=0)
    mag_noise = np.linalg.norm(out, axis=1) - np.linalg.norm(base)
    scale = SIGMA * CLIP / BATCH
    lo, hi = chi2_variance_bounds(len(mag_noise))
    assert lo <= np.sum((mag_noise / scale) ** 2) <= hi
    # Mean and standardized fourth moment pin down Gaussianity.
    n = len(mag_noise)
    assert abs(mag_noise.mean()) < 6 * scale / np.sqrt(n)
    kurtosis = np.mean((mag_noise / mag_noise.std()) ** 4)
    assert abs(kurtosis - 3.0) < 6 * np.sqrt(96.0 / n)


def test_released_angle_noise_variance(backend_name):
    """Recovered angles carry N(0, (sigma*Delta_theta/B)^2) noise per angle."""
    d = 3
    base, out = _released(backend_name, d=d, seed=1)
    _, base_theta = to_spherical_batch(base[None, :])
    with use_backend("reference"):
        _, thetas = to_spherical_batch(out)
    theta_noise = thetas - base_theta
    # The base direction sits mid-range (angles well inside (0, pi)), and
    # the noise scale is ~1e-2 rad, so no released angle folds at its
    # range boundary and the recovered angles are exactly base + noise.
    scale = SIGMA * direction_sensitivity(d, BETA) / BATCH
    standardized = (theta_noise / scale).ravel()
    lo, hi = chi2_variance_bounds(standardized.size)
    assert lo <= np.sum(standardized**2) <= hi
    assert abs(standardized.mean()) < 6 / np.sqrt(standardized.size)


def test_wrong_scale_rejected(backend_name):
    """The chi-square gate has power: a 5% miscalibration must fail it."""
    base, out = _released(backend_name, d=8, seed=2)
    mag_noise = np.linalg.norm(out, axis=1) - np.linalg.norm(base)
    wrong = SIGMA * CLIP / BATCH * 1.05
    lo, hi = chi2_variance_bounds(len(mag_noise))
    total = np.sum((mag_noise / wrong) ** 2)
    assert not (lo <= total <= hi)


def test_accelerated_matches_reference_distributionally(backend_name):
    """Same RNG stream => identical releases; different seeds => same law."""
    base, out_a = _released(backend_name, d=8, seed=3, m=4096)
    _, out_r = _released("reference", d=8, seed=3, m=4096)
    np.testing.assert_allclose(out_a, out_r, rtol=1e-10, atol=1e-10)
