"""Differential parity harness: every backend kernel vs the reference.

Enumerates (kernel x backend x dtype x shape x seed) and asserts the
accelerated result matches the pure-numpy reference to 1e-10 — the
contract that makes backends interchangeable.  Inputs are generated in
the grid dtype and upcast to float64 before the kernel call, mirroring
the public API (``check_matrix`` always upcasts), so float32-sourced
data exercises denormal/rounding patterns without changing the contract.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backend import get_backend, use_backend
from repro.backend.reference import ReferenceBackend

from tests.backend.conftest import parity_backends

pytestmark = pytest.mark.backend

REFERENCE = ReferenceBackend()

#: rtol/atol of the cross-backend contract (documented in docs/backends.md).
PARITY = dict(rtol=1e-10, atol=1e-10)

GEOMETRY_SHAPES = [(1, 2), (3, 2), (4, 3), (17, 33), (9, 128), (64, 257)]
SEEDS = [0, 1]
DTYPES = [np.float64, np.float32]


def _grads(shape, seed, dtype):
    rng = np.random.default_rng(seed)
    g = rng.normal(0.0, 1.0, size=shape).astype(dtype)
    return np.asarray(g, dtype=np.float64)


@pytest.fixture(params=parity_backends() or ["fused"])
def backend_name(request):
    return request.param


# ---------------------------------------------------------------- geometry
@pytest.mark.parametrize("shape", GEOMETRY_SHAPES)
@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("dtype", DTYPES)
def test_spherical_decompose_parity(backend_name, shape, seed, dtype):
    grads = _grads(shape, seed, dtype)
    ref_mag, ref_theta = REFERENCE.spherical_decompose(grads)
    with use_backend(backend_name):
        mag, theta = get_backend().spherical_decompose(grads)
    np.testing.assert_allclose(mag, ref_mag, **PARITY)
    np.testing.assert_allclose(theta, ref_theta, **PARITY)


@pytest.mark.parametrize("shape", GEOMETRY_SHAPES)
@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("dtype", DTYPES)
def test_spherical_compose_parity(backend_name, shape, seed, dtype):
    m, d = shape
    rng = np.random.default_rng(seed + 100)
    mags = np.abs(rng.normal(1.0, 0.5, size=m).astype(dtype)).astype(np.float64)
    thetas = rng.uniform(-np.pi, np.pi, size=(m, d - 1)).astype(dtype)
    thetas = np.asarray(thetas, dtype=np.float64)
    ref = REFERENCE.spherical_compose(mags, thetas)
    with use_backend(backend_name):
        out = get_backend().spherical_compose(mags, thetas)
    np.testing.assert_allclose(out, ref, **PARITY)


@pytest.mark.parametrize("shape", GEOMETRY_SHAPES)
@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("dtype", DTYPES)
def test_geodp_perturb_parity(backend_name, shape, seed, dtype):
    m, d = shape
    grads = _grads(shape, seed, dtype)
    rng = np.random.default_rng(seed + 200)
    mag_noise = 0.05 * rng.normal(size=m)
    theta_noise = 0.01 * rng.normal(size=(m, d - 1))
    ref = REFERENCE.geodp_perturb(grads, mag_noise, theta_noise)
    with use_backend(backend_name):
        out = get_backend().geodp_perturb(grads, mag_noise, theta_noise)
    np.testing.assert_allclose(out, ref, **PARITY)


EDGE_ROWS = [
    np.zeros(5),                                   # zero vector: all angles 0
    np.array([1.0, 0.0, 0.0, 0.0, 0.0]),           # on the pole
    np.array([-1.0, 0.0, 0.0, 0.0, 0.0]),          # antipodal pole
    np.array([1e-300, 0.0, 1e-300, 0.0, 0.0]),     # denormal-adjacent tail
    np.array([0.0, 0.0, 0.0, 0.0, -2.5]),          # only the last coordinate
    np.array([1e8, -1e-8, 1e8, -1e-8, 1e8]),       # huge dynamic range
]


def test_geodp_perturb_edge_rows_parity(backend_name):
    grads = np.stack(EDGE_ROWS)
    m, d = grads.shape
    rng = np.random.default_rng(7)
    mag_noise = 0.1 * rng.normal(size=m)
    theta_noise = 0.02 * rng.normal(size=(m, d - 1))
    ref = REFERENCE.geodp_perturb(grads, mag_noise, theta_noise)
    with use_backend(backend_name):
        out = get_backend().geodp_perturb(grads, mag_noise, theta_noise)
    np.testing.assert_allclose(out, ref, **PARITY)


def test_decompose_edge_rows_parity(backend_name):
    grads = np.stack(EDGE_ROWS)
    ref_mag, ref_theta = REFERENCE.spherical_decompose(grads)
    with use_backend(backend_name):
        mag, theta = get_backend().spherical_decompose(grads)
    np.testing.assert_allclose(mag, ref_mag, **PARITY)
    np.testing.assert_allclose(theta, ref_theta, **PARITY)


# ------------------------------------------------------------ ghost kernels
LINEAR_SHAPES = [(1, 3, 2), (8, 16, 10), (64, 120, 33)]  # (B, in, out)


@pytest.mark.parametrize("shape", LINEAR_SHAPES)
@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("dtype", DTYPES)
@pytest.mark.parametrize("bias", [True, False])
def test_linear_kernels_parity(backend_name, shape, seed, dtype, bias):
    b, n_in, n_out = shape
    rng = np.random.default_rng(seed + 300)
    x = np.asarray(rng.normal(size=(b, n_in)).astype(dtype), dtype=np.float64)
    gout = np.asarray(rng.normal(size=(b, n_out)).astype(dtype), dtype=np.float64)
    factors = rng.uniform(0.1, 1.0, size=b)
    ref_norm = REFERENCE.linear_norm_sq(x, gout, bias)
    ref_dw, ref_db = REFERENCE.linear_clip_accumulate(x, gout, factors, bias)
    with use_backend(backend_name):
        norm = get_backend().linear_norm_sq(x, gout, bias)
        dw, db = get_backend().linear_clip_accumulate(x, gout, factors, bias)
    np.testing.assert_allclose(norm, ref_norm, **PARITY)
    np.testing.assert_allclose(dw, ref_dw, **PARITY)
    if bias:
        np.testing.assert_allclose(db, ref_db, **PARITY)
    else:
        assert db is None and ref_db is None


# Both Gram-crossover branches: L^2 <= O*K (small maps) and L^2 > O*K.
CONV_SHAPES = [(2, 12, 4, 9), (6, 27, 8, 49), (4, 18, 3, 100)]  # (B, K, O, L)


@pytest.mark.parametrize("shape", CONV_SHAPES)
@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("dtype", DTYPES)
@pytest.mark.parametrize("bias", [True, False])
def test_conv_kernels_parity(backend_name, shape, seed, dtype, bias):
    b, k_dim, out_c, length = shape
    rng = np.random.default_rng(seed + 400)
    cols = np.asarray(rng.normal(size=(b, k_dim, length)).astype(dtype), dtype=np.float64)
    dy = np.asarray(rng.normal(size=(b, out_c, length)).astype(dtype), dtype=np.float64)
    factors = rng.uniform(0.1, 1.0, size=b)
    ref_norm = REFERENCE.conv_norm_sq(cols, dy, bias)
    ref_dw, ref_db = REFERENCE.conv_clip_accumulate(cols, dy, factors, bias)
    with use_backend(backend_name):
        norm = get_backend().conv_norm_sq(cols, dy, bias)
        dw, db = get_backend().conv_clip_accumulate(cols, dy, factors, bias)
    np.testing.assert_allclose(norm, ref_norm, **PARITY)
    np.testing.assert_allclose(dw, ref_dw, **PARITY)
    if bias:
        np.testing.assert_allclose(db, ref_db, **PARITY)


EMBED_SHAPES = [(2, 3, 5, 4), (8, 12, 30, 16)]  # (B, L, vocab, dim)


@pytest.mark.parametrize("shape", EMBED_SHAPES)
@pytest.mark.parametrize("seed", SEEDS)
def test_embedding_kernels_parity(backend_name, shape, seed):
    b, length, vocab, dim = shape
    rng = np.random.default_rng(seed + 500)
    # Small vocab on purpose: repeated tokens exercise the equality mask.
    tokens = rng.integers(0, vocab, size=(b, length))
    gout = rng.normal(size=(b, length, dim))
    factors = rng.uniform(0.1, 1.0, size=b)
    ref_norm = REFERENCE.embedding_norm_sq(tokens, gout)
    ref_dw = REFERENCE.embedding_clip_accumulate(tokens, gout, factors, vocab)
    with use_backend(backend_name):
        norm = get_backend().embedding_norm_sq(tokens, gout)
        dw = get_backend().embedding_clip_accumulate(tokens, gout, factors, vocab)
    np.testing.assert_allclose(norm, ref_norm, **PARITY)
    np.testing.assert_allclose(dw, ref_dw, **PARITY)


def test_reference_backend_is_default(monkeypatch):
    """Without env overrides the library must keep historical behavior."""
    import repro.backend as backend_mod

    monkeypatch.delenv(backend_mod.BACKEND_ENV, raising=False)
    backend_mod._active = None  # force re-init; conftest fixture restores
    assert get_backend().name == "reference"
    assert get_backend().accelerated is False


# ----------------------------------------------------------- sparse kernels
def _token_patterns(vocab, b, length, seed):
    """Adversarial token layouts for the sparse/ghost embedding kernels."""
    rng = np.random.default_rng(seed + 900)
    zipf = np.minimum(rng.zipf(1.3, size=(b, length)) - 1, vocab - 1)
    return {
        "uniform": rng.integers(0, vocab, size=(b, length)),
        # Every position the same token: maximal within-sample compaction.
        "all_repeated": np.full((b, length), vocab // 2, dtype=np.int64),
        # Each sample hammers its own single token.
        "single_token_lots": np.tile(
            rng.integers(0, vocab, size=(b, 1)), (1, length)
        ),
        # Zipfian head collisions across samples.
        "zipf": zipf,
    }


@pytest.mark.parametrize("shape", EMBED_SHAPES)
@pytest.mark.parametrize("seed", SEEDS)
def test_embedding_sparse_grads_parity(backend_name, shape, seed):
    b, length, vocab, dim = shape
    rng = np.random.default_rng(seed + 700)
    gout = rng.normal(size=(b, length, dim))
    for name, tokens in _token_patterns(vocab, b, length, seed).items():
        valid = rng.random((b, length)) < 0.8
        ref = REFERENCE.embedding_sparse_grads(tokens, gout, valid, vocab)
        with use_backend(backend_name):
            out = get_backend().embedding_sparse_grads(tokens, gout, valid, vocab)
        np.testing.assert_array_equal(out[0], ref[0], err_msg=name)
        np.testing.assert_array_equal(out[1], ref[1], err_msg=name)
        np.testing.assert_allclose(out[2], ref[2], err_msg=name, **PARITY)


@pytest.mark.parametrize("shape", EMBED_SHAPES)
@pytest.mark.parametrize("seed", SEEDS)
def test_sparse_row_reduce_parity(backend_name, shape, seed):
    b, length, vocab, dim = shape
    rng = np.random.default_rng(seed + 800)
    gout = rng.normal(size=(b, length, dim))
    factors = rng.uniform(0.1, 1.0, size=b)
    for name, tokens in _token_patterns(vocab, b, length, seed).items():
        valid = np.ones((b, length), dtype=bool)
        sids, rows, vals = REFERENCE.embedding_sparse_grads(tokens, gout, valid, vocab)
        ref = REFERENCE.sparse_row_reduce(sids, rows, vals, factors)
        with use_backend(backend_name):
            out = get_backend().sparse_row_reduce(sids, rows, vals, factors)
        np.testing.assert_array_equal(out[0], ref[0], err_msg=name)
        np.testing.assert_allclose(out[1], ref[1], err_msg=name, **PARITY)


@pytest.mark.parametrize("shape", EMBED_SHAPES)
@pytest.mark.parametrize("seed", SEEDS)
def test_sparse_norms_match_ghost_and_dense(backend_name, shape, seed):
    """Sparse per-sample norms == ghost norms == dense per-sample norms.

    The sparse compaction must not change what the clipping strategy
    observes, even under adversarial token collisions: within one sample,
    repeated tokens merge into one row *before* the norm (the dense
    per-sample gradient sums them too).
    """
    from repro.sparse.grads import SparseBatchGrads

    b, length, vocab, dim = shape
    rng = np.random.default_rng(seed + 600)
    gout = rng.normal(size=(b, length, dim))
    for name, tokens in _token_patterns(vocab, b, length, seed).items():
        # Dense per-sample reference: scatter-add into (B, vocab, dim).
        dense = np.zeros((b, vocab, dim))
        for i in range(b):
            np.add.at(dense[i], tokens[i], gout[i])
        dense_norm_sq = np.einsum("bvd,bvd->b", dense, dense)
        ghost_norm_sq = REFERENCE.embedding_norm_sq(tokens, gout)
        valid = np.ones((b, length), dtype=bool)
        with use_backend(backend_name):
            sids, rows, vals = get_backend().embedding_sparse_grads(
                tokens, gout, valid, vocab
            )
        sparse = SparseBatchGrads(
            batch_size=b, dim=dim, sample_ids=sids, rows=rows, vals=vals
        )
        np.testing.assert_allclose(
            sparse.norm_sq(), dense_norm_sq, err_msg=name, **PARITY
        )
        np.testing.assert_allclose(
            ghost_norm_sq, dense_norm_sq, err_msg=name, **PARITY
        )
