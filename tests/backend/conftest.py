"""Shared fixtures for the backend differential-parity harness.

Every test in this package runs against explicit backend selections, so
the module-level fixture snapshots and restores the process-wide backend
around each test — a failing test can never leak a non-default backend
into the rest of the suite.
"""

from __future__ import annotations

import pytest

import repro.backend as backend_mod
from repro.backend import available_backends

#: Backends that must be importable everywhere (no optional deps).
ALWAYS_AVAILABLE = ("reference", "fused")


def parity_backends() -> list[str]:
    """Non-reference backends available in this environment."""
    avail = available_backends()
    return [name for name in ("fused", "numba", "cext") if avail[name]]


def require_backend(name: str) -> str:
    if not available_backends()[name]:
        pytest.skip(f"backend {name!r} unavailable in this environment")
    return name


@pytest.fixture(autouse=True)
def _restore_backend():
    """Snapshot/restore the active backend around every test in tests/backend."""
    saved = (backend_mod._active, backend_mod._active_fell_back)
    yield
    backend_mod._active, backend_mod._active_fell_back = saved
    backend_mod._noted.clear()
