"""RNG-stream discipline: switching backends never changes randomness.

The backend contract says kernels are deterministic — noise is drawn by
the callers in a fixed order and handed in pre-scaled.  These tests prove
it observationally: the generator state after a release is identical for
every backend, sigma = 0 consumes nothing, and a full DP training run
(accounting + hash-chained release ledger) replays bit-identically across
backends.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backend import use_backend
from repro.core.dpsgd import DpSgdOptimizer
from repro.core.geodp import GeoDpSgdOptimizer
from repro.core.perturbation import perturb_geodp_batch
from repro.privacy.accountant import RdpAccountant
from repro.privacy.ledger import ReleaseLedger, verify_ledger

from tests.backend.conftest import ALWAYS_AVAILABLE, parity_backends

pytestmark = pytest.mark.backend

ALL_BACKENDS = list(ALWAYS_AVAILABLE) + [
    name for name in parity_backends() if name not in ALWAYS_AVAILABLE
]


def _rng_state(rng):
    return rng.bit_generator.state


def test_perturb_consumes_identical_stream_across_backends():
    """Same draws, in the same order, whatever kernel runs afterwards."""
    grads = np.random.default_rng(3).normal(size=(6, 40))
    states, outputs = [], []
    for name in ALL_BACKENDS:
        rng = np.random.default_rng(123)
        with use_backend(name):
            out = perturb_geodp_batch(grads, 1.0, 0.8, 32, 0.2, rng)
        states.append(_rng_state(rng))
        outputs.append(out)
    for state in states[1:]:
        assert state == states[0], "backend changed the RNG stream"
    for out in outputs[1:]:
        np.testing.assert_allclose(out, outputs[0], rtol=1e-10, atol=1e-10)


def test_sigma_zero_consumes_no_randomness():
    grads = np.random.default_rng(4).normal(size=(5, 24))
    for name in ALL_BACKENDS:
        rng = np.random.default_rng(99)
        before = _rng_state(rng)
        with use_backend(name):
            perturb_geodp_batch(grads, 1.0, 0.0, 32, 0.2, rng)
        assert _rng_state(rng) == before, f"sigma=0 drew randomness on {name!r}"


def _train_release_run(optimizer_cls, backend_name, **extra):
    """Tiny DP run: 4 steps of clipped-sum + release with full accounting."""
    data_rng = np.random.default_rng(11)
    grads_per_step = [data_rng.normal(size=(8, 30)) for _ in range(4)]
    accountant = RdpAccountant()
    ledger = ReleaseLedger(delta=1e-5)
    with use_backend(backend_name):
        opt = optimizer_cls(
            learning_rate=0.1,
            clipping=1.0,
            noise_multiplier=1.1,
            rng=np.random.default_rng(2024),
            accountant=accountant,
            sample_rate=0.01,
            ledger=ledger,
            **extra,
        )
        params = np.zeros(30)
        for grads in grads_per_step:
            params = opt.step(params, grads)
    return params, accountant, ledger


@pytest.mark.parametrize(
    "optimizer_cls,extra",
    [(DpSgdOptimizer, {}), (GeoDpSgdOptimizer, {"beta": 0.2})],
    ids=["dpsgd", "geodp"],
)
def test_ledger_replay_bit_identical_across_backends(optimizer_cls, extra):
    """Accounting and the hash-chained ledger must not see the backend."""
    base_params, base_acct, base_ledger = _train_release_run(
        optimizer_cls, "reference", **extra
    )
    verify_ledger(base_ledger, accountant=base_acct)
    for name in ALL_BACKENDS:
        if name == "reference":
            continue
        params, acct, ledger = _train_release_run(optimizer_cls, name, **extra)
        verify_ledger(ledger, accountant=acct)
        # Hash chain identical entry by entry => bit-identical releases.
        assert len(ledger.entries) == len(base_ledger.entries) == 4
        assert ledger.head == base_ledger.head, (
            f"ledger diverged on backend {name!r}"
        )
        np.testing.assert_allclose(params, base_params, rtol=1e-10, atol=1e-12)
        assert acct.history == base_acct.history
