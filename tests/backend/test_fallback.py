"""Fallback-selection smoke tests (tier-1, no optional dependencies).

A numba-less environment must never fail: requesting ``numba`` falls down
the acceleration chain to the best available numpy backend, the
substitution is surfaced as exactly one ``backend_fallbacks`` telemetry
counter, and experiment results are identical to explicitly selecting the
backend that the fallback landed on.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.backend as backend_mod
from repro.backend import (
    BACKEND_DISABLE_ENV,
    available_backends,
    get_backend,
    set_backend,
    use_backend,
)
from repro.core.dpsgd import DpSgdOptimizer
from repro.experiments import table2
from repro.experiments.table2 import run_table2
from repro.telemetry.recorder import MetricsRecorder

pytestmark = pytest.mark.backend

#: Micro preset so the Table II grid runs in seconds (same shape contract
#: as the full smoke preset; see tests/experiments/test_training_experiments).
_MICRO_TABLE2 = {
    "n": 120, "size": 16, "channels": (2, 2), "batches": (8, 16),
    "iters": 3, "sigmas": (10.0, 1.0), "lr": 2.0,
}


@pytest.fixture
def compiled_backends_disabled(monkeypatch):
    """Simulate a numpy-only environment: no numba, no C compiler."""
    monkeypatch.setenv(BACKEND_DISABLE_ENV, "numba,cext")
    yield


def test_unavailable_request_falls_back_to_numpy(compiled_backends_disabled):
    avail = available_backends()
    assert not avail["numba"] and not avail["cext"]
    backend = set_backend("numba")
    assert backend.name == "fused"  # best numpy backend in the chain
    assert backend_mod._active_fell_back is True


def test_fallback_emits_one_counter(compiled_backends_disabled):
    set_backend("numba")  # falls back to fused
    recorder = MetricsRecorder()
    opt = DpSgdOptimizer(
        learning_rate=0.1,
        clipping=1.0,
        noise_multiplier=1.0,
        rng=np.random.default_rng(0),
        recorder=recorder,
    )
    grads = np.random.default_rng(1).normal(size=(4, 10))
    params = opt.step(np.zeros(10), grads)
    params = opt.step(params, grads)  # second step must not double-count
    assert recorder.counters["backend_active_fused"] == 1
    assert recorder.counters["backend_fallbacks"] == 1


def test_auto_selection_is_not_a_fallback(compiled_backends_disabled):
    backend = set_backend("auto")
    assert backend.name == "fused"
    assert backend_mod._active_fell_back is False
    recorder = MetricsRecorder()
    opt = DpSgdOptimizer(
        learning_rate=0.1,
        clipping=1.0,
        noise_multiplier=1.0,
        rng=np.random.default_rng(0),
        recorder=recorder,
    )
    opt.step(np.zeros(8), np.random.default_rng(1).normal(size=(3, 8)))
    assert recorder.counters["backend_active_fused"] == 1
    assert "backend_fallbacks" not in recorder.counters


def test_fallback_run_matches_explicit_backend(
    compiled_backends_disabled, monkeypatch
):
    """Table-2-smoke results are identical: fallback fused == explicit fused."""
    monkeypatch.setitem(table2._PRESETS, "smoke", _MICRO_TABLE2)

    set_backend("numba")  # numpy-only env: lands on fused, flagged as fallback
    assert get_backend().name == "fused"
    fallback_result = run_table2("smoke", rng=0)

    with use_backend("fused"):
        explicit_result = run_table2("smoke", rng=0)

    assert fallback_result["noise_free"] == explicit_result["noise_free"]
    for got, want in zip(fallback_result["rows"], explicit_result["rows"]):
        assert got == want
